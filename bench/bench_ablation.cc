// Ablations of the design choices called out in DESIGN.md:
//   1. index-backed findHom queries vs. full scans    (the "DB2" choice);
//   2. join reordering on vs. off                     (the "Saxon effect":
//      the paper observed a drastic slowdown with joins in the XML case
//      because Saxon evaluates for-each clauses as written);
//   3. lazy (cursor) vs. eager assignment fetching    (§3.3: relational vs
//      XML implementation);
//   4. the §3.3 proven-propagation optimization of ComputeOneRoute.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "routes/one_route.h"

namespace spider::bench {
namespace {

constexpr int kTuples = 10;

const Scenario& Scn(int joins) {
  return CachedRelational(joins, kScales[1].units);  // the "S" class
}

void Run(benchmark::State& state, const Scenario& s,
         const RouteOptions& options, int group = 3) {
  std::vector<FactRef> facts = SelectGroupFacts(s, group, kTuples, 99);
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts, options);
    if (!result.found) state.SkipWithError("route not found");
    benchmark::DoNotOptimize(result);
  }
}

void BM_Baseline(benchmark::State& state) {
  Run(state, Scn(static_cast<int>(state.range(0))), RouteOptions{});
}

void BM_NoIndexes(benchmark::State& state) {
  RouteOptions options;
  options.eval.use_indexes = false;
  Run(state, Scn(static_cast<int>(state.range(0))), options);
}

void BM_NoReordering(benchmark::State& state) {
  RouteOptions options;
  options.eval.reorder_atoms = false;
  Run(state, Scn(static_cast<int>(state.range(0))), options);
}

void BM_EagerFindHom(benchmark::State& state) {
  RouteOptions options;
  options.eager_findhom = true;
  Run(state, Scn(static_cast<int>(state.range(0))), options);
}

void BM_NoProvenPropagation(benchmark::State& state) {
  RouteOptions options;
  options.propagate_rhs_proven = false;
  Run(state, Scn(static_cast<int>(state.range(0))), options);
}

BENCHMARK(BM_Baseline)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoIndexes)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoReordering)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EagerFindHom)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoProvenPropagation)
    ->Arg(1)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spider::bench

#include "bench_main.h"

int main(int argc, char** argv) {
  return spider::bench::RunBenchmarkMain(argc, argv);
}
