// spider::algebra runtime over random three-schema pipelines. Plain main()
// (no google-benchmark harness): emits BENCH_algebra.json (or argv[1]) with
// per-seed wall times for mapping composition, inversion classification,
// core minimization of the chased solution, and end-to-end route stitching
// — the "algebra" table of EXPERIMENTS.md. Statuses, fact and step counts
// are deterministic; wall times are machine-dependent.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algebra/compose.h"
#include "algebra/core_min.h"
#include "algebra/invert.h"
#include "algebra/pipeline.h"
#include "chase/chase.h"
#include "obs/obs_cli.h"
#include "workload/random_scenario.h"

namespace spider::bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ComposeRow {
  std::string name;
  std::string status;
  size_t tgds_out = 0;
  size_t covers = 0;
  double wall_ms = 0;
};

struct InvertRow {
  std::string name;
  std::string verdict;
  size_t chases_run = 0;
  double wall_ms = 0;
};

struct CoreRow {
  std::string name;
  size_t facts_before = 0;
  size_t facts_removed = 0;
  size_t nulls_collapsed = 0;
  double wall_ms = 0;
};

struct TraceRow {
  std::string name;
  size_t u_facts = 0;
  size_t t_facts = 0;
  size_t steps = 0;
  double wall_ms = 0;
};

size_t CountFacts(const Instance& instance) {
  size_t n = 0;
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    n += instance.tuples(static_cast<RelationId>(r)).size();
  }
  return n;
}

std::vector<FactRef> TargetFacts(const Instance& target, size_t limit) {
  std::vector<FactRef> facts;
  for (size_t r = 0; r < target.NumRelations() && facts.size() < limit; ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (size_t row = 0;
         row < target.tuples(rel).size() && facts.size() < limit; ++row) {
      facts.push_back({Side::kTarget, rel, static_cast<int32_t>(row)});
    }
  }
  return facts;
}

int Run(const std::string& out_path, bool smoke) {
  const uint64_t seeds = smoke ? 5 : 30;
  const int rows_per_relation = smoke ? 4 : 12;

  std::vector<ComposeRow> compose_rows;
  std::vector<TraceRow> trace_rows;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    RandomPipelineOptions options;
    options.seed = seed;
    options.rows_per_relation = rows_per_relation;

    PipelineScenario pipeline = BuildRandomPipeline(options);
    ComposeRow row;
    row.name = "pipeline_seed" + std::to_string(seed);
    auto start = std::chrono::steady_clock::now();
    ComposeResult composed =
        ComposeMappings(*pipeline.st.mapping, *pipeline.tu.mapping);
    row.wall_ms = MsSince(start);
    row.status = ComposeStatusName(composed.status);
    row.covers = composed.covers_enumerated;
    if (composed.mapping != nullptr) {
      row.tgds_out = composed.mapping->NumTgds();
    }
    compose_rows.push_back(row);

    ChasePipeline(&pipeline);
    std::vector<FactRef> u_facts = TargetFacts(*pipeline.tu.target, 4);
    if (u_facts.empty()) continue;
    TraceRow trace;
    trace.name = row.name;
    trace.u_facts = u_facts.size();
    start = std::chrono::steady_clock::now();
    StitchedRoute stitched = TraceThroughComposition(pipeline, u_facts);
    trace.wall_ms = MsSince(start);
    trace.t_facts = stitched.t_facts_st.size();
    trace.steps = stitched.st_route.size() + stitched.tu_route.size();
    trace_rows.push_back(trace);
  }

  std::vector<InvertRow> invert_rows;
  std::vector<CoreRow> core_rows;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    RandomScenarioOptions options;
    options.seed = seed;
    options.rows_per_relation = rows_per_relation;
    options.target_tgds = 0;
    options.egds = 0;
    Scenario scenario = BuildRandomScenario(options);

    InvertRow inv;
    inv.name = "scenario_seed" + std::to_string(seed);
    auto start = std::chrono::steady_clock::now();
    InversionReport report = InvertMapping(*scenario.mapping);
    inv.wall_ms = MsSince(start);
    inv.verdict = InverseVerdictName(report.verdict);
    inv.chases_run = report.containment.chases_run;
    invert_rows.push_back(inv);

    ChaseScenario(&scenario);
    CoreRow core;
    core.name = inv.name;
    core.facts_before = CountFacts(*scenario.target);
    start = std::chrono::steady_clock::now();
    CoreMinimizationResult minimized = MinimizeTargetToCore(&scenario);
    core.wall_ms = MsSince(start);
    core.facts_removed = minimized.facts_removed;
    core.nulls_collapsed = minimized.nulls_collapsed;
    core_rows.push_back(core);
  }

  std::ofstream out(out_path);
  out << "{\n  \"workload\": {\"seeds\": " << seeds
      << ", \"rows_per_relation\": " << rows_per_relation << "},\n";
  out << "  \"compose\": [\n";
  for (size_t i = 0; i < compose_rows.size(); ++i) {
    const ComposeRow& r = compose_rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"status\": \"" << r.status
        << "\", \"tgds_out\": " << r.tgds_out << ", \"covers\": " << r.covers
        << ", \"wall_ms\": " << r.wall_ms << "}"
        << (i + 1 < compose_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"invert\": [\n";
  for (size_t i = 0; i < invert_rows.size(); ++i) {
    const InvertRow& r = invert_rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"verdict\": \"" << r.verdict
        << "\", \"chases_run\": " << r.chases_run
        << ", \"wall_ms\": " << r.wall_ms << "}"
        << (i + 1 < invert_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"core\": [\n";
  for (size_t i = 0; i < core_rows.size(); ++i) {
    const CoreRow& r = core_rows[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"facts_before\": " << r.facts_before
        << ", \"facts_removed\": " << r.facts_removed
        << ", \"nulls_collapsed\": " << r.nulls_collapsed
        << ", \"wall_ms\": " << r.wall_ms << "}"
        << (i + 1 < core_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"trace\": [\n";
  for (size_t i = 0; i < trace_rows.size(); ++i) {
    const TraceRow& r = trace_rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"u_facts\": " << r.u_facts
        << ", \"t_facts\": " << r.t_facts << ", \"steps\": " << r.steps
        << ", \"wall_ms\": " << r.wall_ms << "}"
        << (i + 1 < trace_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << " (" << compose_rows.size()
            << " compose, " << invert_rows.size() << " invert, "
            << core_rows.size() << " core, " << trace_rows.size()
            << " trace rows)\n";
  return 0;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_algebra.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    out = arg;
  }
  int status = spider::bench::Run(out, smoke);
  spider::obs::FlushObsOutputs();
  return status;
}
