// Analyzer runtime over the bundled workloads. Plain main() (no
// google-benchmark harness): emits BENCH_analyzer.json (or argv[1]) with,
// per scenario, the wall time of one full AnalyzeMapping run, the number of
// frozen-LHS chases it executed, and the diagnostic count — the
// "analyzer-runtime" row of EXPERIMENTS.md. Diagnostic counts are
// deterministic; wall times are machine-dependent.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "obs/obs_cli.h"
#include "testing/fixtures.h"
#include "workload/random_scenario.h"
#include "workload/real_scenarios.h"

namespace spider::bench {
namespace {

struct Row {
  std::string name;
  size_t tgds = 0;
  size_t egds = 0;
  size_t diagnostics = 0;
  size_t chases_run = 0;
  double wall_ms = 0;
};

Row Measure(const std::string& name, const SchemaMapping& mapping) {
  Row row;
  row.name = name;
  row.tgds = mapping.NumTgds();
  row.egds = mapping.NumEgds();
  auto start = std::chrono::steady_clock::now();
  AnalysisReport report = AnalyzeMapping(mapping);
  std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  row.diagnostics = report.diagnostics.size();
  row.chases_run = report.chases_run;
  row.wall_ms = elapsed.count();
  return row;
}

int Run(const std::string& out_path, bool smoke) {
  std::vector<Row> rows;

  Scenario credit = spider::testing::CreditCardScenario();
  rows.push_back(Measure("credit_card", *credit.mapping));

  RealScenarioOptions real;
  real.units = smoke ? 2 : 20;
  Scenario dblp = BuildDblpScenario(real);
  rows.push_back(Measure("dblp", *dblp.mapping));
  Scenario mondial = BuildMondialScenario(real);
  rows.push_back(Measure("mondial", *mondial.mapping));

  RandomScenarioOptions random;
  random.seed = 7;
  random.st_tgds = 6;
  random.target_tgds = 3;
  random.egds = 2;
  Scenario rnd = BuildRandomScenario(random);
  rows.push_back(Measure("random_seed7", *rnd.mapping));

  std::ofstream out(out_path);
  out << "{\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"tgds\": " << r.tgds
        << ", \"egds\": " << r.egds << ", \"diagnostics\": " << r.diagnostics
        << ", \"chases_run\": " << r.chases_run
        << ", \"wall_ms\": " << r.wall_ms << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
    std::cerr << r.name << ": " << r.diagnostics << " diagnostics, "
              << r.chases_run << " chases, " << r.wall_ms << " ms\n";
  }
  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_analyzer.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    out = arg;
  }
  int status = spider::bench::Run(out, smoke);
  spider::obs::FlushObsOutputs();
  return status;
}
