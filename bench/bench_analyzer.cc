// Analyzer runtime over the bundled workloads. Plain main() (no
// google-benchmark harness): emits BENCH_analyzer.json (or argv[1]) with,
// per scenario, the wall time of one full AnalyzeMapping run, the number of
// frozen-LHS chases it executed, and the diagnostic count — the
// "analyzer-runtime" row of EXPERIMENTS.md. Diagnostic counts are
// deterministic; wall times are machine-dependent.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/containment.h"
#include "obs/obs_cli.h"
#include "testing/fixtures.h"
#include "workload/random_scenario.h"
#include "workload/real_scenarios.h"

namespace spider::bench {
namespace {

struct Row {
  std::string name;
  size_t tgds = 0;
  size_t egds = 0;
  size_t diagnostics = 0;
  size_t chases_run = 0;
  double wall_ms = 0;
};

Row Measure(const std::string& name, const SchemaMapping& mapping) {
  Row row;
  row.name = name;
  row.tgds = mapping.NumTgds();
  row.egds = mapping.NumEgds();
  auto start = std::chrono::steady_clock::now();
  AnalysisReport report = AnalyzeMapping(mapping);
  std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  row.diagnostics = report.diagnostics.size();
  row.chases_run = report.chases_run;
  row.wall_ms = elapsed.count();
  return row;
}

/// Timings for the whole-mapping passes: per scenario, one self-containment
/// check (every dependency chased in both directions), one min-cover run,
/// and one reachability fixpoint.
struct PassRow {
  std::string name;
  std::string containment_verdict;
  size_t containment_chases = 0;
  double containment_ms = 0;
  size_t min_cover_removed = 0;
  size_t min_cover_inconclusive = 0;
  double min_cover_ms = 0;
  size_t unreachable_relations = 0;
  double reachability_ms = 0;
};

PassRow MeasurePasses(const std::string& name, const SchemaMapping& mapping) {
  PassRow row;
  row.name = name;

  auto start = std::chrono::steady_clock::now();
  ContainmentReport containment = CheckContainment(mapping, mapping);
  row.containment_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  row.containment_verdict = ContainmentVerdictName(containment.verdict);
  row.containment_chases = containment.chases_run;

  start = std::chrono::steady_clock::now();
  MinCoverResult cover = ComputeMinCover(mapping);
  row.min_cover_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  row.min_cover_removed = cover.NumRemoved();
  row.min_cover_inconclusive = cover.inconclusive;

  start = std::chrono::steady_clock::now();
  ReachabilityReport reachability = ComputeReachability(mapping);
  row.reachability_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  for (bool reachable : reachability.relation_reachable) {
    if (!reachable) ++row.unreachable_relations;
  }
  return row;
}

int Run(const std::string& out_path, bool smoke) {
  std::vector<std::pair<std::string, Scenario>> scenarios;
  scenarios.emplace_back("credit_card", spider::testing::CreditCardScenario());

  RealScenarioOptions real;
  real.units = smoke ? 2 : 20;
  scenarios.emplace_back("dblp", BuildDblpScenario(real));
  scenarios.emplace_back("mondial", BuildMondialScenario(real));

  RandomScenarioOptions random;
  random.seed = 7;
  random.st_tgds = 6;
  random.target_tgds = 3;
  random.egds = 2;
  scenarios.emplace_back("random_seed7", BuildRandomScenario(random));

  std::vector<Row> rows;
  std::vector<PassRow> passes;
  for (const auto& [name, scenario] : scenarios) {
    rows.push_back(Measure(name, *scenario.mapping));
    passes.push_back(MeasurePasses(name, *scenario.mapping));
  }

  std::ofstream out(out_path);
  out << "{\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"tgds\": " << r.tgds
        << ", \"egds\": " << r.egds << ", \"diagnostics\": " << r.diagnostics
        << ", \"chases_run\": " << r.chases_run
        << ", \"wall_ms\": " << r.wall_ms << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
    std::cerr << r.name << ": " << r.diagnostics << " diagnostics, "
              << r.chases_run << " chases, " << r.wall_ms << " ms\n";
  }
  out << "  ],\n  \"containment\": [\n";
  for (size_t i = 0; i < passes.size(); ++i) {
    const PassRow& p = passes[i];
    out << "    {\"name\": \"" << p.name << "\", \"verdict\": \""
        << p.containment_verdict
        << "\", \"chases_run\": " << p.containment_chases
        << ", \"wall_ms\": " << p.containment_ms << "}"
        << (i + 1 < passes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"min_cover\": [\n";
  for (size_t i = 0; i < passes.size(); ++i) {
    const PassRow& p = passes[i];
    out << "    {\"name\": \"" << p.name
        << "\", \"removed\": " << p.min_cover_removed
        << ", \"inconclusive\": " << p.min_cover_inconclusive
        << ", \"wall_ms\": " << p.min_cover_ms << "}"
        << (i + 1 < passes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"reachability\": [\n";
  for (size_t i = 0; i < passes.size(); ++i) {
    const PassRow& p = passes[i];
    out << "    {\"name\": \"" << p.name
        << "\", \"unreachable_relations\": " << p.unreachable_relations
        << ", \"wall_ms\": " << p.reachability_ms << "}"
        << (i + 1 < passes.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_analyzer.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    out = arg;
  }
  int status = spider::bench::Run(out, smoke);
  spider::obs::FlushObsOutputs();
  return status;
}
