#ifndef SPIDER_BENCH_BENCH_COMMON_H_
#define SPIDER_BENCH_BENCH_COMMON_H_

#include <map>
#include <memory>
#include <string>

#include "chase/chase.h"
#include "routes/one_route.h"
#include "workload/hierarchy_scenario.h"
#include "workload/real_scenarios.h"
#include "workload/relational_scenario.h"

namespace spider::bench {

/// Runs the probe once, untimed, so lazily-built hash indexes are warm
/// before measurement — the analogue of the paper's methodology of
/// discarding the first (cold buffer pool) run and averaging the second and
/// third.
inline void Warmup(const Scenario& s, const std::vector<FactRef>& facts,
                   const RouteOptions& options = {}) {
  ComputeOneRoute(*s.mapping, *s.source, *s.target, facts, options);
}

/// The four (I, J) size classes of Fig. 10(a), scaled to laptop size while
/// preserving the paper's 1:50 span and 1:6 source-to-target ratio
/// (10MB..500MB source, 6 copy groups).
struct ScaleClass {
  const char* label;
  int units;
};
inline constexpr ScaleClass kScales[] = {
    {"XS", 40},   // ~5.5k source tuples  (paper: 10MB)
    {"S", 200},   // ~28k                 (paper: 50MB)
    {"M", 400},   // ~55k                 (paper: 100MB)
    {"L", 2000},  // ~277k / ~1.65M target (paper: 500MB / 3GB)
};
inline constexpr int kNumScales = 4;
/// Index of the 100MB-equivalent scale used by Figs. 10(b)-(d).
inline constexpr int kScaleM = 2;

/// Builds (once) and returns the chased relational scenario for the given
/// join count and scale. Scenarios are cached for the process lifetime —
/// benchmark setup (generation + chase) is excluded from timings.
inline const Scenario& CachedRelational(int joins, int units) {
  static std::map<std::pair<int, int>, std::unique_ptr<Scenario>>* cache =
      new std::map<std::pair<int, int>, std::unique_ptr<Scenario>>();
  auto key = std::make_pair(joins, units);
  auto it = cache->find(key);
  if (it == cache->end()) {
    RelationalScenarioOptions options;
    options.joins = joins;
    options.groups = 6;
    options.sizes.units = units;
    auto scenario = std::make_unique<Scenario>(
        BuildRelationalScenario(options));
    ChaseScenario(scenario.get());
    it = cache->emplace(key, std::move(scenario)).first;
  }
  return *it->second;
}

inline const Scenario& CachedDeepHierarchy(int fanout) {
  static std::map<int, std::unique_ptr<Scenario>>* cache =
      new std::map<int, std::unique_ptr<Scenario>>();
  auto it = cache->find(fanout);
  if (it == cache->end()) {
    DeepHierarchyOptions options;
    options.regions = 5;
    options.fanout = fanout;
    auto scenario =
        std::make_unique<Scenario>(BuildDeepHierarchyScenario(options));
    ChaseScenario(scenario.get());
    it = cache->emplace(fanout, std::move(scenario)).first;
  }
  return *it->second;
}

inline const Scenario& CachedReal(const std::string& which, int units) {
  static std::map<std::string, std::unique_ptr<Scenario>>* cache =
      new std::map<std::string, std::unique_ptr<Scenario>>();
  std::string key = which + "/" + std::to_string(units);
  auto it = cache->find(key);
  if (it == cache->end()) {
    RealScenarioOptions options;
    options.units = units;
    auto scenario = std::make_unique<Scenario>(
        which == "dblp" ? BuildDblpScenario(options)
                        : BuildMondialScenario(options));
    ChaseScenario(scenario.get());
    it = cache->emplace(key, std::move(scenario)).first;
  }
  return *it->second;
}

}  // namespace spider::bench

#endif  // SPIDER_BENCH_BENCH_COMMON_H_
