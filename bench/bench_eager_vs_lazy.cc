// Eager vs. lazy provenance (§5.1's design argument, quantified): the
// paper's debugger deliberately computes routes LAZILY, on demand, so the
// exchange engine needs no re-engineering; the alternative ([23]-style
// bookkeeping, implemented in spider_provenance) annotates the whole
// exchange once and answers every probe by lookup.
//
//   * BM_Eager_AnnotateExchange — one-time cost of the instrumented chase
//     (compare with BM_PlainChase, the uninstrumented engine);
//   * BM_Eager_ExplainAfterAnnotation — per-probe cost afterwards;
//   * BM_Lazy_OneRoutePerProbe — ComputeOneRoute per probe, no setup.
//
// Expected shape: lazy probes cost more than eager lookups, but the eager
// approach only pays off after many probes (the crossover); a debugging
// session with a handful of probes is far cheaper lazily — the paper's
// rationale for routes.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "chase/chase.h"
#include "provenance/annotated_chase.h"
#include "provenance/explain.h"
#include "routes/one_route.h"

namespace spider::bench {
namespace {

constexpr int kJoins = 1;
constexpr int kUnits = 200;  // the "S" class

const Scenario& Scn() { return CachedRelational(kJoins, kUnits); }

void BM_PlainChase(benchmark::State& state) {
  const Scenario& s = Scn();
  for (auto _ : state) {
    ChaseResult result = Chase(*s.mapping, *s.source);
    benchmark::DoNotOptimize(result.target->TotalTuples());
  }
}

void BM_Eager_AnnotateExchange(benchmark::State& state) {
  const Scenario& s = Scn();
  for (auto _ : state) {
    AnnotatedChaseResult result = AnnotatedChase(*s.mapping, *s.source);
    benchmark::DoNotOptimize(result.log.NumFacts());
  }
}

void BM_Eager_ExplainAfterAnnotation(benchmark::State& state) {
  const Scenario& s = Scn();
  static const AnnotatedChaseResult* annotated = [] {
    auto* r = new AnnotatedChaseResult(AnnotatedChase(
        *Scn().mapping, *Scn().source));
    return r;
  }();
  const int probes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int p = 0; p < probes; ++p) {
      auto id = static_cast<AnnotatedChaseLog::ProvFactId>(
          (p * 7919) % annotated->log.NumFacts());
      ExtendedRoute route = ExplainFact(annotated->log, id, *s.mapping);
      benchmark::DoNotOptimize(route.size());
    }
  }
}

void BM_Lazy_OneRoutePerProbe(benchmark::State& state) {
  const Scenario& s = Scn();
  const int probes = static_cast<int>(state.range(0));
  std::vector<FactRef> facts = SelectGroupFacts(s, 3, probes, 17);
  Warmup(s, {facts[0]});
  for (auto _ : state) {
    for (const FactRef& fact : facts) {
      OneRouteResult result =
          ComputeOneRoute(*s.mapping, *s.source, *s.target, {fact});
      benchmark::DoNotOptimize(result.found);
    }
  }
}

BENCHMARK(BM_PlainChase)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Eager_AnnotateExchange)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Eager_ExplainAfterAnnotation)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lazy_OneRoutePerProbe)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spider::bench

#include "bench_main.h"

int main(int argc, char** argv) {
  return spider::bench::RunBenchmarkMain(argc, argv);
}
