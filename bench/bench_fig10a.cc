// Figure 10(a): ComputeOneRoute time while varying the size of the source
// and target instances and the number of selected tuples.
//
// Paper setting: tgds with 1 join, routes with M/T = 3, (I, J) sizes from
// (10MB, 60MB) to (500MB, 3GB), 1..20 selected tuples. Here the four size
// classes span the same 1:50 ratio at laptop scale (see bench_common.h);
// the expected shape is: time grows with the number of selected tuples and
// with instance size, with the largest class clearly separated.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "routes/one_route.h"

namespace spider::bench {
namespace {

void BM_Fig10a_OneRoute(benchmark::State& state) {
  const ScaleClass& scale = kScales[state.range(0)];
  const int ntuples = static_cast<int>(state.range(1));
  const Scenario& s = CachedRelational(/*joins=*/1, scale.units);
  std::vector<FactRef> facts =
      SelectGroupFacts(s, /*group=*/3, ntuples, /*seed=*/ntuples);
  Warmup(s, facts);
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts);
    if (!result.found) state.SkipWithError("route not found");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::string("I=") + scale.label + " tuples=" +
                 std::to_string(ntuples));
  state.counters["tuples"] = ntuples;
  state.counters["source_tuples"] =
      static_cast<double>(s.source->TotalTuples());
  state.counters["target_tuples"] =
      static_cast<double>(s.target->TotalTuples());
}

BENCHMARK(BM_Fig10a_OneRoute)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2, 5, 10, 15, 20}})
    ->Unit(benchmark::kMillisecond);

// The same sweep with findHom's selection queries executed as scans
// (use_indexes=false). With O(1) hash indexes the per-probe cost is nearly
// size-independent; the scan series recovers the paper's visible growth
// with |I| and |J| (DB2's query cost grew with table size).
void BM_Fig10a_OneRoute_Scans(benchmark::State& state) {
  const ScaleClass& scale = kScales[state.range(0)];
  const int ntuples = static_cast<int>(state.range(1));
  const Scenario& s = CachedRelational(/*joins=*/1, scale.units);
  std::vector<FactRef> facts =
      SelectGroupFacts(s, /*group=*/3, ntuples, /*seed=*/ntuples);
  RouteOptions options;
  options.eval.use_indexes = false;
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts, options);
    if (!result.found) state.SkipWithError("route not found");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::string("I=") + scale.label + " tuples=" +
                 std::to_string(ntuples) + " (scans)");
}

BENCHMARK(BM_Fig10a_OneRoute_Scans)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 5, 20}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spider::bench

#include "bench_main.h"

int main(int argc, char** argv) {
  return spider::bench::RunBenchmarkMain(argc, argv);
}
