// Figure 10(b): ComputeOneRoute time while varying the M/T factor (the
// number of satisfaction steps per selected tuple) from 1 to 6.
//
// Paper setting: tgds with 3 joins, |I| = 100MB, tuples selected from copy
// group g have M/T = g. Expected shape: time increases with the M/T factor
// (more intermediary tuples are discovered, hence more findHom queries).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "routes/one_route.h"

namespace spider::bench {
namespace {

void BM_Fig10b_MtFactor(benchmark::State& state) {
  const int mt = static_cast<int>(state.range(0));
  const int ntuples = static_cast<int>(state.range(1));
  const Scenario& s = CachedRelational(/*joins=*/3, kScales[kScaleM].units);
  std::vector<FactRef> facts = SelectGroupFacts(s, mt, ntuples, mt * 100 + 7);
  Warmup(s, facts);
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts);
    if (!result.found) state.SkipWithError("route not found");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("M/T=" + std::to_string(mt) + " tuples=" +
                 std::to_string(ntuples));
}

BENCHMARK(BM_Fig10b_MtFactor)
    ->ArgsProduct({{1, 2, 3, 4, 5, 6}, {1, 5, 10, 20}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spider::bench

#include "bench_main.h"

int main(int argc, char** argv) {
  return spider::bench::RunBenchmarkMain(argc, argv);
}
