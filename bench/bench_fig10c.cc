// Figure 10(c): ComputeOneRoute time while varying the complexity of the
// tgds (0 to 3 joins per side).
//
// Paper setting: routes with M/T = 3, |I| = 100MB. Expected shape: running
// time increases with the number of joins in the tgds (the findHom
// selection queries join more relations).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "routes/one_route.h"

namespace spider::bench {
namespace {

void BM_Fig10c_Joins(benchmark::State& state) {
  const int joins = static_cast<int>(state.range(0));
  const int ntuples = static_cast<int>(state.range(1));
  const Scenario& s = CachedRelational(joins, kScales[kScaleM].units);
  std::vector<FactRef> facts =
      SelectGroupFacts(s, /*group=*/3, ntuples, joins * 100 + ntuples);
  Warmup(s, facts);
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts);
    if (!result.found) state.SkipWithError("route not found");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(joins) + " joins, tuples=" +
                 std::to_string(ntuples));
}

BENCHMARK(BM_Fig10c_Joins)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 3, 5, 7, 10, 20}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spider::bench

#include "bench_main.h"

int main(int argc, char** argv) {
  return spider::bench::RunBenchmarkMain(argc, argv);
}
