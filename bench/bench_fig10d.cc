// Figure 10(d): ComputeOneRoute vs. ComputeAllRoutes (log scale in the
// paper; google-benchmark reports both series side by side here).
//
// Paper setting: tgds with 1 join, routes with M/T = 3, |I| = 100MB,
// 1..20 selected tuples. Expected shape: computing all routes is orders of
// magnitude slower than computing one route, and the gap widens with the
// number of selected tuples (the paper reports ~2s vs ~100s at 5 tuples).
// The forest timing excludes NaivePrint, as in the paper.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "routes/one_route.h"
#include "routes/naive_print.h"
#include "routes/route_forest.h"

namespace spider::bench {
namespace {

std::vector<FactRef> Facts(const Scenario& s, int ntuples) {
  return SelectGroupFacts(s, /*group=*/3, ntuples, /*seed=*/ntuples + 31);
}

void BM_Fig10d_OneRoute(benchmark::State& state) {
  const Scenario& s = CachedRelational(/*joins=*/1, kScales[kScaleM].units);
  std::vector<FactRef> facts = Facts(s, static_cast<int>(state.range(0)));
  Warmup(s, facts);
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts);
    if (!result.found) state.SkipWithError("route not found");
    benchmark::DoNotOptimize(result);
  }
}

void BM_Fig10d_AllRoutes(benchmark::State& state) {
  const Scenario& s = CachedRelational(/*joins=*/1, kScales[kScaleM].units);
  std::vector<FactRef> facts = Facts(s, static_cast<int>(state.range(0)));
  Warmup(s, facts);
  for (auto _ : state) {
    RouteForest forest =
        ComputeAllRoutes(*s.mapping, *s.source, *s.target, facts);
    benchmark::DoNotOptimize(forest.NumBranches());
  }
}

// "The performance gap between the two algorithms will be even larger if
// we require all routes to be printed": forest construction + NaivePrint.
void BM_Fig10d_AllRoutesPlusPrint(benchmark::State& state) {
  const Scenario& s = CachedRelational(/*joins=*/1, kScales[kScaleM].units);
  std::vector<FactRef> facts = Facts(s, static_cast<int>(state.range(0)));
  Warmup(s, facts);
  // Route counts explode combinatorially across selected facts (cartesian
  // product); cap the enumeration so the series stays runnable — the
  // truncated cost already dwarfs forest construction.
  NaivePrintOptions print_options;
  print_options.max_routes = 10'000;
  for (auto _ : state) {
    RouteForest forest =
        ComputeAllRoutes(*s.mapping, *s.source, *s.target, facts);
    NaivePrintResult printed = NaivePrint(&forest, facts, print_options);
    benchmark::DoNotOptimize(printed.routes.size());
  }
}

BENCHMARK(BM_Fig10d_OneRoute)
    ->DenseRange(1, 20, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig10d_AllRoutes)
    ->DenseRange(1, 20, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig10d_AllRoutesPlusPrint)
    ->DenseRange(1, 10, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spider::bench

#include "bench_main.h"

int main(int argc, char** argv) {
  return spider::bench::RunBenchmarkMain(argc, argv);
}
