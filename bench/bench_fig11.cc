// Figure 11: ComputeOneRoute time in the deep-hierarchy scenario while
// varying the depth of the selected elements from 1 (Region) to 5
// (Lineitem).
//
// Paper setting: source and target are the nesting Region/Nation/Customer/
// Orders/Lineitem, one s-t tgd copies the hierarchy, |I| = |J| = 700KB, and
// the XML engine (Saxon) fetches all assignments eagerly. Expected shape:
// execution time DECREASES as the selected element gets deeper — a deep
// element pins the whole root-to-leaf path, so the eagerly-materialized
// assignment set shrinks with depth. (Depth 1 is limited to 5 selected
// facts: there are only 5 regions, as in the paper.)
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "routes/one_route.h"

namespace spider::bench {
namespace {

void BM_Fig11_Depth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  int ntuples = static_cast<int>(state.range(1));
  if (depth == 1 && ntuples > 5) {
    // Only 5 distinct regions exist (see the paper's note on Fig. 11).
    ntuples = 5;
  }
  const Scenario& s = CachedDeepHierarchy(/*fanout=*/5);
  std::vector<FactRef> facts =
      SelectDepthFacts(s, depth, ntuples, depth * 10 + ntuples);
  RouteOptions xml_mode;
  xml_mode.eager_findhom = true;  // Saxon materializes all assignments
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts, xml_mode);
    if (!result.found) state.SkipWithError("route not found");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("depth=" + std::to_string(depth) + " tuples=" +
                 std::to_string(ntuples));
  state.counters["assignments"] = 0;  // overwritten below for clarity
  {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts, xml_mode);
    state.counters["assignments"] =
        static_cast<double>(result.stats.findhom_successes);
  }
}

BENCHMARK(BM_Fig11_Depth)
    ->ArgsProduct({{1, 2, 3, 4, 5}, {1, 5, 10, 20}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spider::bench

#include "bench_main.h"

int main(int argc, char** argv) {
  return spider::bench::RunBenchmarkMain(argc, argv);
}
