// The flat-hierarchy scenario of §4.1 (graphs omitted in the paper for
// space; trends reported in prose): ComputeOneRoute in "XML mode" (eager
// assignment fetching, no join reordering — the Saxon engine) while varying
// instance size, number of selected elements, and tgd complexity.
//
// Paper-reported shape: time grows with instance size and #elements; the
// system stays fast (<5s for 20 elements); the degradation with the number
// of joins is MORE drastic than in the relational case (Saxon's nested
// loops).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "routes/one_route.h"

namespace spider::bench {
namespace {

const Scenario& CachedFlat(int joins, int units) {
  static std::map<std::pair<int, int>, std::unique_ptr<Scenario>>* cache =
      new std::map<std::pair<int, int>, std::unique_ptr<Scenario>>();
  auto key = std::make_pair(joins, units);
  auto it = cache->find(key);
  if (it == cache->end()) {
    FlatHierarchyOptions options;
    options.joins = joins;
    options.groups = 6;
    options.units = units;
    auto scenario =
        std::make_unique<Scenario>(BuildFlatHierarchyScenario(options));
    ChaseScenario(scenario.get());
    it = cache->emplace(key, std::move(scenario)).first;
  }
  return *it->second;
}

RouteOptions XmlMode() {
  RouteOptions options;
  options.eager_findhom = true;
  options.eval.reorder_atoms = false;
  return options;
}

// Varying instance size (paper: 500KB / 1MB / 5MB XML documents).
void BM_Flat_Size(benchmark::State& state) {
  const Scenario& s =
      CachedFlat(/*joins=*/1, static_cast<int>(state.range(0)));
  std::vector<FactRef> facts =
      SelectGroupFacts(s, 3, static_cast<int>(state.range(1)), 11);
  RouteOptions options = XmlMode();
  Warmup(s, facts, options);
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts, options);
    if (!result.found) state.SkipWithError("route not found");
    benchmark::DoNotOptimize(result);
  }
}

// Varying tgd complexity (the drastic Saxon degradation).
void BM_Flat_Joins(benchmark::State& state) {
  const Scenario& s = CachedFlat(static_cast<int>(state.range(0)), 8);
  std::vector<FactRef> facts = SelectGroupFacts(s, 3, 5, 13);
  RouteOptions options = XmlMode();
  Warmup(s, facts, options);
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts, options);
    if (!result.found) state.SkipWithError("route not found");
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_Flat_Size)
    ->ArgsProduct({{4, 8, 40}, {1, 5, 10, 20}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Flat_Joins)
    ->ArgsProduct({{0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spider::bench

#include "bench_main.h"

int main(int argc, char** argv) {
  return spider::bench::RunBenchmarkMain(argc, argv);
}
