// Incremental maintenance vs. full re-chase on the relational workload
// (§4.1 shapes). For source deltas of 0.1%, 1% and 10% (half deletions of
// existing tuples, half insertions of fresh ones) the bench measures
//   full_rechase_ms — chasing the edited source from scratch, which is what
//                     the edit/re-debug loop would pay without
//                     spider::incremental;
//   incremental_ms  — IncrementalChaser::Apply on a maintainer whose
//                     initial chase ran untimed;
// and cross-checks the two solutions relation-by-relation (cardinality)
// before reporting — full homomorphic equivalence is a test-scale check
// (the differential fuzz suite); posing a 170k-tuple instance as one
// conjunctive query is itself minutes of planner work at bench scale.
// Emits BENCH_incremental.json (or argv[1]).
//
// Plain main(), no google-benchmark harness: each configuration is a single
// long-running measured call, and the JSON is consumed by CI.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "incremental/delta_chase.h"
#include "incremental/source_delta.h"
#include "obs/obs_cli.h"
#include "workload/relational_scenario.h"
#include "workload/rng.h"

namespace spider::bench {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

struct DeltaRun {
  std::string label;
  size_t ops = 0;
  size_t deleted = 0;
  size_t inserted = 0;
  double full_ms = 0;
  double incremental_ms = 0;
  IncrementalStats stats;
};

/// Builds a delta touching ~`fraction` of the source: the first half
/// deletes existing tuples spread across all relations, the second half
/// inserts fresh tuples (copies with a fresh key column, so every insert is
/// genuinely new and triggers downstream work).
SourceDelta DrawDelta(const Scenario& scenario, double fraction,
                      uint64_t seed) {
  const Instance& source = *scenario.source;
  const Schema& schema = scenario.mapping->source();
  size_t total = source.TotalTuples();
  size_t ops = static_cast<size_t>(static_cast<double>(total) * fraction);
  if (ops < 2) ops = 2;
  Rng rng(seed);
  SourceDelta delta;
  size_t num_rels = source.NumRelations();
  for (size_t i = 0; i < ops / 2; ++i) {
    RelationId rel = static_cast<RelationId>(rng.Below(num_rels));
    if (source.NumTuples(rel) == 0) continue;
    int32_t row = static_cast<int32_t>(rng.Below(source.NumTuples(rel)));
    delta.Delete(schema.relation(rel).name(), source.tuple(rel, row));
  }
  int64_t fresh = 1'000'000'000;
  for (size_t i = ops / 2; i < ops; ++i) {
    RelationId rel = static_cast<RelationId>(rng.Below(num_rels));
    if (source.NumTuples(rel) == 0) continue;
    int32_t row = static_cast<int32_t>(rng.Below(source.NumTuples(rel)));
    std::vector<Value> values = source.tuple(rel, row).values();
    values[0] = Value::Int(fresh + static_cast<int64_t>(i));
    delta.Insert(schema.relation(rel).name(), Tuple(std::move(values)));
  }
  return delta;
}

DeltaRun RunOne(const Scenario& scenario, const std::string& label,
                double fraction) {
  DeltaRun run;
  run.label = label;
  SourceDelta delta = DrawDelta(scenario, fraction, /*seed=*/17);
  run.ops = delta.size();

  // Maintainer over private copies; the initial chase is setup, not
  // measured (the debug session pays it once when the scenario opens).
  Instance source = *scenario.source;
  Instance target(&scenario.mapping->target());
  std::cerr << label << ": opening (initial chase)...\n";
  IncrementalChaser chaser(scenario.mapping.get(), &source, &target);
  std::cerr << label << ": applying " << run.ops << " ops\n";

  auto start = std::chrono::steady_clock::now();
  ApplyDeltaResult result = chaser.Apply(delta);
  run.incremental_ms = MillisSince(start);
  run.deleted = result.source_deleted;
  run.inserted = result.source_inserted;
  run.stats = chaser.stats();
  const IncrementalPhaseTimes& ph = run.stats.phases;
  std::cerr << label << ": phases del=" << ph.delete_apply_ms
            << " dred=" << ph.dred_ms << " commit=" << ph.commit_ms
            << " refire=" << ph.refire_ms << " ins=" << ph.insert_apply_ms
            << " trig=" << ph.trigger_ms << " fire=" << ph.fire_ms
            << " prop=" << ph.propagate_ms << " (ms)\n";
  SPIDER_CHECK(!result.full_rechase,
               "relational workload has no egds; Apply must stay incremental");

  // The from-scratch alternative on the identical edited source.
  start = std::chrono::steady_clock::now();
  ChaseResult scratch = Chase(*scenario.mapping, source);
  run.full_ms = MillisSince(start);
  SPIDER_CHECK(scratch.outcome == ChaseOutcome::kSuccess,
               "full re-chase failed");
  // Sanity cross-check: the copy mapping is existential-free, so the two
  // solutions must agree relation-by-relation on cardinality.
  for (size_t r = 0; r < target.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    SPIDER_CHECK(target.NumTuples(rel) == scratch.target->NumTuples(rel),
                 "incremental and from-scratch solutions diverge on " +
                     target.schema().relation(rel).name());
  }
  return run;
}

int Run(const std::string& out_path, bool smoke) {
  RelationalScenarioOptions workload;
  workload.joins = 1;
  workload.groups = 6;
  workload.sizes.units = smoke ? 10 : 200;  // S scale, ~28k source tuples.
  Scenario scenario = BuildRelationalScenario(workload);
  std::cerr << "scenario: " << scenario.source->TotalTuples()
            << " source tuples\n";

  std::vector<DeltaRun> runs;
  runs.push_back(RunOne(scenario, "0.1%", 0.001));
  runs.push_back(RunOne(scenario, "1%", 0.01));
  runs.push_back(RunOne(scenario, "10%", 0.1));

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"incremental\",\n";
  out << "  \"source_tuples\": " << scenario.source->TotalTuples() << ",\n";
  out << "  \"deltas\": {\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const DeltaRun& r = runs[i];
    double speedup =
        r.incremental_ms > 0 ? r.full_ms / r.incremental_ms : 0.0;
    out << "    \"" << r.label << "\": {"
        << "\"ops\": " << r.ops << ", \"deleted\": " << r.deleted
        << ", \"inserted\": " << r.inserted
        << ", \"full_rechase_ms\": " << r.full_ms
        << ", \"incremental_ms\": " << r.incremental_ms
        << ", \"speedup\": " << speedup
        << ", \"triggers_enumerated\": " << r.stats.triggers_enumerated
        << ", \"overdeleted\": " << r.stats.overdeleted
        << ", \"rederived\": " << r.stats.rederived
        << ", \"refired\": " << r.stats.refired
        << ", \"phases_ms\": {\"delete_apply\": "
        << r.stats.phases.delete_apply_ms
        << ", \"dred\": " << r.stats.phases.dred_ms
        << ", \"commit\": " << r.stats.phases.commit_ms
        << ", \"refire\": " << r.stats.phases.refire_ms
        << ", \"insert_apply\": " << r.stats.phases.insert_apply_ms
        << ", \"trigger\": " << r.stats.phases.trigger_ms
        << ", \"fire\": " << r.stats.phases.fire_ms
        << ", \"propagate\": " << r.stats.phases.propagate_ms << "}}"
        << (i + 1 < runs.size() ? ",\n" : "\n");
    std::cerr << r.label << ": full=" << r.full_ms
              << "ms incremental=" << r.incremental_ms << "ms speedup="
              << speedup << "x\n";
  }
  out << "  }\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_incremental.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    out = arg;
  }
  int status = spider::bench::Run(out, smoke);
  spider::obs::FlushObsOutputs();
  return status;
}
