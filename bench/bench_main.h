#ifndef SPIDER_BENCH_BENCH_MAIN_H_
#define SPIDER_BENCH_BENCH_MAIN_H_

// Shared main() for the google-benchmark binaries: strips the spider::obs
// flags (--trace/--metrics/--no-metrics) out of argv before handing the
// rest to benchmark::Initialize, and flushes the requested trace/metrics
// files after the run. Every bench binary thereby exposes the same
// observability surface as the CLIs.
//
// Usage (instead of BENCHMARK_MAIN()):
//
//   int main(int argc, char** argv) {
//     return spider::bench::RunBenchmarkMain(argc, argv);
//   }
//
// An optional hook runs between Initialize and RunSpecifiedBenchmarks for
// binaries that print a preamble (bench_table1's schema statistics).

#include <benchmark/benchmark.h>

#include "obs/obs_cli.h"

namespace spider::bench {

inline int RunBenchmarkMain(int argc, char** argv,
                            void (*before_run)() = nullptr) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (!spider::obs::HandleObsFlag(argv[i])) argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (before_run != nullptr) before_run();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  spider::obs::FlushObsOutputs();
  return 0;
}

}  // namespace spider::bench

#endif  // SPIDER_BENCH_BENCH_MAIN_H_
