// Threads-vs-wall-clock for the spider::exec runtime on the largest bench
// workloads, starting the perf trajectory for the parallel runtime. Unlike
// the google-benchmark figures, this emits machine-readable JSON
// (BENCH_parallel_scaling.json by default, or argv[1]) so successive PRs
// can track the scaling curve.
//
// Three timed sections, each at num_threads in {1, 2, 4, 8}:
//   chase         — relational L source (~277k tuples), s-t tgds only
//                   (groups=1), so phase 1's per-dependency fan-out is the
//                   whole chase;
//   all_routes    — ComputeAllRoutes over group-3 facts of the chased
//                   relational M scenario (wave-parallel node expansion);
//   source_routes — ComputeSourceConsequences seeding fan-out on the same
//                   scenario.
// Each run's output is fingerprinted (outside the timed window) and checked
// identical to the single-threaded baseline before its timing is reported.
// The JSON records hardware_concurrency: speedup is bounded by physical
// cores, not by the thread knob.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "obs/obs_cli.h"
#include "routes/route_forest.h"
#include "routes/source_routes.h"
#include "workload/relational_scenario.h"

namespace spider::bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

/// --smoke drops to one repetition over tiny scenarios: CI runs every bench
/// binary in seconds just to validate wiring and the JSON schema.
int g_repetitions = 3;

struct Timing {
  int threads = 1;
  double best_ms = 0;
};

/// One measured run: wall-clock of the computation alone, plus a
/// fingerprint of its output built outside the timed window.
struct RunResult {
  double wall_ms = 0;
  std::string fingerprint;
};

/// Best-of-k wall clock of `fn(threads)` (the analogue of the paper
/// discarding the cold run); every run's fingerprint must match the
/// single-threaded baseline.
template <typename F>
Timing Measure(int threads, const std::string& baseline, const F& fn) {
  Timing timing;
  timing.threads = threads;
  timing.best_ms = 1e100;
  for (int rep = 0; rep < g_repetitions; ++rep) {
    RunResult run = fn(threads);
    SPIDER_CHECK(run.fingerprint == baseline,
                 "parallel run diverged from the sequential baseline at " +
                     std::to_string(threads) + " threads");
    if (run.wall_ms < timing.best_ms) timing.best_ms = run.wall_ms;
  }
  return timing;
}

/// Runs `work` under a steady_clock, then fingerprints its result.
template <typename Work, typename Fingerprint>
RunResult TimedRun(const Work& work, const Fingerprint& fingerprint) {
  auto start = std::chrono::steady_clock::now();
  auto result = work();
  std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  return RunResult{elapsed.count(), fingerprint(result)};
}

void AppendSection(std::ostream& os, const std::string& name,
                   const std::vector<Timing>& timings) {
  // On a single-core host the thread knob measures scheduling overhead,
  // not parallel speedup; emitting "speedup" there would invite reading
  // noise as a scaling claim, so the field is suppressed (consumers treat
  // a missing "speedup" as "not measurable on this host").
  bool single_core = std::thread::hardware_concurrency() <= 1;
  os << "  \"" << name << "\": [";
  double base_ms = timings.empty() ? 0 : timings.front().best_ms;
  for (size_t i = 0; i < timings.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"threads\": " << timings[i].threads
       << ", \"wall_ms\": " << timings[i].best_ms;
    if (!single_core) os << ", \"speedup\": " << base_ms / timings[i].best_ms;
    os << "}";
  }
  os << "\n  ]";
}

template <typename F>
std::vector<Timing> Sweep(const std::string& name, const F& fn) {
  std::string baseline = fn(1).fingerprint;  // Also warms lazy indexes.
  std::vector<Timing> timings;
  for (int threads : kThreadCounts) {
    timings.push_back(Measure(threads, baseline, fn));
    std::cerr << name << " threads=" << threads
              << " best_ms=" << timings.back().best_ms << "\n";
  }
  return timings;
}

int Run(const std::string& out_path, bool smoke) {
  if (smoke) g_repetitions = 1;
  // --- Chase: L-scale source, s-t tgds only (the phase the pool covers).
  RelationalScenarioOptions chase_options;
  chase_options.joins = 1;
  chase_options.groups = 1;
  chase_options.sizes.units = smoke ? 20 : 2000;  // The L scale of bench_common.
  Scenario chase_scenario = BuildRelationalScenario(chase_options);
  std::cerr << "chase scenario: " << chase_scenario.source->TotalTuples()
            << " source tuples\n";
  auto run_chase = [&](int threads) {
    ChaseOptions options;
    options.exec.num_threads = threads;
    return TimedRun(
        [&] {
          return Chase(*chase_scenario.mapping, *chase_scenario.source,
                       options);
        },
        [](const ChaseResult& result) {
          SPIDER_CHECK(result.outcome == ChaseOutcome::kSuccess,
                       "chase failed");
          return result.target->ToString() + "|st=" +
                 std::to_string(result.stats.st_steps) + "|trig=" +
                 std::to_string(result.stats.st_triggers) + "|nulls=" +
                 std::to_string(result.stats.nulls_created);
        });
  };
  std::vector<Timing> chase_timings = Sweep("chase", run_chase);

  // --- Routes: chased M-scale scenario, the bench_common route workload.
  RelationalScenarioOptions route_options;
  route_options.joins = 1;
  route_options.groups = 6;
  route_options.sizes.units = smoke ? 10 : 400;  // M scale: J ~6x the source.
  Scenario route_scenario = BuildRelationalScenario(route_options);
  ChaseScenario(&route_scenario);
  std::cerr << "route scenario: " << route_scenario.target->TotalTuples()
            << " target tuples\n";
  std::vector<FactRef> selected = SelectGroupFacts(
      route_scenario, /*group=*/3, /*count=*/smoke ? 5 : 20, /*seed=*/7);
  auto run_all_routes = [&](int threads) {
    RouteOptions options;
    options.exec.num_threads = threads;
    return TimedRun(
        [&] {
          return ComputeAllRoutes(*route_scenario.mapping,
                                  *route_scenario.source,
                                  *route_scenario.target, selected, options);
        },
        [](const RouteForest& forest) {
          return forest.ToString() + "|nodes=" +
                 std::to_string(forest.NumNodes()) + "|findhom=" +
                 std::to_string(forest.stats().findhom_calls);
        });
  };
  std::vector<Timing> route_timings = Sweep("all_routes", run_all_routes);

  // The first 20 source facts in relation-major order (the first relations
  // are tiny, so this spans several of them).
  std::vector<FactRef> sources;
  const Instance& src = *route_scenario.source;
  for (size_t r = 0; r < src.NumRelations() && sources.size() < 20; ++r) {
    RelationId rel = static_cast<RelationId>(r);
    int32_t rows = static_cast<int32_t>(src.NumTuples(rel));
    for (int32_t row = 0; row < rows && sources.size() < 20; ++row) {
      sources.push_back(FactRef{Side::kSource, rel, row});
    }
  }
  auto run_source_routes = [&](int threads) {
    SourceRouteOptions options;
    options.route.exec.num_threads = threads;
    return TimedRun(
        [&] {
          return ComputeSourceConsequences(
              *route_scenario.mapping, *route_scenario.source,
              *route_scenario.target, sources, options);
        },
        [](const ConsequenceForest& forest) {
          return std::to_string(forest.steps.size()) + "|" +
                 std::to_string(forest.DerivedFacts().size());
        });
  };
  std::vector<Timing> source_timings =
      Sweep("source_routes", run_source_routes);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n";
  out << "  \"host\": {\"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ", \"single_core_host\": "
      << (std::thread::hardware_concurrency() <= 1 ? "true" : "false")
      << "},\n";
  out << "  \"chase_workload\": {\"scenario\": \"relational\", \"joins\": 1, "
         "\"groups\": 1, \"units\": 2000, \"source_tuples\": "
      << chase_scenario.source->TotalTuples() << "},\n";
  out << "  \"route_workload\": {\"scenario\": \"relational\", \"joins\": 1, "
         "\"groups\": 6, \"units\": 400, \"target_tuples\": "
      << route_scenario.target->TotalTuples()
      << ", \"selected_facts\": " << selected.size() << "},\n";
  AppendSection(out, "chase", chase_timings);
  out << ",\n";
  AppendSection(out, "all_routes", route_timings);
  out << ",\n";
  AppendSection(out, "source_routes", source_timings);
  out << "\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_parallel_scaling.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    out = arg;
  }
  int status = spider::bench::Run(out, smoke);
  spider::obs::FlushObsOutputs();
  return status;
}
