// Selectivity planner vs. the seed bound-count planner, measured in
// evaluator work (tuples scanned, index probes) rather than wall clock, so
// the numbers are deterministic across machines. Emits BENCH_planner.json
// (or argv[1]) with before/after counters for the three main drivers on the
// largest route workload of bench_common (relational, joins=1, groups=6,
// units=400):
//   all_routes — ComputeAllRoutes over 20 group-3 facts;
//   one_route  — ComputeOneRoute per selected fact;
//   chase      — the full chase of the same scenario.
// Each comparison checks the two planners agree on every semantic output
// (forest rendering, findHom successes, route found flags, chase triggers)
// before reporting the counter deltas.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "obs/obs_cli.h"
#include "query/eval_stats.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "workload/relational_scenario.h"

namespace spider::bench {
namespace {

struct Measured {
  EvalStats eval;
  double wall_ms = 0;
};

template <typename F>
Measured Timed(const F& fn) {
  Measured m;
  auto start = std::chrono::steady_clock::now();
  m.eval = fn();
  std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  m.wall_ms = elapsed.count();
  return m;
}

void AppendCounters(std::ostream& os, const std::string& name,
                    const Measured& m) {
  os << "    \"" << name << "\": {\"tuples_scanned\": " << m.eval.tuples_scanned
     << ", \"index_probes\": " << m.eval.index_probes
     << ", \"levels_entered\": " << m.eval.levels_entered
     << ", \"plans_built\": " << m.eval.plans_built
     << ", \"plan_cache_hits\": " << m.eval.plan_cache_hits
     << ", \"wall_ms\": " << m.wall_ms << "}";
}

void AppendSection(std::ostream& os, const std::string& name,
                   const Measured& before, const Measured& after) {
  double reduction =
      before.eval.tuples_scanned == 0
          ? 0.0
          : 1.0 - static_cast<double>(after.eval.tuples_scanned) /
                      static_cast<double>(before.eval.tuples_scanned);
  os << "  \"" << name << "\": {\n";
  AppendCounters(os, "before", before);
  os << ",\n";
  AppendCounters(os, "after", after);
  os << ",\n    \"tuples_scanned_reduction\": " << reduction << "\n  }";
}

int Run(const std::string& out_path, bool smoke) {
  RelationalScenarioOptions workload;
  workload.joins = 1;
  workload.groups = 6;
  workload.sizes.units = smoke ? 10 : 400;  // M scale: J ~6x the source.
  Scenario scenario = BuildRelationalScenario(workload);
  ChaseScenario(&scenario);
  std::cerr << "scenario: " << scenario.source->TotalTuples()
            << " source tuples, " << scenario.target->TotalTuples()
            << " target tuples\n";
  std::vector<FactRef> selected = SelectGroupFacts(
      scenario, /*group=*/3, /*count=*/smoke ? 5 : 20, /*seed=*/7);

  auto route_options = [](PlannerMode planner) {
    RouteOptions options;
    options.eval.planner = planner;
    return options;
  };

  // --- ComputeAllRoutes.
  std::string forest_rendering;
  uint64_t forest_successes = 0;
  auto run_forest = [&](PlannerMode planner) {
    std::string rendering;
    uint64_t successes = 0;
    Measured m = Timed([&] {
      RouteForest forest =
          ComputeAllRoutes(*scenario.mapping, *scenario.source,
                           *scenario.target, selected, route_options(planner));
      rendering = forest.ToString();
      successes = forest.stats().findhom_successes;
      return forest.stats().eval;
    });
    if (forest_rendering.empty()) {
      forest_rendering = rendering;
      forest_successes = successes;
    } else {
      SPIDER_CHECK(rendering == forest_rendering,
                   "planners disagree on the route forest");
      SPIDER_CHECK(successes == forest_successes,
                   "planners disagree on findHom successes");
    }
    return m;
  };
  Measured forest_before = run_forest(PlannerMode::kBoundCount);
  Measured forest_after = run_forest(PlannerMode::kSelectivity);

  // --- ComputeOneRoute, one probe per selected fact.
  auto run_one_route = [&](PlannerMode planner) {
    size_t found = 0;
    size_t steps = 0;
    Measured m = Timed([&] {
      EvalStats total;
      for (const FactRef& fact : selected) {
        OneRouteResult result =
            ComputeOneRoute(*scenario.mapping, *scenario.source,
                            *scenario.target, {fact}, route_options(planner));
        if (result.found) ++found;
        steps += result.route.size();
        total += result.stats.eval;
      }
      return total;
    });
    SPIDER_CHECK(found == selected.size(),
                 "one_route failed on a chase-produced fact");
    std::cerr << "one_route planner=" << static_cast<int>(planner)
              << " steps=" << steps << "\n";
    return m;
  };
  Measured one_before = run_one_route(PlannerMode::kBoundCount);
  Measured one_after = run_one_route(PlannerMode::kSelectivity);

  // --- Chase.
  size_t chase_triggers = 0;
  auto run_chase = [&](PlannerMode planner) {
    ChaseOptions options;
    options.eval.planner = planner;
    size_t triggers = 0;
    Measured m = Timed([&] {
      ChaseResult result = Chase(*scenario.mapping, *scenario.source, options);
      SPIDER_CHECK(result.outcome == ChaseOutcome::kSuccess, "chase failed");
      triggers = result.stats.st_triggers;
      return result.stats.eval;
    });
    if (chase_triggers == 0) {
      chase_triggers = triggers;
    } else {
      SPIDER_CHECK(triggers == chase_triggers,
                   "planners disagree on chase triggers");
    }
    return m;
  };
  Measured chase_before = run_chase(PlannerMode::kBoundCount);
  Measured chase_after = run_chase(PlannerMode::kSelectivity);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n";
  out << "  \"workload\": {\"scenario\": \"relational\", \"joins\": 1, "
         "\"groups\": 6, \"units\": 400, \"source_tuples\": "
      << scenario.source->TotalTuples()
      << ", \"target_tuples\": " << scenario.target->TotalTuples()
      << ", \"selected_facts\": " << selected.size() << "},\n";
  AppendSection(out, "all_routes", forest_before, forest_after);
  out << ",\n";
  AppendSection(out, "one_route", one_before, one_after);
  out << ",\n";
  AppendSection(out, "chase", chase_before, chase_after);
  out << "\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_planner.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    out = arg;
  }
  int status = spider::bench::Run(out, smoke);
  spider::obs::FlushObsOutputs();
  return status;
}
