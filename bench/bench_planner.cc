// Selectivity planner (probe-aware cost model, batched execution) vs. the
// seed bound-count planner. Work counters (tuples scanned, index probes,
// levels entered) are deterministic across machines and reps; wall clock
// comes from the median-ratio rep of kWallReps interleaved before/after
// repetitions (see MeasurePair), so neither a cold-cache first rep nor a
// slow host phase can swing the committed numbers. Emits BENCH_planner.json
// (or
// argv[1]) with before/after counters and a wall_ms_ratio (after / before,
// < 1 means the planner pays for itself) for the three main drivers on the
// largest route workload of bench_common (relational, joins=1, groups=6,
// units=400):
//   all_routes — ComputeAllRoutes over 20 group-3 facts;
//   one_route  — ComputeOneRoute per selected fact;
//   chase      — the full chase of the same scenario.
// Each comparison checks the two planners agree on every semantic output
// (forest rendering, findHom successes, route found flags, chase triggers)
// before reporting the counter deltas, plus the fully-bound invariant: the
// chase's levels_entered must be identical under both planners (the RHS
// containment checks pin the original atom order in every mode). A
// "cost_model" section reports this host's calibrated constants next to
// the committed defaults the engines actually plan with.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "obs/obs_cli.h"
#include "query/cost_model.h"
#include "query/eval_stats.h"
#include "query/plan_cache.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "workload/relational_scenario.h"

namespace spider::bench {
namespace {

/// Timed repetitions per measurement; the reported wall_ms is the median,
/// so the first (index-warming) rep lands in the discarded tail.
constexpr int kWallReps = 5;

struct Measured {
  EvalStats eval;
  double wall_ms = 0;
};

template <typename F>
Measured Timed(const F& fn) {
  Measured m;
  auto start = std::chrono::steady_clock::now();
  m.eval = fn();
  std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start;
  m.wall_ms = elapsed.count();
  return m;
}

/// One timed repetition: `inner` back-to-back passes of `fn`, wall divided
/// back down to per-pass. Sections whose single pass finishes in fractions
/// of a millisecond use inner > 1 so timer granularity and scheduler noise
/// cannot swamp the measurement. Counters must be pass-invariant — they
/// are deterministic functions of the plan, and this checks it — so the
/// reported counters are one pass's worth.
template <typename F>
Measured TimedPasses(const F& fn, int inner) {
  Measured m = Timed([&] {
    EvalStats stats = fn();
    for (int extra = 1; extra < inner; ++extra) {
      EvalStats again = fn();
      SPIDER_CHECK(again.tuples_scanned == stats.tuples_scanned &&
                       again.index_probes == stats.index_probes &&
                       again.levels_entered == stats.levels_entered,
                   "evaluator counters drifted across bench passes");
    }
    return stats;
  });
  m.wall_ms /= inner;
  return m;
}

/// Measures both planners over kWallReps interleaved repetitions —
/// before/after back to back within each rep, so slow phases of the host
/// hit both sides alike instead of biasing whichever mode ran second. The
/// pairing makes each rep's after/before ratio immune to host drift
/// between reps, so the rep with the MEDIAN ratio is the representative
/// measurement: its two wall times are reported as-is (one genuinely
/// measured pair, so wall_ms_ratio always equals after/before exactly).
/// `fn` takes a PlannerMode and runs one pass of the section.
template <typename F>
void MeasurePair(const F& fn, int inner, Measured* before, Measured* after,
                 double* ratio) {
  std::vector<double> before_walls, after_walls, ratios;
  for (int rep = 0; rep < kWallReps; ++rep) {
    Measured b = TimedPasses([&] { return fn(PlannerMode::kBoundCount); },
                             inner);
    Measured a = TimedPasses([&] { return fn(PlannerMode::kSelectivity); },
                             inner);
    if (rep == 0) {
      *before = b;
      *after = a;
    } else {
      SPIDER_CHECK(b.eval.tuples_scanned == before->eval.tuples_scanned &&
                       a.eval.tuples_scanned == after->eval.tuples_scanned,
                   "evaluator counters drifted across bench reps");
    }
    before_walls.push_back(b.wall_ms);
    after_walls.push_back(a.wall_ms);
    ratios.push_back(b.wall_ms <= 0 ? 0.0 : a.wall_ms / b.wall_ms);
  }
  std::vector<double> sorted_ratios = ratios;
  std::sort(sorted_ratios.begin(), sorted_ratios.end());
  double median_ratio = sorted_ratios[sorted_ratios.size() / 2];
  for (size_t rep = 0; rep < ratios.size(); ++rep) {
    if (ratios[rep] == median_ratio) {
      before->wall_ms = before_walls[rep];
      after->wall_ms = after_walls[rep];
      break;
    }
  }
  *ratio = median_ratio;
}

void AppendCounters(std::ostream& os, const std::string& name,
                    const Measured& m) {
  os << "    \"" << name << "\": {\"tuples_scanned\": " << m.eval.tuples_scanned
     << ", \"index_probes\": " << m.eval.index_probes
     << ", \"point_lookups\": " << m.eval.point_lookups
     << ", \"levels_entered\": " << m.eval.levels_entered
     << ", \"plans_built\": " << m.eval.plans_built
     << ", \"plan_cache_hits\": " << m.eval.plan_cache_hits
     << ", \"wall_ms\": " << m.wall_ms << "}";
}

void AppendSection(std::ostream& os, const std::string& name,
                   const Measured& before, const Measured& after,
                   double wall_ratio) {
  double reduction =
      before.eval.tuples_scanned == 0
          ? 0.0
          : 1.0 - static_cast<double>(after.eval.tuples_scanned) /
                      static_cast<double>(before.eval.tuples_scanned);
  os << "  \"" << name << "\": {\n";
  AppendCounters(os, "before", before);
  os << ",\n";
  AppendCounters(os, "after", after);
  os << ",\n    \"tuples_scanned_reduction\": " << reduction
     << ",\n    \"wall_ms_ratio\": " << wall_ratio << "\n  }";
}

int Run(const std::string& out_path, bool smoke) {
  RelationalScenarioOptions workload;
  workload.joins = 1;
  workload.groups = 6;
  workload.sizes.units = smoke ? 10 : 400;  // M scale: J ~6x the source.
  Scenario scenario = BuildRelationalScenario(workload);
  ChaseScenario(&scenario);
  std::cerr << "scenario: " << scenario.source->TotalTuples()
            << " source tuples, " << scenario.target->TotalTuples()
            << " target tuples\n";
  std::vector<FactRef> selected = SelectGroupFacts(
      scenario, /*group=*/3, /*count=*/smoke ? 5 : 20, /*seed=*/7);

  auto route_options = [](PlannerMode planner) {
    RouteOptions options;
    options.eval.planner = planner;
    return options;
  };

  // --- ComputeAllRoutes.
  std::string forest_rendering;
  uint64_t forest_successes = 0;
  auto run_forest = [&](PlannerMode planner) {
    RouteForest forest =
        ComputeAllRoutes(*scenario.mapping, *scenario.source, *scenario.target,
                         selected, route_options(planner));
    std::string rendering = forest.ToString();
    uint64_t successes = forest.stats().findhom_successes;
    if (forest_rendering.empty()) {
      forest_rendering = rendering;
      forest_successes = successes;
    } else {
      SPIDER_CHECK(rendering == forest_rendering,
                   "planners disagree on the route forest");
      SPIDER_CHECK(successes == forest_successes,
                   "planners disagree on findHom successes");
    }
    return forest.stats().eval;
  };
  Measured forest_before, forest_after;
  double forest_ratio = 0;
  MeasurePair(run_forest, /*inner=*/4, &forest_before, &forest_after,
              &forest_ratio);

  // --- ComputeOneRoute, one probe per selected fact.
  size_t one_route_steps = 0;
  auto run_one_route = [&](PlannerMode planner) {
    size_t found = 0;
    size_t steps = 0;
    EvalStats total;
    // One plan memo across the per-fact probes, the way a debug session
    // reuses its session-level cache over repeated one-route requests.
    PlanCache session_plans;
    RouteOptions options = route_options(planner);
    options.eval.plan_cache = &session_plans;
    for (const FactRef& fact : selected) {
      OneRouteResult result =
          ComputeOneRoute(*scenario.mapping, *scenario.source,
                          *scenario.target, {fact}, options);
      if (result.found) ++found;
      steps += result.route.size();
      total += result.stats.eval;
    }
    SPIDER_CHECK(found == selected.size(),
                 "one_route failed on a chase-produced fact");
    if (one_route_steps == 0) {
      one_route_steps = steps;
    } else {
      SPIDER_CHECK(steps == one_route_steps,
                   "planners disagree on one_route steps");
    }
    return total;
  };
  Measured one_before, one_after;
  double one_ratio = 0;
  MeasurePair(run_one_route, /*inner=*/32, &one_before, &one_after,
              &one_ratio);
  std::cerr << "one_route steps=" << one_route_steps << "\n";

  // --- Chase.
  size_t chase_triggers = 0;
  auto run_chase = [&](PlannerMode planner) {
    ChaseOptions options;
    options.eval.planner = planner;
    ChaseResult result = Chase(*scenario.mapping, *scenario.source, options);
    SPIDER_CHECK(result.outcome == ChaseOutcome::kSuccess, "chase failed");
    if (chase_triggers == 0) {
      chase_triggers = result.stats.st_triggers;
    } else {
      SPIDER_CHECK(result.stats.st_triggers == chase_triggers,
                   "planners disagree on chase triggers");
    }
    return result.stats.eval;
  };
  Measured chase_before, chase_after;
  double chase_ratio = 0;
  MeasurePair(run_chase, /*inner=*/1, &chase_before, &chase_after,
              &chase_ratio);
  // The chase's RHS containment checks are fully bound, and fully-bound
  // conjunctions run in the caller's original atom order under every
  // planner, so the levels_entered count must be planner-invariant. A
  // drift here means a planner changed which atom short-circuits.
  SPIDER_CHECK(
      chase_before.eval.levels_entered == chase_after.eval.levels_entered,
      "chase levels_entered drifted between planners");

  // This host's measured cost ratios, reported next to the committed table
  // the engines actually plan with.
  CalibrationResult calibration =
      CalibrateCostModel(/*rows=*/smoke ? 512 : 4096, /*repeats=*/kWallReps);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n";
  out << "  \"workload\": {\"scenario\": \"relational\", \"joins\": 1, "
         "\"groups\": 6, \"units\": "
      << workload.sizes.units << ", \"source_tuples\": "
      << scenario.source->TotalTuples()
      << ", \"target_tuples\": " << scenario.target->TotalTuples()
      << ", \"selected_facts\": " << selected.size() << "},\n";
  out << "  \"cost_model\": {\"version\": " << CostModel::kVersion
      << ", \"default\": {\"scan_cost\": " << CostModel::Default().scan_cost
      << ", \"probe_cost\": " << CostModel::Default().probe_cost
      << ", \"lookup_cost\": " << CostModel::Default().lookup_cost
      << "}, \"calibrated\": {\"scan_ns\": " << calibration.scan_ns
      << ", \"probe_ns\": " << calibration.probe_ns
      << ", \"lookup_ns\": " << calibration.lookup_ns
      << ", \"probe_cost\": " << calibration.model.probe_cost
      << ", \"lookup_cost\": " << calibration.model.lookup_cost << "}},\n";
  AppendSection(out, "all_routes", forest_before, forest_after,
                forest_ratio);
  out << ",\n";
  AppendSection(out, "one_route", one_before, one_after, one_ratio);
  out << ",\n";
  AppendSection(out, "chase", chase_before, chase_after, chase_ratio);
  out << "\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_planner.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    out = arg;
  }
  int status = spider::bench::Run(out, smoke);
  spider::obs::FlushObsOutputs();
  return status;
}
