// Loopback throughput/latency bench for spider::serve. Starts an
// in-process Server, then replays a zipf-skewed mixed request stream
// (route probes, all-routes probes, rare lints, periodic identical delta
// batches) from several client threads over real TCP sockets. All
// sessions open from the same workload spec and apply the same delta
// schedule, so their state keys stay aligned and the shared route tier
// sees cross-session reuse. Emits BENCH_serve.json: sustained
// throughput, client-observed p50/p95/p99 from the spider::obs
// histograms, and the shared-cache hit counters.
//
// Usage: bench_serve [--smoke] [out.json] [obs flags]

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "debugger/debug_session.h"
#include "exec/exec_options.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/obs_cli.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workload/random_scenario.h"

namespace spider::bench {
namespace {

constexpr const char* kSpec = "random:7";
constexpr double kZipfAlpha = 0.99;
/// Every kApplyEvery-th request of a session applies the next delta of a
/// schedule shared by all sessions (keeps state keys aligned).
constexpr int kApplyEvery = 64;

struct BenchConfig {
  int sessions = 16;
  int clients = 8;
  int requests_per_client = 500;
};

/// Inverse-CDF sampler for zipf(alpha) over ranks 0..n-1.
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double alpha) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Pick(double u) const {
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

struct Workload {
  std::vector<std::string> facts;   ///< Probe targets (zipf-ranked).
  std::vector<std::string> deltas;  ///< Insert-fact schedule.
};

/// Derives probe facts and the delta schedule from a local replica of the
/// served scenario. The spec grammar is deterministic (the manager builds
/// `random:7` exactly this way), so the replica's rendered facts are the
/// server's facts.
Workload BuildWorkload(size_t max_facts, size_t max_deltas) {
  RandomScenarioOptions options;
  options.seed = 7;
  options.egds = 0;  // Matches the manager's "random:<seed>" spec.
  DebugSession replica(BuildRandomScenario(options));

  Workload workload;
  const Instance& target = *replica.scenario().target;
  for (size_t r = 0;
       r < target.NumRelations() && workload.facts.size() < max_facts; ++r) {
    RelationId rel = static_cast<RelationId>(r);
    int32_t rows = static_cast<int32_t>(target.NumTuples(rel));
    for (int32_t row = 0;
         row < rows && workload.facts.size() < max_facts; ++row) {
      workload.facts.push_back(
          replica.debugger().RenderFactRef(FactRef{Side::kTarget, rel, row}));
    }
  }
  SPIDER_CHECK(!workload.facts.empty(), "replica produced no target facts");

  const Instance& source = *replica.scenario().source;
  const RelationDef& rel0 = source.schema().relation(0);
  for (size_t k = 0; k < max_deltas; ++k) {
    std::string fact = rel0.name() + "(";
    for (size_t a = 0; a < rel0.arity(); ++a) {
      if (a > 0) fact += ", ";
      fact += std::to_string(1'000'000 + k);
    }
    fact += ")";
    workload.deltas.push_back(std::move(fact));
  }
  return workload;
}

struct OpCounts {
  uint64_t route = 0;
  uint64_t all_routes = 0;
  uint64_t lint = 0;
  uint64_t apply = 0;
};

void ExpectReply(const serve::Response& response, const char* what) {
  SPIDER_CHECK(response.type == serve::MsgType::kReply,
               std::string(what) + " failed: " + response.text);
}

/// One client thread: owns `sessions`, replays `requests` calls
/// round-robin across them, recording per-call latency.
void RunClient(uint16_t port, int thread_index,
               const std::vector<uint64_t>& sessions, int requests,
               const Workload& workload, OpCounts* counts) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Histogram* lat_all = registry.GetHistogram("serve.latency.all");
  obs::Histogram* lat_route = registry.GetHistogram("serve.latency.route");
  obs::Histogram* lat_forest =
      registry.GetHistogram("serve.latency.all_routes");
  obs::Histogram* lat_apply = registry.GetHistogram("serve.latency.apply");

  serve::Client client;
  client.Connect("127.0.0.1", port);
  for (uint64_t id : sessions) {
    ExpectReply(client.LoadSession(id, kSpec), "load_session");
  }

  ZipfPicker zipf(workload.facts.size(), kZipfAlpha);
  std::mt19937_64 rng(1000 + thread_index);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<int> per_session_count(sessions.size(), 0);

  for (int i = 0; i < requests; ++i) {
    size_t slot = static_cast<size_t>(i) % sessions.size();
    uint64_t session = sessions[slot];
    int n = per_session_count[slot]++;

    serve::Response response;
    auto start = std::chrono::steady_clock::now();
    if (n % kApplyEvery == kApplyEvery - 1 &&
        static_cast<size_t>(n / kApplyEvery) < workload.deltas.size()) {
      serve::DeltaOp op;
      op.kind = serve::DeltaOp::kInsert;
      op.fact = workload.deltas[static_cast<size_t>(n / kApplyEvery)];
      response = client.ApplyDelta(session, {op});
      ExpectReply(response, "apply_delta");
      ++counts->apply;
      std::chrono::duration<double, std::milli> ms =
          std::chrono::steady_clock::now() - start;
      lat_apply->Record(ms.count());
      lat_all->Record(ms.count());
      continue;
    }
    double roll = uniform(rng);
    const std::string& fact = workload.facts[zipf.Pick(uniform(rng))];
    if (roll < 0.02) {
      response = client.Lint(session);
      ExpectReply(response, "lint");
      ++counts->lint;
      std::chrono::duration<double, std::milli> ms =
          std::chrono::steady_clock::now() - start;
      lat_all->Record(ms.count());
    } else if (roll < 0.10) {
      response = client.AllRoutes(session, fact);
      ExpectReply(response, "all_routes");
      ++counts->all_routes;
      std::chrono::duration<double, std::milli> ms =
          std::chrono::steady_clock::now() - start;
      lat_forest->Record(ms.count());
      lat_all->Record(ms.count());
    } else {
      response = client.Route(session, fact);
      ExpectReply(response, "route");
      ++counts->route;
      std::chrono::duration<double, std::milli> ms =
          std::chrono::steady_clock::now() - start;
      lat_route->Record(ms.count());
      lat_all->Record(ms.count());
    }
  }
  client.Close();
}

int Run(const std::string& out_path, bool smoke) {
  BenchConfig config;
  if (smoke) {
    config.sessions = 4;
    config.clients = 2;
    config.requests_per_client = 60;
  }

  Workload workload = BuildWorkload(/*max_facts=*/100, /*max_deltas=*/32);
  std::cerr << "workload: " << workload.facts.size() << " probe facts, "
            << workload.deltas.size() << " scheduled deltas\n";

  ExecOptions exec;
  exec.num_threads = 0;  // Hardware concurrency; nullptr pool on 1 core.
  serve::ServerOptions options;
  options.pool = ThreadPool::For(exec);
  options.manager.max_sessions =
      static_cast<size_t>(config.sessions) + 8;
  serve::Server server(options);
  server.Start();
  std::cerr << "serving on 127.0.0.1:" << server.port() << " ("
            << (options.pool ? options.pool->num_threads() : 1)
            << " workers)\n";

  // Partition session ids across client threads.
  std::vector<std::vector<uint64_t>> partitions(config.clients);
  for (int s = 0; s < config.sessions; ++s) {
    partitions[s % config.clients].push_back(static_cast<uint64_t>(s + 1));
  }

  std::vector<OpCounts> counts(config.clients);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < config.clients; ++t) {
    threads.emplace_back(RunClient, server.port(), t, partitions[t],
                         config.requests_per_client, std::cref(workload),
                         &counts[t]);
  }
  for (std::thread& thread : threads) thread.join();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  SharedRouteCacheStats cache = server.manager().shared_cache().stats();
  size_t plan_bytes = server.manager().plan_cache().bytes();
  uint64_t plan_evictions = server.manager().plan_cache().evictions();
  server.Stop();

  OpCounts total;
  for (const OpCounts& c : counts) {
    total.route += c.route;
    total.all_routes += c.all_routes;
    total.lint += c.lint;
    total.apply += c.apply;
  }
  uint64_t requests =
      total.route + total.all_routes + total.lint + total.apply;
  double seconds = elapsed.count();
  double throughput = seconds > 0 ? requests / seconds : 0;

  obs::Registry& registry = obs::Registry::Global();
  const obs::Histogram& lat = *registry.GetHistogram("serve.latency.all");
  double p50 = obs::ApproxPercentileMs(lat, 0.50);
  double p95 = obs::ApproxPercentileMs(lat, 0.95);
  double p99 = obs::ApproxPercentileMs(lat, 0.99);

  uint64_t route_lookups = cache.route_hits + cache.route_misses;
  double hit_rate =
      route_lookups == 0
          ? 0
          : static_cast<double>(cache.route_hits) / route_lookups;

  unsigned hw = std::thread::hardware_concurrency();
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n";
  out << "  \"host\": {\"hardware_concurrency\": " << hw
      << ", \"single_core_host\": " << (hw <= 1 ? "true" : "false")
      << "},\n";
  out << "  \"workload\": {\"spec\": \"" << kSpec
      << "\", \"sessions\": " << config.sessions
      << ", \"clients\": " << config.clients
      << ", \"requests\": " << requests
      << ", \"zipf_alpha\": " << kZipfAlpha
      << ", \"probe_facts\": " << workload.facts.size() << "},\n";
  out << "  \"throughput_rps\": " << throughput << ",\n";
  out << "  \"latency_ms\": {\"p50\": " << p50 << ", \"p95\": " << p95
      << ", \"p99\": " << p99 << "},\n";
  out << "  \"ops\": {\"route\": " << total.route
      << ", \"all_routes\": " << total.all_routes
      << ", \"lint\": " << total.lint << ", \"apply\": " << total.apply
      << "},\n";
  out << "  \"shared_cache\": {\"route_hits\": " << cache.route_hits
      << ", \"route_misses\": " << cache.route_misses
      << ", \"forest_hits\": " << cache.forest_hits
      << ", \"forest_misses\": " << cache.forest_misses
      << ", \"evictions\": " << cache.evictions
      << ", \"hit_rate\": " << hit_rate << "},\n";
  out << "  \"plan_cache\": {\"bytes\": " << plan_bytes
      << ", \"evictions\": " << plan_evictions << "}\n";
  out << "}\n";
  std::cerr << "wrote " << out_path << " (throughput " << throughput
            << " rps, route hit rate " << hit_rate << ")\n";
  return 0;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_serve.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    out = arg;
  }
  int status = 1;
  try {
    status = spider::bench::Run(out, smoke);
  } catch (const std::exception& e) {
    std::cerr << "bench_serve: " << e.what() << "\n";
  }
  spider::obs::FlushObsOutputs();
  return status;
}
