// Loopback throughput/latency bench for spider::serve. Starts an
// in-process Server, then replays a zipf-skewed mixed request stream
// (route probes, all-routes probes, rare lints, periodic identical delta
// batches) from several client threads over real TCP sockets. All
// sessions open from the same workload spec and apply the same delta
// schedule, so their state keys stay aligned and the shared route tier
// sees cross-session reuse. Emits BENCH_serve.json: sustained
// throughput, client-observed p50/p95/p99 from the spider::obs
// histograms, and the shared-cache hit counters.
//
// A second, deliberately hostile phase then runs against a fresh server
// with tight limits: more session opens than admission control permits,
// every session shared across every client (requests park behind each
// other), a slice of 1ms deadlines, explicit cancels of parked requests,
// and a slow reader pipelining multi-megabyte forest replies it refuses
// to drain. The "overload" JSON section records that shedding worked:
// nonzero rejections, bounded per-connection backlog (peak under the
// hard cap), and the p99 of *accepted* requests still close to baseline.
//
// Usage: bench_serve [--smoke] [out.json] [obs flags]

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "debugger/debug_session.h"
#include "exec/exec_options.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/obs_cli.h"
#include "serve/client.h"
#include "serve/server.h"
#include "workload/random_scenario.h"

namespace spider::bench {
namespace {

constexpr const char* kSpec = "random:7";
constexpr double kZipfAlpha = 0.99;
/// Every kApplyEvery-th request of a session applies the next delta of a
/// schedule shared by all sessions (keeps state keys aligned).
constexpr int kApplyEvery = 64;

struct BenchConfig {
  int sessions = 16;
  int clients = 8;
  int requests_per_client = 500;
};

/// Inverse-CDF sampler for zipf(alpha) over ranks 0..n-1.
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double alpha) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Pick(double u) const {
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

struct Workload {
  std::vector<std::string> facts;   ///< Probe targets (zipf-ranked).
  std::vector<std::string> deltas;  ///< Insert-fact schedule.
};

/// Derives probe facts and the delta schedule from a local replica of the
/// served scenario. The spec grammar is deterministic (the manager builds
/// `random:7` exactly this way), so the replica's rendered facts are the
/// server's facts.
Workload BuildWorkload(size_t max_facts, size_t max_deltas) {
  RandomScenarioOptions options;
  options.seed = 7;
  options.egds = 0;  // Matches the manager's "random:<seed>" spec.
  DebugSession replica(BuildRandomScenario(options));

  Workload workload;
  const Instance& target = *replica.scenario().target;
  for (size_t r = 0;
       r < target.NumRelations() && workload.facts.size() < max_facts; ++r) {
    RelationId rel = static_cast<RelationId>(r);
    int32_t rows = static_cast<int32_t>(target.NumTuples(rel));
    for (int32_t row = 0;
         row < rows && workload.facts.size() < max_facts; ++row) {
      workload.facts.push_back(
          replica.debugger().RenderFactRef(FactRef{Side::kTarget, rel, row}));
    }
  }
  SPIDER_CHECK(!workload.facts.empty(), "replica produced no target facts");

  const Instance& source = *replica.scenario().source;
  const RelationDef& rel0 = source.schema().relation(0);
  for (size_t k = 0; k < max_deltas; ++k) {
    std::string fact = rel0.name() + "(";
    for (size_t a = 0; a < rel0.arity(); ++a) {
      if (a > 0) fact += ", ";
      fact += std::to_string(1'000'000 + k);
    }
    fact += ")";
    workload.deltas.push_back(std::move(fact));
  }
  return workload;
}

struct OpCounts {
  uint64_t route = 0;
  uint64_t all_routes = 0;
  uint64_t lint = 0;
  uint64_t apply = 0;
};

void ExpectReply(const serve::Response& response, const char* what) {
  SPIDER_CHECK(response.type == serve::MsgType::kReply,
               std::string(what) + " failed: " + response.text);
}

/// One client thread: owns `sessions`, replays `requests` calls
/// round-robin across them, recording per-call latency.
void RunClient(uint16_t port, int thread_index,
               const std::vector<uint64_t>& sessions, int requests,
               const Workload& workload, OpCounts* counts) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Histogram* lat_all = registry.GetHistogram("serve.latency.all");
  obs::Histogram* lat_route = registry.GetHistogram("serve.latency.route");
  obs::Histogram* lat_forest =
      registry.GetHistogram("serve.latency.all_routes");
  obs::Histogram* lat_apply = registry.GetHistogram("serve.latency.apply");

  serve::Client client;
  client.Connect("127.0.0.1", port);
  for (uint64_t id : sessions) {
    ExpectReply(client.LoadSession(id, kSpec), "load_session");
  }

  ZipfPicker zipf(workload.facts.size(), kZipfAlpha);
  std::mt19937_64 rng(1000 + thread_index);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<int> per_session_count(sessions.size(), 0);

  for (int i = 0; i < requests; ++i) {
    size_t slot = static_cast<size_t>(i) % sessions.size();
    uint64_t session = sessions[slot];
    int n = per_session_count[slot]++;

    serve::Response response;
    auto start = std::chrono::steady_clock::now();
    if (n % kApplyEvery == kApplyEvery - 1 &&
        static_cast<size_t>(n / kApplyEvery) < workload.deltas.size()) {
      serve::DeltaOp op;
      op.kind = serve::DeltaOp::kInsert;
      op.fact = workload.deltas[static_cast<size_t>(n / kApplyEvery)];
      response = client.ApplyDelta(session, {op});
      ExpectReply(response, "apply_delta");
      ++counts->apply;
      std::chrono::duration<double, std::milli> ms =
          std::chrono::steady_clock::now() - start;
      lat_apply->Record(ms.count());
      lat_all->Record(ms.count());
      continue;
    }
    double roll = uniform(rng);
    const std::string& fact = workload.facts[zipf.Pick(uniform(rng))];
    if (roll < 0.02) {
      response = client.Lint(session);
      ExpectReply(response, "lint");
      ++counts->lint;
      std::chrono::duration<double, std::milli> ms =
          std::chrono::steady_clock::now() - start;
      lat_all->Record(ms.count());
    } else if (roll < 0.10) {
      response = client.AllRoutes(session, fact);
      ExpectReply(response, "all_routes");
      ++counts->all_routes;
      std::chrono::duration<double, std::milli> ms =
          std::chrono::steady_clock::now() - start;
      lat_forest->Record(ms.count());
      lat_all->Record(ms.count());
    } else {
      response = client.Route(session, fact);
      ExpectReply(response, "route");
      ++counts->route;
      std::chrono::duration<double, std::milli> ms =
          std::chrono::steady_clock::now() - start;
      lat_route->Record(ms.count());
      lat_all->Record(ms.count());
    }
  }
  client.Close();
}

// ---------------------------------------------------------------------------
// Overload phase.

/// Session opens attempted beyond the manager's max_sessions budget; all
/// must be rejected kOverBudget.
constexpr uint64_t kOverloadExtraSessions = 4;
/// Write-backpressure caps for the overload server: small enough that a
/// slow reader's pipelined forest replies suspend its reads, large enough
/// that no well-behaved client ever notices.
constexpr size_t kOverloadSoftCapBytes = 256u << 10;
constexpr size_t kOverloadHardCapBytes = 64u << 20;
/// Transitive-closure chain size for the slow-reader session: its
/// all-routes reply renders to ~2 MB, far past loopback socket buffering.
constexpr int kSlowReaderChain = 40;
/// Short-deadline routes pipelined behind a busy all-routes head.
constexpr int kDeadlineBurstSize = 16;

/// Transitive-closure chain S(1,2)..S(n-1,n) with the full closure as the
/// target solution (same scenario the cancellation tests use): all-routes
/// on T(1,n) is slow to compute and huge to render.
std::string ChainScenario(int n) {
  std::string text =
      "source schema { S(x, y); }\n"
      "target schema { T(x, y); }\n"
      "sigma1: S(x,y) -> T(x,y);\n"
      "sigma2: T(x,y) & T(y,z) -> T(x,z);\n"
      "source instance { ";
  for (int i = 1; i < n; ++i) {
    text += "S(" + std::to_string(i) + "," + std::to_string(i + 1) + "); ";
  }
  text += "}\ntarget instance {\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = i + 1; j <= n; ++j) {
      text += "T(" + std::to_string(i) + "," + std::to_string(j) + ");\n";
    }
  }
  text += "}\n";
  return text;
}

std::string ChainHead(int n) { return "T(1, " + std::to_string(n) + ")"; }

struct OverloadConfig {
  int sessions = 8;  ///< manager.max_sessions; ids 1..S-1 mixed, S = chain.
  int clients = 4;
  int requests_per_client = 250;
  int slow_reader_bursts = 4;
  int deadline_rounds = 2;
};

struct OverloadCounts {
  uint64_t accepted = 0;
  uint64_t deadline_rejections = 0;
  uint64_t cancelled = 0;
  uint64_t errors = 0;
};

void Classify(const serve::Response& response, OverloadCounts* counts) {
  if (response.type == serve::MsgType::kReply) {
    ++counts->accepted;
  } else if (response.code == serve::ErrorCode::kDeadlineExceeded) {
    ++counts->deadline_rejections;
  } else if (response.code == serve::ErrorCode::kCancelled) {
    ++counts->cancelled;
  } else {
    ++counts->errors;
  }
}

/// Mixed overload client: the baseline zipf mix, but every session is
/// shared by every client, so requests park behind each other. In the
/// storm window every 4th request carries a 1ms deadline — the shed
/// traffic — and accepted-request latencies go to their own histogram so
/// rejected requests cannot pollute the percentile. The calm window runs
/// the identical mix without deadlines first, giving an in-phase latency
/// baseline on the same sessions and cache state.
void RunOverloadClient(uint16_t port, int thread_index,
                       const std::vector<uint64_t>& sessions, int requests,
                       const Workload& workload, bool storm,
                       OverloadCounts* counts) {
  obs::Histogram* latency = obs::Registry::Global().GetHistogram(
      storm ? "serve.latency.overload_accepted"
            : "serve.latency.overload_calm");

  serve::Client client;
  client.Connect("127.0.0.1", port);
  ZipfPicker zipf(workload.facts.size(), kZipfAlpha);
  std::mt19937_64 rng((storm ? 9000 : 8000) + thread_index);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  for (int i = 0; i < requests; ++i) {
    uint64_t session = sessions[static_cast<size_t>(i) % sessions.size()];
    bool short_deadline = storm && i % 4 == 3;
    client.set_default_deadline_ms(short_deadline ? 1 : 0);
    const std::string& fact = workload.facts[zipf.Pick(uniform(rng))];
    auto start = std::chrono::steady_clock::now();
    serve::Response response = uniform(rng) < 0.10
                                   ? client.AllRoutes(session, fact)
                                   : client.Route(session, fact);
    Classify(response, counts);
    if (response.type == serve::MsgType::kReply && !short_deadline) {
      std::chrono::duration<double, std::milli> ms =
          std::chrono::steady_clock::now() - start;
      latency->Record(ms.count());
    }
  }
  client.Close();
}

/// Slow reader: pipelines a pile of ~2 MB all-routes replies and refuses
/// to drain them until the server has visibly suspended its reads. The
/// kernel's loopback buffers absorb the first few megabytes, so the
/// backlog that matters is what remains after the socket fills — the
/// bench's evidence that backpressure, not unbounded buffering, absorbs
/// a peer that stops consuming. (Polling netstats is fair game: the bench
/// and the server share a process.)
void RunSlowReader(const serve::Server* server, uint64_t session, int bursts,
                   OverloadCounts* counts) {
  serve::Client client;
  client.Connect("127.0.0.1", server->port());
  constexpr int kPipelined = 8;
  for (int b = 0; b < bursts; ++b) {
    uint64_t suspends_before = server->netstats().read_suspends;
    for (int k = 0; k < kPipelined; ++k) {
      serve::Request request;
      request.type = serve::MsgType::kAllRoutes;
      request.session_id = session;
      request.text = ChainHead(kSlowReaderChain);
      client.Send(std::move(request));
    }
    // Hold off reading until the backlog forced a suspension (or 2s, so a
    // mistuned host cannot hang the bench).
    for (int i = 0;
         i < 400 && server->netstats().read_suspends == suspends_before;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (int k = 0; k < kPipelined; ++k) {
      serve::Response response;
      if (!client.ReadResponse(&response)) {
        ++counts->errors;
        return;
      }
      Classify(response, counts);
    }
  }
  client.Close();
}

/// Deadline/cancel burst: parks short-deadline routes behind a busy
/// multi-second-scale all-routes head on the chain session, so their 1ms
/// timers fire while parked (O(1) kill, work never starts), plus one
/// explicit kCancel of a parked request.
void RunDeadlineBurst(uint16_t port, uint64_t session, int rounds,
                      OverloadCounts* counts) {
  serve::Client client;
  client.Connect("127.0.0.1", port);
  for (int round = 0; round < rounds; ++round) {
    int sent = 0;
    serve::Request head;
    head.type = serve::MsgType::kAllRoutes;
    head.session_id = session;
    head.text = ChainHead(kSlowReaderChain);
    client.Send(std::move(head));
    ++sent;
    for (int k = 0; k < kDeadlineBurstSize; ++k) {
      serve::Request request;
      request.type = serve::MsgType::kRoute;
      request.session_id = session;
      request.text = "T(1, 2)";
      request.deadline_ms = 1;
      client.Send(std::move(request));
      ++sent;
    }
    serve::Request parked;
    parked.type = serve::MsgType::kRoute;
    parked.session_id = session;
    parked.text = "T(1, 2)";
    uint64_t target = client.Send(std::move(parked));
    ++sent;
    client.SendCancel(target);
    ++sent;  // The cancel ack is itself a reply.
    for (int k = 0; k < sent; ++k) {
      serve::Response response;
      if (!client.ReadResponse(&response)) {
        ++counts->errors;
        return;
      }
      Classify(response, counts);
    }
  }
  client.Close();
}

struct OverloadResult {
  OverloadConfig config;
  OverloadCounts counts;
  uint64_t rejected_sessions = 0;
  serve::ServerNetStats net;
  double calm_p99_ms = 0;      ///< In-phase baseline (no shedding).
  double p99_accepted_ms = 0;  ///< Accepted requests in the storm window.
  double seconds = 0;
};

OverloadResult RunOverloadPhase(const Workload& workload, bool smoke) {
  OverloadResult result;
  if (smoke) {
    result.config.sessions = 4;
    result.config.clients = 2;
    result.config.requests_per_client = 40;
    result.config.slow_reader_bursts = 2;
    result.config.deadline_rounds = 1;
  }
  const OverloadConfig& config = result.config;

  ExecOptions exec;
  // A real pool even on 1-core hosts: the overload phase is about the
  // loop thread staying responsive (deadline timers, parked-request
  // kills, cancels) while the pool does the work — with a null pool every
  // request would execute inline on the loop thread and block it.
  exec.num_threads = 2;
  serve::ServerOptions options;
  options.pool = ThreadPool::For(exec);
  options.manager.max_sessions = static_cast<size_t>(config.sessions);
  options.max_conn_out_bytes = kOverloadSoftCapBytes;
  options.conn_out_hard_limit_bytes = kOverloadHardCapBytes;
  serve::Server server(options);
  server.Start();

  // Admission: fill the budget exactly, then verify the next opens shed.
  // Sessions 1..S-1 serve the mixed zipf traffic (shared by all clients);
  // session S is the chain scenario the slow reader and deadline bursts
  // hammer.
  std::vector<uint64_t> shared;
  uint64_t chain_session = static_cast<uint64_t>(config.sessions);
  {
    serve::Client admin;
    admin.Connect("127.0.0.1", server.port());
    for (uint64_t s = 1; s < chain_session; ++s) {
      ExpectReply(admin.LoadSession(s, kSpec), "overload load_session");
      shared.push_back(s);
    }
    ExpectReply(
        admin.CreateSession(chain_session, ChainScenario(kSlowReaderChain)),
        "overload chain session");
    for (uint64_t k = 0; k < kOverloadExtraSessions; ++k) {
      serve::Response response = admin.LoadSession(1000 + k, kSpec);
      SPIDER_CHECK(response.code == serve::ErrorCode::kOverBudget,
                   "over-budget open was not rejected: " + response.text);
      ++result.rejected_sessions;
    }
    admin.Close();
  }

  // Three windows against the same server. Calm: the mixed zipf mix with
  // no deadlines, giving the in-phase p99 baseline. Storm: the identical
  // closed-loop mix with a 1-in-4 slice of 1ms deadlines — accepted
  // requests must stay close to the calm p99 while the deadlined slice
  // sheds. Pressure: the slow reader and the deadline/cancel bursts
  // hammer the chain session (multi-megabyte replies, parked kills);
  // their CPU-heavy renders run outside the latency windows so the p99
  // comparison measures shedding, not timeslicing against a 2 MB render.
  std::vector<OverloadCounts> counts(
      static_cast<size_t>(config.clients) * 2 + 2);
  auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < config.clients; ++t) {
      threads.emplace_back(RunOverloadClient, server.port(), t,
                           std::cref(shared), config.requests_per_client,
                           std::cref(workload), /*storm=*/false,
                           &counts[static_cast<size_t>(t)]);
    }
    for (std::thread& thread : threads) thread.join();
  }
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < config.clients; ++t) {
      threads.emplace_back(
          RunOverloadClient, server.port(), t, std::cref(shared),
          config.requests_per_client, std::cref(workload), /*storm=*/true,
          &counts[static_cast<size_t>(config.clients) + t]);
    }
    for (std::thread& thread : threads) thread.join();
  }
  {
    std::vector<std::thread> threads;
    threads.emplace_back(RunSlowReader, &server, chain_session,
                         config.slow_reader_bursts,
                         &counts[static_cast<size_t>(config.clients) * 2]);
    threads.emplace_back(RunDeadlineBurst, server.port(), chain_session,
                         config.deadline_rounds,
                         &counts[static_cast<size_t>(config.clients) * 2 + 1]);
    for (std::thread& thread : threads) thread.join();
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  result.net = server.netstats();
  server.Stop();

  for (const OverloadCounts& c : counts) {
    result.counts.accepted += c.accepted;
    result.counts.deadline_rejections += c.deadline_rejections;
    result.counts.cancelled += c.cancelled;
    result.counts.errors += c.errors;
  }
  obs::Registry& registry = obs::Registry::Global();
  result.calm_p99_ms = obs::ApproxPercentileMs(
      *registry.GetHistogram("serve.latency.overload_calm"), 0.99);
  result.p99_accepted_ms = obs::ApproxPercentileMs(
      *registry.GetHistogram("serve.latency.overload_accepted"), 0.99);
  return result;
}

int Run(const std::string& out_path, bool smoke) {
  BenchConfig config;
  if (smoke) {
    config.sessions = 4;
    config.clients = 2;
    config.requests_per_client = 60;
  }

  Workload workload = BuildWorkload(/*max_facts=*/100, /*max_deltas=*/32);
  std::cerr << "workload: " << workload.facts.size() << " probe facts, "
            << workload.deltas.size() << " scheduled deltas\n";

  ExecOptions exec;
  exec.num_threads = 0;  // Hardware concurrency; nullptr pool on 1 core.
  serve::ServerOptions options;
  options.pool = ThreadPool::For(exec);
  options.manager.max_sessions =
      static_cast<size_t>(config.sessions) + 8;
  serve::Server server(options);
  server.Start();
  std::cerr << "serving on 127.0.0.1:" << server.port() << " ("
            << (options.pool ? options.pool->num_threads() : 1)
            << " workers)\n";

  // Partition session ids across client threads.
  std::vector<std::vector<uint64_t>> partitions(config.clients);
  for (int s = 0; s < config.sessions; ++s) {
    partitions[s % config.clients].push_back(static_cast<uint64_t>(s + 1));
  }

  std::vector<OpCounts> counts(config.clients);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < config.clients; ++t) {
    threads.emplace_back(RunClient, server.port(), t, partitions[t],
                         config.requests_per_client, std::cref(workload),
                         &counts[t]);
  }
  for (std::thread& thread : threads) thread.join();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  SharedRouteCacheStats cache = server.manager().shared_cache().stats();
  size_t plan_bytes = server.manager().plan_cache().bytes();
  uint64_t plan_evictions = server.manager().plan_cache().evictions();
  server.Stop();

  OpCounts total;
  for (const OpCounts& c : counts) {
    total.route += c.route;
    total.all_routes += c.all_routes;
    total.lint += c.lint;
    total.apply += c.apply;
  }
  uint64_t requests =
      total.route + total.all_routes + total.lint + total.apply;
  double seconds = elapsed.count();
  double throughput = seconds > 0 ? requests / seconds : 0;

  obs::Registry& registry = obs::Registry::Global();
  const obs::Histogram& lat = *registry.GetHistogram("serve.latency.all");
  double p50 = obs::ApproxPercentileMs(lat, 0.50);
  double p95 = obs::ApproxPercentileMs(lat, 0.95);
  double p99 = obs::ApproxPercentileMs(lat, 0.99);

  uint64_t route_lookups = cache.route_hits + cache.route_misses;
  double hit_rate =
      route_lookups == 0
          ? 0
          : static_cast<double>(cache.route_hits) / route_lookups;

  std::cerr << "overload phase...\n";
  OverloadResult overload = RunOverloadPhase(workload, smoke);
  double p99_ratio = overload.calm_p99_ms > 0
                         ? overload.p99_accepted_ms / overload.calm_p99_ms
                         : 0;

  unsigned hw = std::thread::hardware_concurrency();
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n";
  out << "  \"host\": {\"hardware_concurrency\": " << hw
      << ", \"single_core_host\": " << (hw <= 1 ? "true" : "false")
      << "},\n";
  out << "  \"workload\": {\"spec\": \"" << kSpec
      << "\", \"sessions\": " << config.sessions
      << ", \"clients\": " << config.clients
      << ", \"requests\": " << requests
      << ", \"zipf_alpha\": " << kZipfAlpha
      << ", \"probe_facts\": " << workload.facts.size() << "},\n";
  out << "  \"throughput_rps\": " << throughput << ",\n";
  out << "  \"latency_ms\": {\"p50\": " << p50 << ", \"p95\": " << p95
      << ", \"p99\": " << p99 << "},\n";
  out << "  \"ops\": {\"route\": " << total.route
      << ", \"all_routes\": " << total.all_routes
      << ", \"lint\": " << total.lint << ", \"apply\": " << total.apply
      << "},\n";
  out << "  \"shared_cache\": {\"route_hits\": " << cache.route_hits
      << ", \"route_misses\": " << cache.route_misses
      << ", \"forest_hits\": " << cache.forest_hits
      << ", \"forest_misses\": " << cache.forest_misses
      << ", \"evictions\": " << cache.evictions
      << ", \"hit_rate\": " << hit_rate << "},\n";
  out << "  \"plan_cache\": {\"bytes\": " << plan_bytes
      << ", \"evictions\": " << plan_evictions << "},\n";
  uint64_t overload_requests =
      overload.counts.accepted + overload.counts.deadline_rejections +
      overload.counts.cancelled + overload.counts.errors;
  out << "  \"overload\": {\"sessions\": " << overload.config.sessions
      << ", \"clients\": " << overload.config.clients + 2
      << ", \"requests\": " << overload_requests
      << ", \"accepted\": " << overload.counts.accepted
      << ", \"rejected_sessions\": " << overload.rejected_sessions
      << ", \"deadline_rejections\": " << overload.counts.deadline_rejections
      << ", \"cancelled\": " << overload.counts.cancelled
      << ", \"errors\": " << overload.counts.errors
      << ",\n                \"read_suspends\": " << overload.net.read_suspends
      << ", \"conns_dropped\": " << overload.net.conns_dropped
      << ", \"cancels_received\": " << overload.net.cancels_received
      << ", \"peak_conn_out_bytes\": " << overload.net.peak_conn_out_bytes
      << ", \"conn_out_soft_cap_bytes\": " << kOverloadSoftCapBytes
      << ", \"conn_out_hard_cap_bytes\": " << kOverloadHardCapBytes
      << ",\n                \"seconds\": " << overload.seconds
      << ", \"calm_p99_ms\": " << overload.calm_p99_ms
      << ", \"p99_accepted_ms\": " << overload.p99_accepted_ms
      << ", \"p99_ratio_vs_calm\": " << p99_ratio
      << ", \"baseline_phase_p99_ms\": " << p99 << "}\n";
  out << "}\n";
  std::cerr << "wrote " << out_path << " (throughput " << throughput
            << " rps, route hit rate " << hit_rate << ", overload p99 ratio "
            << p99_ratio << ", " << overload.counts.deadline_rejections
            << " deadline rejections, " << overload.net.read_suspends
            << " read suspends)\n";
  return 0;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_serve.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    out = arg;
  }
  int status = 1;
  try {
    status = spider::bench::Run(out, smoke);
  } catch (const std::exception& e) {
    std::cerr << "bench_serve: " << e.what() << "\n";
  }
  spider::obs::FlushObsOutputs();
  return status;
}
