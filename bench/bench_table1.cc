// Table 1 + §4.2: the real-dataset scenarios (DBLP -> Amalgam, Mondial
// relational -> nested). Prints the Table 1 schema/mapping statistics for
// the emulated datasets, then times one route and all routes for 1..10
// randomly selected target tuples in each scenario.
//
// Paper result: one route under 3 seconds in all cases; all routes much
// slower (e.g. <1s vs ~18s for 10 tuples in Mondial). Expected shape here:
// same ordering, with a widening one-vs-all gap.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "workload/rng.h"

namespace spider::bench {
namespace {

constexpr int kUnits = 30;

std::vector<FactRef> RandomTargetFacts(const Scenario& s, size_t count,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<RelationId> populated;
  for (size_t r = 0; r < s.target->NumRelations(); ++r) {
    if (s.target->NumTuples(static_cast<RelationId>(r)) > 0) {
      populated.push_back(static_cast<RelationId>(r));
    }
  }
  std::vector<FactRef> facts;
  while (facts.size() < count) {
    RelationId rel = populated[rng.Below(populated.size())];
    facts.push_back(FactRef{
        Side::kTarget, rel,
        static_cast<int32_t>(rng.Below(s.target->NumTuples(rel)))});
  }
  return facts;
}

void PrintTable1() {
  struct Row {
    const char* name;
    const Scenario* scenario;
    const char* paper;
  };
  const Scenario& dblp = CachedReal("dblp", kUnits);
  const Scenario& mondial = CachedReal("mondial", kUnits);
  std::printf("=== Table 1 (emulated datasets; paper's published values in "
              "brackets) ===\n");
  std::printf("%-10s %18s %18s %10s %12s %12s\n", "scenario", "src elements",
              "tgt elements", "|Sst|/|St|", "|I| tuples", "|J| tuples");
  for (const Row& row : {Row{"DBLP", &dblp, "85 src / 117 tgt, 10/14"},
                         Row{"Mondial", &mondial, "157 src / 144 tgt, 13/25"}}) {
    ScenarioStats stats = ComputeStats(*row.scenario);
    std::printf("%-10s %18zu %18zu %6zu/%-5zu %12zu %12zu   [paper: %s]\n",
                row.name, stats.source_elements, stats.target_elements,
                stats.st_tgds, stats.target_tgds, stats.source_tuples,
                stats.target_tuples, row.paper);
  }
  std::printf("\n");
}

void BM_Table1_OneRoute(benchmark::State& state, const char* which) {
  const Scenario& s = CachedReal(which, kUnits);
  std::vector<FactRef> facts =
      RandomTargetFacts(s, static_cast<size_t>(state.range(0)),
                        state.range(0) * 3 + 1);
  for (auto _ : state) {
    OneRouteResult result =
        ComputeOneRoute(*s.mapping, *s.source, *s.target, facts);
    benchmark::DoNotOptimize(result);
  }
}

void BM_Table1_AllRoutes(benchmark::State& state, const char* which) {
  const Scenario& s = CachedReal(which, kUnits);
  std::vector<FactRef> facts =
      RandomTargetFacts(s, static_cast<size_t>(state.range(0)),
                        state.range(0) * 3 + 1);
  for (auto _ : state) {
    RouteForest forest =
        ComputeAllRoutes(*s.mapping, *s.source, *s.target, facts);
    benchmark::DoNotOptimize(forest.NumBranches());
  }
}

BENCHMARK_CAPTURE(BM_Table1_OneRoute, dblp, "dblp")
    ->DenseRange(1, 10, 3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Table1_AllRoutes, dblp, "dblp")
    ->DenseRange(1, 10, 3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Table1_OneRoute, mondial, "mondial")
    ->DenseRange(1, 10, 3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Table1_AllRoutes, mondial, "mondial")
    ->DenseRange(1, 10, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spider::bench

#include "bench_main.h"

int main(int argc, char** argv) {
  return spider::bench::RunBenchmarkMain(argc, argv,
                                         &spider::bench::PrintTable1);
}
