file(REMOVE_RECURSE
  "CMakeFiles/bench_eager_vs_lazy.dir/bench_eager_vs_lazy.cc.o"
  "CMakeFiles/bench_eager_vs_lazy.dir/bench_eager_vs_lazy.cc.o.d"
  "bench_eager_vs_lazy"
  "bench_eager_vs_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eager_vs_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
