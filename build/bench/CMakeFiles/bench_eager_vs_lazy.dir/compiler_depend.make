# Empty compiler generated dependencies file for bench_eager_vs_lazy.
# This may be replaced when dependencies are built.
