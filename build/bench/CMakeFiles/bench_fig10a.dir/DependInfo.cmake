
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10a.cc" "bench/CMakeFiles/bench_fig10a.dir/bench_fig10a.cc.o" "gcc" "bench/CMakeFiles/bench_fig10a.dir/bench_fig10a.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/debugger/CMakeFiles/spider_debugger.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/spider_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/spider_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/routes/CMakeFiles/spider_routes.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/spider_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/spider_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/spider_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/spider_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spider_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
