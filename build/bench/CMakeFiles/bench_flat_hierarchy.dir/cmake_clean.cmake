file(REMOVE_RECURSE
  "CMakeFiles/bench_flat_hierarchy.dir/bench_flat_hierarchy.cc.o"
  "CMakeFiles/bench_flat_hierarchy.dir/bench_flat_hierarchy.cc.o.d"
  "bench_flat_hierarchy"
  "bench_flat_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flat_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
