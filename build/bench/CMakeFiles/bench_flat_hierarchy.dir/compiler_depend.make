# Empty compiler generated dependencies file for bench_flat_hierarchy.
# This may be replaced when dependencies are built.
