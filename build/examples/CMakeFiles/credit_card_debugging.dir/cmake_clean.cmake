file(REMOVE_RECURSE
  "CMakeFiles/credit_card_debugging.dir/credit_card_debugging.cpp.o"
  "CMakeFiles/credit_card_debugging.dir/credit_card_debugging.cpp.o.d"
  "credit_card_debugging"
  "credit_card_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credit_card_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
