# Empty dependencies file for credit_card_debugging.
# This may be replaced when dependencies are built.
