file(REMOVE_RECURSE
  "CMakeFiles/route_forest_tour.dir/route_forest_tour.cpp.o"
  "CMakeFiles/route_forest_tour.dir/route_forest_tour.cpp.o.d"
  "route_forest_tour"
  "route_forest_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_forest_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
