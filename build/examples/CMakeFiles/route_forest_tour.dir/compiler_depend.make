# Empty compiler generated dependencies file for route_forest_tour.
# This may be replaced when dependencies are built.
