file(REMOVE_RECURSE
  "CMakeFiles/spider_shell.dir/spider_shell.cpp.o"
  "CMakeFiles/spider_shell.dir/spider_shell.cpp.o.d"
  "spider_shell"
  "spider_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
