# Empty dependencies file for spider_shell.
# This may be replaced when dependencies are built.
