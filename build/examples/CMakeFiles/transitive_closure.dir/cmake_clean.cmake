file(REMOVE_RECURSE
  "CMakeFiles/transitive_closure.dir/transitive_closure.cpp.o"
  "CMakeFiles/transitive_closure.dir/transitive_closure.cpp.o.d"
  "transitive_closure"
  "transitive_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transitive_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
