file(REMOVE_RECURSE
  "CMakeFiles/spider_base.dir/status.cc.o"
  "CMakeFiles/spider_base.dir/status.cc.o.d"
  "CMakeFiles/spider_base.dir/tuple.cc.o"
  "CMakeFiles/spider_base.dir/tuple.cc.o.d"
  "CMakeFiles/spider_base.dir/value.cc.o"
  "CMakeFiles/spider_base.dir/value.cc.o.d"
  "libspider_base.a"
  "libspider_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
