file(REMOVE_RECURSE
  "libspider_base.a"
)
