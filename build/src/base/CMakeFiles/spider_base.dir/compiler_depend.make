# Empty compiler generated dependencies file for spider_base.
# This may be replaced when dependencies are built.
