file(REMOVE_RECURSE
  "CMakeFiles/spider_catalog.dir/schema.cc.o"
  "CMakeFiles/spider_catalog.dir/schema.cc.o.d"
  "libspider_catalog.a"
  "libspider_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
