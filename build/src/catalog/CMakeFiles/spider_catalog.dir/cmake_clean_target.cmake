file(REMOVE_RECURSE
  "libspider_catalog.a"
)
