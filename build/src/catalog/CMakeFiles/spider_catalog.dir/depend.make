# Empty dependencies file for spider_catalog.
# This may be replaced when dependencies are built.
