
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/certain_answers.cc" "src/chase/CMakeFiles/spider_chase.dir/certain_answers.cc.o" "gcc" "src/chase/CMakeFiles/spider_chase.dir/certain_answers.cc.o.d"
  "/root/repo/src/chase/chase.cc" "src/chase/CMakeFiles/spider_chase.dir/chase.cc.o" "gcc" "src/chase/CMakeFiles/spider_chase.dir/chase.cc.o.d"
  "/root/repo/src/chase/core.cc" "src/chase/CMakeFiles/spider_chase.dir/core.cc.o" "gcc" "src/chase/CMakeFiles/spider_chase.dir/core.cc.o.d"
  "/root/repo/src/chase/homomorphism.cc" "src/chase/CMakeFiles/spider_chase.dir/homomorphism.cc.o" "gcc" "src/chase/CMakeFiles/spider_chase.dir/homomorphism.cc.o.d"
  "/root/repo/src/chase/solution_check.cc" "src/chase/CMakeFiles/spider_chase.dir/solution_check.cc.o" "gcc" "src/chase/CMakeFiles/spider_chase.dir/solution_check.cc.o.d"
  "/root/repo/src/chase/weak_acyclicity.cc" "src/chase/CMakeFiles/spider_chase.dir/weak_acyclicity.cc.o" "gcc" "src/chase/CMakeFiles/spider_chase.dir/weak_acyclicity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapping/CMakeFiles/spider_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/spider_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/spider_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spider_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
