file(REMOVE_RECURSE
  "CMakeFiles/spider_chase.dir/certain_answers.cc.o"
  "CMakeFiles/spider_chase.dir/certain_answers.cc.o.d"
  "CMakeFiles/spider_chase.dir/chase.cc.o"
  "CMakeFiles/spider_chase.dir/chase.cc.o.d"
  "CMakeFiles/spider_chase.dir/core.cc.o"
  "CMakeFiles/spider_chase.dir/core.cc.o.d"
  "CMakeFiles/spider_chase.dir/homomorphism.cc.o"
  "CMakeFiles/spider_chase.dir/homomorphism.cc.o.d"
  "CMakeFiles/spider_chase.dir/solution_check.cc.o"
  "CMakeFiles/spider_chase.dir/solution_check.cc.o.d"
  "CMakeFiles/spider_chase.dir/weak_acyclicity.cc.o"
  "CMakeFiles/spider_chase.dir/weak_acyclicity.cc.o.d"
  "libspider_chase.a"
  "libspider_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
