file(REMOVE_RECURSE
  "libspider_chase.a"
)
