# Empty dependencies file for spider_chase.
# This may be replaced when dependencies are built.
