
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/debugger/debugger.cc" "src/debugger/CMakeFiles/spider_debugger.dir/debugger.cc.o" "gcc" "src/debugger/CMakeFiles/spider_debugger.dir/debugger.cc.o.d"
  "/root/repo/src/debugger/dot_export.cc" "src/debugger/CMakeFiles/spider_debugger.dir/dot_export.cc.o" "gcc" "src/debugger/CMakeFiles/spider_debugger.dir/dot_export.cc.o.d"
  "/root/repo/src/debugger/linter.cc" "src/debugger/CMakeFiles/spider_debugger.dir/linter.cc.o" "gcc" "src/debugger/CMakeFiles/spider_debugger.dir/linter.cc.o.d"
  "/root/repo/src/debugger/mapping_diff.cc" "src/debugger/CMakeFiles/spider_debugger.dir/mapping_diff.cc.o" "gcc" "src/debugger/CMakeFiles/spider_debugger.dir/mapping_diff.cc.o.d"
  "/root/repo/src/debugger/render.cc" "src/debugger/CMakeFiles/spider_debugger.dir/render.cc.o" "gcc" "src/debugger/CMakeFiles/spider_debugger.dir/render.cc.o.d"
  "/root/repo/src/debugger/route_player.cc" "src/debugger/CMakeFiles/spider_debugger.dir/route_player.cc.o" "gcc" "src/debugger/CMakeFiles/spider_debugger.dir/route_player.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routes/CMakeFiles/spider_routes.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/spider_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/spider_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/spider_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/spider_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spider_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
