file(REMOVE_RECURSE
  "CMakeFiles/spider_debugger.dir/debugger.cc.o"
  "CMakeFiles/spider_debugger.dir/debugger.cc.o.d"
  "CMakeFiles/spider_debugger.dir/dot_export.cc.o"
  "CMakeFiles/spider_debugger.dir/dot_export.cc.o.d"
  "CMakeFiles/spider_debugger.dir/linter.cc.o"
  "CMakeFiles/spider_debugger.dir/linter.cc.o.d"
  "CMakeFiles/spider_debugger.dir/mapping_diff.cc.o"
  "CMakeFiles/spider_debugger.dir/mapping_diff.cc.o.d"
  "CMakeFiles/spider_debugger.dir/render.cc.o"
  "CMakeFiles/spider_debugger.dir/render.cc.o.d"
  "CMakeFiles/spider_debugger.dir/route_player.cc.o"
  "CMakeFiles/spider_debugger.dir/route_player.cc.o.d"
  "libspider_debugger.a"
  "libspider_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
