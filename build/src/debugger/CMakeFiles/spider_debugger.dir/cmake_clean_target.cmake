file(REMOVE_RECURSE
  "libspider_debugger.a"
)
