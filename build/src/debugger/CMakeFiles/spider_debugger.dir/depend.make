# Empty dependencies file for spider_debugger.
# This may be replaced when dependencies are built.
