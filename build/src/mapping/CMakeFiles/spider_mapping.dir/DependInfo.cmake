
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/dependency.cc" "src/mapping/CMakeFiles/spider_mapping.dir/dependency.cc.o" "gcc" "src/mapping/CMakeFiles/spider_mapping.dir/dependency.cc.o.d"
  "/root/repo/src/mapping/parser.cc" "src/mapping/CMakeFiles/spider_mapping.dir/parser.cc.o" "gcc" "src/mapping/CMakeFiles/spider_mapping.dir/parser.cc.o.d"
  "/root/repo/src/mapping/schema_mapping.cc" "src/mapping/CMakeFiles/spider_mapping.dir/schema_mapping.cc.o" "gcc" "src/mapping/CMakeFiles/spider_mapping.dir/schema_mapping.cc.o.d"
  "/root/repo/src/mapping/writer.cc" "src/mapping/CMakeFiles/spider_mapping.dir/writer.cc.o" "gcc" "src/mapping/CMakeFiles/spider_mapping.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/spider_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/spider_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spider_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
