file(REMOVE_RECURSE
  "CMakeFiles/spider_mapping.dir/dependency.cc.o"
  "CMakeFiles/spider_mapping.dir/dependency.cc.o.d"
  "CMakeFiles/spider_mapping.dir/parser.cc.o"
  "CMakeFiles/spider_mapping.dir/parser.cc.o.d"
  "CMakeFiles/spider_mapping.dir/schema_mapping.cc.o"
  "CMakeFiles/spider_mapping.dir/schema_mapping.cc.o.d"
  "CMakeFiles/spider_mapping.dir/writer.cc.o"
  "CMakeFiles/spider_mapping.dir/writer.cc.o.d"
  "libspider_mapping.a"
  "libspider_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
