file(REMOVE_RECURSE
  "libspider_mapping.a"
)
