# Empty dependencies file for spider_mapping.
# This may be replaced when dependencies are built.
