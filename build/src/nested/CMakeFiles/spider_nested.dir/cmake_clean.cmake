file(REMOVE_RECURSE
  "CMakeFiles/spider_nested.dir/nested_schema.cc.o"
  "CMakeFiles/spider_nested.dir/nested_schema.cc.o.d"
  "CMakeFiles/spider_nested.dir/shredded_builder.cc.o"
  "CMakeFiles/spider_nested.dir/shredded_builder.cc.o.d"
  "libspider_nested.a"
  "libspider_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
