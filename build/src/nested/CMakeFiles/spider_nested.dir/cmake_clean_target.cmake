file(REMOVE_RECURSE
  "libspider_nested.a"
)
