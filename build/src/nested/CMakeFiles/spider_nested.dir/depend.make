# Empty dependencies file for spider_nested.
# This may be replaced when dependencies are built.
