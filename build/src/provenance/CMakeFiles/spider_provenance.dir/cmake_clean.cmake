file(REMOVE_RECURSE
  "CMakeFiles/spider_provenance.dir/annotated_chase.cc.o"
  "CMakeFiles/spider_provenance.dir/annotated_chase.cc.o.d"
  "CMakeFiles/spider_provenance.dir/exchange_player.cc.o"
  "CMakeFiles/spider_provenance.dir/exchange_player.cc.o.d"
  "CMakeFiles/spider_provenance.dir/explain.cc.o"
  "CMakeFiles/spider_provenance.dir/explain.cc.o.d"
  "libspider_provenance.a"
  "libspider_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
