file(REMOVE_RECURSE
  "libspider_provenance.a"
)
