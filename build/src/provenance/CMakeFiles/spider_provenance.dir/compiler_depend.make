# Empty compiler generated dependencies file for spider_provenance.
# This may be replaced when dependencies are built.
