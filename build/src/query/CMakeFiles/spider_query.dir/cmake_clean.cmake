file(REMOVE_RECURSE
  "CMakeFiles/spider_query.dir/binding.cc.o"
  "CMakeFiles/spider_query.dir/binding.cc.o.d"
  "CMakeFiles/spider_query.dir/evaluator.cc.o"
  "CMakeFiles/spider_query.dir/evaluator.cc.o.d"
  "CMakeFiles/spider_query.dir/term.cc.o"
  "CMakeFiles/spider_query.dir/term.cc.o.d"
  "libspider_query.a"
  "libspider_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
