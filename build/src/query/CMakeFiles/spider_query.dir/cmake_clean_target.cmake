file(REMOVE_RECURSE
  "libspider_query.a"
)
