# Empty compiler generated dependencies file for spider_query.
# This may be replaced when dependencies are built.
