
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routes/alternatives.cc" "src/routes/CMakeFiles/spider_routes.dir/alternatives.cc.o" "gcc" "src/routes/CMakeFiles/spider_routes.dir/alternatives.cc.o.d"
  "/root/repo/src/routes/fact_util.cc" "src/routes/CMakeFiles/spider_routes.dir/fact_util.cc.o" "gcc" "src/routes/CMakeFiles/spider_routes.dir/fact_util.cc.o.d"
  "/root/repo/src/routes/find_hom.cc" "src/routes/CMakeFiles/spider_routes.dir/find_hom.cc.o" "gcc" "src/routes/CMakeFiles/spider_routes.dir/find_hom.cc.o.d"
  "/root/repo/src/routes/naive_print.cc" "src/routes/CMakeFiles/spider_routes.dir/naive_print.cc.o" "gcc" "src/routes/CMakeFiles/spider_routes.dir/naive_print.cc.o.d"
  "/root/repo/src/routes/one_route.cc" "src/routes/CMakeFiles/spider_routes.dir/one_route.cc.o" "gcc" "src/routes/CMakeFiles/spider_routes.dir/one_route.cc.o.d"
  "/root/repo/src/routes/route.cc" "src/routes/CMakeFiles/spider_routes.dir/route.cc.o" "gcc" "src/routes/CMakeFiles/spider_routes.dir/route.cc.o.d"
  "/root/repo/src/routes/route_forest.cc" "src/routes/CMakeFiles/spider_routes.dir/route_forest.cc.o" "gcc" "src/routes/CMakeFiles/spider_routes.dir/route_forest.cc.o.d"
  "/root/repo/src/routes/source_routes.cc" "src/routes/CMakeFiles/spider_routes.dir/source_routes.cc.o" "gcc" "src/routes/CMakeFiles/spider_routes.dir/source_routes.cc.o.d"
  "/root/repo/src/routes/stratified.cc" "src/routes/CMakeFiles/spider_routes.dir/stratified.cc.o" "gcc" "src/routes/CMakeFiles/spider_routes.dir/stratified.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapping/CMakeFiles/spider_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/spider_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/spider_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/spider_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spider_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
