file(REMOVE_RECURSE
  "CMakeFiles/spider_routes.dir/alternatives.cc.o"
  "CMakeFiles/spider_routes.dir/alternatives.cc.o.d"
  "CMakeFiles/spider_routes.dir/fact_util.cc.o"
  "CMakeFiles/spider_routes.dir/fact_util.cc.o.d"
  "CMakeFiles/spider_routes.dir/find_hom.cc.o"
  "CMakeFiles/spider_routes.dir/find_hom.cc.o.d"
  "CMakeFiles/spider_routes.dir/naive_print.cc.o"
  "CMakeFiles/spider_routes.dir/naive_print.cc.o.d"
  "CMakeFiles/spider_routes.dir/one_route.cc.o"
  "CMakeFiles/spider_routes.dir/one_route.cc.o.d"
  "CMakeFiles/spider_routes.dir/route.cc.o"
  "CMakeFiles/spider_routes.dir/route.cc.o.d"
  "CMakeFiles/spider_routes.dir/route_forest.cc.o"
  "CMakeFiles/spider_routes.dir/route_forest.cc.o.d"
  "CMakeFiles/spider_routes.dir/source_routes.cc.o"
  "CMakeFiles/spider_routes.dir/source_routes.cc.o.d"
  "CMakeFiles/spider_routes.dir/stratified.cc.o"
  "CMakeFiles/spider_routes.dir/stratified.cc.o.d"
  "libspider_routes.a"
  "libspider_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
