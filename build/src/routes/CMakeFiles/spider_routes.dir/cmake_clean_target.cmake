file(REMOVE_RECURSE
  "libspider_routes.a"
)
