# Empty dependencies file for spider_routes.
# This may be replaced when dependencies are built.
