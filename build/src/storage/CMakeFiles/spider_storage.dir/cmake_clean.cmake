file(REMOVE_RECURSE
  "CMakeFiles/spider_storage.dir/csv.cc.o"
  "CMakeFiles/spider_storage.dir/csv.cc.o.d"
  "CMakeFiles/spider_storage.dir/instance.cc.o"
  "CMakeFiles/spider_storage.dir/instance.cc.o.d"
  "libspider_storage.a"
  "libspider_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
