file(REMOVE_RECURSE
  "libspider_storage.a"
)
