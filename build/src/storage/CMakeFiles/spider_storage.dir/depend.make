# Empty dependencies file for spider_storage.
# This may be replaced when dependencies are built.
