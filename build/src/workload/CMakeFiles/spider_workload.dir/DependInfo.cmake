
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/example_gen.cc" "src/workload/CMakeFiles/spider_workload.dir/example_gen.cc.o" "gcc" "src/workload/CMakeFiles/spider_workload.dir/example_gen.cc.o.d"
  "/root/repo/src/workload/hierarchy_scenario.cc" "src/workload/CMakeFiles/spider_workload.dir/hierarchy_scenario.cc.o" "gcc" "src/workload/CMakeFiles/spider_workload.dir/hierarchy_scenario.cc.o.d"
  "/root/repo/src/workload/real_scenarios.cc" "src/workload/CMakeFiles/spider_workload.dir/real_scenarios.cc.o" "gcc" "src/workload/CMakeFiles/spider_workload.dir/real_scenarios.cc.o.d"
  "/root/repo/src/workload/relational_scenario.cc" "src/workload/CMakeFiles/spider_workload.dir/relational_scenario.cc.o" "gcc" "src/workload/CMakeFiles/spider_workload.dir/relational_scenario.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/workload/CMakeFiles/spider_workload.dir/tpch.cc.o" "gcc" "src/workload/CMakeFiles/spider_workload.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapping/CMakeFiles/spider_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/spider_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/spider_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/spider_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spider_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
