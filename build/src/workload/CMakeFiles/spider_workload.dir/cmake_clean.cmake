file(REMOVE_RECURSE
  "CMakeFiles/spider_workload.dir/example_gen.cc.o"
  "CMakeFiles/spider_workload.dir/example_gen.cc.o.d"
  "CMakeFiles/spider_workload.dir/hierarchy_scenario.cc.o"
  "CMakeFiles/spider_workload.dir/hierarchy_scenario.cc.o.d"
  "CMakeFiles/spider_workload.dir/real_scenarios.cc.o"
  "CMakeFiles/spider_workload.dir/real_scenarios.cc.o.d"
  "CMakeFiles/spider_workload.dir/relational_scenario.cc.o"
  "CMakeFiles/spider_workload.dir/relational_scenario.cc.o.d"
  "CMakeFiles/spider_workload.dir/tpch.cc.o"
  "CMakeFiles/spider_workload.dir/tpch.cc.o.d"
  "libspider_workload.a"
  "libspider_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
