file(REMOVE_RECURSE
  "CMakeFiles/chase_test.dir/chase/certain_answers_test.cc.o"
  "CMakeFiles/chase_test.dir/chase/certain_answers_test.cc.o.d"
  "CMakeFiles/chase_test.dir/chase/chase_test.cc.o"
  "CMakeFiles/chase_test.dir/chase/chase_test.cc.o.d"
  "CMakeFiles/chase_test.dir/chase/core_test.cc.o"
  "CMakeFiles/chase_test.dir/chase/core_test.cc.o.d"
  "CMakeFiles/chase_test.dir/chase/homomorphism_test.cc.o"
  "CMakeFiles/chase_test.dir/chase/homomorphism_test.cc.o.d"
  "CMakeFiles/chase_test.dir/chase/weak_acyclicity_test.cc.o"
  "CMakeFiles/chase_test.dir/chase/weak_acyclicity_test.cc.o.d"
  "chase_test"
  "chase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
