file(REMOVE_RECURSE
  "CMakeFiles/debugger_test.dir/debugger/debugger_test.cc.o"
  "CMakeFiles/debugger_test.dir/debugger/debugger_test.cc.o.d"
  "CMakeFiles/debugger_test.dir/debugger/dot_export_test.cc.o"
  "CMakeFiles/debugger_test.dir/debugger/dot_export_test.cc.o.d"
  "CMakeFiles/debugger_test.dir/debugger/linter_test.cc.o"
  "CMakeFiles/debugger_test.dir/debugger/linter_test.cc.o.d"
  "CMakeFiles/debugger_test.dir/debugger/mapping_diff_test.cc.o"
  "CMakeFiles/debugger_test.dir/debugger/mapping_diff_test.cc.o.d"
  "CMakeFiles/debugger_test.dir/debugger/render_test.cc.o"
  "CMakeFiles/debugger_test.dir/debugger/render_test.cc.o.d"
  "CMakeFiles/debugger_test.dir/debugger/scenario_test.cc.o"
  "CMakeFiles/debugger_test.dir/debugger/scenario_test.cc.o.d"
  "debugger_test"
  "debugger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
