file(REMOVE_RECURSE
  "CMakeFiles/mapping_test.dir/mapping/dependency_test.cc.o"
  "CMakeFiles/mapping_test.dir/mapping/dependency_test.cc.o.d"
  "CMakeFiles/mapping_test.dir/mapping/parser_robustness_test.cc.o"
  "CMakeFiles/mapping_test.dir/mapping/parser_robustness_test.cc.o.d"
  "CMakeFiles/mapping_test.dir/mapping/parser_test.cc.o"
  "CMakeFiles/mapping_test.dir/mapping/parser_test.cc.o.d"
  "CMakeFiles/mapping_test.dir/mapping/writer_test.cc.o"
  "CMakeFiles/mapping_test.dir/mapping/writer_test.cc.o.d"
  "mapping_test"
  "mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
