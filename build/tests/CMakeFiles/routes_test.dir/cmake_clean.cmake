file(REMOVE_RECURSE
  "CMakeFiles/routes_test.dir/routes/all_routes_test.cc.o"
  "CMakeFiles/routes_test.dir/routes/all_routes_test.cc.o.d"
  "CMakeFiles/routes_test.dir/routes/alternatives_test.cc.o"
  "CMakeFiles/routes_test.dir/routes/alternatives_test.cc.o.d"
  "CMakeFiles/routes_test.dir/routes/find_hom_test.cc.o"
  "CMakeFiles/routes_test.dir/routes/find_hom_test.cc.o.d"
  "CMakeFiles/routes_test.dir/routes/one_route_test.cc.o"
  "CMakeFiles/routes_test.dir/routes/one_route_test.cc.o.d"
  "CMakeFiles/routes_test.dir/routes/route_test.cc.o"
  "CMakeFiles/routes_test.dir/routes/route_test.cc.o.d"
  "CMakeFiles/routes_test.dir/routes/source_routes_test.cc.o"
  "CMakeFiles/routes_test.dir/routes/source_routes_test.cc.o.d"
  "CMakeFiles/routes_test.dir/routes/stratified_test.cc.o"
  "CMakeFiles/routes_test.dir/routes/stratified_test.cc.o.d"
  "routes_test"
  "routes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
