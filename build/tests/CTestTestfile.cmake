# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(base_test "/root/repo/build/tests/base_test")
set_tests_properties(base_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;14;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(catalog_test "/root/repo/build/tests/catalog_test")
set_tests_properties(catalog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;15;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;16;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;19;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mapping_test "/root/repo/build/tests/mapping_test")
set_tests_properties(mapping_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;20;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(chase_test "/root/repo/build/tests/chase_test")
set_tests_properties(chase_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;25;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(debugger_test "/root/repo/build/tests/debugger_test")
set_tests_properties(debugger_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;31;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;38;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;41;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(routes_test "/root/repo/build/tests/routes_test")
set_tests_properties(routes_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;45;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nested_test "/root/repo/build/tests/nested_test")
set_tests_properties(nested_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;53;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(provenance_test "/root/repo/build/tests/provenance_test")
set_tests_properties(provenance_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;54;spider_add_test;/root/repo/tests/CMakeLists.txt;0;")
