// The paper's running example, end to end: Alice debugs the Manhattan
// Credit / Fargo Bank -> Fargo Finance mapping of Figures 1-2 through the
// three scenarios of §2.1 — an incorrect attribute correspondence, a
// missing join condition, and a missing association between relations.
//
//   $ ./credit_card_debugging
#include <iostream>

#include "debugger/debugger.h"
#include "mapping/parser.h"

namespace {

constexpr const char* kScenarioText = R"(
source schema {
  Cards(cardNo, limit, ssn, name, maidenName, salary, location);
  SupplementaryCards(accNo, ssn, name, address);
  FBAccounts(bankNo, ssn, name, income, address);
  CreditCards(cardNo, creditLimit, custSSN);
}
target schema {
  Accounts(accNo, limit, accHolder);
  Clients(ssn, name, maidenName, income, address);
}
m1: Cards(cn,l,s,n,m,sal,loc) ->
      exists A . Accounts(cn,l,s) & Clients(s,m,m,sal,A);
m2: SupplementaryCards(an,s,n,a) -> exists M, I . Clients(s,n,M,I,a);
m3: FBAccounts(bn,s,n,i,a) & CreditCards(cn,cl,cs) ->
      exists M . Accounts(cn,cl,cs) & Clients(cs,n,M,i,a);
m4: Accounts(a,l,s) -> exists N, M, I, A2 . Clients(s,N,M,I,A2);
m5: Clients(s,n,m,i,a) -> exists N, L . Accounts(N,L,s);
m6: Accounts(a,l,s) & Accounts(a2,l2,s) -> l = l2;

source instance {
  Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle");
  SupplementaryCards(6689, 234, "A. Long", "California");
  FBAccounts(1001, 234, "A. Long", "30K", "California");
  FBAccounts(4341, 153, "C. Don", "900K", "New York");
  CreditCards(2252, "2K", 234);
  CreditCards(5539, "40K", 153);
}
target instance {
  Accounts(6689, "15K", 434);
  Accounts(#N1, "2K", 234);
  Accounts(2252, "2K", 234);
  Accounts(5539, "40K", 153);
  Clients(434, "Smith", "Smith", "50K", #A1);
  Clients(234, "A. Long", #M1, #I1, "California");
  Clients(153, "A. Long", #M2, "30K", "California");
  Clients(234, "A. Long", #M3, "30K", "California");
  Clients(153, "C. Don", #M4, "900K", "New York");
  Clients(234, "C. Don", #M5, "900K", "New York");
}
)";

void Banner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

}  // namespace

int main() {
  using namespace spider;
  Scenario scenario = ParseScenario(kScenarioText);
  MappingDebugger debugger(&scenario);

  Banner("The schema mapping under debug");
  std::cout << scenario.mapping->ToString();

  // --- Scenario 1: why does t5 have a null address, and why does its name
  // equal its maiden name? ---
  Banner("Scenario 1: probe t5 = Clients(434, Smith, Smith, 50K, #A1)");
  FactRef t5 =
      debugger.TargetFact(R"(Clients(434, "Smith", "Smith", "50K", #A1))");
  OneRouteResult r5 = debugger.OneRoute({t5});
  std::cout << debugger.Render(r5.route)
            << "-> The route shows m1 copied neither the location (address "
               "is the\n   invented #A1) and mapped maidenName onto name: "
               "fix m1's\n   correspondences.\n";

  // --- Scenario 2: a credit limit above the income. The first route looks
  // fine; the SECOND reveals a join between unrelated customers. ---
  Banner("Scenario 2: probe t4 = Accounts(5539, 40K, 153), all routes");
  FactRef t4 = debugger.TargetFact(R"(Accounts(5539, "40K", 153))");
  auto en = debugger.EnumerateRoutes({t4});
  int shown = 0;
  while (auto route = en->Next()) {
    if (route->size() > 1) continue;  // direct witnesses first
    std::cout << "route " << ++shown << ":\n" << debugger.Render(*route);
  }
  std::cout << "-> Two m3 witnesses with DIFFERENT FBAccounts ssn values: "
               "m3 is\n   missing the join on ssn "
               "(FBAccounts.ssn = CreditCards.custSSN).\n";

  // --- Scenario 3: an account with an unknown number. ---
  Banner("Scenario 3: probe t2 = Accounts(#N1, 2K, 234)");
  FactRef t2 = debugger.TargetFact(R"(Accounts(#N1, "2K", 234))");
  OneRouteResult r2 = debugger.OneRoute({t2});
  std::cout << debugger.Render(r2.route)
            << "-> t2 exists only to satisfy m5 for the supplementary card "
               "holder;\n   m2 should join SupplementaryCards with Cards and "
               "emit the real\n   account number.\n";

  // Single-step the scenario-3 route with a breakpoint on m5, watching the
  // partial target instance grow.
  Banner("Stepping the route with a breakpoint on m5");
  debugger.SetBreakpoint("m5");
  RoutePlayer player = debugger.Play(r2.route);
  player.RunToBreakpoint();
  std::cout << player.Watch();
  player.Step();
  std::cout << "--- after stepping over the breakpoint ---\n"
            << player.Watch();
  return 0;
}
