// Quickstart: define a schema mapping and test data in the scenario
// language, chase the source into a target solution, then ask the debugger
// for routes that explain where a target fact came from.
//
//   $ ./quickstart
#include <iostream>

#include "chase/chase.h"
#include "debugger/debugger.h"
#include "mapping/parser.h"

int main() {
  using namespace spider;

  // 1. A schema mapping: employees are split into persons and salaries; a
  //    target tgd requires every salaried id to be a person.
  Scenario scenario = ParseScenario(R"(
    source schema {
      Emp(id, name, salary, dept);
    }
    target schema {
      Person(id, name);
      Salary(id, amount);
    }
    m1: Emp(i, n, s, d) -> Person(i, n) & Salary(i, s);
    f1: Salary(i, a) -> exists N . Person(i, N);

    source instance {
      Emp(1, "Ada", 120, "eng");
      Emp(2, "Grace", 130, "eng");
    }
  )");

  // 2. Materialize a solution with the chase (any solution works — the
  //    debugger is engine-agnostic).
  ChaseScenario(&scenario);
  std::cout << "=== solution J ===\n" << scenario.target->ToString() << "\n";

  // 3. Probe a target fact: why is Salary(2, 130) here?
  MappingDebugger debugger(&scenario);
  FactRef fact = debugger.TargetFact("Salary(2, 130)");
  OneRouteResult result = debugger.OneRoute({fact});
  std::cout << "=== one route for Salary(2, 130) ===\n"
            << debugger.Render(result.route) << "\n";

  // 4. All routes, as the paper's route forest.
  RouteForest forest = debugger.AllRoutes({fact});
  std::cout << "=== route forest ===\n" << debugger.Render(forest);
  return 0;
}
