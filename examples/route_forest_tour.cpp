// A tour of the route forest on the paper's Example 3.5 / Figure 5: the
// sigma1..sigma10 mapping whose forest for T7(a) exhibits shared subtrees,
// multiple witnesses, and the difference between ComputeAllRoutes and
// ComputeOneRoute.
//
//   $ ./route_forest_tour
#include <iostream>

#include "debugger/debugger.h"
#include "mapping/parser.h"
#include "routes/naive_print.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "routes/stratified.h"

int main() {
  using namespace spider;
  // The extended variant (dotted branches of Fig. 5): sigma9 : S3 -> T5 and
  // sigma10 : T5 & T8 -> T3, with two T8 tuples.
  Scenario scenario = ParseScenario(R"(
    source schema { S1(a); S2(a); S3(a); }
    target schema { T1(a); T2(a); T3(a); T4(a); T5(a); T6(a); T7(a); T8(a); }
    sigma1: S1(x) -> T1(x);
    sigma2: S2(x) -> T2(x);
    sigma7: T5(x) -> T3(x);
    sigma3: T2(x) -> T3(x);
    sigma4: T3(x) -> T4(x);
    sigma5: T4(x) & T1(x) -> T5(x);
    sigma6: T4(x) & T6(x) -> T7(x);
    sigma8: T5(x) -> T6(x);
    sigma9: S3(x) -> T5(x);
    sigma10: T5(x) & T8(y) -> T3(x);
    source instance { S1("a"); S2("a"); S3("a"); }
    target instance {
      T1("a"); T2("a"); T3("a"); T4("a"); T5("a"); T6("a"); T7("a");
      T8("b1"); T8("b2");
    }
  )");
  MappingDebugger debugger(&scenario);
  FactRef t7 = debugger.TargetFact(R"(T7("a"))");

  std::cout << "==== ComputeAllRoutes: the route forest for T7(a) ====\n";
  RouteForest forest = debugger.AllRoutes({t7});
  std::cout << debugger.Render(forest);
  std::cout << "nodes: " << forest.NumNodes()
            << ", branches: " << forest.NumBranches()
            << ", findHom calls: " << forest.stats().findhom_calls << "\n";

  std::cout << "\n==== NaivePrint: routes represented by the forest ====\n";
  NaivePrintResult printed = NaivePrint(&forest, {t7});
  for (size_t i = 0; i < printed.routes.size(); ++i) {
    std::cout << "route " << (i + 1) << ": "
              << printed.routes[i].TgdNames(*scenario.mapping) << '\n';
  }

  std::cout << "\n==== ComputeOneRoute: one route, fast ====\n";
  OneRouteResult one = debugger.OneRoute({t7});
  std::cout << one.route.TgdNames(*scenario.mapping) << '\n'
            << "(findHom calls: " << one.stats.findhom_calls
            << " — compare with the forest's " << forest.stats().findhom_calls
            << ")\n";

  std::cout << "\n==== Minimal route and stratified interpretation ====\n";
  Route minimal = one.route.Minimize(*scenario.mapping, *scenario.source,
                                     *scenario.target, {t7});
  std::cout << "minimal: " << minimal.TgdNames(*scenario.mapping) << '\n';
  StratifiedInterpretation strat = Stratify(
      minimal, *scenario.mapping, *scenario.source, *scenario.target);
  std::cout << "strat:   " << strat.ToString(*scenario.mapping) << '\n';

  std::cout << "\n==== Alternative routes on demand ====\n";
  auto en = debugger.EnumerateRoutes({t7});
  size_t count = 0;
  while (auto route = en->Next()) {
    std::cout << "alternative " << ++count << ": "
              << route->TgdNames(*scenario.mapping) << '\n';
    if (count == 5) break;
  }
  return 0;
}
