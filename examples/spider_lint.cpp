// spider_lint — static semantic analysis of a scenario's schema mapping.
//
// Runs the spider::analysis passes (shape, coverage, termination,
// subsumption, egd interaction) over the dependencies of a scenario file
// and prints the diagnostics with source positions, compiler style:
//
//   $ ./spider_lint scenario.txt
//   12:7: warning: [shape/dropped-variable] tgd 'm1': LHS variable 'loc'
//   never reaches the RHS (source data dropped?)
//       hint: map 'loc' to a target attribute, ...
//
// Options:
//   --json            emit a JSON array instead of text
//   --fast            structural passes only (no frozen-LHS chases)
//   --min-cover       redundancy minimization with certificate routes
//   --reachability    static route-reachability prediction per position
//   --against OLD     diff-lint: only findings changed vs OLD's mapping,
//                     plus the containment verdict between the versions
//   --max-steps N     step budget per frozen-LHS chase (default 100000)
//   --trace[=FILE]    record a Chrome trace of the run (Perfetto)
//   --metrics[=FILE]  dump the metrics registry as JSON
//   -                 read the scenario from stdin
//
// Exit status: 0 = no findings, 1 = findings, 2 = usage or parse error.
// With --against: 0 = no delta, 1 = delta.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/diff_lint.h"
#include "base/status.h"
#include "mapping/parser.h"
#include "obs/obs_cli.h"

namespace {

int Usage() {
  std::cerr << "usage: spider_lint [--json] [--fast] [--min-cover] "
               "[--reachability] [--against OLD] [--max-steps N] "
               "scenario.txt|-\n"
            << spider::obs::ObsFlagsHelp();
  return 2;
}

std::string ReadInput(const std::string& path, bool* ok) {
  *ok = true;
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "spider_lint: cannot open " << path << '\n';
      *ok = false;
      return "";
    }
    buffer << in.rdbuf();
  }
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  spider::AnalysisOptions options;
  std::string path;
  std::string against_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) {
      continue;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fast") {
      options.termination = true;
      options.subsumption = false;
      options.egd_interaction = false;
    } else if (arg == "--min-cover") {
      options.min_cover = true;
    } else if (arg == "--reachability") {
      options.reachability = true;
    } else if (arg == "--against") {
      if (++i == argc) return Usage();
      against_path = argv[i];
    } else if (arg == "--max-steps") {
      if (++i == argc) return Usage();
      options.chase_max_steps = std::strtoull(argv[i], nullptr, 10);
    } else if (!path.empty()) {
      return Usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Usage();

  bool ok = false;
  std::string text = ReadInput(path, &ok);
  if (!ok) return 2;

  try {
    spider::Scenario scenario = spider::ParseScenario(text);

    if (!against_path.empty()) {
      std::string old_text = ReadInput(against_path, &ok);
      if (!ok) return 2;
      spider::Scenario old_scenario = spider::ParseScenario(old_text);
      spider::DiffLintOptions diff_options;
      diff_options.analysis = options;
      spider::DiffLintReport diff = spider::DiffLint(
          *old_scenario.mapping, *scenario.mapping, diff_options);
      std::cout << diff.Summary();
      spider::obs::FlushObsOutputs();
      return diff.Clean() ? 0 : 1;
    }

    spider::AnalysisReport report =
        spider::AnalyzeMapping(*scenario.mapping, options);
    std::cout << (json ? spider::DiagnosticsToJson(report.diagnostics)
                       : spider::RenderDiagnostics(report.diagnostics));
    if (!json) {
      if (report.reachability != nullptr) {
        std::cout << "reachability:\n"
                  << report.reachability->Summary(scenario.mapping->target());
      }
      if (report.min_cover != nullptr) {
        std::cout << report.min_cover->Summary(*scenario.mapping);
      }
    }
    spider::obs::FlushObsOutputs();
    return report.diagnostics.empty() ? 0 : 1;
  } catch (const spider::SpiderError& e) {
    std::cerr << "spider_lint: " << e.what() << '\n';
    spider::obs::FlushObsOutputs();
    return 2;
  }
}
