// spider_lint — static semantic analysis of a scenario's schema mapping.
//
// Runs the spider::analysis passes (shape, coverage, termination,
// subsumption, egd interaction) over the dependencies of a scenario file
// and prints the diagnostics with source positions, compiler style:
//
//   $ ./spider_lint scenario.txt
//   12:7: warning: [shape/dropped-variable] tgd 'm1': LHS variable 'loc'
//   never reaches the RHS (source data dropped?)
//       hint: map 'loc' to a target attribute, ...
//
// Options:
//   --json            emit a JSON array instead of text
//   --fast            structural passes only (no frozen-LHS chases)
//   --max-steps N     step budget per frozen-LHS chase (default 100000)
//   --trace[=FILE]    record a Chrome trace of the run (Perfetto)
//   --metrics[=FILE]  dump the metrics registry as JSON
//   -                 read the scenario from stdin
//
// Exit status: 0 = no findings, 1 = findings, 2 = usage or parse error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "base/status.h"
#include "mapping/parser.h"
#include "obs/obs_cli.h"

namespace {

int Usage() {
  std::cerr << "usage: spider_lint [--json] [--fast] [--max-steps N] "
               "scenario.txt|-\n"
            << spider::obs::ObsFlagsHelp();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  spider::AnalysisOptions options;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) {
      continue;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fast") {
      options.termination = true;
      options.subsumption = false;
      options.egd_interaction = false;
    } else if (arg == "--max-steps") {
      if (++i == argc) return Usage();
      options.chase_max_steps = std::strtoull(argv[i], nullptr, 10);
    } else if (!path.empty()) {
      return Usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Usage();

  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "spider_lint: cannot open " << path << '\n';
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  try {
    spider::Scenario scenario = spider::ParseScenario(text);
    spider::AnalysisReport report =
        spider::AnalyzeMapping(*scenario.mapping, options);
    std::cout << (json ? spider::DiagnosticsToJson(report.diagnostics)
                       : spider::RenderDiagnostics(report.diagnostics));
    spider::obs::FlushObsOutputs();
    return report.diagnostics.empty() ? 0 : 1;
  } catch (const spider::SpiderError& e) {
    std::cerr << "spider_lint: " << e.what() << '\n';
    spider::obs::FlushObsOutputs();
    return 2;
  }
}
