// spider_lint — static semantic analysis of a scenario's schema mapping.
//
// Runs the spider::analysis passes (shape, coverage, termination,
// subsumption, egd interaction) over the dependencies of a scenario file
// and prints the diagnostics with source positions, compiler style:
//
//   $ ./spider_lint scenario.txt
//   12:7: warning: [shape/dropped-variable] tgd 'm1': LHS variable 'loc'
//   never reaches the RHS (source data dropped?)
//       hint: map 'loc' to a target attribute, ...
//
// Options:
//   --json            emit a JSON array instead of text
//   --fast            structural passes only (no frozen-LHS chases)
//   --min-cover       redundancy minimization with certificate routes
//   --reachability    static route-reachability prediction per position
//   --against OLD     diff-lint: only findings changed vs OLD's mapping,
//                     plus the containment verdict between the versions
//   --compose NEXT    compose the scenario's mapping (S->T) with NEXT's
//                     mapping (T->U) and print the S->U result or why the
//                     composition is inexpressible
//   --invert          build the reverse candidate, chase the round trip and
//                     classify the recovery (exact/complete/sound/none)
//   --core            chase the scenario and minimize the solution to its
//                     homomorphic core
//   --max-steps N     step budget per frozen-LHS chase (default 100000)
//   --trace[=FILE]    record a Chrome trace of the run (Perfetto)
//   --metrics[=FILE]  dump the metrics registry as JSON
//   -                 read the scenario from stdin
//
// Exit status: 0 = no findings, 1 = findings, 2 = usage or parse error.
// With --against: 0 = no delta, 1 = delta. With --compose: 0 = composed,
// 1 = not expressible. With --invert: 0 = some recovery, 1 = none.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "algebra/compose.h"
#include "algebra/core_min.h"
#include "algebra/invert.h"
#include "analysis/analyzer.h"
#include "analysis/diff_lint.h"
#include "base/status.h"
#include "chase/chase.h"
#include "mapping/parser.h"
#include "obs/obs_cli.h"

namespace {

int Usage() {
  std::cerr << "usage: spider_lint [--json] [--fast] [--min-cover] "
               "[--reachability] [--against OLD] [--compose NEXT] "
               "[--invert] [--core] [--max-steps N] scenario.txt|-\n"
            << spider::obs::ObsFlagsHelp();
  return 2;
}

std::string ReadInput(const std::string& path, bool* ok) {
  *ok = true;
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "spider_lint: cannot open " << path << '\n';
      *ok = false;
      return "";
    }
    buffer << in.rdbuf();
  }
  return buffer.str();
}

/// The one loading path for every scenario file spider_lint reads (the main
/// argument, --against OLD, --compose NEXT): reads the file and parses it,
/// rethrowing parse errors with the file name prefixed so multi-file
/// invocations say which input is bad ("<path>: parse error at line L:C").
spider::Scenario LoadScenarioFile(const std::string& path, bool* ok) {
  std::string text = ReadInput(path, ok);
  if (!*ok) return {};
  try {
    return spider::ParseScenario(text);
  } catch (const spider::SpiderError& e) {
    throw spider::SpiderError((path == "-" ? "<stdin>" : path) + ": " +
                              e.what());
  }
}

size_t CountFacts(const spider::Instance& instance) {
  size_t n = 0;
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    n += instance.tuples(static_cast<spider::RelationId>(r)).size();
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool invert = false;
  bool core = false;
  spider::AnalysisOptions options;
  std::string path;
  std::string against_path;
  std::string compose_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) {
      continue;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fast") {
      options.termination = true;
      options.subsumption = false;
      options.egd_interaction = false;
    } else if (arg == "--min-cover") {
      options.min_cover = true;
    } else if (arg == "--reachability") {
      options.reachability = true;
    } else if (arg == "--against") {
      if (++i == argc) return Usage();
      against_path = argv[i];
    } else if (arg == "--compose") {
      if (++i == argc) return Usage();
      compose_path = argv[i];
    } else if (arg == "--invert") {
      invert = true;
    } else if (arg == "--core") {
      core = true;
    } else if (arg == "--max-steps") {
      if (++i == argc) return Usage();
      options.chase_max_steps = std::strtoull(argv[i], nullptr, 10);
    } else if (!path.empty()) {
      return Usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Usage();

  try {
    bool ok = false;
    spider::Scenario scenario = LoadScenarioFile(path, &ok);
    if (!ok) return 2;

    if (!compose_path.empty()) {
      spider::Scenario next = LoadScenarioFile(compose_path, &ok);
      if (!ok) return 2;
      spider::ComposeResult composed =
          spider::ComposeMappings(*scenario.mapping, *next.mapping);
      std::cout << composed.Summary();
      spider::obs::FlushObsOutputs();
      return composed.status == spider::ComposeStatus::kComposed ? 0 : 1;
    }

    if (invert) {
      spider::InversionReport report =
          spider::InvertMapping(*scenario.mapping);
      std::cout << report.Summary();
      spider::obs::FlushObsOutputs();
      bool recovered =
          report.verdict == spider::InverseVerdict::kExactRecovery ||
          report.verdict == spider::InverseVerdict::kCompleteRecovery ||
          report.verdict == spider::InverseVerdict::kSoundRecovery;
      return recovered ? 0 : 1;
    }

    if (core) {
      spider::ChaseScenario(&scenario);
      size_t before = CountFacts(*scenario.target);
      spider::CoreMinimizationResult minimized =
          spider::MinimizeTargetToCore(&scenario);
      std::cout << "core: " << before << " -> " << CountFacts(*scenario.target)
                << " facts (" << minimized.facts_removed << " folded, "
                << minimized.nulls_collapsed << " nulls collapsed"
                << (minimized.complete ? "" : ", budget exhausted") << ")\n"
                << scenario.target->ToString();
      spider::obs::FlushObsOutputs();
      return 0;
    }

    if (!against_path.empty()) {
      spider::Scenario old_scenario = LoadScenarioFile(against_path, &ok);
      if (!ok) return 2;
      spider::DiffLintOptions diff_options;
      diff_options.analysis = options;
      spider::DiffLintReport diff = spider::DiffLint(
          *old_scenario.mapping, *scenario.mapping, diff_options);
      std::cout << diff.Summary();
      spider::obs::FlushObsOutputs();
      return diff.Clean() ? 0 : 1;
    }

    spider::AnalysisReport report =
        spider::AnalyzeMapping(*scenario.mapping, options);
    std::cout << (json ? spider::DiagnosticsToJson(report.diagnostics)
                       : spider::RenderDiagnostics(report.diagnostics));
    if (!json) {
      if (report.reachability != nullptr) {
        std::cout << "reachability:\n"
                  << report.reachability->Summary(scenario.mapping->target());
      }
      if (report.min_cover != nullptr) {
        std::cout << report.min_cover->Summary(*scenario.mapping);
      }
    }
    spider::obs::FlushObsOutputs();
    return report.diagnostics.empty() ? 0 : 1;
  } catch (const spider::SpiderError& e) {
    std::cerr << "spider_lint: " << e.what() << '\n';
    spider::obs::FlushObsOutputs();
    return 2;
  }
}
