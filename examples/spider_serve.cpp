// spider_serve — the schema-mapping debug service. Serves DebugSession
// instances over the length-prefixed binary protocol of src/serve/, with a
// shared route/forest cache and a shared bounded plan cache across
// sessions.
//
//   $ ./spider_serve --port 7070 --threads 4
//   spider_serve listening on 127.0.0.1:7070 (4 worker threads)
//
// Flags:
//   --port N              listen port (0 = ephemeral, printed at startup)
//   --bind ADDR           bind address (default 127.0.0.1)
//   --threads N           exec pool size; 0 = hardware_concurrency,
//                         1 = handle requests on the loop thread
//   --max-sessions N      admission-control session cap (default 128)
//   --session-budget-mb N per-session memory budget (default 64)
//   --total-budget-mb N   all-sessions memory budget (default 1024)
//   --shared-cache-mb N   shared route/forest cache budget (default 64)
//   --plan-cache-mb N     shared plan cache budget (default 8)
//   --idle-timeout-s N    reap sessions idle this long; 0 = never
//   --default-deadline-ms N  deadline stamped on requests that carry
//                         none; 0 = requests without a deadline never
//                         expire (default 0)
//   --max-conn-out-bytes N   per-connection write-backlog soft cap: a
//                         connection whose unflushed output crosses it
//                         stops being read until it drains; 4x this is
//                         the hard cap where the connection is dropped
//                         (default 4 MiB)
//   plus the shared observability flags (--trace / --metrics).
#include <time.h>

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "exec/exec_options.h"
#include "exec/thread_pool.h"
#include "obs/obs_cli.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

bool ParseIntFlag(const std::string& arg, const std::string& name,
                  long* out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::strtol(arg.c_str() + prefix.size(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  spider::serve::ServerOptions options;
  long threads = 1;
  long idle_timeout_s = 300;
  std::string prev_flag;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag=V` and `--flag V`.
    if (!prev_flag.empty()) {
      arg = "--" + prev_flag + "=" + arg;
      prev_flag.clear();
    } else if (arg.rfind("--", 0) == 0 && arg.find('=') == std::string::npos &&
               arg != "--help" && i + 1 < argc) {
      prev_flag = arg.substr(2);
      continue;
    }
    long value = 0;
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (ParseIntFlag(arg, "port", &value)) {
      options.port = static_cast<uint16_t>(value);
    } else if (arg.rfind("--bind=", 0) == 0) {
      options.bind_address = arg.substr(7);
    } else if (ParseIntFlag(arg, "threads", &value)) {
      threads = value;
    } else if (ParseIntFlag(arg, "max-sessions", &value)) {
      options.manager.max_sessions = static_cast<size_t>(value);
    } else if (ParseIntFlag(arg, "session-budget-mb", &value)) {
      options.manager.session_budget_bytes = static_cast<size_t>(value) << 20;
    } else if (ParseIntFlag(arg, "total-budget-mb", &value)) {
      options.manager.total_budget_bytes = static_cast<size_t>(value) << 20;
    } else if (ParseIntFlag(arg, "shared-cache-mb", &value)) {
      options.manager.shared_route_cache_bytes =
          static_cast<size_t>(value) << 20;
    } else if (ParseIntFlag(arg, "plan-cache-mb", &value)) {
      options.manager.plan_cache_bytes = static_cast<size_t>(value) << 20;
    } else if (ParseIntFlag(arg, "idle-timeout-s", &value)) {
      idle_timeout_s = value;
    } else if (ParseIntFlag(arg, "default-deadline-ms", &value)) {
      options.default_deadline_ms = static_cast<uint64_t>(value);
    } else if (ParseIntFlag(arg, "max-conn-out-bytes", &value)) {
      options.max_conn_out_bytes = static_cast<size_t>(value);
    } else {
      std::cerr << "usage: spider_serve [--port N] [--bind ADDR] "
                   "[--threads N]\n"
                   "  [--max-sessions N] [--session-budget-mb N] "
                   "[--total-budget-mb N]\n"
                   "  [--shared-cache-mb N] [--plan-cache-mb N] "
                   "[--idle-timeout-s N]\n"
                   "  [--default-deadline-ms N] [--max-conn-out-bytes N]\n  "
                << spider::obs::ObsFlagsHelp() << "\n";
      return arg == "--help" ? 0 : 2;
    }
  }
  options.manager.idle_timeout_ms =
      idle_timeout_s <= 0 ? 0 : static_cast<uint64_t>(idle_timeout_s) * 1000;

  spider::ExecOptions exec;
  exec.num_threads = static_cast<int>(threads);
  spider::ThreadPool* pool = spider::ThreadPool::For(exec);
  options.pool = pool;  // nullptr when threads resolve to 1: inline mode.

  spider::serve::Server server(options);
  try {
    server.Start();
  } catch (const std::exception& e) {
    std::cerr << "spider_serve: " << e.what() << "\n";
    return 1;
  }
  std::cout << "spider_serve listening on " << options.bind_address << ":"
            << server.port() << " ("
            << (pool ? std::to_string(pool->num_threads()) + " worker threads"
                     : std::string("inline handling"))
            << ")\n"
            << std::flush;

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::cout << "spider_serve: shutting down\n";
  server.Stop();
  spider::obs::FlushObsOutputs();
  return 0;
}
