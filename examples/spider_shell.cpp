// spider_shell — an interactive (or scripted) command-line front end for
// the schema-mapping debugger, in the spirit of the SPIDER prototype's
// visual interface. Reads a scenario file, then executes commands from
// stdin; run `help` (or see below) for the command list.
//
//   $ ./spider_shell scenario.txt
//   spider> chase
//   spider> probe Accounts(#N1, "2K", 234)
//   spider> next
//   spider> quit
//
// Non-interactive use:  echo 'chase
//   probe T(1, 3)
//   strat' | ./spider_shell scenario.txt
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "chase/chase.h"
#include "chase/core.h"
#include "chase/solution_check.h"
#include "chase/weak_acyclicity.h"
#include "debugger/debugger.h"
#include "debugger/dot_export.h"
#include "debugger/linter.h"
#include "debugger/mapping_diff.h"
#include "mapping/parser.h"
#include "mapping/writer.h"
#include "obs/obs_cli.h"
#include "storage/csv.h"
#include "provenance/annotated_chase.h"
#include "provenance/exchange_player.h"
#include "provenance/explain.h"
#include "routes/stratified.h"
#include "workload/example_gen.h"
#include "workload/real_scenarios.h"

namespace {

using namespace spider;

constexpr const char* kHelp = R"(commands:
  chase                 materialize the target instance with the chase
  gen [rows]            synthesize an illustrative source instance
                        (one LHS match per s-t tgd), then chase
  mapping               print the schema mapping
  stats                 schema/instance statistics
  check                 verify that (I, J) satisfies the mapping
  wacheck               test weak acyclicity of the target tgds
  source | target       print an instance
  probe <fact>          one route for a target fact, e.g. probe T(1, 2)
  all <fact>            the route forest (all routes) for a target fact
  next                  next alternative route for the last probed fact
  strat                 stratified interpretation of the last route
  minimize              minimize the last route
  explain <fact>        egd-aware extended route (eager provenance)
  why <fact>            why-provenance (source facts) of a target fact
  consequences <fact>   forward consequences of a SOURCE fact
  break <tgd>           toggle a breakpoint on a tgd
  play                  step through the last route (honors breakpoints)
  playchase             step through the whole exchange (watch J grow)
  core                  report which target facts are redundant (core)
  lint                  static checks for common mapping bugs
  dot <file>            write the last 'all' forest as Graphviz
  save <file>           serialize the scenario (schemas+deps+instances)
  loadcsv <rel> <file>  load CSV rows into a SOURCE relation
  help                  this text
  quit                  exit
)";

class Shell {
 public:
  explicit Shell(Scenario scenario) : scenario_(std::move(scenario)) {}

  int Run() {
    std::string line;
    while (Prompt(), std::getline(std::cin, line)) {
      std::istringstream in(line);
      std::string command;
      if (!(in >> command)) continue;
      std::string rest;
      std::getline(in, rest);
      while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      try {
        if (!Dispatch(command, rest)) return 0;
      } catch (const SpiderError& e) {
        std::cout << "error: " << e.what() << '\n';
      }
    }
    return 0;
  }

 private:
  void Prompt() {
    std::cout << "spider> " << std::flush;
  }

  MappingDebugger& Debugger() {
    if (debugger_ == nullptr) {
      debugger_ = std::make_unique<MappingDebugger>(&scenario_);
    }
    return *debugger_;
  }

  void InvalidateDebugger() {
    debugger_.reset();
    enumerator_.reset();
    last_forest_.reset();
    last_route_.reset();
    last_facts_.clear();
    annotated_.reset();
  }

  bool Dispatch(const std::string& command, const std::string& rest) {
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      std::cout << kHelp;
    } else if (command == "chase") {
      ChaseStats stats = ChaseScenario(&scenario_);
      InvalidateDebugger();
      std::cout << "chased: " << scenario_.target->TotalTuples()
                << " target facts (" << stats.st_steps << " s-t steps, "
                << stats.target_steps << " target steps, " << stats.egd_steps
                << " egd unifications)\n";
    } else if (command == "gen") {
      ExampleGenOptions options;
      if (!rest.empty()) options.rows_per_tgd = std::stoi(rest);
      size_t n = GenerateIllustrativeSource(&scenario_, options);
      ChaseScenario(&scenario_);
      InvalidateDebugger();
      std::cout << "generated " << n << " source facts; chased to "
                << scenario_.target->TotalTuples() << " target facts\n";
    } else if (command == "mapping") {
      std::cout << scenario_.mapping->ToString();
    } else if (command == "stats") {
      ScenarioStats stats = ComputeStats(scenario_);
      std::cout << "source: " << stats.source_elements << " schema elements, "
                << stats.source_tuples << " facts\n"
                << "target: " << stats.target_elements << " schema elements, "
                << stats.target_tuples << " facts\n"
                << "dependencies: " << stats.st_tgds << " s-t tgds, "
                << stats.target_tgds << " target tgds, " << stats.egds
                << " egds\n";
    } else if (command == "check") {
      std::string why;
      if (IsSolution(*scenario_.mapping, *scenario_.source, *scenario_.target,
                     &why)) {
        std::cout << "J is a solution for I\n";
      } else {
        std::cout << "NOT a solution: " << why << '\n';
      }
    } else if (command == "wacheck") {
      std::string why;
      if (IsWeaklyAcyclic(*scenario_.mapping, &why)) {
        std::cout << "target tgds are weakly acyclic (chase terminates)\n";
      } else {
        std::cout << "not weakly acyclic: " << why << '\n';
      }
    } else if (command == "source") {
      std::cout << RenderInstance(*scenario_.source,
                                  Debugger().render_context());
    } else if (command == "target") {
      std::cout << RenderInstance(*scenario_.target,
                                  Debugger().render_context());
    } else if (command == "probe") {
      FactRef fact = Debugger().TargetFact(rest);
      OneRouteResult result = Debugger().OneRoute({fact});
      if (!result.found) {
        std::cout << "no route exists for this fact\n";
      } else {
        std::cout << Debugger().Render(result.route);
        last_route_ = result.route;
        last_facts_ = {fact};
        enumerator_.reset();
      }
    } else if (command == "all") {
      FactRef fact = Debugger().TargetFact(rest);
      last_forest_ = std::make_unique<RouteForest>(
          Debugger().AllRoutes({fact}));
      std::cout << Debugger().Render(*last_forest_)
                << "(" << last_forest_->NumNodes() << " nodes, "
                << last_forest_->NumBranches() << " branches)\n";
      last_facts_ = {fact};
    } else if (command == "dot") {
      if (last_forest_ == nullptr) {
        std::cout << "run 'all <fact>' first\n";
        return true;
      }
      std::ofstream out(rest);
      if (!out) {
        std::cout << "cannot write " << rest << '\n';
        return true;
      }
      out << RouteForestToDot(*last_forest_, Debugger().render_context());
      std::cout << "wrote " << rest << " (render with: dot -Tsvg " << rest
                << ")\n";
    } else if (command == "loadcsv") {
      std::istringstream args(rest);
      std::string relation, path;
      if (!(args >> relation >> path)) {
        std::cout << "usage: loadcsv <relation> <file>\n";
        return true;
      }
      std::ifstream in(path);
      if (!in) {
        std::cout << "cannot open " << path << '\n';
        return true;
      }
      size_t n = LoadCsv(in, relation, scenario_.source.get());
      InvalidateDebugger();
      std::cout << "loaded " << n << " rows into " << relation
                << " (re-run chase to refresh J)\n";
    } else if (command == "save") {
      std::ofstream out(rest);
      if (!out) {
        std::cout << "cannot write " << rest << '\n';
        return true;
      }
      out << WriteScenario(scenario_);
      std::cout << "wrote " << rest << '\n';
    } else if (command == "lint") {
      std::cout << RenderLintFindings(LintMapping(*scenario_.mapping));
    } else if (command == "core") {
      CoreResult core = ComputeCore(*scenario_.target);
      std::cout << (core.complete ? "core computed: " : "partial core: ")
                << scenario_.target->TotalTuples() << " -> "
                << core.core->TotalTuples() << " facts ("
                << core.facts_removed << " redundant)\n";
    } else if (command == "playchase") {
      if (annotated_ == nullptr) {
        annotated_ = std::make_unique<AnnotatedChaseResult>(
            AnnotatedChase(*scenario_.mapping, *scenario_.source));
      }
      ExchangePlayer player(&annotated_->log, scenario_.mapping.get());
      for (TgdId bp : Debugger().breakpoints()) player.SetBreakpoint(bp);
      while (true) {
        bool at_breakpoint = player.RunToBreakpoint();
        std::cout << player.Watch();
        if (!at_breakpoint) break;
        std::cout << "-- breakpoint; stepping over --\n";
        player.Step();
      }
    } else if (command == "next") {
      if (last_facts_.empty()) {
        std::cout << "probe a fact first\n";
        return true;
      }
      if (enumerator_ == nullptr) {
        enumerator_ = Debugger().EnumerateRoutes(last_facts_);
      }
      if (auto route = enumerator_->Next()) {
        std::cout << Debugger().Render(*route);
        last_route_ = *route;
      } else {
        std::cout << "no more routes\n";
      }
    } else if (command == "strat") {
      if (!RequireRoute()) return true;
      StratifiedInterpretation strat =
          Stratify(*last_route_, *scenario_.mapping, *scenario_.source,
                   *scenario_.target);
      std::cout << RenderStratified(strat, Debugger().render_context());
    } else if (command == "minimize") {
      if (!RequireRoute()) return true;
      *last_route_ = last_route_->Minimize(*scenario_.mapping,
                                           *scenario_.source,
                                           *scenario_.target, last_facts_);
      std::cout << Debugger().Render(*last_route_);
    } else if (command == "explain" || command == "why") {
      if (annotated_ == nullptr) {
        annotated_ = std::make_unique<AnnotatedChaseResult>(
            AnnotatedChase(*scenario_.mapping, *scenario_.source));
        if (annotated_->outcome != AnnotatedChaseOutcome::kSuccess) {
          std::cout << "annotated chase failed: "
                    << annotated_->failure_message << '\n';
          annotated_.reset();
          return true;
        }
      }
      std::string relation;
      Tuple tuple = ParseFactText(rest, &relation, {});
      auto id = annotated_->log.Find(
          scenario_.mapping->target().Require(relation), tuple);
      if (!id.has_value()) {
        std::cout << "fact not found in the (re-chased) solution; note that "
                     "explain works on chase-invented nulls (#N<k>)\n";
        return true;
      }
      if (command == "explain") {
        ExtendedRoute route =
            ExplainFact(annotated_->log, *id, *scenario_.mapping);
        std::cout << route.ToString(*scenario_.mapping);
      } else {
        for (const FactRef& f : WhyProvenance(annotated_->log, *id)) {
          std::cout << "  " << Debugger().RenderFactRef(f) << '\n';
        }
      }
    } else if (command == "consequences") {
      FactRef fact = Debugger().SourceFact(rest);
      std::cout << Debugger().Render(Debugger().SourceConsequences({fact}));
    } else if (command == "break") {
      if (Debugger().breakpoints().count(
              scenario_.mapping->FindTgd(rest)) > 0) {
        Debugger().ClearBreakpoint(rest);
        std::cout << "breakpoint cleared on " << rest << '\n';
      } else {
        Debugger().SetBreakpoint(rest);
        std::cout << "breakpoint set on " << rest << '\n';
      }
    } else if (command == "play") {
      if (!RequireRoute()) return true;
      RoutePlayer player = Debugger().Play(*last_route_);
      while (true) {
        bool at_breakpoint = player.RunToBreakpoint();
        std::cout << player.Watch();
        if (!at_breakpoint) break;
        std::cout << "-- breakpoint; stepping over --\n";
        player.Step();
      }
    } else {
      std::cout << "unknown command '" << command << "' (try: help)\n";
    }
    return true;
  }

  bool RequireRoute() {
    if (!last_route_.has_value()) {
      std::cout << "probe a fact first\n";
      return false;
    }
    return true;
  }

  Scenario scenario_;
  std::unique_ptr<MappingDebugger> debugger_;
  std::unique_ptr<RouteEnumerator> enumerator_;
  std::unique_ptr<AnnotatedChaseResult> annotated_;
  std::unique_ptr<RouteForest> last_forest_;
  std::optional<Route> last_route_;
  std::vector<FactRef> last_facts_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (spider::obs::HandleObsFlag(arg)) continue;
    if (!path.empty()) {
      std::cerr << "usage: spider_shell [obs flags] <scenario-file>\n"
                << spider::obs::ObsFlagsHelp();
      return 1;
    }
    path = arg;
  }
  if (path.empty()) {
    std::cerr << "usage: spider_shell [obs flags] <scenario-file>\n"
              << spider::obs::ObsFlagsHelp();
    return 1;
  }
  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  std::stringstream text;
  text << file.rdbuf();
  try {
    Scenario scenario = ParseScenario(text.str());
    std::cout << "loaded " << path << ": "
              << scenario.mapping->NumTgds() << " tgds, "
              << scenario.mapping->NumEgds() << " egds, "
              << scenario.source->TotalTuples() << " source facts, "
              << scenario.target->TotalTuples() << " target facts\n";
    int status = Shell(std::move(scenario)).Run();
    spider::obs::FlushObsOutputs();
    return status;
  } catch (const spider::SpiderError& e) {
    std::cerr << "error: " << e.what() << '\n';
    spider::obs::FlushObsOutputs();
    return 1;
  }
}
