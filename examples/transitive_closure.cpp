// Routes vs. why-provenance (§5.1 of the paper): for recursive mappings,
// source-only provenance ("t3 came from s1 and s2") hides the intermediate
// derivation; a route shows the full chain of satisfaction steps, including
// the target tuples it passes through.
//
//   $ ./transitive_closure
#include <iostream>

#include "chase/chase.h"
#include "debugger/debugger.h"
#include "mapping/parser.h"
#include "routes/fact_util.h"
#include "routes/stratified.h"

int main() {
  using namespace spider;
  Scenario scenario = ParseScenario(R"(
    source schema { S(x, y); }
    target schema { T(x, y); }
    sigma1: S(x,y) -> T(x,y);
    sigma2: T(x,y) & T(y,z) -> T(x,z);
    source instance { S(1,2); S(2,3); S(3,4); }
  )");
  ChaseScenario(&scenario);  // J = transitive closure of S
  MappingDebugger debugger(&scenario);

  std::cout << "J = chase(I):\n" << scenario.target->ToString() << '\n';

  // Why is T(1,4) in the target? Why-provenance would answer: because of
  // {S(1,2), S(2,3), S(3,4)}. The route also shows HOW:
  FactRef t14 = debugger.TargetFact("T(1, 4)");
  OneRouteResult result = debugger.OneRoute({t14});
  std::cout << "route for T(1, 4):\n" << debugger.Render(result.route);

  // The stratified interpretation groups the steps by rank — the base
  // copies at rank 1, the closure steps above them.
  StratifiedInterpretation strat = Stratify(
      result.route, *scenario.mapping, *scenario.source, *scenario.target);
  std::cout << "\nstratified: " << strat.ToString(*scenario.mapping) << '\n';

  // The source tuples involved (the classical why-provenance) are just the
  // source facts of the route's s-t steps:
  std::cout << "\nwhy-provenance (source facts used):\n";
  for (const SatStep& step : result.route.steps()) {
    if (!scenario.mapping->tgd(step.tgd).source_to_target()) continue;
    for (const FactRef& f :
         LhsFacts(*scenario.mapping, step.tgd, step.h, *scenario.source,
                  *scenario.target)) {
      std::cout << "  " << debugger.RenderFactRef(f) << '\n';
    }
  }

  // Forward direction: what does S(2,3) contribute to?
  FactRef s23 = debugger.SourceFact("S(2, 3)");
  std::cout << "\nconsequences of S(2, 3) alone:\n"
            << debugger.Render(debugger.SourceConsequences({s23}));
  return 0;
}
