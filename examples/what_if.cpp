// What-if analysis (§2.1's future-work item): after the debugger pinpoints
// the bug, preview how the proposed fix changes the solution BEFORE
// committing to it — chase under the old and new mapping and diff.
//
// This walks Scenario 1's fix: m1 mapped maidenName onto name and dropped
// the location; the corrected m1 copies name from name and address from
// location.
//
//   $ ./what_if
#include <iostream>

#include "chase/chase.h"
#include "chase/core.h"
#include "debugger/mapping_diff.h"
#include "mapping/parser.h"

namespace {

constexpr const char* kSchemas = R"(
source schema {
  Cards(cardNo, limit, ssn, name, maidenName, salary, location);
}
target schema {
  Accounts(accNo, limit, accHolder);
  Clients(ssn, name, maidenName, income, address);
}
)";

constexpr const char* kData = R"(
source instance {
  Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle");
  Cards(7012, "25K", 517, "B. Short", "Jones", "80K", "Boston");
}
)";

}  // namespace

int main() {
  using namespace spider;
  Scenario before = ParseScenario(
      std::string(kSchemas) +
      R"(m1: Cards(cn,l,s,n,m,sal,loc) ->
             exists A . Accounts(cn,l,s) & Clients(s,m,m,sal,A);)" + kData);
  Scenario after = ParseScenario(
      std::string(kSchemas) +
      R"(m1: Cards(cn,l,s,n,m,sal,loc) ->
             Accounts(cn,l,s) & Clients(s,n,m,sal,loc);)" + kData);

  std::cout << "=== What changes if we apply the Scenario-1 fix? ===\n";
  MappingDiffReport report = DiffMappings(*before.mapping, *before.source,
                                          *after.mapping, *after.source);
  std::cout << report.ToString();

  // As a bonus, the core tells us the before-solution carried no redundant
  // facts (the nulls were load-bearing) — the fix replaces them rather
  // than pruning them.
  ChaseResult chased = Chase(*before.mapping, *before.source);
  CoreResult core = ComputeCore(*chased.target);
  std::cout << "\nredundant facts in the pre-fix solution: "
            << core.facts_removed << '\n';
  return 0;
}
