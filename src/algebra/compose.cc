#include "algebra/compose.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spider {

const char* ComposeStatusName(ComposeStatus status) {
  switch (status) {
    case ComposeStatus::kComposed: return "composed";
    case ComposeStatus::kInexpressible: return "inexpressible";
    case ComposeStatus::kSchemaMismatch: return "schema-mismatch";
    case ComposeStatus::kCoverLimit: return "cover-limit";
  }
  return "unknown";
}

namespace {

/// An M_st RHS atom that can stand for one T-atom of an M_tu premise.
struct Candidate {
  TgdId sigma = -1;
  size_t rhs_idx = 0;
};

/// Disjoint sets over the cover's variable universe (τ's variables first,
/// then each copy's block), with the constant each class is pinned to.
/// Union/Assign return false when two distinct constants meet — the cover
/// is then statically dead: no match can ever instantiate it.
class Unifier {
 public:
  explicit Unifier(size_t n) : parent_(n), constant_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }

  int Find(int v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (constant_[a].has_value() && constant_[b].has_value() &&
        !(*constant_[a] == *constant_[b])) {
      return false;
    }
    if (!constant_[a].has_value()) std::swap(a, b);
    parent_[b] = a;
    return true;
  }

  bool Assign(int v, const Value& c) {
    v = Find(v);
    if (constant_[v].has_value()) return *constant_[v] == c;
    constant_[v] = c;
    return true;
  }

  const std::optional<Value>& ConstantOf(int v) {
    return constant_[Find(v)];
  }

 private:
  std::vector<int> parent_;
  std::vector<std::optional<Value>> constant_;
};

/// One composed tgd waiting for the global export-safety verdict.
struct PendingTgd {
  std::string name;
  std::vector<std::string> var_names;
  std::vector<Atom> lhs;
  std::vector<Atom> rhs;
  ComposedTgdOrigin origin;
  std::string canonical_key;
  /// (M_st tgd, existential VarId, canonical position) of every exported
  /// existential.
  std::vector<std::pair<std::pair<TgdId, VarId>, int>> exports;
};

/// Identity-preserving canonical form: atoms with variables renumbered by
/// first occurrence, so structurally equal covers dedup regardless of how
/// the unifier numbered their classes.
std::string CanonicalKey(const std::vector<Atom>& lhs,
                         const std::vector<Atom>& rhs,
                         std::unordered_map<VarId, int>* renumber) {
  std::string key;
  auto emit = [&](const std::vector<Atom>& atoms) {
    for (const Atom& atom : atoms) {
      key += 'R';
      key += std::to_string(atom.relation);
      key += '(';
      for (const Term& term : atom.terms) {
        if (term.is_var()) {
          auto it = renumber
                        ->emplace(term.var(),
                                  static_cast<int>(renumber->size()))
                        .first;
          key += 'v';
          key += std::to_string(it->second);
        } else {
          key += 'c';
          key += term.value().ToString();
        }
        key += ',';
      }
      key += ')';
    }
  };
  emit(lhs);
  key += "->";
  emit(rhs);
  return key;
}

/// Builds the composed tgds for one M_tu s-t tgd by enumerating unfolding
/// covers: each premise atom picks an (M_st tgd copy, RHS atom); copies may
/// be shared between atoms, so matches where several premise atoms read the
/// same M_st firing are represented too.
class TgdComposer {
 public:
  TgdComposer(const SchemaMapping& m_st, const SchemaMapping& m_tu,
              TgdId tau_id, const std::vector<std::vector<Candidate>>& cands,
              const ComposeOptions& options, ComposeResult* result,
              std::vector<PendingTgd>* pending)
      : m_st_(m_st),
        m_tu_(m_tu),
        tau_id_(tau_id),
        tau_(m_tu.tgd(tau_id)),
        cands_(cands),
        options_(options),
        result_(result),
        pending_(pending) {
    rhs_vars_.resize(tau_.num_vars(), false);
    for (const Atom& atom : tau_.rhs()) {
      for (const Term& term : atom.terms) {
        if (term.is_var()) rhs_vars_[term.var()] = true;
      }
    }
  }

  /// Returns false when composition must stop (limit hit or inexpressible
  /// under require_membership_exact); the failure is recorded in *result_.
  bool Run() { return Enumerate(0); }

 private:
  bool Enumerate(size_t atom_idx) {
    if (atom_idx == tau_.lhs().size()) return ProcessCover();
    RelationId st_rel = StRelation(tau_.lhs()[atom_idx].relation);
    if (st_rel == kInvalidRelation) return true;  // Unwritable: vacuous.
    // Reuse an already-open copy (same-firing match) ...
    for (size_t ci = 0; ci < copies_.size(); ++ci) {
      const Tgd& sigma = m_st_.tgd(copies_[ci]);
      for (size_t r = 0; r < sigma.rhs().size(); ++r) {
        if (sigma.rhs()[r].relation != st_rel) continue;
        assignment_.push_back({ci, r});
        if (!Enumerate(atom_idx + 1)) return false;
        assignment_.pop_back();
      }
    }
    // ... or open a fresh copy for any candidate.
    for (const Candidate& cand : cands_[st_rel]) {
      copies_.push_back(cand.sigma);
      assignment_.push_back({copies_.size() - 1, cand.rhs_idx});
      if (!Enumerate(atom_idx + 1)) return false;
      assignment_.pop_back();
      copies_.pop_back();
    }
    return true;
  }

  /// T-relation of the τ premise atom translated into M_st's target schema.
  RelationId StRelation(RelationId tu_source_rel) const {
    const RelationDef& def = m_tu_.source().relation(tu_source_rel);
    return m_st_.target().Find(def.name());
  }

  bool ProcessCover() {
    ThrowIfCancelled(options_.cancel);
    if (++result_->covers_enumerated > options_.max_covers_per_tgd) {
      result_->status = ComposeStatus::kCoverLimit;
      result_->offending = tau_.name();
      result_->reason = "cover enumeration for tgd '" + tau_.name() +
                        "' exceeded max_covers_per_tgd (" +
                        std::to_string(options_.max_covers_per_tgd) + ")";
      return false;
    }

    // Variable universe: τ's block, then one block per copy.
    std::vector<size_t> offset(copies_.size());
    size_t total = tau_.num_vars();
    for (size_t ci = 0; ci < copies_.size(); ++ci) {
      offset[ci] = total;
      total += m_st_.tgd(copies_[ci]).num_vars();
    }
    Unifier uf(total);
    for (size_t j = 0; j < tau_.lhs().size(); ++j) {
      const Atom& premise = tau_.lhs()[j];
      auto [ci, r] = assignment_[j];
      const Atom& conclusion = m_st_.tgd(copies_[ci]).rhs()[r];
      for (size_t p = 0; p < premise.terms.size(); ++p) {
        const Term& tt = premise.terms[p];
        const Term& ts = conclusion.terms[p];
        bool ok;
        if (tt.is_var() && ts.is_var()) {
          ok = uf.Union(tt.var(),
                        static_cast<int>(offset[ci]) + ts.var());
        } else if (tt.is_var()) {
          ok = uf.Assign(tt.var(), ts.value());
        } else if (ts.is_var()) {
          ok = uf.Assign(static_cast<int>(offset[ci]) + ts.var(),
                         tt.value());
        } else {
          ok = tt.value() == ts.value();
        }
        if (!ok) {
          ++result_->covers_skipped_dead;
          return true;
        }
      }
    }

    // Class analysis: find each class's members and vet the existentials.
    struct ClassInfo {
      std::vector<VarId> tau_vars;
      std::vector<std::pair<size_t, VarId>> copy_universals;
      std::vector<std::pair<size_t, VarId>> copy_existentials;
    };
    std::map<int, ClassInfo> classes;
    for (VarId v = 0; v < static_cast<VarId>(tau_.num_vars()); ++v) {
      classes[uf.Find(v)].tau_vars.push_back(v);
    }
    for (size_t ci = 0; ci < copies_.size(); ++ci) {
      const Tgd& sigma = m_st_.tgd(copies_[ci]);
      for (VarId v = 0; v < static_cast<VarId>(sigma.num_vars()); ++v) {
        int root = uf.Find(static_cast<int>(offset[ci]) + v);
        if (sigma.IsUniversal(v)) {
          classes[root].copy_universals.push_back({ci, v});
        } else {
          classes[root].copy_existentials.push_back({ci, v});
        }
      }
    }

    // (class root -> export source) for classes that re-quantify an M_st
    // existential in the composed conclusion.
    std::map<int, std::pair<size_t, VarId>> export_of;
    for (const auto& [root, info] : classes) {
      if (info.copy_existentials.empty()) continue;
      bool exported = false;
      for (VarId v : info.tau_vars) {
        if (rhs_vars_[v]) exported = true;
      }
      bool collapse = uf.ConstantOf(root).has_value() ||
                      !info.copy_universals.empty() ||
                      info.copy_existentials.size() > 1;
      if (collapse) {
        ++result_->covers_skipped_collapse;
        result_->membership_exact = false;
        if (options_.require_membership_exact) {
          result_->status = ComposeStatus::kInexpressible;
          result_->offending = tau_.name();
          result_->reason =
              "unfolding tgd '" + tau_.name() + "' through '" +
              m_st_.tgd(copies_[info.copy_existentials[0].first]).name() +
              "' constrains an invented value; expressing that requires "
              "second-order (Skolem) tgds";
          return false;
        }
        return true;  // Skip: never realized on canonical solutions.
      }
      if (exported) {
        export_of[root] = info.copy_existentials[0];
      }
    }

    return EmitTgd(uf, offset, export_of);
  }

  bool EmitTgd(Unifier& uf, const std::vector<size_t>& offset,
               const std::map<int, std::pair<size_t, VarId>>& export_of) {
    PendingTgd out;
    out.origin.tu_tgd = tau_id_;
    for (TgdId sigma : copies_) out.origin.st_tgds.push_back(sigma);

    std::map<int, VarId> class_var;
    std::unordered_set<std::string> used_names;
    auto var_of = [&](int universe_var, const std::string& preferred) {
      int root = uf.Find(universe_var);
      auto it = class_var.find(root);
      if (it != class_var.end()) return it->second;
      VarId v = static_cast<VarId>(out.var_names.size());
      std::string name = preferred;
      int suffix = 2;
      while (!used_names.insert(name).second) {
        name = preferred + "_" + std::to_string(suffix++);
      }
      out.var_names.push_back(std::move(name));
      class_var.emplace(root, v);
      return v;
    };
    auto term_of = [&](int universe_var, const std::string& preferred) {
      const std::optional<Value>& c = uf.ConstantOf(universe_var);
      if (c.has_value()) return Term::Const(*c);
      return Term::Var(var_of(universe_var, preferred));
    };

    // Premise: the union of every copy's premise over S.
    for (size_t ci = 0; ci < copies_.size(); ++ci) {
      const Tgd& sigma = m_st_.tgd(copies_[ci]);
      for (const Atom& atom : sigma.lhs()) {
        Atom composed;
        composed.relation = atom.relation;
        for (const Term& term : atom.terms) {
          if (term.is_var()) {
            composed.terms.push_back(
                term_of(static_cast<int>(offset[ci]) + term.var(),
                        sigma.var_names()[term.var()]));
          } else {
            composed.terms.push_back(term);
          }
        }
        out.lhs.push_back(std::move(composed));
      }
    }
    // Conclusion: τ's conclusion over U, with classes substituted.
    for (const Atom& atom : tau_.rhs()) {
      Atom composed;
      composed.relation = atom.relation;
      for (const Term& term : atom.terms) {
        if (term.is_var()) {
          composed.terms.push_back(
              term_of(term.var(), tau_.var_names()[term.var()]));
        } else {
          composed.terms.push_back(term);
        }
      }
      out.rhs.push_back(std::move(composed));
    }

    // Trigger determinism: an exported existential is re-quantifiable only
    // when the exporting copy's trigger determines the whole firing — every
    // universal class of the composed tgd must share a variable with that
    // copy. Otherwise two firings over one M_st trigger would need to
    // produce the same invented value: a Skolem function of the copy's
    // universals, not expressible as an s-t tgd.
    if (!export_of.empty()) {
      std::set<int> universal_roots;
      for (size_t ci = 0; ci < copies_.size(); ++ci) {
        const Tgd& sigma = m_st_.tgd(copies_[ci]);
        for (const Atom& atom : sigma.lhs()) {
          for (const Term& term : atom.terms) {
            if (!term.is_var()) continue;
            int root = uf.Find(static_cast<int>(offset[ci]) + term.var());
            if (!uf.ConstantOf(root).has_value()) {
              universal_roots.insert(root);
            }
          }
        }
      }
      for (const auto& [root, source] : export_of) {
        size_t export_ci = source.first;
        const Tgd& sigma = m_st_.tgd(copies_[export_ci]);
        for (int uroot : universal_roots) {
          bool covered = false;
          for (VarId v = 0; v < static_cast<VarId>(sigma.num_vars()); ++v) {
            if (!sigma.IsUniversal(v)) continue;
            if (uf.Find(static_cast<int>(offset[export_ci]) + v) == uroot) {
              covered = true;
              break;
            }
          }
          if (!covered) {
            result_->status = ComposeStatus::kInexpressible;
            result_->offending = sigma.name();
            result_->reason =
                "existential '" +
                sigma.var_names()[source.second] + "' of tgd '" +
                sigma.name() + "' is exported by the unfolding of '" +
                tau_.name() +
                "' but the firing is not determined by that tgd's trigger; "
                "sharing the invented value across firings requires a "
                "second-order (Skolem) tgd";
            return false;
          }
        }
      }
    }

    std::unordered_map<VarId, int> renumber;
    out.canonical_key = CanonicalKey(out.lhs, out.rhs, &renumber);
    for (const auto& [root, source] : export_of) {
      VarId v = class_var.at(root);
      auto it = renumber.find(v);
      int pos = it == renumber.end() ? -1 : it->second;
      out.exports.push_back(
          {{copies_[source.first], source.second}, pos});
    }

    std::string name = tau_.name();
    for (TgdId sigma : copies_) name += "*" + m_st_.tgd(sigma).name();
    out.name = std::move(name);
    pending_->push_back(std::move(out));
    return true;
  }

  const SchemaMapping& m_st_;
  const SchemaMapping& m_tu_;
  TgdId tau_id_;
  const Tgd& tau_;
  const std::vector<std::vector<Candidate>>& cands_;
  const ComposeOptions& options_;
  ComposeResult* result_;
  std::vector<PendingTgd>* pending_;

  std::vector<bool> rhs_vars_;  ///< τ variables used in τ's conclusion.
  std::vector<TgdId> copies_;
  std::vector<std::pair<size_t, size_t>> assignment_;  ///< (copy, rhs atom).
};

}  // namespace

std::string ComposeResult::Summary() const {
  std::string out;
  out += "compose: ";
  out += ComposeStatusName(status);
  out += "\n";
  if (!reason.empty()) out += "  reason: " + reason + "\n";
  if (!offending.empty()) out += "  offending: " + offending + "\n";
  out += "  covers: " + std::to_string(covers_enumerated) + " enumerated, " +
         std::to_string(covers_skipped_dead) + " dead, " +
         std::to_string(covers_skipped_collapse) + " collapsed, " +
         std::to_string(duplicates_merged) + " duplicates\n";
  out += std::string("  membership_exact: ") +
         (membership_exact ? "true" : "false") + "\n";
  if (mapping != nullptr) {
    out += "  composed dependencies (" +
           std::to_string(mapping->NumTgds()) + " tgds, " +
           std::to_string(mapping->NumEgds()) + " egds):\n";
    std::string deps = mapping->ToString();
    size_t start = 0;
    while (start < deps.size()) {
      size_t end = deps.find('\n', start);
      if (end == std::string::npos) end = deps.size();
      out += "    " + deps.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  return out;
}

ComposeResult ComposeMappings(const SchemaMapping& m_st,
                              const SchemaMapping& m_tu,
                              const ComposeOptions& options) {
  obs::TraceSpan span("algebra", "compose");
  ComposeResult result;

  // Unfolding replaces every T-atom by M_st premises, which is only sound
  // when M_st itself adds nothing on top of its s-t tgds.
  if (!m_tu.st_tgds().empty() &&
      (!m_st.target_tgds().empty() || m_st.NumEgds() > 0)) {
    result.status = ComposeStatus::kInexpressible;
    result.offending = !m_st.target_tgds().empty()
                           ? m_st.tgd(m_st.target_tgds().front()).name()
                           : m_st.egd(0).name();
    result.reason =
        "M_st has target dependencies; unfolding T-atoms through its s-t "
        "tgds would miss facts they derive";
    return result;
  }
  // The intermediate schemas must agree where they overlap; a same-named
  // relation with a different arity can never be matched.
  for (const RelationDef& def : m_tu.source().relations()) {
    RelationId st_rel = m_st.target().Find(def.name());
    if (st_rel == kInvalidRelation) continue;  // Unwritable: τ is vacuous.
    if (m_st.target().relation(st_rel).arity() != def.arity()) {
      result.status = ComposeStatus::kSchemaMismatch;
      result.reason = "relation '" + def.name() +
                      "' has arity " + std::to_string(def.arity()) +
                      " in M_tu's source but arity " +
                      std::to_string(m_st.target().relation(st_rel).arity()) +
                      " in M_st's target";
      return result;
    }
  }

  // Candidate (σ, RHS atom) pairs per M_st target relation.
  std::vector<std::vector<Candidate>> cands(m_st.target().size());
  for (TgdId sigma : m_st.st_tgds()) {
    const Tgd& tgd = m_st.tgd(sigma);
    for (size_t r = 0; r < tgd.rhs().size(); ++r) {
      cands[tgd.rhs()[r].relation].push_back({sigma, r});
    }
  }

  result.status = ComposeStatus::kComposed;
  std::vector<PendingTgd> pending;
  for (TgdId tau : m_tu.st_tgds()) {
    TgdComposer composer(m_st, m_tu, tau, cands, options, &result, &pending);
    if (!composer.Run()) {
      if (obs::MetricsEnabled()) {
        obs::Registry::Global()
            .GetCounter("algebra.compose_failed")
            ->Increment();
      }
      return result;
    }
  }

  // Global export safety: one M_st existential may be re-quantified in at
  // most one composed context, else two composed tgds would both have to
  // invent the same null for one M_st firing.
  std::map<std::pair<TgdId, VarId>, std::set<std::pair<std::string, int>>>
      export_contexts;
  for (const PendingTgd& tgd : pending) {
    for (const auto& [source, pos] : tgd.exports) {
      export_contexts[source].insert({tgd.canonical_key, pos});
    }
  }
  for (const auto& [source, contexts] : export_contexts) {
    if (contexts.size() <= 1) continue;
    const Tgd& sigma = m_st.tgd(source.first);
    result.status = ComposeStatus::kInexpressible;
    result.offending = sigma.name();
    result.reason =
        "existential '" + sigma.var_names()[source.second] + "' of tgd '" +
        sigma.name() + "' is exported by " +
        std::to_string(contexts.size()) +
        " distinct composed tgds, which would have to share one invented "
        "value per firing; that is a Skolem function, not an s-t tgd";
    result.mapping = nullptr;
    return result;
  }

  // Materialize: dedup structurally equal unfoldings, keep origins aligned.
  auto mapping = std::make_unique<SchemaMapping>(Schema(m_st.source()),
                                                 Schema(m_tu.target()));
  std::set<std::string> seen;
  for (PendingTgd& tgd : pending) {
    if (!seen.insert(tgd.canonical_key).second) {
      ++result.duplicates_merged;
      continue;
    }
    mapping->AddTgd(Tgd(tgd.name, std::move(tgd.var_names),
                        std::move(tgd.lhs), std::move(tgd.rhs),
                        /*source_to_target=*/true));
    result.origins.push_back(std::move(tgd.origin));
  }
  // M_tu's target dependencies constrain U only; they carry over verbatim
  // (the composed target schema is a copy of M_tu's, ids included).
  for (TgdId id : m_tu.target_tgds()) {
    const Tgd& tgd = m_tu.tgd(id);
    mapping->AddTgd(Tgd(tgd.name(), tgd.var_names(), tgd.lhs(), tgd.rhs(),
                        /*source_to_target=*/false));
  }
  for (EgdId id = 0; id < static_cast<EgdId>(m_tu.NumEgds()); ++id) {
    const Egd& egd = m_tu.egd(id);
    mapping->AddEgd(Egd(egd.name(), egd.var_names(), egd.lhs(), egd.left(),
                        egd.right()));
  }
  result.mapping = std::move(mapping);

  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("algebra.compose_calls")->Increment();
    registry.GetCounter("algebra.compose_covers")
        ->Add(result.covers_enumerated);
    registry.GetCounter("algebra.compose_tgds")
        ->Add(result.origins.size());
  }
  return result;
}

}  // namespace spider
