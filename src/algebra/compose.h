#ifndef SPIDER_ALGEBRA_COMPOSE_H_
#define SPIDER_ALGEBRA_COMPOSE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/cancel.h"
#include "mapping/schema_mapping.h"

namespace spider {

/// Outcome of ComposeMappings.
enum class ComposeStatus {
  kComposed,        ///< The composition is expressible; `mapping` is set.
  kInexpressible,   ///< s-t tgds cannot express it (see reason/offending).
  kSchemaMismatch,  ///< M_st's target and M_tu's source schemas differ.
  kCoverLimit,      ///< max_covers_per_tgd exhausted before enumeration done.
};

const char* ComposeStatusName(ComposeStatus status);

/// Provenance of one composed s-t tgd, parallel to
/// ComposeResult::mapping->st_tgds(): the M_tu tgd whose T-atoms were
/// unfolded and the M_st tgds used by each copy, in copy order. Route
/// stitching uses this to explain which original dependencies a composed
/// step stands for.
struct ComposedTgdOrigin {
  TgdId tu_tgd = -1;
  std::vector<TgdId> st_tgds;
};

struct ComposeOptions {
  /// Cap on unfolding covers enumerated per M_tu tgd (the enumeration is
  /// exponential in the tgd's atom count). Hitting the cap yields
  /// kCoverLimit rather than a silently incomplete mapping.
  size_t max_covers_per_tgd = 4096;

  /// Compose for exact membership semantics [Fagin–Kolaitis–Popa–Tan]: any
  /// unfolding cover that would force a constraint on an M_st existential
  /// (equality with a constant, a universal, or another existential) makes
  /// the whole composition kInexpressible, because only second-order tgds
  /// can state the conditional requirement. The default (false) skips such
  /// covers and records membership_exact = false instead: the composed
  /// mapping is then still exact for canonical universal solutions —
  /// chase_composed(I) is homomorphically equivalent to
  /// chase_tu(chase_st(I)) for every I — which is the semantics the
  /// debugger's routes live in.
  bool require_membership_exact = false;

  /// Polled once per cover; throws CancelledError when flipped.
  const CancelToken* cancel = nullptr;
};

struct ComposeResult {
  ComposeStatus status = ComposeStatus::kInexpressible;

  /// The composed S→U mapping (on kComposed): every unfolding of an M_tu
  /// s-t tgd through M_st's RHSs, deduplicated up to variable renaming,
  /// plus M_tu's target dependencies carried over verbatim.
  std::unique_ptr<SchemaMapping> mapping;
  /// Parallel to mapping->st_tgds().
  std::vector<ComposedTgdOrigin> origins;

  /// Human explanation when status != kComposed.
  std::string reason;
  /// Name of the offending dependency (the M_tu tgd whose unfolding needs
  /// second-order features, or the M_st target dependency blocking
  /// unfolding). Empty when not applicable.
  std::string offending;

  /// True when the composed mapping also captures the FKPT membership
  /// relation exactly; false when collapse covers were skipped (the result
  /// is then exact for canonical universal solutions only).
  bool membership_exact = true;

  size_t covers_enumerated = 0;
  size_t covers_skipped_dead = 0;      ///< Distinct constants clashed.
  size_t covers_skipped_collapse = 0;  ///< Existential forced non-generic.
  size_t duplicates_merged = 0;

  /// Deterministic multi-line rendering: status, stats, and the composed
  /// dependencies (when any).
  std::string Summary() const;
};

/// Composes two consecutive schema mappings M_st : S→T and M_tu : T→U into
/// one S→U mapping whose s-t tgds are the unfoldings of M_tu's premises
/// through M_st's conclusions [Fagin–Kolaitis–Popa–Tan "Composing schema
/// mappings", Arenas et al. "Composition and inversion of schema mappings"].
///
/// Each T-atom of an M_tu tgd is matched against an RHS atom of an M_st tgd
/// copy (copies may be shared between atoms to capture same-firing matches),
/// the overlapping terms are unified, and the union of the copies' premises
/// becomes the composed premise. An M_st existential that survives into the
/// composed conclusion is re-quantified as a fresh existential only when the
/// firing is trigger-deterministic (every universal of the composed tgd is
/// equated with a universal of the exporting copy) and the export is unique
/// across the whole composition; otherwise distinct firings would have to
/// share one invented null — a Skolem function, i.e. a second-order tgd —
/// and the result is kInexpressible with the offending dependency named.
/// M_st target dependencies also make unfolding unsound and are reported
/// the same way; M_tu target dependencies (over U) carry over unchanged.
ComposeResult ComposeMappings(const SchemaMapping& m_st,
                              const SchemaMapping& m_tu,
                              const ComposeOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ALGEBRA_COMPOSE_H_
