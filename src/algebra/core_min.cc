#include "algebra/core_min.h"

#include <optional>
#include <utility>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spider {

namespace {

Value RemapValue(const Value& v, const InstanceHom& retraction) {
  if (!v.is_null()) return v;
  auto it = retraction.find(v.AsNull().id);
  return it == retraction.end() ? v : it->second;
}

}  // namespace

Binding RemapBinding(const Binding& binding, const InstanceHom& retraction) {
  Binding out(binding.size());
  for (VarId v = 0; v < static_cast<VarId>(binding.size()); ++v) {
    if (binding.IsBound(v)) {
      out.Set(v, RemapValue(binding.Get(v), retraction));
    }
  }
  return out;
}

CoreMinimizationResult MinimizeTargetToCore(
    Scenario* scenario, const std::vector<TrackedRoute>& routes,
    const CoreMinimizationOptions& options) {
  obs::TraceSpan span("algebra", "core_min");
  SPIDER_CHECK(scenario != nullptr && scenario->target != nullptr,
               "MinimizeTargetToCore needs a chased scenario");

  CoreRetractionOptions core_options;
  core_options.eval = options.eval;
  core_options.max_hom_tests = options.max_hom_tests;
  core_options.cancel = options.cancel;
  // Nulls the source instance can see must survive pointwise: a route step
  // may bind them from source facts, and folding them away would change
  // what the debugger shows for the unchanged source.
  for (size_t r = 0; r < scenario->source->NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (const Tuple& t : scenario->source->tuples(rel)) {
      for (const Value& v : t.values()) {
        if (v.is_null()) core_options.rigid_nulls.insert(v.AsNull().id);
      }
    }
  }

  CoreRetractionResult retracted =
      ComputeCoreRetraction(*scenario->target, core_options);

  CoreMinimizationResult result;
  result.facts_removed = retracted.facts_removed;
  result.complete = retracted.complete;
  for (const auto& [null_id, image] : retracted.retraction) {
    if (!(image == Value::Null(null_id))) ++result.nulls_collapsed;
  }

  // Rewrite tracked routes and fact sets through the retraction while the
  // old target still backs their row indexes.
  for (const TrackedRoute& tracked : routes) {
    if (tracked.route != nullptr) {
      std::vector<SatStep> steps;
      steps.reserve(tracked.route->steps().size());
      for (const SatStep& step : tracked.route->steps()) {
        steps.push_back(
            {step.tgd, RemapBinding(step.h, retracted.retraction)});
      }
      *tracked.route = Route(std::move(steps));
      ++result.routes_remapped;
    }
    if (tracked.facts != nullptr) {
      for (FactRef& fact : *tracked.facts) {
        if (fact.side != Side::kTarget) continue;
        const Tuple& old_tuple =
            scenario->target->tuple(fact.relation, fact.row);
        std::vector<Value> values;
        values.reserve(old_tuple.arity());
        for (const Value& v : old_tuple.values()) {
          values.push_back(RemapValue(v, retracted.retraction));
        }
        std::optional<int32_t> row = retracted.core->FindRow(
            fact.relation, Tuple(std::move(values)));
        SPIDER_CHECK(row.has_value(),
                     "retraction image of a tracked fact missing from core");
        fact.row = *row;
      }
    }
  }

  // Swap in place: ReplaceContents bumps the version past both instances,
  // so debugger/session pointers stay valid and caches notice the change.
  scenario->target->ReplaceContents(std::move(*retracted.core));
  result.retraction = std::move(retracted.retraction);

  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("algebra.core_min_calls")->Increment();
    registry.GetCounter("algebra.core_min_facts_removed")
        ->Add(result.facts_removed);
    registry.GetCounter("algebra.core_min_nulls_collapsed")
        ->Add(result.nulls_collapsed);
  }
  return result;
}

}  // namespace spider
