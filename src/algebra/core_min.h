#ifndef SPIDER_ALGEBRA_CORE_MIN_H_
#define SPIDER_ALGEBRA_CORE_MIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/cancel.h"
#include "chase/core.h"
#include "mapping/scenario.h"
#include "routes/route.h"

namespace spider {

struct CoreMinimizationOptions {
  EvalOptions eval;
  size_t max_hom_tests = 100'000;
  /// Polled once per candidate fold; throws CancelledError when flipped.
  const CancelToken* cancel = nullptr;
};

/// A route whose bindings (and optionally the probed fact set) should be
/// rewritten through the retraction so they stay valid on the minimized
/// target. Both pointers must outlive the MinimizeTargetToCore call; `facts`
/// may be null.
struct TrackedRoute {
  Route* route = nullptr;
  std::vector<FactRef>* facts = nullptr;
};

struct CoreMinimizationResult {
  size_t facts_removed = 0;
  /// Labeled nulls the retraction moved off themselves (collapsed onto a
  /// constant or another null).
  size_t nulls_collapsed = 0;
  bool complete = true;  ///< False when max_hom_tests stopped the search.
  /// The retraction homomorphism r : old target → core (non-rigid nulls
  /// only; rigid nulls — those visible in the source instance — are fixed).
  InstanceHom retraction;
  size_t routes_remapped = 0;
};

/// Retracts `scenario->target` to its core in place and rewrites every
/// tracked route through the retraction homomorphism.
///
/// The canonical universal solution the chase produces is rarely the core:
/// null-padded facts subsumed by more specific ones survive. Folding them
/// away yields the smallest universal solution [Fagin–Kolaitis–Popa "Data
/// exchange: getting to the core"], and because the retraction r is itself
/// a homomorphism fixing the source-visible values, r ∘ h is again a valid
/// satisfaction-step homomorphism for every step (σ, h) of a route: the
/// remapped routes validate and replay against the minimized target.
///
/// The swap uses Instance::ReplaceContents, so Instance pointers held by a
/// live MappingDebugger (or DebugSession) stay valid; nulls occurring in
/// `scenario->source` are rigid and never collapse.
CoreMinimizationResult MinimizeTargetToCore(
    Scenario* scenario, const std::vector<TrackedRoute>& routes = {},
    const CoreMinimizationOptions& options = {});

/// Rewrites one binding's values through the retraction (identity outside
/// its domain). Exposed for tests and for callers maintaining their own
/// caches.
Binding RemapBinding(const Binding& binding, const InstanceHom& retraction);

}  // namespace spider

#endif  // SPIDER_ALGEBRA_CORE_MIN_H_
