#include "algebra/invert.h"

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spider {

const char* InverseVerdictName(InverseVerdict verdict) {
  switch (verdict) {
    case InverseVerdict::kExactRecovery: return "exact-recovery";
    case InverseVerdict::kCompleteRecovery: return "complete-recovery";
    case InverseVerdict::kSoundRecovery: return "sound-recovery";
    case InverseVerdict::kNotARecovery: return "not-a-recovery";
    case InverseVerdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

std::unique_ptr<SchemaMapping> BuildIdentityMapping(const Schema& schema) {
  auto mapping =
      std::make_unique<SchemaMapping>(Schema(schema), Schema(schema));
  for (size_t r = 0; r < schema.size(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    const RelationDef& def = schema.relation(rel);
    std::vector<std::string> var_names;
    Atom atom;
    atom.relation = rel;
    for (size_t a = 0; a < def.arity(); ++a) {
      var_names.push_back("x" + std::to_string(a));
      atom.terms.push_back(Term::Var(static_cast<VarId>(a)));
    }
    mapping->AddTgd(Tgd("id_" + def.name(), std::move(var_names), {atom},
                        {atom}, /*source_to_target=*/true));
  }
  return mapping;
}

std::string InversionReport::Summary() const {
  std::string out;
  out += "invert: ";
  out += InverseVerdictName(verdict);
  out += "\n";
  if (!reason.empty()) out += "  reason: " + reason + "\n";
  if (candidate != nullptr) {
    out += "  reverse candidate:\n";
    std::string deps = candidate->ToString();
    size_t start = 0;
    while (start < deps.size()) {
      size_t end = deps.find('\n', start);
      if (end == std::string::npos) end = deps.size();
      out += "    " + deps.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  out += std::string("  round trip: ") + ComposeStatusName(compose_status);
  if (round_trip != nullptr) {
    out += " (" + std::to_string(round_trip->NumTgds()) + " tgds";
    if (!membership_exact) out += ", canonical-solution semantics only";
    out += ")";
  }
  out += "\n";
  if (verdict != InverseVerdict::kInconclusive) {
    out += containment.Summary();
  }
  return out;
}

InversionReport InvertMapping(const SchemaMapping& m,
                              const InvertOptions& options) {
  obs::TraceSpan span("algebra", "invert");
  InversionReport report;

  if (m.st_tgds().empty()) {
    report.reason = "mapping has no s-t tgds to invert";
    return report;
  }
  if (!m.target_tgds().empty() || m.NumEgds() > 0) {
    report.reason =
        "mapping has target dependencies; the round-trip composition "
        "through the reverse candidate is not expressible with s-t tgds";
    return report;
  }

  // Reverse candidate: ψ(x, y) → ∃z φ(x, z). Variables keep their table
  // (universality flips automatically: RHS-only variables of σ occur in
  // the reversed LHS and vice versa).
  auto candidate =
      std::make_unique<SchemaMapping>(Schema(m.target()), Schema(m.source()));
  for (TgdId id : m.st_tgds()) {
    const Tgd& tgd = m.tgd(id);
    candidate->AddTgd(Tgd(tgd.name() + "_inv", tgd.var_names(), tgd.rhs(),
                          tgd.lhs(), /*source_to_target=*/true));
  }

  // Round trip M ∘ M⁻ : S→S, then classify against the identity mapping.
  ComposeOptions compose_options = options.compose;
  if (compose_options.cancel == nullptr) {
    compose_options.cancel = options.cancel;
  }
  ComposeResult composed = ComposeMappings(m, *candidate, compose_options);
  report.compose_status = composed.status;
  report.membership_exact = composed.membership_exact;
  report.candidate = std::move(candidate);
  if (composed.status != ComposeStatus::kComposed) {
    report.reason = composed.reason;
    return report;
  }
  report.round_trip = std::move(composed.mapping);

  std::unique_ptr<SchemaMapping> identity = BuildIdentityMapping(m.source());
  ContainmentOptions containment_options = options.containment;
  if (containment_options.cancel == nullptr) {
    containment_options.cancel = options.cancel;
  }
  report.containment =
      CheckContainment(*report.round_trip, *identity, containment_options);

  switch (report.containment.verdict) {
    case ContainmentVerdict::kEquivalent:
      report.verdict = InverseVerdict::kExactRecovery;
      break;
    case ContainmentVerdict::kContains:
      // identity ⊑ round trip: everything comes back, plus noise.
      report.verdict = InverseVerdict::kCompleteRecovery;
      break;
    case ContainmentVerdict::kContained:
      // round trip ⊑ identity: no noise, but data is lost.
      report.verdict = InverseVerdict::kSoundRecovery;
      break;
    case ContainmentVerdict::kIncomparable:
      if (report.containment.m1_in_m2.inconclusive > 0 ||
          report.containment.m2_in_m1.inconclusive > 0 ||
          !report.containment.comparable) {
        report.verdict = InverseVerdict::kInconclusive;
        report.reason = "containment test inconclusive";
      } else {
        report.verdict = InverseVerdict::kNotARecovery;
      }
      break;
  }

  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("algebra.invert_calls")->Increment();
    registry.GetCounter("algebra.invert_chases")
        ->Add(report.containment.chases_run);
  }
  return report;
}

}  // namespace spider
