#ifndef SPIDER_ALGEBRA_INVERT_H_
#define SPIDER_ALGEBRA_INVERT_H_

#include <memory>
#include <string>

#include "algebra/compose.h"
#include "analysis/containment.h"
#include "base/cancel.h"
#include "mapping/schema_mapping.h"

namespace spider {

/// How well the reverse candidate recovers source data when the round trip
/// M ∘ M⁻ is chased: compare chase_{M∘M⁻}(I) against I itself (the identity
/// copy mapping) with the PR 8 containment machinery.
enum class InverseVerdict {
  /// Round trip ≡ identity: M⁻ is an exact (chase-)inverse — every source
  /// fact comes back, nothing else does.
  kExactRecovery,
  /// Identity ⊑ round trip: all source data comes back, plus extra facts
  /// (M merged sources the reverse cannot tell apart).
  kCompleteRecovery,
  /// Round trip ⊑ identity: nothing spurious comes back, but some source
  /// data is lost (M projects attributes away).
  kSoundRecovery,
  /// Neither direction holds.
  kNotARecovery,
  /// The round trip could not be composed or the containment test was
  /// inconclusive; see `reason`.
  kInconclusive,
};

const char* InverseVerdictName(InverseVerdict verdict);

struct InvertOptions {
  ComposeOptions compose;
  ContainmentOptions containment;
  const CancelToken* cancel = nullptr;
};

/// Report of InvertMapping. Move-only (owns mappings and, transitively, a
/// containment counterexample).
struct InversionReport {
  InverseVerdict verdict = InverseVerdict::kInconclusive;
  std::string reason;

  /// The reverse candidate M⁻ : T→S (ψ(x,y) → ∃z φ(x,z) per s-t tgd of M).
  std::unique_ptr<SchemaMapping> candidate;
  /// The composed round trip M ∘ M⁻ : S→S, when expressible.
  std::unique_ptr<SchemaMapping> round_trip;
  /// Composition diagnostics for the round trip.
  ComposeStatus compose_status = ComposeStatus::kInexpressible;
  bool membership_exact = true;

  /// Containment of the round trip vs. the identity copy mapping. The
  /// counterexample instances inside are source instances whose recovery
  /// demonstrates the failed direction.
  ContainmentReport containment;

  /// Deterministic multi-line rendering: verdict, candidate, round trip,
  /// and the containment evidence.
  std::string Summary() const;
};

/// The identity copy mapping over `schema`: R(x...) → R(x...) for every
/// relation, source and target schemas both copies of `schema`.
std::unique_ptr<SchemaMapping> BuildIdentityMapping(const Schema& schema);

/// Builds the canonical reverse candidate M⁻ of M (swap each s-t tgd's
/// sides, re-quantifying dropped universals as existentials), composes the
/// round trip M ∘ M⁻, and classifies it against the identity mapping. This
/// is the chase-based reading of Fagin's inverse / Arenas et al.'s recovery:
/// M⁻ is a recovery of M iff the round trip loses nothing, and an exact
/// inverse iff it is equivalent to the identity. Counterexample instances
/// come from the containment report's frozen-chase witnesses.
InversionReport InvertMapping(const SchemaMapping& m,
                              const InvertOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ALGEBRA_INVERT_H_
