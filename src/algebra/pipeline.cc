#include "algebra/pipeline.h"

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spider {

ChasePipelineResult ChasePipeline(PipelineScenario* pipeline,
                                  const ChaseOptions& options) {
  obs::TraceSpan span("algebra", "chase_pipeline");
  SPIDER_CHECK(pipeline != nullptr, "ChasePipeline needs a pipeline");
  ChasePipelineResult result;
  result.st_stats = ChaseScenario(&pipeline->st, options);

  // T0 becomes the source of the second hop: copy facts across by relation
  // name (the schemas agree where they overlap), preserving labeled nulls.
  const Instance& t0 = *pipeline->st.target;
  const Schema& tu_source_schema = pipeline->tu.mapping->source();
  auto staged = std::make_unique<Instance>(&tu_source_schema);
  for (size_t r = 0; r < t0.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    if (t0.tuples(rel).empty()) continue;
    const std::string& name = t0.schema().relation(rel).name();
    RelationId tu_rel = tu_source_schema.Find(name);
    SPIDER_CHECK(tu_rel != kInvalidRelation,
                 "pipeline intermediate relation '" + name +
                     "' missing from the T→U source schema");
    for (const Tuple& t : t0.tuples(rel)) {
      staged->Insert(tu_rel, Tuple(t));
    }
  }
  pipeline->tu.source->ReplaceContents(std::move(*staged));
  if (pipeline->tu.max_null_id < pipeline->st.max_null_id) {
    pipeline->tu.max_null_id = pipeline->st.max_null_id;
  }
  for (const auto& [null_id, name] : pipeline->st.null_names) {
    pipeline->tu.null_names.emplace(null_id, name);
  }

  result.tu_stats = ChaseScenario(&pipeline->tu, options);
  return result;
}

StitchedRoute TraceThroughComposition(const PipelineScenario& pipeline,
                                      const std::vector<FactRef>& u_facts,
                                      const RouteOptions& options) {
  obs::TraceSpan span("algebra", "trace_through_composition");
  const Scenario& st = pipeline.st;
  const Scenario& tu = pipeline.tu;

  StitchedRoute stitched;
  OneRouteResult tu_result = ComputeOneRoute(*tu.mapping, *tu.source,
                                             *tu.target, u_facts, options);
  stitched.found = tu_result.found;
  stitched.tu_route = std::move(tu_result.route);
  stitched.unproven = std::move(tu_result.unproven);
  stitched.tu_stats = tu_result.stats;
  if (!stitched.found) return stitched;

  // The T-facts the tu route consumed: every s-t step's instantiated
  // premise, in first-use order.
  std::set<FactRef> seen;
  for (const SatStep& step : stitched.tu_route.steps()) {
    const Tgd& tgd = tu.mapping->tgd(step.tgd);
    if (!tgd.source_to_target()) continue;
    for (const Atom& atom : tgd.lhs()) {
      Tuple t = step.h.Instantiate(atom);
      std::optional<int32_t> row = tu.source->FindRow(atom.relation, t);
      SPIDER_CHECK(row.has_value(),
                   "tu route premise fact missing from the T instance");
      FactRef fact{Side::kSource, atom.relation, *row};
      if (seen.insert(fact).second) {
        stitched.t_facts_tu.push_back(fact);
      }
    }
  }

  // Translate into st-scenario coordinates (target side) by name + content.
  for (const FactRef& fact : stitched.t_facts_tu) {
    const std::string& name =
        tu.mapping->source().relation(fact.relation).name();
    RelationId st_rel = st.mapping->target().Find(name);
    SPIDER_CHECK(st_rel != kInvalidRelation,
                 "intermediate relation '" + name +
                     "' missing from the S→T target schema");
    std::optional<int32_t> row = st.target->FindRow(
        st_rel, tu.source->tuple(fact.relation, fact.row));
    SPIDER_CHECK(row.has_value(),
                 "intermediate fact missing from the S→T solution; was "
                 "ChasePipeline run?");
    stitched.t_facts_st.push_back({Side::kTarget, st_rel, *row});
  }

  if (!stitched.t_facts_st.empty()) {
    OneRouteResult st_result = ComputeOneRoute(
        *st.mapping, *st.source, *st.target, stitched.t_facts_st, options);
    stitched.st_stats = st_result.stats;
    stitched.st_route = std::move(st_result.route);
    if (!st_result.found) {
      stitched.found = false;
      stitched.unproven = std::move(st_result.unproven);
    }
  }

  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("algebra.stitched_traces")->Increment();
    registry.GetCounter("algebra.stitched_t_facts")
        ->Add(stitched.t_facts_st.size());
  }
  return stitched;
}

bool ValidateStitchedRoute(const PipelineScenario& pipeline,
                           const StitchedRoute& stitched,
                           const std::vector<FactRef>& u_facts,
                           std::string* why) {
  if (!stitched.found) {
    if (why != nullptr) *why = "stitched route not found";
    return false;
  }
  std::string local;
  if (!stitched.tu_route.Validate(*pipeline.tu.mapping, *pipeline.tu.source,
                                  *pipeline.tu.target, u_facts, &local)) {
    if (why != nullptr) *why = "T→U half invalid: " + local;
    return false;
  }
  for (size_t i = 0; i < stitched.t_facts_tu.size(); ++i) {
    const FactRef& a = stitched.t_facts_tu[i];
    const FactRef& b = stitched.t_facts_st[i];
    if (!(pipeline.tu.source->tuple(a.relation, a.row) ==
          pipeline.st.target->tuple(b.relation, b.row))) {
      if (why != nullptr) {
        *why = "intermediate fact " + std::to_string(i) +
               " differs between the two halves";
      }
      return false;
    }
  }
  if (!stitched.t_facts_st.empty() &&
      !stitched.st_route.Validate(*pipeline.st.mapping, *pipeline.st.source,
                                  *pipeline.st.target, stitched.t_facts_st,
                                  &local)) {
    if (why != nullptr) *why = "S→T half invalid: " + local;
    return false;
  }
  return true;
}

std::string RenderStitchedRoute(const PipelineScenario& pipeline,
                                const StitchedRoute& stitched) {
  std::string out;
  if (!stitched.found) {
    out += "no end-to-end route (" + std::to_string(stitched.unproven.size()) +
           " unproven facts)\n";
    return out;
  }
  out += "S->T route (" + std::to_string(stitched.st_route.size()) +
         " steps):\n";
  if (stitched.st_route.empty()) {
    out += "  (none: the T->U steps used no intermediate facts)\n";
  } else {
    out += stitched.st_route.ToString(*pipeline.st.mapping,
                                      *pipeline.st.source,
                                      *pipeline.st.target);
  }
  out += "intermediate T-facts:\n";
  for (const FactRef& fact : stitched.t_facts_tu) {
    const RelationDef& def =
        pipeline.tu.mapping->source().relation(fact.relation);
    out += "  " + def.name() +
           pipeline.tu.source->tuple(fact.relation, fact.row).ToString() +
           "\n";
  }
  out += "T->U route (" + std::to_string(stitched.tu_route.size()) +
         " steps):\n";
  out += stitched.tu_route.ToString(*pipeline.tu.mapping, *pipeline.tu.source,
                                    *pipeline.tu.target);
  return out;
}

}  // namespace spider
