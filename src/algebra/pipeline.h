#ifndef SPIDER_ALGEBRA_PIPELINE_H_
#define SPIDER_ALGEBRA_PIPELINE_H_

#include <string>
#include <vector>

#include "chase/chase.h"
#include "mapping/scenario.h"
#include "routes/one_route.h"
#include "routes/options.h"
#include "routes/route.h"

namespace spider {

struct ChasePipelineResult {
  ChaseStats st_stats;
  ChaseStats tu_stats;
};

/// Chases the pipeline end to end: S —M_st→ T, then the produced T instance
/// (facts copied across by relation name, labeled nulls preserved) is the
/// source for T —M_tu→ U. After the call `pipeline->st.target` holds T0 and
/// `pipeline->tu.target` holds the two-step canonical solution U0. Throws
/// SpiderError when either chase fails.
ChasePipelineResult ChasePipeline(PipelineScenario* pipeline,
                                  const ChaseOptions& options = {});

/// An end-to-end S→T→U provenance chain for selected U-facts: the T→U half
/// explains the U-facts from intermediate T-facts, and the S→T half explains
/// exactly those T-facts from the original source. Both halves are routes in
/// the paper's sense and validate independently.
struct StitchedRoute {
  bool found = false;

  /// T→U half: a route for `u_facts` in the tu scenario.
  Route tu_route;
  /// The T-facts the tu route's s-t steps consumed, as source-side facts of
  /// the tu scenario, in first-use order.
  std::vector<FactRef> t_facts_tu;
  /// The same T-facts as target-side facts of the st scenario (matched by
  /// relation name + tuple content).
  std::vector<FactRef> t_facts_st;

  /// S→T half: a route for `t_facts_st` in the st scenario. Empty when the
  /// tu route used no intermediate facts (constant-only premises).
  Route st_route;

  /// U-facts without a route (found == false when non-empty).
  std::vector<FactRef> unproven;

  RouteStats tu_stats;
  RouteStats st_stats;
};

/// Stitches an end-to-end route for `u_facts` (target-side facts of
/// `pipeline->tu`): first ComputeOneRoute in the T→U scenario, then the
/// intermediate T-facts its satisfaction steps consumed are probed in the
/// S→T scenario. The pipeline must have been chased (ChasePipeline) so that
/// `tu.source` mirrors `st.target`.
StitchedRoute TraceThroughComposition(const PipelineScenario& pipeline,
                                      const std::vector<FactRef>& u_facts,
                                      const RouteOptions& options = {});

/// Validates both halves with Route::Validate. Returns true when the whole
/// chain is a correct provenance proof; on failure *why (if non-null) says
/// which half broke and how.
bool ValidateStitchedRoute(const PipelineScenario& pipeline,
                           const StitchedRoute& stitched,
                           const std::vector<FactRef>& u_facts,
                           std::string* why = nullptr);

/// Deterministic human rendering: the S→T steps, the intermediate T-facts,
/// then the T→U steps.
std::string RenderStitchedRoute(const PipelineScenario& pipeline,
                                const StitchedRoute& stitched);

}  // namespace spider

#endif  // SPIDER_ALGEBRA_PIPELINE_H_
