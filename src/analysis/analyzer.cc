#include "analysis/analyzer.h"

#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/position_flow.h"
#include "analysis/subsumption.h"
#include "chase/weak_acyclicity.h"
#include "query/evaluator.h"

namespace spider {

std::vector<Diagnostic> AnalysisReport::Matching(const std::string& pass,
                                                 const std::string& code) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics) {
    if (!pass.empty() && d.pass != pass) continue;
    if (!code.empty() && d.code != code) continue;
    out.push_back(d);
  }
  return out;
}

namespace {

/// Union-find over variable ids, for LHS connectivity.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

Diagnostic Make(Severity severity, std::string pass, std::string code,
                std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.pass = std::move(pass);
  d.code = std::move(code);
  d.message = std::move(message);
  return d;
}

/// Span of the first LHS atom of `tgd` that binds variable `v`.
SourceSpan FirstLhsSpanOf(const Tgd& tgd, VarId v) {
  for (size_t a = 0; a < tgd.lhs().size(); ++a) {
    for (const Term& t : tgd.lhs()[a].terms) {
      if (t.is_var() && t.var() == v) return tgd.LhsAtomSpan(a);
    }
  }
  return tgd.span();
}

// ---------------------------------------------------------------------------
// Shape pass — the seed linter's per-dependency and per-relation checks,
// message-for-message, now with spans and hints.
// ---------------------------------------------------------------------------

void ShapeTgd(const SchemaMapping& mapping, TgdId id,
              std::vector<Diagnostic>* out) {
  const Tgd& tgd = mapping.tgd(id);

  // disconnected-lhs: atoms joined through shared variables must form one
  // connected component (single-atom LHS is trivially connected).
  if (tgd.lhs().size() > 1) {
    UnionFind uf(tgd.num_vars() + tgd.lhs().size());
    for (size_t a = 0; a < tgd.lhs().size(); ++a) {
      int atom_node = static_cast<int>(tgd.num_vars() + a);
      for (const Term& t : tgd.lhs()[a].terms) {
        if (t.is_var()) uf.Union(atom_node, t.var());
      }
    }
    int root = uf.Find(static_cast<int>(tgd.num_vars()));
    bool connected = true;
    for (size_t a = 1; a < tgd.lhs().size(); ++a) {
      if (uf.Find(static_cast<int>(tgd.num_vars() + a)) != root) {
        connected = false;
        break;
      }
    }
    if (!connected) {
      Diagnostic d = Make(
          Severity::kWarning, "shape", "disconnected-lhs",
          "tgd '" + tgd.name() +
              "': LHS atoms share no variables (cartesian product — is a "
              "join condition missing?)");
      d.tgd = id;
      d.span = tgd.span();
      d.hint = "add a variable shared by the LHS atoms to join them";
      out->push_back(std::move(d));
    }
  }

  // dropped-variable / repeated-variable.
  std::vector<bool> in_rhs(tgd.num_vars(), false);
  for (size_t a = 0; a < tgd.rhs().size(); ++a) {
    const Atom& atom = tgd.rhs()[a];
    std::unordered_set<VarId> seen_in_atom;
    for (const Term& t : atom.terms) {
      if (!t.is_var()) continue;
      in_rhs[t.var()] = true;
      if (tgd.IsUniversal(t.var()) && !seen_in_atom.insert(t.var()).second) {
        Diagnostic d = Make(
            Severity::kWarning, "shape", "repeated-variable",
            "tgd '" + tgd.name() + "': variable '" +
                tgd.var_names()[t.var()] + "' occurs twice in " +
                mapping.target().relation(atom.relation).name() +
                " (copying one source value into two target attributes?)");
        d.tgd = id;
        d.span = tgd.RhsAtomSpan(a);
        d.hint = "use a distinct source variable for one of the occurrences";
        out->push_back(std::move(d));
      }
    }
  }
  for (VarId v : tgd.UniversalVars()) {
    if (in_rhs[v]) continue;
    Diagnostic d = Make(Severity::kWarning, "shape", "dropped-variable",
                        "tgd '" + tgd.name() + "': LHS variable '" +
                            tgd.var_names()[v] +
                            "' never reaches the RHS (source data dropped?)");
    d.tgd = id;
    d.span = FirstLhsSpanOf(tgd, v);
    d.hint =
        "map '" + tgd.var_names()[v] + "' to a target attribute, or rename "
        "it if the projection is intended";
    out->push_back(std::move(d));
  }
}

void ShapePass(const SchemaMapping& mapping, const PositionFlow& flow,
               std::vector<Diagnostic>* out) {
  for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
    ShapeTgd(mapping, id, out);
  }

  std::vector<bool> source_used(mapping.source().size(), false);
  for (TgdId id : mapping.st_tgds()) {
    for (const Atom& atom : mapping.tgd(id).lhs()) {
      source_used[atom.relation] = true;
    }
  }
  for (RelationId r = 0; r < static_cast<RelationId>(mapping.source().size());
       ++r) {
    if (source_used[r]) continue;
    out->push_back(Make(Severity::kWarning, "shape", "unused-source-relation",
                        "source relation '" +
                            mapping.source().relation(r).name() +
                            "' is not read by any s-t tgd (data never "
                            "migrated)"));
  }
  for (RelationId r = 0; r < static_cast<RelationId>(mapping.target().size());
       ++r) {
    const RelationDef& rel = mapping.target().relation(r);
    bool written = false;
    for (size_t c = 0; c < rel.arity() && !written; ++c) {
      written = flow.target_written[flow.target.Id(r, static_cast<int>(c))];
    }
    if (written || rel.arity() == 0) continue;
    out->push_back(Make(Severity::kWarning, "shape",
                        "unpopulated-target-relation",
                        "target relation '" + rel.name() +
                            "' is not written by any tgd (always empty)"));
  }
}

// ---------------------------------------------------------------------------
// Coverage pass — transitive position flow.
// ---------------------------------------------------------------------------

/// First (tgd, atom span) writing target position (rel, col), by TgdId.
std::pair<TgdId, SourceSpan> FirstWriter(const SchemaMapping& mapping,
                                         RelationId rel, int /*col*/) {
  for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
    const Tgd& tgd = mapping.tgd(id);
    for (size_t a = 0; a < tgd.rhs().size(); ++a) {
      if (tgd.rhs()[a].relation == rel) return {id, tgd.RhsAtomSpan(a)};
    }
  }
  return {-1, SourceSpan{}};
}

/// First (s-t tgd, atom span) reading source relation `rel`, by TgdId.
std::pair<TgdId, SourceSpan> FirstReader(const SchemaMapping& mapping,
                                         RelationId rel) {
  for (TgdId id : mapping.st_tgds()) {
    const Tgd& tgd = mapping.tgd(id);
    for (size_t a = 0; a < tgd.lhs().size(); ++a) {
      if (tgd.lhs()[a].relation == rel) return {id, tgd.LhsAtomSpan(a)};
    }
  }
  return {-1, SourceSpan{}};
}

void CoveragePass(const SchemaMapping& mapping, const PositionFlow& flow,
                  std::vector<Diagnostic>* out) {
  for (int p = 0; p < flow.target.size(); ++p) {
    if (!flow.target_written[p] || flow.target_can_hold_constant[p]) continue;
    RelationId rel = flow.target.relation(p);
    int col = flow.target.column(p);
    const RelationDef& def = mapping.target().relation(rel);
    std::string attr = def.name() + "." + def.attribute(col);
    Diagnostic d =
        flow.target_directly_grounded[p]
            ? Make(Severity::kWarning, "coverage", "null-only-position",
                   "target attribute " + attr +
                       " can only ever hold invented nulls: every value "
                       "reaching it descends from an existential")
            : Make(Severity::kWarning, "coverage", "null-only-position",
                   "target attribute " + attr +
                       " is only ever filled with invented nulls (no tgd "
                       "supplies a value)");
    auto [tgd, span] = FirstWriter(mapping, rel, col);
    d.tgd = tgd;
    d.span = span;
    d.hint = "have some tgd copy a source value or constant into " + attr;
    out->push_back(std::move(d));
  }

  for (int p = 0; p < flow.source.size(); ++p) {
    if (!flow.source_read[p] || flow.source_reaches_target[p]) continue;
    RelationId rel = flow.source.relation(p);
    int col = flow.source.column(p);
    const RelationDef& def = mapping.source().relation(rel);
    std::string attr = def.name() + "." + def.attribute(col);
    auto [tgd, span] = FirstReader(mapping, rel);
    if (flow.source_joins[p]) {
      Diagnostic d = Make(Severity::kNote, "coverage", "join-only-position",
                          "source attribute " + attr +
                              " is used only in joins: its values decide "
                              "which facts appear but never appear "
                              "themselves");
      d.tgd = tgd;
      d.span = span;
      out->push_back(std::move(d));
    } else {
      Diagnostic d = Make(Severity::kWarning, "coverage",
                          "dead-source-position",
                          "source attribute " + attr +
                              " never reaches the target: no s-t tgd copies "
                              "its value or compares it");
      d.tgd = tgd;
      d.span = span;
      d.hint = "map " + attr + " to a target attribute, or confirm the "
               "projection is intended";
      out->push_back(std::move(d));
    }
  }
}

// ---------------------------------------------------------------------------
// Termination pass — weak acyclicity with a witness cycle.
// ---------------------------------------------------------------------------

void TerminationPass(const SchemaMapping& mapping,
                     std::vector<Diagnostic>* out) {
  PositionDependencyGraph graph = PositionDependencyGraph::Build(mapping);
  AcyclicityWitness witness = CheckWeakAcyclicity(graph);
  if (witness.weakly_acyclic) return;
  TgdId tgd = graph.edges()[witness.cycle.front()].tgd;
  Diagnostic d = Make(Severity::kWarning, "termination", "not-weakly-acyclic",
                      "mapping is not weakly acyclic; the chase may not "
                      "terminate: " +
                          witness.Describe(mapping, graph));
  d.tgd = tgd;
  d.span = mapping.tgd(tgd).span();
  d.hint =
      "break the cycle: drop an existential on it or split tgd '" +
      mapping.tgd(tgd).name() + "'";
  out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// Subsumption pass — frozen-LHS chase + homomorphism.
// ---------------------------------------------------------------------------

void SubsumptionPass(const SchemaMapping& mapping,
                     const AnalysisOptions& options, AnalysisReport* report) {
  if (mapping.NumTgds() < 2) return;
  SubsumptionTestOptions test_options;
  test_options.max_steps = options.chase_max_steps;
  test_options.cancel = options.cancel;
  for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
    ThrowIfCancelled(options.cancel);
    ++report->chases_run;
    SubsumptionVerdict verdict = TestTgdSubsumption(mapping, id, test_options);
    if (verdict == SubsumptionVerdict::kInconclusive) {
      ++report->inconclusive_subsumptions;
      continue;
    }
    if (verdict != SubsumptionVerdict::kImplied) continue;
    const Tgd& tgd = mapping.tgd(id);
    Diagnostic d = Make(Severity::kWarning, "subsumption", "subsumed-tgd",
                        "tgd '" + tgd.name() +
                            "' is implied by the remaining dependencies "
                            "(chasing its frozen LHS already derives its "
                            "RHS)");
    d.tgd = id;
    d.span = tgd.span();
    d.hint = "delete it: every fact it creates is created anyway";
    report->diagnostics.push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// Egd interaction pass.
// ---------------------------------------------------------------------------

void EgdPass(const SchemaMapping& mapping, const PositionFlow& flow,
             const AnalysisOptions& options, AnalysisReport* report) {
  if (mapping.NumEgds() == 0) return;

  // Statically dead egds.
  std::vector<bool> dead(mapping.NumEgds(), false);
  for (EgdId e = 0; e < static_cast<EgdId>(mapping.NumEgds()); ++e) {
    const Egd& egd = mapping.egd(e);
    for (size_t a = 0; a < egd.lhs().size() && !dead[e]; ++a) {
      const Atom& atom = egd.lhs()[a];
      const RelationDef& def = mapping.target().relation(atom.relation);
      bool written = false;
      for (size_t c = 0; c < atom.terms.size() && !written; ++c) {
        written =
            flow.target_written[flow.target.Id(atom.relation,
                                               static_cast<int>(c))];
      }
      if (!written && !atom.terms.empty()) {
        Diagnostic d = Make(Severity::kNote, "egd", "egd-never-fires",
                            "egd '" + egd.name() +
                                "' can never fire: no tgd writes " +
                                def.name());
        d.egd = e;
        d.span = egd.LhsAtomSpan(a);
        report->diagnostics.push_back(std::move(d));
        dead[e] = true;
        break;
      }
      for (size_t c = 0; c < atom.terms.size(); ++c) {
        const Term& t = atom.terms[c];
        int pos = flow.target.Id(atom.relation, static_cast<int>(c));
        if (t.is_const() && flow.target_written[pos] &&
            !flow.target_can_hold_constant[pos]) {
          Diagnostic d = Make(
              Severity::kNote, "egd", "egd-never-fires",
              "egd '" + egd.name() + "' can never fire: it requires " +
                  t.value().ToString() + " at " + def.name() + "." +
                  def.attribute(c) + ", which only ever holds invented "
                  "nulls");
          d.egd = e;
          d.span = egd.LhsAtomSpan(a);
          report->diagnostics.push_back(std::move(d));
          dead[e] = true;
          break;
        }
      }
    }
  }

  // Guaranteed interactions: chase each tgd's frozen LHS (with the tgd
  // itself and the rest of Σ, but without the egds) and ask which egds have
  // triggers in the result. A trigger equating two distinct constants means
  // every chase that fires the tgd on generic data fails — a latent key
  // violation baked into the dependencies, not the data.
  FrozenChaseOptions frozen_options;
  frozen_options.include_sigma = true;
  frozen_options.include_egds = false;
  frozen_options.max_steps = options.chase_max_steps;
  frozen_options.cancel = options.cancel;
  for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
    ThrowIfCancelled(options.cancel);
    ++report->chases_run;
    FrozenChaseResult frozen = ChaseFrozenLhs(mapping, id, frozen_options);
    if (!frozen.ok) continue;
    for (EgdId e = 0; e < static_cast<EgdId>(mapping.NumEgds()); ++e) {
      if (dead[e]) continue;
      const Egd& egd = mapping.egd(e);
      Binding binding(egd.num_vars());
      MatchIterator it(*frozen.chase.target, egd.lhs(), &binding);
      bool equates_constants = false;
      bool unifies_nulls = false;
      while (it.Next()) {
        const Value& left = binding.Get(egd.left());
        const Value& right = binding.Get(egd.right());
        if (left == right) continue;
        if (left.is_constant() && right.is_constant()) {
          equates_constants = true;
          break;
        }
        unifies_nulls = true;
      }
      if (equates_constants) {
        Diagnostic d = Make(
            Severity::kError, "egd", "latent-key-violation",
            "egd '" + egd.name() + "' equates two distinct values on every "
                "chase that fires tgd '" + mapping.tgd(id).name() +
                "': generic source data has no solution");
        d.tgd = id;
        d.egd = e;
        d.span = egd.span().valid() ? egd.span() : mapping.tgd(id).span();
        d.hint = "add the joining variable the egd expects to tgd '" +
                 mapping.tgd(id).name() + "', or relax the egd";
        report->diagnostics.push_back(std::move(d));
      } else if (unifies_nulls) {
        Diagnostic d = Make(Severity::kNote, "egd", "egd-always-fires",
                            "egd '" + egd.name() +
                                "' unifies nulls on every chase that fires "
                                "tgd '" + mapping.tgd(id).name() + "'");
        d.tgd = id;
        d.egd = e;
        d.span = egd.span();
        report->diagnostics.push_back(std::move(d));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reachability pass — static route-reachability prediction.
// ---------------------------------------------------------------------------

void ReachabilityPass(const SchemaMapping& mapping,
                      const AnalysisOptions& options, AnalysisReport* report) {
  auto reachability = std::make_shared<ReachabilityReport>(
      ComputeReachability(mapping, options.cancel));
  for (RelationId r = 0; r < static_cast<RelationId>(mapping.target().size());
       ++r) {
    if (reachability->Reachable(r)) continue;
    // Only report relations some tgd writes: plainly-unwritten ones are
    // already shape/unpopulated-target-relation findings.
    bool written = false;
    for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()) && !written;
         ++id) {
      for (const Atom& atom : mapping.tgd(id).rhs()) {
        if (atom.relation == r) {
          written = true;
          break;
        }
      }
    }
    if (!written) continue;
    const RelationDef& def = mapping.target().relation(r);
    Diagnostic d = Make(Severity::kWarning, "reachability",
                        "unreachable-target-relation",
                        "no route will ever exist to facts of " + def.name() +
                            ": every tgd writing it reads a relation no "
                            "chase can populate");
    auto [tgd, span] = FirstWriter(mapping, r, 0);
    d.tgd = tgd;
    d.span = span;
    d.hint = "add a dependency populating the relations its writers read, "
             "or delete the dead tgds";
    report->diagnostics.push_back(std::move(d));
  }
  report->reachability = std::move(reachability);
}

// ---------------------------------------------------------------------------
// Min-cover pass — whole-mapping redundancy with certificate routes.
// ---------------------------------------------------------------------------

void MinCoverPass(const SchemaMapping& mapping, const AnalysisOptions& options,
                  AnalysisReport* report) {
  MinCoverOptions cover_options;
  cover_options.chase_max_steps = options.chase_max_steps;
  cover_options.cancel = options.cancel;
  auto cover = std::make_shared<MinCoverResult>(
      ComputeMinCover(mapping, cover_options));
  report->chases_run += cover->tested;
  for (const RemovalCertificate& certificate : cover->removed) {
    Diagnostic d = Make(Severity::kWarning, "min-cover", "removable-tgd",
                        "tgd '" + certificate.name +
                            "' is redundant given the kept dependencies; "
                            "certificate route: " +
                            certificate.route.TgdNames(
                                *certificate.scenario.mapping));
    d.tgd = certificate.tgd;
    d.span = mapping.tgd(certificate.tgd).span();
    d.hint = "delete it; replay the certificate in the debugger to see "
             "every fact it derives derived without it";
    report->diagnostics.push_back(std::move(d));
  }
  report->min_cover = std::move(cover);
}

}  // namespace

AnalysisReport AnalyzeMapping(const SchemaMapping& mapping,
                              const AnalysisOptions& options) {
  AnalysisReport report;
  PositionFlow flow = ComputePositionFlow(mapping);
  if (options.shape) ShapePass(mapping, flow, &report.diagnostics);
  if (options.coverage) CoveragePass(mapping, flow, &report.diagnostics);
  if (options.termination) TerminationPass(mapping, &report.diagnostics);
  if (options.reachability) ReachabilityPass(mapping, options, &report);
  if (options.subsumption) SubsumptionPass(mapping, options, &report);
  if (options.egd_interaction) EgdPass(mapping, flow, options, &report);
  if (options.min_cover) MinCoverPass(mapping, options, &report);
  ThrowIfCancelled(options.cancel);
  return report;
}

}  // namespace spider
