#ifndef SPIDER_ANALYSIS_ANALYZER_H_
#define SPIDER_ANALYSIS_ANALYZER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/min_cover.h"
#include "analysis/reachability.h"
#include "base/cancel.h"
#include "mapping/schema_mapping.h"

namespace spider {

/// Which passes AnalyzeMapping runs. The shape and coverage passes are pure
/// structural analysis (fast, no chase); termination builds the position
/// dependency graph; reachability runs the position-lattice fixpoint (no
/// chase); subsumption, egd interaction and min-cover run frozen-LHS chases
/// (one or two per dependency) and dominate the runtime.
struct AnalysisOptions {
  bool shape = true;
  bool coverage = true;
  bool termination = true;
  bool subsumption = true;
  bool egd_interaction = true;
  /// Whole-mapping passes, off by default (spider_lint enables them with
  /// --reachability / --min-cover; kAnalyze with the matching spec tokens).
  bool reachability = false;
  bool min_cover = false;
  /// Step budget for each frozen-LHS chase. The frozen instance has one
  /// tuple per LHS atom, so a well-behaved mapping finishes in a handful of
  /// steps; hitting the budget marks the check inconclusive, never throws.
  size_t chase_max_steps = 100'000;
  /// Cooperative cancellation, polled between dependencies and inside every
  /// chase. Cancellation throws CancelledError out of AnalyzeMapping.
  const CancelToken* cancel = nullptr;
};

/// Result of AnalyzeMapping: the findings plus counters for benchmarks.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  /// Frozen-LHS chases executed (subsumption + egd interaction + min-cover).
  size_t chases_run = 0;
  /// Subsumption tests that hit the step limit or an egd failure.
  size_t inconclusive_subsumptions = 0;

  /// Present when AnalysisOptions::min_cover ran. Shared so reports stay
  /// copyable while certificates (which own scenarios) are not.
  std::shared_ptr<const MinCoverResult> min_cover;
  /// Present when AnalysisOptions::reachability ran.
  std::shared_ptr<const ReachabilityReport> reachability;

  /// Diagnostics matching pass/code (empty strings match everything).
  std::vector<Diagnostic> Matching(const std::string& pass,
                                   const std::string& code = "") const;
};

/// Statically analyzes a schema mapping. Never throws on any mapping the
/// SchemaMapping invariants admit, never mutates anything, and is
/// deterministic: equal mappings yield byte-identical reports.
///
/// Passes and their codes:
///  * shape — per-dependency syntactic smells, the seed linter's checks:
///    disconnected-lhs, dropped-variable, repeated-variable,
///    unused-source-relation, unpopulated-target-relation;
///  * coverage — transitive position flow: null-only-position (a target
///    attribute that can never hold a constant, even through chains of
///    target tgds), dead-source-position (a source attribute whose values
///    never reach the target), join-only-position (note: values used only
///    to join);
///  * termination — not-weakly-acyclic, with the witness cycle through a
///    special edge spelled out position by position;
///  * subsumption — subsumed-tgd: the remaining dependencies imply this one
///    (frozen-LHS chase + homomorphism check);
///  * egd — egd-never-fires (reads an unwritten relation, or requires a
///    constant at a null-only position), latent-key-violation (an egd is
///    guaranteed to equate two distinct generic values every time some tgd
///    fires), egd-always-fires (note: every firing of some tgd triggers a
///    null unification);
///  * reachability — unreachable-target-relation: tgds write the relation
///    but none of them can ever fire, so no route to any of its facts will
///    ever exist (strictly stronger than shape's unpopulated check);
///  * min-cover — removable-tgd: the tgd is redundant given the kept rest,
///    with a certificate route in the report's min_cover result.
AnalysisReport AnalyzeMapping(const SchemaMapping& mapping,
                              const AnalysisOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ANALYSIS_ANALYZER_H_
