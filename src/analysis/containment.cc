#include "analysis/containment.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "analysis/subsumption.h"
#include "base/status.h"
#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "mapping/writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/evaluator.h"

namespace spider {

const char* ImplicationVerdictName(ImplicationVerdict verdict) {
  switch (verdict) {
    case ImplicationVerdict::kImplied: return "implied";
    case ImplicationVerdict::kNotImplied: return "not-implied";
    case ImplicationVerdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

const char* ContainmentVerdictName(ContainmentVerdict verdict) {
  switch (verdict) {
    case ContainmentVerdict::kEquivalent: return "equivalent";
    case ContainmentVerdict::kContained: return "m1-contained-in-m2";
    case ContainmentVerdict::kContains: return "m2-contained-in-m1";
    case ContainmentVerdict::kIncomparable: return "incomparable";
  }
  return "unknown";
}

namespace {

bool SchemaCoveredBy(const Schema& a, const Schema& b, const char* side,
                     const char* missing_from, std::string* reason) {
  for (RelationId r = 0; r < static_cast<RelationId>(a.size()); ++r) {
    const RelationDef& def = a.relation(r);
    RelationId other = b.Find(def.name());
    if (other == kInvalidRelation) {
      *reason = std::string(side) + " relation '" + def.name() +
                "' is missing from " + missing_from;
      return false;
    }
    if (b.relation(other).arity() != def.arity()) {
      *reason = std::string(side) + " relation '" + def.name() +
                "' has arity " + std::to_string(def.arity()) + " in one "
                "mapping and " + std::to_string(b.relation(other).arity()) +
                " in the other";
      return false;
    }
  }
  return true;
}

/// Containment is only defined over the same schemas; relation ids may
/// differ between independently parsed mappings, so compatibility (and all
/// atom translation below) goes by relation name + arity.
bool CompatibleSchemas(const SchemaMapping& m1, const SchemaMapping& m2,
                       std::string* reason) {
  return SchemaCoveredBy(m1.source(), m2.source(), "source", "M2", reason) &&
         SchemaCoveredBy(m2.source(), m1.source(), "source", "M1", reason) &&
         SchemaCoveredBy(m1.target(), m2.target(), "target", "M2", reason) &&
         SchemaCoveredBy(m2.target(), m1.target(), "target", "M1", reason);
}

std::vector<Atom> TranslateAtoms(const std::vector<Atom>& atoms,
                                 const Schema& from, const Schema& to) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    Atom translated = atom;
    translated.relation = to.Require(from.relation(atom.relation).name());
    out.push_back(std::move(translated));
  }
  return out;
}

/// Copy-mapping over `by`'s target schema, mirroring the construction in
/// subsumption.cc: the chase starts from a source instance, so a target-side
/// canonical database is bridged in verbatim through identity `__copy_<rel>`
/// tgds and then chased by ALL of `by`'s target dependencies.
std::unique_ptr<SchemaMapping> BuildTargetCopyMapping(const SchemaMapping& by) {
  Schema copy_source = by.target();
  auto derived = std::make_unique<SchemaMapping>(std::move(copy_source),
                                                 by.target());
  const Schema& target = by.target();
  for (RelationId rel = 0; rel < static_cast<RelationId>(target.size());
       ++rel) {
    const RelationDef& def = target.relation(rel);
    std::vector<std::string> vars;
    std::vector<Term> terms;
    for (size_t i = 0; i < def.arity(); ++i) {
      vars.push_back("v" + std::to_string(i));
      terms.push_back(Term::Var(static_cast<VarId>(i)));
    }
    Atom atom{rel, terms};
    derived->AddTgd(Tgd("__copy_" + def.name(), std::move(vars), {atom},
                        {atom}, /*source_to_target=*/true));
  }
  for (TgdId id : by.target_tgds()) derived->AddTgd(by.tgd(id));
  for (EgdId id = 0; id < static_cast<EgdId>(by.NumEgds()); ++id) {
    derived->AddEgd(by.egd(id));
  }
  return derived;
}

/// Σ_by ⊨ σ for a tgd σ of the other mapping: freeze σ's universal
/// variables to constants, chase the canonical database of its LHS with
/// `by`, and check that σ's conclusion (existentials as fresh nulls) maps
/// homomorphically into the result.
ImplicationVerdict TestTgdImplication(const Tgd& sigma,
                                      const Schema& of_source,
                                      const Schema& of_target,
                                      const SchemaMapping& by,
                                      const ContainmentOptions& options) {
  std::vector<Value> assignment(sigma.num_vars());
  for (VarId v = 0; v < static_cast<VarId>(sigma.num_vars()); ++v) {
    if (sigma.IsUniversal(v)) {
      assignment[v] = FrozenConstant(sigma.var_names()[v]);
    }
  }

  const SchemaMapping* chasing = &by;
  std::unique_ptr<SchemaMapping> copy;
  const Schema* lhs_from = &of_source;
  if (!sigma.source_to_target()) {
    copy = BuildTargetCopyMapping(by);
    chasing = copy.get();
    lhs_from = &of_target;
  }
  Instance canonical(&chasing->source());
  FreezeAtoms(TranslateAtoms(sigma.lhs(), *lhs_from, chasing->source()),
              assignment, &canonical);

  ChaseOptions chase_options;
  chase_options.max_steps = options.chase_max_steps;
  chase_options.cancel = options.cancel;
  ChaseResult chase = Chase(*chasing, canonical, chase_options);
  if (chase.outcome != ChaseOutcome::kSuccess) {
    // Step limit, or an egd equated two distinct constants. The failure is
    // not generic in the frozen constants (a match collapsing two of them
    // might chase fine), so stay conservative.
    return ImplicationVerdict::kInconclusive;
  }

  int64_t next_null = chase.next_null_id;
  for (VarId v = 0; v < static_cast<VarId>(sigma.num_vars()); ++v) {
    if (!sigma.IsUniversal(v)) assignment[v] = Value::Null(next_null++);
  }
  Instance rhs(&chase.target->schema());
  FreezeAtoms(TranslateAtoms(sigma.rhs(), of_target, chase.target->schema()),
              assignment, &rhs);
  return FindHomomorphism(rhs, *chase.target).has_value()
             ? ImplicationVerdict::kImplied
             : ImplicationVerdict::kNotImplied;
}

/// Σ_by ⊨ ε for an egd ε of the other mapping. Unlike tgds, ε's variables
/// are frozen to fresh labeled NULLS: constants can never be unified, but
/// the egd's premise must stay generic under unification for the test to be
/// exact. After chasing, the equality must hold on EVERY match of the
/// premise — the chase result is itself a model of Σ_by, so one violating
/// match is a genuine countermodel, and conversely a violating match in any
/// model pulls back through the universal-solution homomorphism.
ImplicationVerdict TestEgdImplication(const Egd& egd, const Schema& of_target,
                                      const SchemaMapping& by,
                                      const ContainmentOptions& options) {
  std::unique_ptr<SchemaMapping> copy = BuildTargetCopyMapping(by);
  std::vector<Value> assignment(egd.num_vars());
  for (VarId v = 0; v < static_cast<VarId>(egd.num_vars()); ++v) {
    assignment[v] = Value::Null(v + 1);
  }
  Instance canonical(&copy->source());
  std::vector<Atom> lhs = TranslateAtoms(egd.lhs(), of_target, copy->source());
  FreezeAtoms(lhs, assignment, &canonical);

  ChaseOptions chase_options;
  chase_options.max_steps = options.chase_max_steps;
  chase_options.first_null_id = static_cast<int64_t>(egd.num_vars()) + 1;
  chase_options.cancel = options.cancel;
  ChaseResult chase = Chase(*copy, canonical, chase_options);
  if (chase.outcome == ChaseOutcome::kEgdFailure) {
    // The all-null canonical premise is fully generic: a failing chase
    // derivation transfers along any match of the premise into any model of
    // Σ_by, so no model contains a match at all and ε holds vacuously.
    return ImplicationVerdict::kImplied;
  }
  if (chase.outcome != ChaseOutcome::kSuccess) {
    return ImplicationVerdict::kInconclusive;
  }

  Binding binding(egd.num_vars());
  MatchIterator it(*chase.target, lhs, &binding);
  while (it.Next()) {
    if (!(binding.Get(egd.left()) == binding.Get(egd.right()))) {
      return ImplicationVerdict::kNotImplied;
    }
  }
  return ImplicationVerdict::kImplied;
}

/// De-freezes the failing tgd's canonical database into a counterexample a
/// person can chase by hand: fresh readable constants (`frz_<var>`,
/// uniquified against every constant either mapping mentions) stand in for
/// the frozen universal variables.
void BuildCounterexample(const Tgd& sigma, const SchemaMapping& of,
                         const SchemaMapping& other,
                         ContainmentDirection* direction) {
  std::unordered_set<std::string> taken;
  auto collect = [&taken](const SchemaMapping& mapping) {
    auto scan = [&taken](const std::vector<Atom>& atoms) {
      for (const Atom& atom : atoms) {
        for (const Term& term : atom.terms) {
          if (!term.is_var() && term.value().kind() == Value::Kind::kString) {
            taken.insert(term.value().AsString());
          }
        }
      }
    };
    for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
      scan(mapping.tgd(id).lhs());
      scan(mapping.tgd(id).rhs());
    }
    for (EgdId id = 0; id < static_cast<EgdId>(mapping.NumEgds()); ++id) {
      scan(mapping.egd(id).lhs());
    }
  };
  collect(of);
  collect(other);

  std::vector<Value> assignment(sigma.num_vars());
  for (VarId v = 0; v < static_cast<VarId>(sigma.num_vars()); ++v) {
    if (!sigma.IsUniversal(v)) continue;
    std::string name = "frz_" + sigma.var_names()[v];
    while (!taken.insert(name).second) name += "_";
    assignment[v] = Value::Str(std::move(name));
  }
  auto instance = std::make_unique<Instance>(&of.source());
  FreezeAtoms(sigma.lhs(), assignment, instance.get());
  direction->counterexample_facts = WriteFacts(*instance, {});
  direction->counterexample = std::move(instance);
}

/// Tests every dependency of `of` for implication by `by` (tgds in TgdId
/// order, then egds). This is the direction "chase_of(I) ↪ chase_by(I)".
ContainmentDirection CheckDirection(const SchemaMapping& of,
                                    const SchemaMapping& by,
                                    const ContainmentOptions& options,
                                    size_t* chases_run) {
  ContainmentDirection direction;
  for (TgdId id = 0; id < static_cast<TgdId>(of.NumTgds()); ++id) {
    ThrowIfCancelled(options.cancel);
    const Tgd& tgd = of.tgd(id);
    ++*chases_run;
    ImplicationVerdict verdict =
        TestTgdImplication(tgd, of.source(), of.target(), by, options);
    direction.dependencies.push_back({false, id, tgd.name(), verdict});
    switch (verdict) {
      case ImplicationVerdict::kImplied: ++direction.implied; break;
      case ImplicationVerdict::kNotImplied: ++direction.not_implied; break;
      case ImplicationVerdict::kInconclusive:
        ++direction.inconclusive;
        break;
    }
    if (verdict == ImplicationVerdict::kNotImplied &&
        direction.witness.empty()) {
      direction.witness = tgd.ToString(of.source(), of.target());
      if (tgd.source_to_target()) BuildCounterexample(tgd, of, by, &direction);
    }
  }
  for (EgdId id = 0; id < static_cast<EgdId>(of.NumEgds()); ++id) {
    ThrowIfCancelled(options.cancel);
    const Egd& egd = of.egd(id);
    ++*chases_run;
    ImplicationVerdict verdict =
        TestEgdImplication(egd, of.target(), by, options);
    direction.dependencies.push_back({true, id, egd.name(), verdict});
    switch (verdict) {
      case ImplicationVerdict::kImplied: ++direction.implied; break;
      case ImplicationVerdict::kNotImplied: ++direction.not_implied; break;
      case ImplicationVerdict::kInconclusive:
        ++direction.inconclusive;
        break;
    }
    if (verdict == ImplicationVerdict::kNotImplied &&
        direction.witness.empty()) {
      direction.witness = egd.ToString(of.target());
    }
  }
  direction.holds =
      direction.not_implied == 0 && direction.inconclusive == 0;
  return direction;
}

void RenderDirection(const char* label, const ContainmentDirection& direction,
                     std::string* out) {
  *out += label;
  if (direction.holds) {
    *out += ": holds (" + std::to_string(direction.implied) +
            " dependencies implied)\n";
    return;
  }
  *out += ": fails (" + std::to_string(direction.implied) + " implied, " +
          std::to_string(direction.not_implied) + " not implied, " +
          std::to_string(direction.inconclusive) + " inconclusive)\n";
  if (!direction.witness.empty()) {
    *out += "  first unimplied: " + direction.witness + "\n";
  }
}

}  // namespace

std::string ContainmentReport::Summary() const {
  std::string out =
      "containment: " + std::string(ContainmentVerdictName(verdict)) + "\n";
  if (!comparable) {
    out += "schemas incomparable: " + incomparable_reason + "\n";
    return out;
  }
  RenderDirection("m1 in m2", m1_in_m2, &out);
  RenderDirection("m2 in m1", m2_in_m1, &out);
  if (!m1_in_m2.counterexample_facts.empty()) {
    out += "counterexample source instance (chasing it under m1 derives "
           "facts m2 never does):\n";
    out += m1_in_m2.counterexample_facts;
  }
  if (!m2_in_m1.counterexample_facts.empty()) {
    out += "counterexample source instance (chasing it under m2 derives "
           "facts m1 never does):\n";
    out += m2_in_m1.counterexample_facts;
  }
  return out;
}

ContainmentReport CheckContainment(const SchemaMapping& m1,
                                   const SchemaMapping& m2,
                                   const ContainmentOptions& options) {
  obs::TraceSpan span("analysis", "containment");
  ContainmentReport report;
  report.comparable =
      CompatibleSchemas(m1, m2, &report.incomparable_reason);
  if (report.comparable) {
    report.m1_in_m2 = CheckDirection(m1, m2, options, &report.chases_run);
    report.m2_in_m1 = CheckDirection(m2, m1, options, &report.chases_run);
    if (report.m1_in_m2.holds && report.m2_in_m1.holds) {
      report.verdict = ContainmentVerdict::kEquivalent;
    } else if (report.m1_in_m2.holds) {
      report.verdict = ContainmentVerdict::kContained;
    } else if (report.m2_in_m1.holds) {
      report.verdict = ContainmentVerdict::kContains;
    } else {
      report.verdict = ContainmentVerdict::kIncomparable;
    }
  }
  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("analysis.containment_checks")->Increment();
    registry.GetCounter("analysis.containment_chases")
        ->Add(report.chases_run);
  }
  return report;
}

}  // namespace spider
