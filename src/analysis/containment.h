#ifndef SPIDER_ANALYSIS_CONTAINMENT_H_
#define SPIDER_ANALYSIS_CONTAINMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/cancel.h"
#include "mapping/schema_mapping.h"
#include "storage/instance.h"

namespace spider {

/// Verdict of one dependency-implication test (is σ a logical consequence
/// of the other mapping's dependency set?).
enum class ImplicationVerdict {
  kImplied,
  kNotImplied,
  kInconclusive,  ///< Step limit, or a chase failure the test cannot read.
};

const char* ImplicationVerdictName(ImplicationVerdict verdict);

/// Containment of schema mappings in the Calì–Torlone sense: M1 ⊑ M2 iff
/// for every source instance I the canonical solution chase_M1(I) maps
/// homomorphically into chase_M2(I) — equivalently, iff Σ2 ⊨ Σ1.
enum class ContainmentVerdict {
  kEquivalent,    ///< Both directions hold: the mappings are interchangeable.
  kContained,     ///< M1 ⊑ M2 only: M2 derives everything M1 does (and more).
  kContains,      ///< M2 ⊑ M1 only.
  kIncomparable,  ///< Neither direction holds, or the schemas differ.
};

const char* ContainmentVerdictName(ContainmentVerdict verdict);

/// Implication result for one dependency of the checked mapping.
struct DependencyImplication {
  bool is_egd = false;
  /// TgdId or EgdId within the checked mapping.
  int32_t id = -1;
  std::string name;
  ImplicationVerdict verdict = ImplicationVerdict::kInconclusive;
};

/// One direction of the containment check: every dependency of the CHECKED
/// mapping tested for implication by the OTHER mapping's dependency set.
struct ContainmentDirection {
  /// All dependencies implied (no kNotImplied and no kInconclusive).
  bool holds = false;
  size_t implied = 0;
  size_t not_implied = 0;
  size_t inconclusive = 0;
  /// Per-dependency verdicts, tgds (in TgdId order) then egds.
  std::vector<DependencyImplication> dependencies;
  /// Rendered text of the first not-implied dependency, empty when none.
  std::string witness;
  /// Counterexample source instance for the first not-implied s-t tgd (over
  /// the CHECKED mapping's source schema, which must outlive this report):
  /// chasing it under the checked mapping derives facts the other mapping's
  /// chase never produces. Null when the failure involves only target
  /// dependencies (the witness text still names the culprit).
  std::unique_ptr<Instance> counterexample;
  /// The counterexample's facts rendered as `Rel(v, ...);` lines.
  std::string counterexample_facts;
};

struct ContainmentOptions {
  /// Step budget per frozen-LHS chase.
  size_t chase_max_steps = 100'000;
  const CancelToken* cancel = nullptr;
};

/// The whole-mapping containment report. Move-only (it may own a
/// counterexample instance).
struct ContainmentReport {
  /// Schemas match by relation name and arity in both directions; every
  /// verdict other than on-the-face incomparability requires this.
  bool comparable = false;
  std::string incomparable_reason;

  ContainmentVerdict verdict = ContainmentVerdict::kIncomparable;
  /// chase_M1(I) ↪ chase_M2(I): M1's dependencies implied by M2 (Σ2 ⊨ Σ1).
  ContainmentDirection m1_in_m2;
  /// The opposite direction.
  ContainmentDirection m2_in_m1;

  size_t chases_run = 0;

  /// Deterministic multi-line human rendering of the whole report.
  std::string Summary() const;
};

/// Decides containment/equivalence of two mappings over matching schemas by
/// the chase criterion: each dependency σ of one mapping is implied by the
/// other mapping Σ iff chasing σ's frozen canonical database with Σ yields
/// an instance σ's conclusion maps into (frozen constants fixed pointwise).
/// Egds are frozen to fresh labeled nulls instead of constants — nulls stay
/// generic under unification, which makes the egd test exact: the implied
/// equality must hold on every match of the egd's premise in the chase
/// result. Sound and complete whenever the chases terminate; step-limit or
/// unreadable chase failures surface as kInconclusive (and block `holds`).
ContainmentReport CheckContainment(const SchemaMapping& m1,
                                   const SchemaMapping& m2,
                                   const ContainmentOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ANALYSIS_CONTAINMENT_H_
