#include "analysis/diagnostic.h"

#include <sstream>

namespace spider {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string RenderDiagnostic(const Diagnostic& diagnostic) {
  std::ostringstream os;
  if (diagnostic.span.valid()) {
    os << diagnostic.span.line << ':' << diagnostic.span.col;
  } else {
    os << '-';
  }
  os << ": " << SeverityName(diagnostic.severity) << ": [" << diagnostic.pass
     << '/' << diagnostic.code << "] " << diagnostic.message << '\n';
  if (!diagnostic.hint.empty()) {
    os << "    hint: " << diagnostic.hint << '\n';
  }
  return os.str();
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  if (diagnostics.empty()) return "no findings\n";
  std::string out;
  for (const Diagnostic& d : diagnostics) out += RenderDiagnostic(d);
  return out;
}

namespace {

void AppendJsonString(std::ostream& os, const std::string& text) {
  os << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"severity\": \""
       << SeverityName(d.severity) << "\", \"pass\": ";
    AppendJsonString(os, d.pass);
    os << ", \"code\": ";
    AppendJsonString(os, d.code);
    if (d.tgd >= 0) os << ", \"tgd\": " << d.tgd;
    if (d.egd >= 0) os << ", \"egd\": " << d.egd;
    if (d.span.valid()) {
      os << ", \"span\": {\"line\": " << d.span.line
         << ", \"col\": " << d.span.col << ", \"end_line\": " << d.span.end_line
         << ", \"end_col\": " << d.span.end_col << "}";
    }
    os << ", \"message\": ";
    AppendJsonString(os, d.message);
    if (!d.hint.empty()) {
      os << ", \"hint\": ";
      AppendJsonString(os, d.hint);
    }
    os << "}";
  }
  os << (diagnostics.empty() ? "]" : "\n]");
  os << '\n';
  return os.str();
}

}  // namespace spider
