#ifndef SPIDER_ANALYSIS_DIAGNOSTIC_H_
#define SPIDER_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "mapping/dependency.h"
#include "mapping/source_span.h"

namespace spider {

/// How much a finding matters. Notes are informational, warnings flag
/// constructs that are occasionally intended (projections drop attributes
/// legitimately), errors flag mappings that are almost certainly broken.
enum class Severity { kNote, kWarning, kError };

const char* SeverityName(Severity severity);

/// One finding of the semantic analyzer. Every pass emits this common
/// record: a stable machine tag (`pass` + `code`), the offending dependency,
/// a source span anchored to the parsed scenario text (invalid for
/// programmatically built mappings), a human message, and an optional fix-it
/// hint. Renderable as text (RenderDiagnostics) or JSON (DiagnosticsToJson)
/// for tooling.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  /// The pass that produced the finding: "shape", "coverage", "termination",
  /// "subsumption" or "egd".
  std::string pass;
  /// Stable machine tag within the pass, e.g. "dropped-variable".
  std::string code;
  /// The offending tgd, or -1 when the finding is not about one tgd.
  TgdId tgd = -1;
  /// The offending egd, or -1.
  EgdId egd = -1;
  /// Anchor in the scenario text; invalid (line 0) when unknown.
  SourceSpan span;
  std::string message;
  /// Optional fix-it hint ("add a join variable shared by the LHS atoms").
  std::string hint;
};

/// Renders one diagnostic: `line:col: severity: [pass/code] message` plus an
/// indented `hint:` line when present. Spanless diagnostics render `-` in
/// place of the position.
std::string RenderDiagnostic(const Diagnostic& diagnostic);

/// Renders all diagnostics, one per entry, or "no findings\n" when empty.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics);

/// Machine-readable rendering: a JSON array of objects with keys severity,
/// pass, code, message and — when meaningful — tgd, egd, span {line, col,
/// end_line, end_col} and hint. Key order is fixed, so equal diagnostics
/// render byte-identically (the fuzz determinism tests rely on this).
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

}  // namespace spider

#endif  // SPIDER_ANALYSIS_DIAGNOSTIC_H_
