#include "analysis/diff_lint.h"

#include <map>
#include <utility>

#include "obs/trace.h"

namespace spider {
namespace {

/// Span-free content key: two findings are "the same" when everything but
/// their anchor matches, so edits that only move dependencies down the file
/// do not show up as churn.
std::string DiagnosticKey(const Diagnostic& diagnostic) {
  return std::string(SeverityName(diagnostic.severity)) + "|" +
         diagnostic.pass + "|" + diagnostic.code + "|" + diagnostic.message +
         "|" + diagnostic.hint;
}

std::vector<std::string> RenderedDependencies(const SchemaMapping& mapping) {
  std::vector<std::string> out;
  for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
    out.push_back(mapping.tgd(id).ToString(mapping.source(), mapping.target()));
  }
  for (EgdId id = 0; id < static_cast<EgdId>(mapping.NumEgds()); ++id) {
    out.push_back(mapping.egd(id).ToString(mapping.target()));
  }
  return out;
}

/// Elements of `a` not matched by an element of `b` (multiset semantics),
/// in `a`'s order.
std::vector<std::string> MultisetDiff(const std::vector<std::string>& a,
                                      const std::vector<std::string>& b) {
  std::map<std::string, int> counts;
  for (const std::string& s : b) ++counts[s];
  std::vector<std::string> out;
  for (const std::string& s : a) {
    auto it = counts.find(s);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.push_back(s);
  }
  return out;
}

std::vector<Diagnostic> DiagnosticDiff(const std::vector<Diagnostic>& a,
                                       const std::vector<Diagnostic>& b) {
  std::map<std::string, int> counts;
  for (const Diagnostic& d : b) ++counts[DiagnosticKey(d)];
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : a) {
    auto it = counts.find(DiagnosticKey(d));
    if (it != counts.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.push_back(d);
  }
  return out;
}

}  // namespace

std::string DiffLintReport::Summary() const {
  std::string out =
      "diff-lint: " + std::to_string(added_dependencies.size()) +
      " dependencies added, " + std::to_string(removed_dependencies.size()) +
      " removed; " + std::to_string(introduced.size()) +
      " findings introduced, " + std::to_string(resolved.size()) +
      " resolved\n";
  for (const std::string& dep : added_dependencies) out += "+ " + dep + "\n";
  for (const std::string& dep : removed_dependencies) out += "- " + dep + "\n";
  if (!introduced.empty()) {
    out += "introduced findings:\n" + RenderDiagnostics(introduced);
  }
  if (!resolved.empty()) {
    out += "resolved findings:\n" + RenderDiagnostics(resolved);
  }
  if (containment_checked) {
    out += "version containment (m1 = old, m2 = new): " +
           std::string(ContainmentVerdictName(containment)) + "\n";
  }
  return out;
}

DiffLintReport DiffLint(const SchemaMapping& old_mapping,
                        const SchemaMapping& new_mapping,
                        const DiffLintOptions& options) {
  obs::TraceSpan span("analysis", "diff_lint");
  DiffLintReport report;

  AnalysisReport old_report = AnalyzeMapping(old_mapping, options.analysis);
  AnalysisReport new_report = AnalyzeMapping(new_mapping, options.analysis);

  std::vector<std::string> old_deps = RenderedDependencies(old_mapping);
  std::vector<std::string> new_deps = RenderedDependencies(new_mapping);
  report.added_dependencies = MultisetDiff(new_deps, old_deps);
  report.removed_dependencies = MultisetDiff(old_deps, new_deps);

  report.introduced =
      DiagnosticDiff(new_report.diagnostics, old_report.diagnostics);
  report.resolved =
      DiagnosticDiff(old_report.diagnostics, new_report.diagnostics);

  if (options.check_containment) {
    ContainmentOptions containment_options;
    containment_options.chase_max_steps = options.analysis.chase_max_steps;
    containment_options.cancel = options.analysis.cancel;
    ContainmentReport containment =
        CheckContainment(old_mapping, new_mapping, containment_options);
    report.containment_checked = true;
    report.containment = containment.verdict;
    report.containment_summary = containment.Summary();
  }
  return report;
}

}  // namespace spider
