#ifndef SPIDER_ANALYSIS_DIFF_LINT_H_
#define SPIDER_ANALYSIS_DIFF_LINT_H_

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/containment.h"
#include "mapping/schema_mapping.h"

namespace spider {

struct DiffLintOptions {
  /// Pass selection and budgets for the analysis run on each version.
  AnalysisOptions analysis;
  /// Also decide containment between the versions (one extra chase per
  /// dependency per direction).
  bool check_containment = true;
};

/// What changed between two versions of a mapping, diagnostics-wise: the
/// dependency edits plus only the diagnostics the edit introduced or
/// resolved. Unchanged findings are suppressed — the reviewer of a mapping
/// edit wants the delta, not the backlog.
struct DiffLintReport {
  /// Dependencies present in exactly one version, rendered (multiset diff
  /// on rendered text, so renames show as one removal plus one addition).
  std::vector<std::string> added_dependencies;
  std::vector<std::string> removed_dependencies;

  /// Diagnostics in the new version with no counterpart in the old one.
  /// Alignment is by content (severity, pass, code, message, hint) and
  /// deliberately ignores spans, so dependencies that merely moved lines
  /// produce no noise.
  std::vector<Diagnostic> introduced;
  /// Old diagnostics with no counterpart in the new version.
  std::vector<Diagnostic> resolved;

  /// Containment verdict old-vs-new (old as M1), when requested and the
  /// schemas are comparable.
  bool containment_checked = false;
  ContainmentVerdict containment = ContainmentVerdict::kIncomparable;
  std::string containment_summary;

  bool Clean() const {
    return added_dependencies.empty() && removed_dependencies.empty() &&
           introduced.empty() && resolved.empty();
  }

  /// Deterministic human rendering of the whole delta.
  std::string Summary() const;
};

/// Analyzes both versions and reports only the changed diagnostics plus the
/// dependency edits and (optionally) the containment verdict between the
/// versions. Deterministic: equal inputs yield byte-identical summaries.
DiffLintReport DiffLint(const SchemaMapping& old_mapping,
                        const SchemaMapping& new_mapping,
                        const DiffLintOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ANALYSIS_DIFF_LINT_H_
