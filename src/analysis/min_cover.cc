#include "analysis/min_cover.h"

#include <utility>

#include "analysis/subsumption.h"
#include "base/status.h"
#include "chase/homomorphism.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routes/one_route.h"

namespace spider {
namespace {

/// Applies an instance homomorphism to one frozen tuple (nulls through the
/// map — identity when unconstrained — constants pointwise).
Tuple ApplyHom(const InstanceHom& hom, const Tuple& tuple) {
  std::vector<Value> out;
  out.reserve(tuple.arity());
  for (size_t i = 0; i < tuple.arity(); ++i) {
    const Value& value = tuple.at(i);
    if (value.is_null()) {
      auto it = hom.find(value.AsNull().id);
      out.push_back(it == hom.end() ? value : it->second);
    } else {
      out.push_back(value);
    }
  }
  return Tuple(std::move(out));
}

}  // namespace

std::string MinCoverResult::Summary(const SchemaMapping& mapping) const {
  std::string out = "min-cover: " + std::to_string(NumRemoved()) +
                    " of " + std::to_string(tested) + " tgds redundant";
  if (inconclusive > 0) {
    out += " (" + std::to_string(inconclusive) + " inconclusive, kept)";
  }
  out += "\n";
  for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
    out += (kept[id] ? "  keep   " : "  remove ") + mapping.tgd(id).name() +
           "\n";
  }
  for (const RemovalCertificate& certificate : removed) {
    out += "certificate for " + certificate.name + ": route " +
           certificate.route.TgdNames(*certificate.scenario.mapping) +
           " derives " + std::to_string(certificate.facts.size()) +
           " fact(s)\n";
  }
  return out;
}

std::unique_ptr<SchemaMapping> MinCoverResult::BuildReduced(
    const SchemaMapping& mapping) const {
  SPIDER_CHECK(kept.size() == mapping.NumTgds(),
               "MinCoverResult::BuildReduced: kept mask size mismatch");
  auto reduced = std::make_unique<SchemaMapping>(mapping.source(),
                                                 mapping.target());
  for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
    if (kept[id]) reduced->AddTgd(mapping.tgd(id));
  }
  for (EgdId id = 0; id < static_cast<EgdId>(mapping.NumEgds()); ++id) {
    reduced->AddEgd(mapping.egd(id));
  }
  return reduced;
}

MinCoverResult ComputeMinCover(const SchemaMapping& mapping,
                               const MinCoverOptions& options) {
  obs::TraceSpan span("analysis", "min_cover");
  MinCoverResult result;
  result.kept.assign(mapping.NumTgds(), true);

  for (TgdId sigma = 0; sigma < static_cast<TgdId>(mapping.NumTgds());
       ++sigma) {
    ThrowIfCancelled(options.cancel);
    ++result.tested;
    const Tgd& tgd = mapping.tgd(sigma);

    FrozenChaseOptions frozen_options;
    frozen_options.include_sigma = false;
    frozen_options.include_egds = true;
    frozen_options.max_steps = options.chase_max_steps;
    frozen_options.active_tgds = &result.kept;
    frozen_options.cancel = options.cancel;
    FrozenChaseResult frozen = ChaseFrozenLhs(mapping, sigma, frozen_options);
    if (!frozen.ok) {
      ++result.inconclusive;
      continue;
    }

    // σ is implied by the kept rest iff its frozen RHS (existentials free)
    // maps into the chase result.
    std::vector<Value> assignment = frozen.frozen;
    int64_t next_null = frozen.chase.next_null_id;
    for (VarId v = 0; v < static_cast<VarId>(tgd.num_vars()); ++v) {
      if (!tgd.IsUniversal(v)) assignment[v] = Value::Null(next_null++);
    }
    Instance rhs(&frozen.derived->target());
    FreezeAtoms(tgd.rhs(), assignment, &rhs);
    std::optional<InstanceHom> hom =
        FindHomomorphism(rhs, *frozen.chase.target);
    if (!hom.has_value()) continue;  // necessary: keep

    // Certificate: locate σ's RHS image in the chase target and find a
    // route to it using only kept dependencies. Note rhs atoms use the
    // ORIGINAL mapping's target relation ids — identical to the derived
    // mapping's target ids for both the s-t case (same schemas) and the
    // copy-mapping case (the copy preserves relation order).
    std::vector<FactRef> facts;
    bool located = true;
    for (const Atom& atom : tgd.rhs()) {
      std::vector<Value> frozen_tuple;
      frozen_tuple.reserve(atom.terms.size());
      for (const Term& term : atom.terms) {
        frozen_tuple.push_back(term.is_var() ? assignment[term.var()]
                                             : term.value());
      }
      Tuple image = ApplyHom(*hom, Tuple(std::move(frozen_tuple)));
      std::optional<int32_t> row =
          frozen.chase.target->FindRow(atom.relation, image);
      if (!row.has_value()) {
        located = false;
        break;
      }
      FactRef ref;
      ref.side = Side::kTarget;
      ref.relation = atom.relation;
      ref.row = *row;
      facts.push_back(ref);
    }
    if (!located) {
      ++result.inconclusive;
      continue;
    }

    OneRouteResult route = ComputeOneRoute(*frozen.derived,
                                           *frozen.frozen_source,
                                           *frozen.chase.target, facts);
    if (!route.found) {
      ++result.inconclusive;
      continue;
    }

    RemovalCertificate certificate;
    certificate.tgd = sigma;
    certificate.name = tgd.name();
    certificate.text = tgd.ToString(mapping.source(), mapping.target());
    certificate.scenario.mapping = std::move(frozen.derived);
    certificate.scenario.source = std::move(frozen.frozen_source);
    certificate.scenario.target = std::move(frozen.chase.target);
    certificate.scenario.max_null_id = next_null - 1;
    certificate.facts = std::move(facts);
    certificate.route = std::move(route.route);
    result.kept[sigma] = false;
    result.removed.push_back(std::move(certificate));
  }

  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("analysis.min_cover_runs")->Increment();
    registry.GetCounter("analysis.min_cover_removed")
        ->Add(result.NumRemoved());
  }
  return result;
}

}  // namespace spider
