#ifndef SPIDER_ANALYSIS_MIN_COVER_H_
#define SPIDER_ANALYSIS_MIN_COVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/cancel.h"
#include "mapping/scenario.h"
#include "mapping/schema_mapping.h"
#include "routes/route.h"

namespace spider {

/// Proof that one tgd was safely removed: a self-contained scenario (the
/// removed tgd's frozen canonical source chased under the KEPT dependencies
/// only) in which every fact the removed tgd would derive is already present,
/// plus a route deriving exactly those facts with kept dependencies. The
/// scenario is replayable in the debugger: load it, ask for a route to
/// `facts`, and watch the removed tgd never fire.
struct RemovalCertificate {
  TgdId tgd = -1;
  std::string name;
  /// The removed tgd rendered over the original mapping's schemas.
  std::string text;
  /// mapping := kept dependencies (for a removed target tgd this is the
  /// `__copy_<rel>`-bridged copy mapping, as in the subsumption pass);
  /// source := the frozen canonical LHS; target := its chase.
  Scenario scenario;
  /// The removed tgd's RHS image inside scenario.target (via the
  /// implication homomorphism).
  std::vector<FactRef> facts;
  /// Route to `facts` using only kept dependencies; validates against the
  /// scenario by construction.
  Route route;
};

/// A minimal cover of the mapping's tgd set.
struct MinCoverResult {
  /// Per TgdId: true when the tgd is part of the cover. Egds are never
  /// candidates for removal (they prune models rather than derive facts).
  std::vector<bool> kept;
  /// One certificate per removed tgd, in TgdId order.
  std::vector<RemovalCertificate> removed;
  /// Tgds whose implication test was inconclusive (step limit, egd failure,
  /// or no certificate route); kept conservatively.
  size_t inconclusive = 0;
  size_t tested = 0;

  size_t NumRemoved() const { return removed.size(); }

  /// Deterministic one-line-per-tgd rendering.
  std::string Summary(const SchemaMapping& mapping) const;

  /// The reduced mapping: kept tgds (ids compacted, order preserved) plus
  /// all egds. Equivalent to the original whenever every removal was
  /// certified.
  std::unique_ptr<SchemaMapping> BuildReduced(
      const SchemaMapping& mapping) const;
};

struct MinCoverOptions {
  /// Step budget per frozen-LHS chase.
  size_t chase_max_steps = 100'000;
  const CancelToken* cancel = nullptr;
};

/// Computes a minimal cover by one pass in TgdId order: each tgd is tested
/// for implication by the currently-kept rest (the PR 3 subsumption chase
/// with an active-subset mask), and removed only when a certificate route
/// exists. Implication is monotone in the chasing set, so no removed tgd
/// ever becomes necessary again and the surviving set is a minimal cover
/// with respect to the conclusive tests: removing any further kept tgd whose
/// test was conclusive would change the mapping's semantics.
MinCoverResult ComputeMinCover(const SchemaMapping& mapping,
                               const MinCoverOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ANALYSIS_MIN_COVER_H_
