#include "analysis/position_flow.h"

namespace spider {

PositionIndex::PositionIndex(const Schema& schema) {
  offsets_.reserve(schema.size());
  for (RelationId rel = 0; rel < static_cast<RelationId>(schema.size());
       ++rel) {
    offsets_.push_back(static_cast<int>(relations_.size()));
    for (int col = 0; col < static_cast<int>(schema.relation(rel).arity());
         ++col) {
      relations_.push_back(rel);
      columns_.push_back(col);
    }
  }
}

namespace {

/// Positions (as dense ids under `index`) where variable v occurs among
/// `atoms`.
std::vector<int> VarPositions(const std::vector<Atom>& atoms,
                              const PositionIndex& index, VarId v) {
  std::vector<int> out;
  for (const Atom& atom : atoms) {
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      if (atom.terms[i].is_var() && atom.terms[i].var() == v) {
        out.push_back(index.Id(atom.relation, static_cast<int>(i)));
      }
    }
  }
  return out;
}

}  // namespace

PositionFlow ComputePositionFlow(const SchemaMapping& mapping) {
  PositionFlow flow{PositionIndex(mapping.source()),
                    PositionIndex(mapping.target())};
  flow.source_read.assign(flow.source.size(), false);
  flow.source_reaches_target.assign(flow.source.size(), false);
  flow.source_joins.assign(flow.source.size(), false);
  flow.target_written.assign(flow.target.size(), false);
  flow.target_can_hold_constant.assign(flow.target.size(), false);
  flow.target_directly_grounded.assign(flow.target.size(), false);

  // Direct facts from each tgd. For s-t tgds every universal variable (and
  // every constant) grounds its RHS positions; the corresponding LHS
  // positions reach the target.
  for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
    const Tgd& tgd = mapping.tgd(id);
    const PositionIndex& lhs_index =
        tgd.source_to_target() ? flow.source : flow.target;
    for (const Atom& atom : tgd.lhs()) {
      if (!tgd.source_to_target()) continue;
      for (size_t i = 0; i < atom.terms.size(); ++i) {
        flow.source_read[lhs_index.Id(atom.relation, static_cast<int>(i))] =
            true;
      }
    }
    for (const Atom& atom : tgd.rhs()) {
      for (size_t i = 0; i < atom.terms.size(); ++i) {
        int pos = flow.target.Id(atom.relation, static_cast<int>(i));
        flow.target_written[pos] = true;
        const Term& term = atom.terms[i];
        if (term.is_const()) {
          flow.target_directly_grounded[pos] = true;
          flow.target_can_hold_constant[pos] = true;
        } else if (tgd.IsUniversal(term.var())) {
          // The seed linter's notion counts any universal variable; only
          // s-t universals seed the constant fixpoint (a target tgd's
          // universal carries whatever its read positions can hold).
          flow.target_directly_grounded[pos] = true;
          if (tgd.source_to_target()) flow.target_can_hold_constant[pos] = true;
        }
      }
    }
    if (!tgd.source_to_target()) continue;
    for (VarId v = 0; v < static_cast<VarId>(tgd.num_vars()); ++v) {
      if (!tgd.IsUniversal(v)) continue;
      std::vector<int> lhs_pos = VarPositions(tgd.lhs(), flow.source, v);
      bool copied = !VarPositions(tgd.rhs(), flow.target, v).empty();
      for (int pos : lhs_pos) {
        if (copied) flow.source_reaches_target[pos] = true;
        if (lhs_pos.size() > 1) flow.source_joins[pos] = true;
      }
    }
  }

  // Fixpoint over the target tgds: a universal variable may carry a constant
  // only if ALL positions it reads can hold one — a match binds the variable
  // to a single value present at every read position, so one null-only read
  // position forces the value to be a null.
  bool changed = true;
  while (changed) {
    changed = false;
    for (TgdId id : mapping.target_tgds()) {
      const Tgd& tgd = mapping.tgd(id);
      for (VarId v = 0; v < static_cast<VarId>(tgd.num_vars()); ++v) {
        if (!tgd.IsUniversal(v)) continue;
        bool can_const = true;
        for (int pos : VarPositions(tgd.lhs(), flow.target, v)) {
          if (!flow.target_can_hold_constant[pos]) {
            can_const = false;
            break;
          }
        }
        if (!can_const) continue;
        for (int pos : VarPositions(tgd.rhs(), flow.target, v)) {
          if (!flow.target_can_hold_constant[pos]) {
            flow.target_can_hold_constant[pos] = true;
            changed = true;
          }
        }
      }
    }
  }
  return flow;
}

}  // namespace spider
