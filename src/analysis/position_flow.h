#ifndef SPIDER_ANALYSIS_POSITION_FLOW_H_
#define SPIDER_ANALYSIS_POSITION_FLOW_H_

#include <vector>

#include "mapping/schema_mapping.h"

namespace spider {

/// Dense ids for the positions (relation, attribute) of one schema.
class PositionIndex {
 public:
  explicit PositionIndex(const Schema& schema);

  int Id(RelationId rel, int col) const { return offsets_[rel] + col; }
  int size() const { return static_cast<int>(relations_.size()); }
  RelationId relation(int id) const { return relations_[id]; }
  int column(int id) const { return columns_[id]; }

 private:
  std::vector<int> offsets_;
  std::vector<RelationId> relations_;
  std::vector<int> columns_;
};

/// Data-independent value-flow facts about every schema position, computed
/// by a fixpoint over the dependencies. This is the transitive, multi-tgd
/// generalization of the seed linter's per-occurrence checks: a target
/// position is flagged null-only even when a target tgd copies into it, as
/// long as every value that can ever arrive there descends from an
/// existential; a source position is dead even when several tgds read it, as
/// long as none lets its value reach the target.
struct PositionFlow {
  PositionIndex source;
  PositionIndex target;

  // --- per source position ---
  /// Some s-t tgd reads the position's relation.
  std::vector<bool> source_read;
  /// Some s-t tgd copies the value at this position into the target.
  std::vector<bool> source_reaches_target;
  /// The value is compared (join: the variable occurs at another LHS
  /// position too) by some s-t tgd. With source_reaches_target false this
  /// means the position influences *which* facts appear but its values never
  /// do.
  std::vector<bool> source_joins;

  // --- per target position ---
  /// The position's relation is written by some tgd.
  std::vector<bool> target_written;
  /// Fixpoint: a constant can arrive here — directly (constant or universal
  /// variable of an s-t tgd in the RHS) or transitively (a target tgd whose
  /// universal variable reads only constant-capable positions). A written
  /// position where this is false only ever holds invented nulls.
  std::vector<bool> target_can_hold_constant;
  /// The seed linter's direct notion: some tgd fills the position with a
  /// constant or a universal variable. Kept so diagnostics can distinguish
  /// "no tgd supplies a value" from "values flow here but are always nulls".
  std::vector<bool> target_directly_grounded;
};

PositionFlow ComputePositionFlow(const SchemaMapping& mapping);

}  // namespace spider

#endif  // SPIDER_ANALYSIS_POSITION_FLOW_H_
