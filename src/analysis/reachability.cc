#include "analysis/reachability.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spider {

const char* ReachabilityName(Reachability reachability) {
  switch (reachability) {
    case Reachability::kUnreachable: return "unreachable";
    case Reachability::kConstantOnly: return "constant-only";
    case Reachability::kVarReachable: return "var-reachable";
  }
  return "unknown";
}

ReachabilityReport::ReachabilityReport(const Schema& target)
    : positions(target),
      position(positions.size(), Reachability::kUnreachable),
      relation_reachable(target.size(), false) {}

std::string ReachabilityReport::Summary(const Schema& target) const {
  std::string out;
  for (RelationId rel = 0; rel < static_cast<RelationId>(target.size());
       ++rel) {
    const RelationDef& def = target.relation(rel);
    if (!relation_reachable[rel]) {
      out += def.name() + ": unreachable\n";
      continue;
    }
    out += def.name() + "(";
    for (size_t i = 0; i < def.arity(); ++i) {
      if (i > 0) out += ", ";
      out += def.attribute(i) + "=" +
             ReachabilityName(At(rel, static_cast<int>(i)));
    }
    out += ")\n";
  }
  return out;
}

ReachabilityReport ComputeReachability(const SchemaMapping& mapping,
                                       const CancelToken* cancel) {
  obs::TraceSpan span("analysis", "reachability");
  ReachabilityReport report(mapping.target());
  report.tgd_fireable.assign(mapping.NumTgds(), false);

  // Monotone fixpoint: fireability and position levels only ever rise, so
  // the sweep count is bounded by the number of positions plus tgds.
  bool changed = true;
  while (changed) {
    ThrowIfCancelled(cancel);
    changed = false;
    for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
      const Tgd& tgd = mapping.tgd(id);
      bool fireable = true;
      if (!tgd.source_to_target()) {
        for (const Atom& atom : tgd.lhs()) {
          if (!report.relation_reachable[atom.relation]) {
            fireable = false;
            break;
          }
        }
      }
      if (!fireable) continue;
      if (!report.tgd_fireable[id]) {
        report.tgd_fireable[id] = true;
        changed = true;
      }

      // The class of values a universal variable can carry. For an s-t tgd
      // the source is assumed arbitrary, so every universal is
      // var-reachable. For a target tgd a binding needs one value present
      // at EVERY position the variable reads, so its class is capped by the
      // poorest of those positions.
      std::vector<Reachability> var_level(tgd.num_vars(),
                                          Reachability::kVarReachable);
      if (!tgd.source_to_target()) {
        for (const Atom& atom : tgd.lhs()) {
          for (size_t i = 0; i < atom.terms.size(); ++i) {
            const Term& term = atom.terms[i];
            if (!term.is_var()) continue;
            Reachability at = report.At(atom.relation, static_cast<int>(i));
            if (at < var_level[term.var()]) var_level[term.var()] = at;
          }
        }
      }

      for (const Atom& atom : tgd.rhs()) {
        if (!report.relation_reachable[atom.relation]) {
          report.relation_reachable[atom.relation] = true;
          changed = true;
        }
        for (size_t i = 0; i < atom.terms.size(); ++i) {
          const Term& term = atom.terms[i];
          Reachability contribution =
              term.is_const() ? Reachability::kConstantOnly
              : tgd.IsUniversal(term.var())
                  ? var_level[term.var()]
                  : Reachability::kConstantOnly;  // existential: labeled null
          int pid = report.positions.Id(atom.relation, static_cast<int>(i));
          if (report.position[pid] < contribution) {
            report.position[pid] = contribution;
            changed = true;
          }
        }
      }
    }
  }

  if (obs::MetricsEnabled()) {
    obs::Registry::Global()
        .GetCounter("analysis.reachability_runs")
        ->Increment();
  }
  return report;
}

}  // namespace spider
