#ifndef SPIDER_ANALYSIS_REACHABILITY_H_
#define SPIDER_ANALYSIS_REACHABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/position_flow.h"
#include "base/cancel.h"
#include "mapping/schema_mapping.h"

namespace spider {

/// What class of values a chase can ever place at a target position,
/// independent of the data. Ordered: each level includes the ones below it.
enum class Reachability : uint8_t {
  /// No chase sequence writes the position's relation at all — no route to
  /// any fact of it can exist, over any source instance.
  kUnreachable = 0,
  /// Facts can appear, but the position only ever holds constants written
  /// verbatim in some dependency or invented labeled nulls — never a value
  /// drawn from the source instance.
  kConstantOnly = 1,
  /// Source data can flow into the position.
  kVarReachable = 2,
};

const char* ReachabilityName(Reachability reachability);

/// Static route-reachability prediction over one mapping's target schema: a
/// fixpoint on the position-flow lattice classifying every target relation
/// and position before any chase runs. `spider_lint` warns on unreachable
/// relations ("no route will ever exist to facts of T.R"), and the debugger
/// short-circuits route queries whose goal facts all live in unreachable
/// relations.
struct ReachabilityReport {
  explicit ReachabilityReport(const Schema& target);

  /// Dense position ids over the target schema.
  PositionIndex positions;
  /// Per dense position id: the best (largest) value class reachable there.
  std::vector<Reachability> position;
  /// Per target RelationId: some chase sequence can create a fact of it.
  std::vector<bool> relation_reachable;
  /// Per TgdId of the analyzed mapping: the tgd can ever fire. S-t tgds are
  /// always fireable (the source is assumed populated); a target tgd is
  /// fireable iff every relation its LHS reads is reachable.
  std::vector<bool> tgd_fireable;

  bool Reachable(RelationId rel) const { return relation_reachable[rel]; }
  Reachability At(RelationId rel, int col) const {
    return position[positions.Id(rel, col)];
  }

  /// Deterministic rendering, one line per target relation in RelationId
  /// order: `Rel: unreachable` or `Rel(attr=level, ...)`.
  std::string Summary(const Schema& target) const;
};

/// Runs the reachability fixpoint. Conservative in the sound direction for
/// the debugger's short-circuit: kUnreachable is exact (no chase writes the
/// relation), while kConstantOnly/kVarReachable may overestimate what real
/// data achieves (joins can be empty at runtime).
ReachabilityReport ComputeReachability(const SchemaMapping& mapping,
                                       const CancelToken* cancel = nullptr);

}  // namespace spider

#endif  // SPIDER_ANALYSIS_REACHABILITY_H_
