#include "analysis/subsumption.h"

#include <string>
#include <utility>

#include "base/status.h"
#include "chase/homomorphism.h"

namespace spider {

// The \x01 prefix cannot be produced by the parser or any workload
// generator, so frozen constants never collide with real data values.
Value FrozenConstant(const std::string& name) {
  return Value::Str(std::string("\x01frz:") + name);
}

void FreezeAtoms(const std::vector<Atom>& atoms,
                 const std::vector<Value>& assignment, Instance* into) {
  for (const Atom& atom : atoms) {
    std::vector<Value> tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      tuple.push_back(term.is_var() ? assignment[term.var()] : term.value());
    }
    into->Insert(atom.relation, Tuple(std::move(tuple)));
  }
}

FrozenChaseResult ChaseFrozenLhs(const SchemaMapping& mapping, TgdId sigma,
                                 const FrozenChaseOptions& options) {
  SPIDER_CHECK(sigma >= 0 && sigma < static_cast<TgdId>(mapping.NumTgds()),
               "ChaseFrozenLhs: tgd id out of range");
  const Tgd& frozen_tgd = mapping.tgd(sigma);

  FrozenChaseResult result;
  result.frozen.resize(frozen_tgd.num_vars());
  for (VarId v = 0; v < static_cast<VarId>(frozen_tgd.num_vars()); ++v) {
    if (frozen_tgd.IsUniversal(v)) {
      result.frozen[v] = FrozenConstant(frozen_tgd.var_names()[v]);
    }
  }

  const std::vector<bool>* active = options.active_tgds;
  SPIDER_CHECK(active == nullptr || active->size() == mapping.NumTgds(),
               "ChaseFrozenLhs: active_tgds mask size mismatch");
  if (frozen_tgd.source_to_target()) {
    // Chase the frozen source instance with the original mapping (minus
    // sigma unless included).
    auto derived = std::make_unique<SchemaMapping>(mapping.source(),
                                                   mapping.target());
    for (TgdId id = 0; id < static_cast<TgdId>(mapping.NumTgds()); ++id) {
      if (id == sigma && !options.include_sigma) continue;
      if (id != sigma && active != nullptr && !(*active)[id]) continue;
      derived->AddTgd(mapping.tgd(id));
    }
    if (options.include_egds) {
      for (EgdId id = 0; id < static_cast<EgdId>(mapping.NumEgds()); ++id) {
        derived->AddEgd(mapping.egd(id));
      }
    }
    result.derived = std::move(derived);
  } else {
    // A target tgd's LHS lives in the target schema, but Chase() starts from
    // a source instance. Build a copy mapping: source := a copy of the
    // target schema, bridged by identity tgds, so the frozen LHS is copied
    // into the target verbatim and the target dependencies chase it there.
    // The original s-t tgds are irrelevant (nothing of the real source
    // exists in the frozen instance) and are dropped.
    Schema copy_source = mapping.target();
    auto derived = std::make_unique<SchemaMapping>(std::move(copy_source),
                                                   mapping.target());
    const Schema& target = mapping.target();
    for (RelationId rel = 0; rel < static_cast<RelationId>(target.size());
         ++rel) {
      const RelationDef& def = target.relation(rel);
      std::vector<std::string> vars;
      std::vector<Term> terms;
      for (size_t i = 0; i < def.arity(); ++i) {
        vars.push_back("v" + std::to_string(i));
        terms.push_back(Term::Var(static_cast<VarId>(i)));
      }
      Atom atom{rel, terms};
      derived->AddTgd(Tgd("__copy_" + def.name(), std::move(vars), {atom},
                          {atom}, /*source_to_target=*/true));
    }
    for (TgdId id : mapping.target_tgds()) {
      if (id == sigma && !options.include_sigma) continue;
      if (id != sigma && active != nullptr && !(*active)[id]) continue;
      derived->AddTgd(mapping.tgd(id));
    }
    if (options.include_egds) {
      for (EgdId id = 0; id < static_cast<EgdId>(mapping.NumEgds()); ++id) {
        derived->AddEgd(mapping.egd(id));
      }
    }
    result.derived = std::move(derived);
  }

  result.frozen_source =
      std::make_unique<Instance>(&result.derived->source());
  FreezeAtoms(frozen_tgd.lhs(), result.frozen, result.frozen_source.get());

  ChaseOptions chase_options;
  chase_options.max_steps = options.max_steps;
  chase_options.cancel = options.cancel;
  result.chase =
      Chase(*result.derived, *result.frozen_source, chase_options);
  result.ok = result.chase.outcome == ChaseOutcome::kSuccess;
  return result;
}

SubsumptionVerdict TestTgdSubsumption(const SchemaMapping& mapping,
                                      TgdId sigma, size_t max_steps) {
  SubsumptionTestOptions options;
  options.max_steps = max_steps;
  return TestTgdSubsumption(mapping, sigma, options);
}

SubsumptionVerdict TestTgdSubsumption(const SchemaMapping& mapping,
                                      TgdId sigma,
                                      const SubsumptionTestOptions& test) {
  const Tgd& tgd = mapping.tgd(sigma);
  FrozenChaseOptions options;
  options.include_sigma = false;
  options.include_egds = true;
  options.max_steps = test.max_steps;
  options.active_tgds = test.active_tgds;
  options.cancel = test.cancel;
  FrozenChaseResult frozen = ChaseFrozenLhs(mapping, sigma, options);
  if (!frozen.ok) return SubsumptionVerdict::kInconclusive;

  // Egd unifications may have rewritten the frozen constants' companions but
  // never the frozen constants themselves (constants are never substituted),
  // so the RHS test instance can use result.frozen directly. Existential
  // variables become labeled nulls — FindHomomorphism treats them as free
  // variables, which is exactly ∃y ψ(frz(x), y).
  std::vector<Value> assignment = frozen.frozen;
  int64_t next_null = frozen.chase.next_null_id;
  for (VarId v = 0; v < static_cast<VarId>(tgd.num_vars()); ++v) {
    if (!tgd.IsUniversal(v)) assignment[v] = Value::Null(next_null++);
  }
  Instance rhs(&frozen.derived->target());
  FreezeAtoms(tgd.rhs(), assignment, &rhs);

  return FindHomomorphism(rhs, *frozen.chase.target).has_value()
             ? SubsumptionVerdict::kImplied
             : SubsumptionVerdict::kNotImplied;
}

}  // namespace spider
