#ifndef SPIDER_ANALYSIS_SUBSUMPTION_H_
#define SPIDER_ANALYSIS_SUBSUMPTION_H_

#include <memory>
#include <vector>

#include "base/cancel.h"
#include "chase/chase.h"
#include "mapping/schema_mapping.h"
#include "storage/instance.h"

namespace spider {

/// Options for ChaseFrozenLhs.
struct FrozenChaseOptions {
  /// Include the frozen tgd itself among the chasing dependencies. The
  /// subsumption test excludes it (the question is whether the REST implies
  /// it); the egd-interaction pass includes it (the question is what an
  /// actual chase does right after firing it).
  bool include_sigma = false;
  /// Chase with the mapping's egds too.
  bool include_egds = true;
  /// Step budget; the frozen instance is tiny, so hitting this means the
  /// target tgds likely do not terminate.
  size_t max_steps = 100'000;
  /// Whole-mapping variant: when non-null (size NumTgds()), only tgds whose
  /// entry is true participate in the chase. `sigma` itself is still
  /// governed by include_sigma. The min-cover pass chases against the
  /// currently-kept subset through this mask.
  const std::vector<bool>* active_tgds = nullptr;
  /// Cooperative cancellation, polled by the underlying chase.
  const CancelToken* cancel = nullptr;
};

/// A frozen-LHS chase: the canonical instance of one tgd's LHS (universal
/// variables replaced by fresh frozen constants) chased with the other
/// dependencies of the mapping.
struct FrozenChaseResult {
  /// False when the chase did not complete (step limit or egd failure);
  /// `chase.outcome` says which.
  bool ok = false;
  /// The mapping actually chased. For a source-to-target tgd this mirrors
  /// the original; for a target tgd the source schema is a copy of the
  /// target schema bridged by identity `__copy_<rel>` tgds, because the
  /// chase starts from a source instance. The instances below hold pointers
  /// into this mapping's schemas, so it travels with them.
  std::unique_ptr<SchemaMapping> derived;
  /// The canonical (frozen) LHS instance the chase started from.
  std::unique_ptr<Instance> frozen_source;
  ChaseResult chase;
  /// Per VarId of the frozen tgd: the frozen constant for universal
  /// variables (default Value for existential ones).
  std::vector<Value> frozen;
};

/// Freezes `sigma`'s LHS into a canonical instance and chases it with the
/// mapping's dependencies (minus `sigma` unless `include_sigma`).
FrozenChaseResult ChaseFrozenLhs(const SchemaMapping& mapping, TgdId sigma,
                                 const FrozenChaseOptions& options = {});

enum class SubsumptionVerdict {
  kImplied,       ///< Σ \ {σ} logically implies σ: the tgd is redundant.
  kNotImplied,    ///< The chase completed and no homomorphism exists.
  kInconclusive,  ///< Chase hit the step limit or an egd failed.
};

/// Options for TestTgdSubsumption beyond the plain step budget.
struct SubsumptionTestOptions {
  size_t max_steps = 100'000;
  /// Only test against this subset of the mapping's tgds (see
  /// FrozenChaseOptions::active_tgds).
  const std::vector<bool>* active_tgds = nullptr;
  const CancelToken* cancel = nullptr;
};

/// Tests whether `sigma` is implied by the remaining dependencies, by the
/// classical chase argument: chase σ's frozen LHS with Σ \ {σ}; σ is implied
/// iff the frozen RHS maps homomorphically into the result (frozen constants
/// fixed pointwise, existentials free). Sound and complete when the chase
/// terminates [Cali & Torlone-style containment via the chase].
SubsumptionVerdict TestTgdSubsumption(const SchemaMapping& mapping,
                                      TgdId sigma,
                                      size_t max_steps = 100'000);
SubsumptionVerdict TestTgdSubsumption(const SchemaMapping& mapping,
                                      TgdId sigma,
                                      const SubsumptionTestOptions& options);

/// The frozen constant standing for universal variable `name` (a \x01-
/// prefixed string no parser or generator can produce, so it never collides
/// with data values). Exposed for the containment and min-cover passes,
/// which freeze dependencies across mappings.
Value FrozenConstant(const std::string& name);

/// Inserts the canonical instance of `atoms` into `into`: one tuple per
/// atom, variables replaced through `assignment` (indexed by VarId),
/// constants kept.
void FreezeAtoms(const std::vector<Atom>& atoms,
                 const std::vector<Value>& assignment, Instance* into);

}  // namespace spider

#endif  // SPIDER_ANALYSIS_SUBSUMPTION_H_
