#ifndef SPIDER_BASE_CANCEL_H_
#define SPIDER_BASE_CANCEL_H_

#include <atomic>
#include <cstdint>

#include "base/status.h"

namespace spider {

/// Cooperative cancellation flag shared between a requester (which flips it)
/// and engine hot loops (which poll it). The fast path is one relaxed atomic
/// load — cheap enough for per-pull / per-trigger checks — and there are no
/// clock reads anywhere: deadlines are enforced by whoever owns a timer
/// (spider::serve arms an EventLoop timer that calls Cancel(kDeadline)).
///
/// The first Cancel() wins: a request that is both cancelled and past its
/// deadline reports whichever reason arrived first, so the reply code is
/// deterministic per interleaving.
class CancelToken {
 public:
  enum class Reason : uint8_t {
    kNone = 0,
    kCancelled = 1,  ///< Explicit client cancel.
    kDeadline = 2,   ///< Deadline timer fired.
  };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; the first reason sticks.
  void Cancel(Reason reason = Reason::kCancelled) {
    uint8_t expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                    std::memory_order_relaxed,
                                    std::memory_order_relaxed);
  }

  bool cancelled() const {
    return reason_.load(std::memory_order_relaxed) != 0;
  }

  Reason reason() const {
    return static_cast<Reason>(reason_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint8_t> reason_{0};
};

/// Thrown by engine code when it observes a cancelled token at a safe phase
/// boundary. Carries the reason so the service layer can map it to the
/// right wire error (kDeadlineExceeded vs kCancelled).
class CancelledError : public SpiderError {
 public:
  explicit CancelledError(CancelToken::Reason reason)
      : SpiderError(reason == CancelToken::Reason::kDeadline
                        ? "deadline exceeded"
                        : "cancelled"),
        reason_(reason) {}
  CancelToken::Reason reason() const { return reason_; }

 private:
  CancelToken::Reason reason_;
};

/// Null-safe poll: all engine options default to a null token, which keeps
/// the check a single pointer test on the unconfigured path.
inline bool Cancelled(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

inline void ThrowIfCancelled(const CancelToken* token) {
  if (Cancelled(token)) throw CancelledError(token->reason());
}

}  // namespace spider

#endif  // SPIDER_BASE_CANCEL_H_
