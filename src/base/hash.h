#ifndef SPIDER_BASE_HASH_H_
#define SPIDER_BASE_HASH_H_

#include <cstddef>
#include <cstdint>

namespace spider {

/// Mixes `h` into `seed` (boost::hash_combine-style). Order-dependent.
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace spider

#endif  // SPIDER_BASE_HASH_H_
