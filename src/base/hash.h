#ifndef SPIDER_BASE_HASH_H_
#define SPIDER_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spider {

/// Mixes `h` into `seed` (boost::hash_combine-style). Order-dependent.
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// FNV-1a over raw bytes. Stable across processes and platforms (unlike
/// std::hash), which is what content fingerprints shared between a server
/// and its clients — or recomputed by a differential test — require.
inline uint64_t Fnv1a64(std::string_view bytes,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace spider

#endif  // SPIDER_BASE_HASH_H_
