#include "base/status.h"

#include <sstream>

namespace spider::internal {

void FailCheck(const char* file, int line, const char* expr,
               const std::string& message) {
  std::ostringstream os;
  os << message << " (check `" << expr << "` failed at " << file << ':' << line
     << ')';
  throw SpiderError(os.str());
}

}  // namespace spider::internal
