#ifndef SPIDER_BASE_STATUS_H_
#define SPIDER_BASE_STATUS_H_

#include <stdexcept>
#include <string>
#include <utility>

namespace spider {

/// Error raised for malformed inputs (bad dependency text, arity mismatches,
/// references to undeclared relations, ...). The library validates inputs at
/// construction boundaries and raises SpiderError with a human-readable
/// message; internal invariants use assertions instead.
class SpiderError : public std::runtime_error {
 public:
  explicit SpiderError(std::string message)
      : std::runtime_error(std::move(message)) {}
};

namespace internal {
[[noreturn]] void FailCheck(const char* file, int line, const char* expr,
                            const std::string& message);
}  // namespace internal

/// Validates a user-facing precondition; throws SpiderError on failure.
#define SPIDER_CHECK(expr, message)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::spider::internal::FailCheck(__FILE__, __LINE__, #expr, (message));  \
    }                                                                       \
  } while (0)

}  // namespace spider

#endif  // SPIDER_BASE_STATUS_H_
