#include "base/tuple.h"

#include <ostream>
#include <sstream>

namespace spider {

bool Tuple::ContainsNulls() const {
  for (const Value& v : values_) {
    if (v.is_null()) return true;
  }
  return false;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

size_t Tuple::Hash() const {
  size_t seed = kTupleHashSeed;
  for (const Value& v : values_) seed = HashCombine(seed, v.Hash());
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  os << '(';
  for (size_t i = 0; i < t.arity(); ++i) {
    if (i > 0) os << ", ";
    os << t.at(i);
  }
  return os << ')';
}

std::ostream& operator<<(std::ostream& os, const FactRef& f) {
  return os << (f.side == Side::kSource ? "src" : "tgt") << '[' << f.relation
            << ':' << f.row << ']';
}

}  // namespace spider
