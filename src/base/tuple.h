#ifndef SPIDER_BASE_TUPLE_H_
#define SPIDER_BASE_TUPLE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/hash.h"
#include "base/value.h"

namespace spider {

/// Seed for Tuple::Hash. Shared so code that hashes a row cell-by-cell
/// without materializing a Tuple (Instance::FindRowRef) provably lands in
/// the same dedup buckets.
inline constexpr size_t kTupleHashSeed = 0x7f4a7c15;

/// A row of values. The relation it belongs to is tracked externally (tuples
/// are stored per-relation inside an Instance).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  bool ContainsNulls() const;

  /// Renders as `(v1, v2, ...)`.
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Tuple&, const Tuple&) = default;
  friend auto operator<=>(const Tuple&, const Tuple&) = default;

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

/// Which instance of a data-exchange pair (I, J) a fact lives in.
enum class Side : uint8_t { kSource = 0, kTarget = 1 };

/// Identity of a fact within a (source, target) instance pair: the side,
/// the relation index in that side's schema, and the row index within the
/// relation. FactRefs are stable because instances are append-only during
/// route computation.
struct FactRef {
  Side side = Side::kTarget;
  int32_t relation = -1;
  int32_t row = -1;

  bool valid() const { return relation >= 0 && row >= 0; }

  friend bool operator==(const FactRef&, const FactRef&) = default;
  friend auto operator<=>(const FactRef&, const FactRef&) = default;
};

struct FactRefHash {
  size_t operator()(const FactRef& f) const {
    size_t seed = static_cast<size_t>(f.side);
    seed = HashCombine(seed, std::hash<int32_t>{}(f.relation));
    return HashCombine(seed, std::hash<int32_t>{}(f.row));
  }
};

std::ostream& operator<<(std::ostream& os, const FactRef& f);

}  // namespace spider

#endif  // SPIDER_BASE_TUPLE_H_
