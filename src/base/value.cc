#include "base/value.h"

#include <ostream>
#include <sstream>

#include "base/hash.h"

namespace spider {

std::string Value::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind());
  switch (kind()) {
    case Kind::kInt:
      return HashCombine(seed, std::hash<int64_t>{}(AsInt()));
    case Kind::kDouble:
      return HashCombine(seed, std::hash<double>{}(AsDouble()));
    case Kind::kString:
      return HashCombine(seed, std::hash<std::string>{}(AsString()));
    case Kind::kNull:
      return HashCombine(seed, std::hash<int64_t>{}(AsNull().id));
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kInt:
      return os << v.AsInt();
    case Value::Kind::kDouble:
      return os << v.AsDouble();
    case Value::Kind::kString:
      return os << '"' << v.AsString() << '"';
    case Value::Kind::kNull:
      return os << "#N" << v.AsNull().id;
  }
  return os;
}

}  // namespace spider
