#ifndef SPIDER_BASE_VALUE_H_
#define SPIDER_BASE_VALUE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <variant>

namespace spider {

/// Identifier of a labeled null. Distinct labeled nulls denote possibly
/// different unknown values in a target instance (data-exchange semantics).
struct NullId {
  int64_t id = 0;

  friend bool operator==(const NullId&, const NullId&) = default;
  friend auto operator<=>(const NullId&, const NullId&) = default;
};

/// A database value: an integer, real or string constant, or a labeled null.
///
/// Values are ordered (kind first, then payload) so they can be used as keys
/// in ordered containers, and hashable for hash indexes. Labeled nulls compare
/// equal only when their ids are equal; they are never equal to any constant.
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kDouble = 1, kString = 2, kNull = 3 };

  /// Default-constructed value is the integer 0.
  Value() : rep_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Real(double v) { return Value(Rep(v)); }
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }
  static Value Null(int64_t id) { return Value(Rep(NullId{id})); }

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_constant() const { return !is_null(); }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  NullId AsNull() const { return std::get<NullId>(rep_); }

  /// Renders the value for display: integers and reals as-is, strings
  /// double-quoted, labeled nulls as `#N<id>`.
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Value&, const Value&) = default;
  friend auto operator<=>(const Value&, const Value&) = default;

 private:
  using Rep = std::variant<int64_t, double, std::string, NullId>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace spider

template <>
struct std::hash<spider::Value> {
  size_t operator()(const spider::Value& v) const { return v.Hash(); }
};

#endif  // SPIDER_BASE_VALUE_H_
