#include "catalog/schema.h"

#include <ostream>
#include <sstream>

namespace spider {

RelationDef::RelationDef(std::string name, std::vector<std::string> attributes)
    : name_(std::move(name)), attributes_(std::move(attributes)) {
  SPIDER_CHECK(!name_.empty(), "relation name must be non-empty");
  SPIDER_CHECK(!attributes_.empty(),
               "relation '" + name_ + "' must have at least one attribute");
}

int RelationDef::AttributeIndex(const std::string& attribute) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attribute) return static_cast<int>(i);
  }
  return -1;
}

RelationId Schema::AddRelation(std::string relation,
                               std::vector<std::string> attributes) {
  SPIDER_CHECK(by_name_.find(relation) == by_name_.end(),
               "duplicate relation '" + relation + "' in schema '" + name_ +
                   "'");
  RelationId id = static_cast<RelationId>(relations_.size());
  by_name_.emplace(relation, id);
  relations_.emplace_back(std::move(relation), std::move(attributes));
  return id;
}

RelationId Schema::Find(const std::string& relation) const {
  auto it = by_name_.find(relation);
  return it == by_name_.end() ? kInvalidRelation : it->second;
}

RelationId Schema::Require(const std::string& relation) const {
  RelationId id = Find(relation);
  SPIDER_CHECK(id != kInvalidRelation,
               "unknown relation '" + relation + "' in schema '" + name_ +
                   "'");
  return id;
}

size_t Schema::TotalElements() const {
  size_t total = relations_.size();
  for (const RelationDef& rel : relations_) total += rel.arity();
  return total;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Schema& schema) {
  os << "schema " << schema.name() << " {\n";
  for (const RelationDef& rel : schema.relations()) {
    os << "  " << rel.name() << '(';
    for (size_t i = 0; i < rel.arity(); ++i) {
      if (i > 0) os << ", ";
      os << rel.attribute(i);
    }
    os << ")\n";
  }
  return os << '}';
}

}  // namespace spider
