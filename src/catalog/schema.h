#ifndef SPIDER_CATALOG_SCHEMA_H_
#define SPIDER_CATALOG_SCHEMA_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace spider {

/// Index of a relation within a Schema.
using RelationId = int32_t;
inline constexpr RelationId kInvalidRelation = -1;

/// Definition of one relation: a name plus named attributes. Attributes are
/// untyped (the paper's data model is untyped terms: constants and labeled
/// nulls); names exist for display and for positional lookup by name.
class RelationDef {
 public:
  RelationDef(std::string name, std::vector<std::string> attributes);

  const std::string& name() const { return name_; }
  size_t arity() const { return attributes_.size(); }
  const std::vector<std::string>& attributes() const { return attributes_; }
  const std::string& attribute(size_t i) const { return attributes_[i]; }

  /// Returns the position of the attribute or -1 if absent.
  int AttributeIndex(const std::string& attribute) const;

 private:
  std::string name_;
  std::vector<std::string> attributes_;
};

/// A relational schema: an ordered collection of relation definitions with
/// unique names. Used for both the source schema S and target schema T of a
/// schema mapping.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a relation; throws SpiderError on duplicate names.
  RelationId AddRelation(std::string relation,
                         std::vector<std::string> attributes);

  size_t size() const { return relations_.size(); }
  const RelationDef& relation(RelationId id) const { return relations_[id]; }

  /// Returns the id of the named relation, or kInvalidRelation.
  RelationId Find(const std::string& relation) const;

  /// Like Find but throws SpiderError when the relation does not exist.
  RelationId Require(const std::string& relation) const;

  const std::vector<RelationDef>& relations() const { return relations_; }

  /// Total number of attributes across all relations (schema "elements" in
  /// the sense of Table 1 of the paper, counting relations + attributes).
  size_t TotalElements() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<RelationDef> relations_;
  std::unordered_map<std::string, RelationId> by_name_;
};

std::ostream& operator<<(std::ostream& os, const Schema& schema);

}  // namespace spider

#endif  // SPIDER_CATALOG_SCHEMA_H_
