#include "chase/certain_answers.h"

#include <unordered_set>

#include "base/status.h"
#include "query/binding.h"

namespace spider {

std::vector<Tuple> CertainAnswers(const Instance& universal,
                                  const std::vector<Atom>& query,
                                  const std::vector<VarId>& head,
                                  size_t num_vars, const EvalOptions& eval) {
  Binding binding(num_vars);
  MatchIterator it(universal, query, &binding, eval);
  std::vector<Tuple> answers;
  std::unordered_set<Tuple, TupleHash> seen;
  while (it.Next()) {
    std::vector<Value> values;
    values.reserve(head.size());
    bool has_null = false;
    for (VarId v : head) {
      SPIDER_CHECK(binding.IsBound(v),
                   "head variable not bound by the query body");
      const Value& value = binding.Get(v);
      if (value.is_null()) {
        has_null = true;
        break;
      }
      values.push_back(value);
    }
    if (has_null) continue;
    Tuple answer(std::move(values));
    if (seen.insert(answer).second) answers.push_back(std::move(answer));
  }
  return answers;
}

}  // namespace spider
