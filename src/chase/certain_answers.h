#ifndef SPIDER_CHASE_CERTAIN_ANSWERS_H_
#define SPIDER_CHASE_CERTAIN_ANSWERS_H_

#include <vector>

#include "query/evaluator.h"
#include "storage/instance.h"

namespace spider {

/// Certain answers of a conjunctive query over a UNIVERSAL solution, by
/// naive evaluation [Fagin, Kolaitis, Miller, Popa; TCS'05]: evaluate the
/// query treating labeled nulls as ordinary values, project onto the head
/// variables, and keep only the answers containing no nulls. For (unions
/// of) conjunctive queries this computes exactly the answers that hold in
/// EVERY solution — the semantics a data-integration user queries under.
///
/// `head` lists the projection variables; `num_vars` is the size of the
/// query's variable table. Answers are deduplicated, in first-found order.
std::vector<Tuple> CertainAnswers(const Instance& universal,
                                  const std::vector<Atom>& query,
                                  const std::vector<VarId>& head,
                                  size_t num_vars,
                                  const EvalOptions& eval = {});

}  // namespace spider

#endif  // SPIDER_CHASE_CERTAIN_ANSWERS_H_
