#include "chase/chase.h"

#include <utility>
#include <vector>

#include "base/status.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/plan_cache.h"

namespace spider {

namespace {

/// Publishes the chase's merged stats into the global registry on every
/// exit path (the result object is constructed in the return slot, so the
/// guard fires exactly once per Chase() call).
struct ChasePublishGuard {
  const ChaseStats* stats;
  ~ChasePublishGuard() {
    if (!obs::MetricsEnabled()) return;
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("chase.runs")->Increment();
    stats->PublishTo(&registry);
  }
};

/// Fires one tgd trigger: extends the universal binding with fresh nulls for
/// the existential variables and inserts the instantiated RHS into `target`.
void FireTgd(const Tgd& tgd, const Binding& universal, Instance* target,
             int64_t* null_counter, ChaseStats* stats) {
  Binding h = universal;
  for (VarId y : tgd.ExistentialVars()) {
    h.Set(y, Value::Null((*null_counter)++));
    ++stats->nulls_created;
  }
  for (const Atom& atom : tgd.rhs()) {
    target->Insert(atom.relation, h.Instantiate(atom));
  }
}

/// Applies the first violated egd trigger found, if any. Returns true when a
/// unification was applied (the instance was mutated, enumeration must
/// restart). Sets `failed` when two distinct constants are equated.
bool ApplyOneEgdStep(const SchemaMapping& mapping, Instance* target,
                     const EvalOptions& eval, ChaseStats* stats, bool* failed,
                     std::string* failure_message) {
  for (size_t e = 0; e < mapping.NumEgds(); ++e) {
    const Egd& egd = mapping.egd(static_cast<EgdId>(e));
    Binding b(egd.num_vars());
    MatchIterator it(*target, egd.lhs(), &b, eval,
                     MakePlanKey(PlanKeyFamily::kChaseEgd, e));
    // The iterator's counters are folded into `stats` on every exit path
    // (ApplySubstitution invalidates it, so each step uses a fresh one).
    while (it.Next()) {
      const Value& left = b.Get(egd.left());
      const Value& right = b.Get(egd.right());
      EgdUnification u = ChooseEgdUnification(left, right);
      if (u.kind == EgdUnification::Kind::kNoop) continue;
      if (u.kind == EgdUnification::Kind::kFailure) {
        *failed = true;
        *failure_message = "egd '" + egd.name() +
                           "' equates distinct constants " + left.ToString() +
                           " and " + right.ToString();
        stats->eval += it.stats();
        return false;
      }
      target->ApplySubstitution(u.victim, u.replacement);
      ++stats->egd_steps;
      stats->eval += it.stats();
      return true;
    }
    stats->eval += it.stats();
  }
  return false;
}

}  // namespace

EgdUnification ChooseEgdUnification(const Value& left, const Value& right) {
  EgdUnification result;
  if (left == right) return result;
  if (left.is_constant() && right.is_constant()) {
    result.kind = EgdUnification::Kind::kFailure;
    return result;
  }
  result.kind = EgdUnification::Kind::kUnify;
  if (left.is_null() &&
      (right.is_constant() || right.AsNull().id < left.AsNull().id)) {
    result.victim = left.AsNull();
    result.replacement = right;
  } else {
    result.victim = right.AsNull();
    result.replacement = left;
  }
  return result;
}

ChaseResult Chase(const SchemaMapping& mapping, const Instance& source,
                  const ChaseOptions& options) {
  ChaseResult result;
  ChasePublishGuard publish_guard{&result.stats};
  obs::TraceSpan chase_span("chase", "chase");
  result.target = std::make_unique<Instance>(&mapping.target());
  Instance& target = *result.target;
  int64_t null_counter = options.first_null_id;
  size_t steps = 0;
  auto over_limit = [&]() { return steps > options.max_steps; };

  // Every query the chase issues goes through one plan cache, so a tgd
  // whose premise is re-evaluated across rounds (or whose RHS is re-checked
  // per trigger) replans only when the target's version has moved. Callers
  // may supply their own cache via options.eval.plan_cache.
  PlanCache local_cache;
  EvalOptions eval = options.eval;
  if (eval.plan_cache == nullptr) eval.plan_cache = &local_cache;

  // Phase 1: s-t tgds. The source is never mutated, so trigger enumeration
  // is a pure read over I and fans out per dependency on the exec pool,
  // buffering each dependency's triggers and stats separately. Firing then
  // runs on this thread in canonical dependency order (including the
  // standard-chase RHS check, which must see the target as it grows), so
  // the target instance, null-id assignment, and stats are byte-identical
  // to the sequential run — which is the very same code with a null pool.
  const std::vector<TgdId>& st_tgds = mapping.st_tgds();
  std::vector<std::vector<Binding>> triggers(st_tgds.size());
  std::vector<ChaseStats> worker_stats(st_tgds.size());
  ThreadPool* pool = ThreadPool::For(options.exec);
  if (pool != nullptr && options.eval.use_indexes) {
    // Lazy index builds mutate shared state; warm them before the fan-out.
    source.WarmIndexes();
  }
  {
    obs::TraceSpan enumerate_span("chase", "st_enumerate");
    enumerate_span.AddArg("dependencies", static_cast<int64_t>(st_tgds.size()));
    ParallelFor(pool, 0, st_tgds.size(), /*grain=*/1, [&](size_t i) {
      obs::TraceSpan dep_span("chase", "st_enumerate_dep");
      dep_span.AddArg("tgd", st_tgds[i]);
      const Tgd& tgd = mapping.tgd(st_tgds[i]);
      Binding b(tgd.num_vars());
      MatchIterator it(
          source, tgd.lhs(), &b, eval,
          MakePlanKey(PlanKeyFamily::kChaseTrigger,
                      static_cast<uint64_t>(st_tgds[i])));
      while (!Cancelled(options.cancel) && it.Next()) {
        triggers[i].push_back(b);
        ++worker_stats[i].st_triggers;
      }
      worker_stats[i].eval += it.stats();
    }, options.cancel);
    // The per-dependency buffers are abandoned wholesale on cancellation —
    // nothing was fired yet, so no partial state escapes.
    ThrowIfCancelled(options.cancel);
  }
  {
    obs::TraceSpan fire_span("chase", "st_fire");
    for (size_t i = 0; i < st_tgds.size() && !over_limit(); ++i) {
      result.stats += worker_stats[i];
      const Tgd& tgd = mapping.tgd(st_tgds[i]);
      for (const Binding& b : triggers[i]) {
        ThrowIfCancelled(options.cancel);
        if (++steps, over_limit()) break;
        if (!HasMatch(target, tgd.rhs(), b, eval, &result.stats.eval,
                      MakePlanKey(PlanKeyFamily::kChaseRhsCheck,
                                  static_cast<uint64_t>(st_tgds[i])))) {
          FireTgd(tgd, b, &target, &null_counter, &result.stats);
          ++result.stats.st_steps;
        }
      }
    }
  }

  // Phase 2: target tgds and egds to a fixpoint. Triggers over the (mutable)
  // target are collected first, then re-checked and fired.
  bool changed = !over_limit();
  while (changed && !over_limit()) {
    changed = false;
    ++result.stats.rounds;
    obs::TraceSpan round_span("chase", "target_round");
    round_span.AddArg("round", static_cast<int64_t>(result.stats.rounds));
    for (TgdId id : mapping.target_tgds()) {
      const Tgd& tgd = mapping.tgd(id);
      const uint64_t rhs_key = MakePlanKey(PlanKeyFamily::kChaseRhsCheck,
                                           static_cast<uint64_t>(id));
      std::vector<Binding> pending;
      {
        Binding b(tgd.num_vars());
        MatchIterator it(target, tgd.lhs(), &b, eval,
                         MakePlanKey(PlanKeyFamily::kChaseTrigger,
                                     static_cast<uint64_t>(id)));
        while (it.Next()) {
          ThrowIfCancelled(options.cancel);
          if (++steps, over_limit()) break;
          if (!HasMatch(target, tgd.rhs(), b, eval, &result.stats.eval,
                        rhs_key)) {
            pending.push_back(b);
          }
        }
        result.stats.eval += it.stats();
      }
      for (const Binding& b : pending) {
        ThrowIfCancelled(options.cancel);
        if (++steps, over_limit()) break;
        // An earlier firing in this batch may have satisfied this trigger.
        if (HasMatch(target, tgd.rhs(), b, eval, &result.stats.eval, rhs_key)) {
          continue;
        }
        FireTgd(tgd, b, &target, &null_counter, &result.stats);
        ++result.stats.target_steps;
        changed = true;
      }
      if (over_limit()) break;
    }
    // Egds: unify until none applies.
    obs::TraceSpan egd_span("chase", "egd_fixpoint");
    bool failed = false;
    while (!over_limit()) {
      ThrowIfCancelled(options.cancel);
      ++steps;
      bool fired = ApplyOneEgdStep(mapping, &target, eval, &result.stats,
                                   &failed, &result.failure_message);
      if (failed) {
        result.outcome = ChaseOutcome::kEgdFailure;
        result.next_null_id = null_counter;
        return result;
      }
      if (!fired) break;
      changed = true;
    }
  }

  result.outcome =
      over_limit() ? ChaseOutcome::kStepLimit : ChaseOutcome::kSuccess;
  if (result.outcome == ChaseOutcome::kStepLimit) {
    result.failure_message =
        "chase exceeded max_steps = " + std::to_string(options.max_steps);
  }
  result.next_null_id = null_counter;
  return result;
}

ChaseStats ChaseScenario(Scenario* scenario, const ChaseOptions& options) {
  SPIDER_CHECK(scenario != nullptr && scenario->mapping != nullptr &&
                   scenario->source != nullptr,
               "ChaseScenario requires a populated scenario");
  ChaseOptions opts = options;
  opts.first_null_id = scenario->max_null_id + 1;
  ChaseResult result = Chase(*scenario->mapping, *scenario->source, opts);
  SPIDER_CHECK(result.outcome == ChaseOutcome::kSuccess,
               "chase failed: " + result.failure_message);
  scenario->target = std::move(result.target);
  scenario->max_null_id = result.next_null_id - 1;
  return result.stats;
}

}  // namespace spider
