#ifndef SPIDER_CHASE_CHASE_H_
#define SPIDER_CHASE_CHASE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/cancel.h"
#include "exec/exec_options.h"
#include "mapping/scenario.h"
#include "mapping/schema_mapping.h"
#include "query/eval_stats.h"
#include "query/evaluator.h"
#include "storage/instance.h"

namespace spider {

/// Options for the chase.
struct ChaseOptions {
  /// Safety net against non-terminating target-tgd sets (the chase with a
  /// weakly acyclic Σt always terminates; arbitrary Σt may not).
  size_t max_steps = 10'000'000;

  /// First id to use for labeled nulls invented by the chase. Scenario-aware
  /// wrappers pass Scenario::max_null_id + 1.
  int64_t first_null_id = 1;

  EvalOptions eval;

  /// Work-stealing runtime knobs. With num_threads > 1 the s-t tgd trigger
  /// enumeration fans out per dependency over the shared pool; firing stays
  /// sequential in canonical dependency order, so the produced instance,
  /// null ids, and stats are byte-identical to num_threads = 1.
  ExecOptions exec;

  /// Optional cooperative-cancellation token, polled (relaxed atomic load)
  /// at every trigger enumerated, every firing step, and every egd step.
  /// When it flips, Chase() throws CancelledError; the partially built
  /// target is local to the call, so abandoning it is always safe. Must
  /// outlive the call. nullptr (the default) disables the checks.
  const CancelToken* cancel = nullptr;
};

enum class ChaseOutcome {
  kSuccess,     ///< A (universal) solution was produced.
  kEgdFailure,  ///< An egd equated two distinct constants: no solution exists.
  kStepLimit,   ///< max_steps exceeded (chase may be non-terminating).
};

struct ChaseStats {
  size_t st_steps = 0;      ///< s-t tgd chase steps applied.
  size_t st_triggers = 0;   ///< s-t tgd triggers enumerated (fired or not).
  size_t target_steps = 0;  ///< Target tgd chase steps applied.
  size_t egd_steps = 0;     ///< Egd unifications applied.
  size_t nulls_created = 0;
  size_t rounds = 0;        ///< Target fixpoint rounds.

  /// Evaluator counters for every conjunctive query the chase issued
  /// (trigger enumeration, RHS containment checks, egd matching). Exact and
  /// deterministic at every thread count: plans are value-independent and
  /// the per-chase plan cache builds each (key, version) plan exactly once.
  EvalStats eval;

  /// Adds the merged totals to the process-wide registry under "chase.*"
  /// (done once per Chase() call when obs metrics are enabled).
  void PublishTo(obs::Registry* registry) const {
    registry->GetCounter("chase.st_steps")->Add(st_steps);
    registry->GetCounter("chase.st_triggers")->Add(st_triggers);
    registry->GetCounter("chase.target_steps")->Add(target_steps);
    registry->GetCounter("chase.egd_steps")->Add(egd_steps);
    registry->GetCounter("chase.nulls_created")->Add(nulls_created);
    registry->GetCounter("chase.rounds")->Add(rounds);
    eval.PublishTo(registry, "chase.eval.");
  }

  /// Merges counters accumulated by another worker. Parallel regions give
  /// each task its own ChaseStats and sum them at the join in canonical
  /// task order, so totals are exact and deterministic.
  ChaseStats& operator+=(const ChaseStats& other) {
    st_steps += other.st_steps;
    st_triggers += other.st_triggers;
    target_steps += other.target_steps;
    egd_steps += other.egd_steps;
    nulls_created += other.nulls_created;
    rounds += other.rounds;
    eval += other.eval;
    return *this;
  }

  friend bool operator==(const ChaseStats& a, const ChaseStats& b) {
    return a.st_steps == b.st_steps && a.st_triggers == b.st_triggers &&
           a.target_steps == b.target_steps && a.egd_steps == b.egd_steps &&
           a.nulls_created == b.nulls_created && a.rounds == b.rounds &&
           a.eval == b.eval;
  }
};

/// Outcome of comparing the two sides of a violated egd equality: what the
/// chase step must do about `left` != `right`.
struct EgdUnification {
  enum class Kind {
    kNoop,     ///< Values already equal — nothing to do.
    kUnify,    ///< Replace `victim` by `replacement`.
    kFailure,  ///< Two distinct constants — no solution exists.
  };
  Kind kind = Kind::kNoop;
  NullId victim;
  Value replacement;
};

/// The deterministic unification rule shared by every chase variant (plain,
/// annotated, incremental): a labeled null yields to a constant, and of two
/// nulls the one with the larger id is replaced, so the result does not
/// depend on enumeration order.
EgdUnification ChooseEgdUnification(const Value& left, const Value& right);

struct ChaseResult {
  ChaseOutcome outcome = ChaseOutcome::kSuccess;
  /// The produced target instance (a universal solution on success; partial
  /// content otherwise). Always non-null.
  std::unique_ptr<Instance> target;
  ChaseStats stats;
  int64_t next_null_id = 1;
  std::string failure_message;
};

/// Runs the standard data-exchange chase of `source` with Σst ∪ Σt of
/// `mapping` [Fagin, Kolaitis, Miller, Popa; TCS'05]: first all s-t tgd
/// triggers, then target tgds and egds to a fixpoint. A tgd trigger fires
/// only when its RHS is not already satisfied (standard, not oblivious,
/// chase). On success the result is a universal solution for `source`.
///
/// This is the library's stand-in for Clio's execution engine: the route
/// algorithms accept any solution, and the chase produces one.
ChaseResult Chase(const SchemaMapping& mapping, const Instance& source,
                  const ChaseOptions& options = {});

/// Chases `scenario.source` and stores the produced solution into
/// `scenario.target` (replacing it), advancing `scenario.max_null_id`.
/// Throws SpiderError unless the outcome is kSuccess.
ChaseStats ChaseScenario(Scenario* scenario, const ChaseOptions& options = {});

}  // namespace spider

#endif  // SPIDER_CHASE_CHASE_H_
