#include "chase/core.h"

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "chase/homomorphism.h"

namespace spider {

namespace {

/// A copy of `instance` without row `skip_row` of `skip_rel`.
std::unique_ptr<Instance> CopyWithout(const Instance& instance,
                                      RelationId skip_rel, int32_t skip_row) {
  auto copy = std::make_unique<Instance>(&instance.schema());
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    const auto& rows = instance.tuples(rel);
    for (int32_t row = 0; row < static_cast<int32_t>(rows.size()); ++row) {
      if (rel == skip_rel && row == skip_row) continue;
      copy->Insert(rel, Tuple(rows[row]));
    }
  }
  return copy;
}

/// Marker constant standing in for a rigid null during the endomorphism
/// search. Constants are fixed pointwise by every homomorphism, so freezing
/// makes rigidity structural: no candidate fold can move the null, and the
/// search stays complete (nothing is found and then rejected). The '\x02'
/// prefix cannot collide with user data (the parser rejects control bytes)
/// or with the analysis layer's '\x01' frozen constants.
Value RigidConstant(int64_t null_id) {
  return Value::Str(std::string(1, '\x02') + "rigid:" +
                    std::to_string(null_id));
}

bool IsRigidConstant(const Value& v, int64_t* null_id) {
  if (v.kind() != Value::Kind::kString) return false;
  const std::string& text = v.AsString();
  if (text.size() < 8 || text[0] != '\x02') return false;
  *null_id = std::strtoll(text.c_str() + 7, nullptr, 10);
  return true;
}

Value Thaw(const Value& v) {
  int64_t id = 0;
  return IsRigidConstant(v, &id) ? Value::Null(id) : v;
}

}  // namespace

bool IsRedundantFact(const Instance& instance, const FactRef& fact,
                     const EvalOptions& eval) {
  if (!instance.tuple(fact.relation, fact.row).ContainsNulls()) {
    // Constant facts are fixed by every homomorphism.
    return false;
  }
  std::unique_ptr<Instance> reduced =
      CopyWithout(instance, fact.relation, fact.row);
  return FindHomomorphism(instance, *reduced, eval).has_value();
}

CoreResult ComputeCore(const Instance& instance, const CoreOptions& options) {
  CoreRetractionOptions retract_options;
  retract_options.eval = options.eval;
  retract_options.max_hom_tests = options.max_hom_tests;
  CoreRetractionResult retracted =
      ComputeCoreRetraction(instance, retract_options);
  CoreResult result;
  result.core = std::move(retracted.core);
  result.facts_removed = retracted.facts_removed;
  result.complete = retracted.complete;
  return result;
}

CoreRetractionResult ComputeCoreRetraction(
    const Instance& instance, const CoreRetractionOptions& options) {
  CoreRetractionResult result;
  result.core = std::make_unique<Instance>(&instance.schema());
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (const Tuple& t : instance.tuples(rel)) {
      if (options.rigid_nulls.empty()) {
        result.core->Insert(rel, Tuple(t));
        continue;
      }
      std::vector<Value> values;
      values.reserve(t.arity());
      for (const Value& v : t.values()) {
        if (v.is_null() && options.rigid_nulls.count(v.AsNull().id) > 0) {
          values.push_back(RigidConstant(v.AsNull().id));
        } else {
          values.push_back(v);
        }
      }
      result.core->Insert(rel, Tuple(std::move(values)));
    }
  }
  // Identity retraction over every non-rigid null of the input; folds below
  // rewrite the images in place.
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (const Tuple& t : instance.tuples(rel)) {
      for (const Value& v : t.values()) {
        if (v.is_null() && options.rigid_nulls.count(v.AsNull().id) == 0) {
          result.retraction.emplace(v.AsNull().id, v);
        }
      }
    }
  }

  size_t hom_tests = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t r = 0; r < result.core->NumRelations() && !changed; ++r) {
      RelationId rel = static_cast<RelationId>(r);
      const auto& rows = result.core->tuples(rel);
      for (int32_t row = 0; row < static_cast<int32_t>(rows.size()); ++row) {
        if (!rows[row].ContainsNulls()) continue;
        ThrowIfCancelled(options.cancel);
        if (++hom_tests > options.max_hom_tests) {
          result.complete = false;
          changed = false;
          break;
        }
        std::unique_ptr<Instance> reduced =
            CopyWithout(*result.core, rel, row);
        std::optional<InstanceHom> h =
            FindHomomorphism(*result.core, *reduced, options.eval);
        if (h.has_value()) {
          // The reduced instance is a retract: homomorphically equivalent
          // (identity embeds it back) and strictly smaller. Compose the
          // fold into the running retraction, r' = h ∘ r.
          for (auto& [null_id, image] : result.retraction) {
            if (!image.is_null()) continue;
            auto it = h->find(image.AsNull().id);
            if (it != h->end()) image = it->second;
          }
          result.core = std::move(reduced);
          ++result.facts_removed;
          changed = true;
          break;
        }
      }
      if (!result.complete) break;
    }
    if (!result.complete) break;
  }

  if (!options.rigid_nulls.empty()) {
    // Thaw the rigid markers back into labeled nulls, both in the core and
    // in retraction images (a free null may have been folded onto a rigid
    // one, whose frozen form leaked into the image).
    auto thawed = std::make_unique<Instance>(&instance.schema());
    for (size_t r = 0; r < result.core->NumRelations(); ++r) {
      RelationId rel = static_cast<RelationId>(r);
      for (const Tuple& t : result.core->tuples(rel)) {
        std::vector<Value> values;
        values.reserve(t.arity());
        for (const Value& v : t.values()) values.push_back(Thaw(v));
        thawed->Insert(rel, Tuple(std::move(values)));
      }
    }
    result.core = std::move(thawed);
    for (auto& [null_id, image] : result.retraction) {
      image = Thaw(image);
    }
  }
  return result;
}

}  // namespace spider
