#include "chase/core.h"

#include "chase/homomorphism.h"

namespace spider {

namespace {

/// A copy of `instance` without row `skip_row` of `skip_rel`.
std::unique_ptr<Instance> CopyWithout(const Instance& instance,
                                      RelationId skip_rel, int32_t skip_row) {
  auto copy = std::make_unique<Instance>(&instance.schema());
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    const auto& rows = instance.tuples(rel);
    for (int32_t row = 0; row < static_cast<int32_t>(rows.size()); ++row) {
      if (rel == skip_rel && row == skip_row) continue;
      copy->Insert(rel, Tuple(rows[row]));
    }
  }
  return copy;
}

}  // namespace

bool IsRedundantFact(const Instance& instance, const FactRef& fact,
                     const EvalOptions& eval) {
  if (!instance.tuple(fact.relation, fact.row).ContainsNulls()) {
    // Constant facts are fixed by every homomorphism.
    return false;
  }
  std::unique_ptr<Instance> reduced =
      CopyWithout(instance, fact.relation, fact.row);
  return FindHomomorphism(instance, *reduced, eval).has_value();
}

CoreResult ComputeCore(const Instance& instance, const CoreOptions& options) {
  CoreResult result;
  result.core = std::make_unique<Instance>(&instance.schema());
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    for (const Tuple& t : instance.tuples(rel)) {
      result.core->Insert(rel, Tuple(t));
    }
  }
  size_t hom_tests = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t r = 0; r < result.core->NumRelations() && !changed; ++r) {
      RelationId rel = static_cast<RelationId>(r);
      const auto& rows = result.core->tuples(rel);
      for (int32_t row = 0; row < static_cast<int32_t>(rows.size()); ++row) {
        if (!rows[row].ContainsNulls()) continue;
        if (++hom_tests > options.max_hom_tests) {
          result.complete = false;
          return result;
        }
        std::unique_ptr<Instance> reduced =
            CopyWithout(*result.core, rel, row);
        if (FindHomomorphism(*result.core, *reduced, options.eval)
                .has_value()) {
          // The reduced instance is a retract: homomorphically equivalent
          // (identity embeds it back) and strictly smaller.
          result.core = std::move(reduced);
          ++result.facts_removed;
          changed = true;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace spider
