#ifndef SPIDER_CHASE_CORE_H_
#define SPIDER_CHASE_CORE_H_

#include <memory>
#include <unordered_set>

#include "base/cancel.h"
#include "chase/homomorphism.h"
#include "query/evaluator.h"
#include "storage/instance.h"

namespace spider {

/// Computes the CORE of a target instance: its smallest endomorphic image,
/// unique up to isomorphism [Fagin, Kolaitis, Popa: "Data exchange: getting
/// to the core", PODS'03]. The core of a universal solution is the smallest
/// universal solution — chase results often contain null-padded facts that
/// are subsumed by more specific ones, and the core removes exactly those.
///
/// For the debugger this matters because probing a redundant fact is a
/// smell of its own: `IsInCore` tells the user whether a null-carrying fact
/// conveys any information not already present elsewhere.
///
/// The computation is the classical greedy one: repeatedly find a
/// non-surjective endomorphism (by trying to fold each null-carrying fact
/// into the rest) and replace the instance by its image, until no fact can
/// be dropped. Worst-case exponential (core identification is NP-hard) but
/// fast on debugging-sized instances; `max_hom_tests` bounds the work.
struct CoreOptions {
  EvalOptions eval;
  size_t max_hom_tests = 100'000;
};

struct CoreResult {
  std::unique_ptr<Instance> core;
  size_t facts_removed = 0;
  bool complete = true;  ///< False when max_hom_tests stopped the search.
};

CoreResult ComputeCore(const Instance& instance,
                       const CoreOptions& options = {});

/// Like CoreOptions, for the retraction-tracking variant.
struct CoreRetractionOptions {
  EvalOptions eval;
  size_t max_hom_tests = 100'000;
  /// Nulls that every endomorphism must fix pointwise. Core minimization of
  /// a chase result passes the nulls occurring in the source instance here,
  /// so facts the source can still see are never collapsed away. Internally
  /// rigid nulls are frozen to marker constants, which keeps the greedy
  /// search complete (homomorphisms that would move them are never found,
  /// rather than found and rejected).
  std::unordered_set<int64_t> rigid_nulls;
  /// Polled once per candidate fold; throws CancelledError when flipped.
  const CancelToken* cancel = nullptr;
};

struct CoreRetractionResult {
  std::unique_ptr<Instance> core;
  /// The composed retraction homomorphism r : instance → core. Contains an
  /// entry for every non-rigid null of the input that the retraction moved
  /// or kept (identity entries included, so callers can remap values with a
  /// single lookup); rigid nulls are fixed and absent.
  InstanceHom retraction;
  size_t facts_removed = 0;
  bool complete = true;  ///< False when max_hom_tests stopped the search.
};

/// ComputeCore plus the retraction homomorphism that witnesses the
/// minimization: r maps the input instance onto the returned core, is the
/// identity on the core's own facts, and fixes every rigid null. Routes and
/// cached bindings into the original instance stay valid after rewriting
/// their values through `retraction` (r ∘ h is again a homomorphism).
CoreRetractionResult ComputeCoreRetraction(
    const Instance& instance, const CoreRetractionOptions& options = {});

/// True when dropping `fact` from the instance still leaves a
/// homomorphically equivalent instance (i.e. the fact is redundant and
/// absent from some core).
bool IsRedundantFact(const Instance& instance, const FactRef& fact,
                     const EvalOptions& eval = {});

}  // namespace spider

#endif  // SPIDER_CHASE_CORE_H_
