#ifndef SPIDER_CHASE_CORE_H_
#define SPIDER_CHASE_CORE_H_

#include <memory>

#include "query/evaluator.h"
#include "storage/instance.h"

namespace spider {

/// Computes the CORE of a target instance: its smallest endomorphic image,
/// unique up to isomorphism [Fagin, Kolaitis, Popa: "Data exchange: getting
/// to the core", PODS'03]. The core of a universal solution is the smallest
/// universal solution — chase results often contain null-padded facts that
/// are subsumed by more specific ones, and the core removes exactly those.
///
/// For the debugger this matters because probing a redundant fact is a
/// smell of its own: `IsInCore` tells the user whether a null-carrying fact
/// conveys any information not already present elsewhere.
///
/// The computation is the classical greedy one: repeatedly find a
/// non-surjective endomorphism (by trying to fold each null-carrying fact
/// into the rest) and replace the instance by its image, until no fact can
/// be dropped. Worst-case exponential (core identification is NP-hard) but
/// fast on debugging-sized instances; `max_hom_tests` bounds the work.
struct CoreOptions {
  EvalOptions eval;
  size_t max_hom_tests = 100'000;
};

struct CoreResult {
  std::unique_ptr<Instance> core;
  size_t facts_removed = 0;
  bool complete = true;  ///< False when max_hom_tests stopped the search.
};

CoreResult ComputeCore(const Instance& instance,
                       const CoreOptions& options = {});

/// True when dropping `fact` from the instance still leaves a
/// homomorphically equivalent instance (i.e. the fact is redundant and
/// absent from some core).
bool IsRedundantFact(const Instance& instance, const FactRef& fact,
                     const EvalOptions& eval = {});

}  // namespace spider

#endif  // SPIDER_CHASE_CORE_H_
