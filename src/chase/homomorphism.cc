#include "chase/homomorphism.h"

#include <vector>

#include "base/status.h"
#include "query/binding.h"
#include "query/term.h"

namespace spider {

std::optional<InstanceHom> FindHomomorphism(const Instance& from,
                                            const Instance& to,
                                            EvalOptions options) {
  // Translate `from`'s facts into a conjunctive query over `to`: labeled
  // nulls become variables, constants stay constants.
  std::unordered_map<int64_t, VarId> var_of_null;
  std::vector<int64_t> null_of_var;
  std::vector<Atom> atoms;
  for (size_t r = 0; r < from.NumRelations(); ++r) {
    RelationId from_rel = static_cast<RelationId>(r);
    const RelationDef& def = from.schema().relation(from_rel);
    RelationId to_rel = to.schema().Find(def.name());
    if (to_rel == kInvalidRelation ||
        to.schema().relation(to_rel).arity() != def.arity()) {
      // A fact in a relation the codomain lacks: no homomorphism unless the
      // relation is empty.
      if (from.NumTuples(from_rel) == 0) continue;
      return std::nullopt;
    }
    for (const Tuple& t : from.tuples(from_rel)) {
      Atom atom;
      atom.relation = to_rel;
      for (const Value& v : t.values()) {
        if (v.is_null()) {
          auto [it, inserted] = var_of_null.try_emplace(
              v.AsNull().id, static_cast<VarId>(null_of_var.size()));
          if (inserted) null_of_var.push_back(v.AsNull().id);
          atom.terms.push_back(Term::Var(it->second));
        } else {
          atom.terms.push_back(Term::Const(v));
        }
      }
      atoms.push_back(std::move(atom));
    }
  }
  Binding binding(null_of_var.size());
  MatchIterator it(to, atoms, &binding, options);
  if (!it.Next()) return std::nullopt;
  InstanceHom hom;
  for (size_t v = 0; v < null_of_var.size(); ++v) {
    hom.emplace(null_of_var[v], binding.Get(static_cast<VarId>(v)));
  }
  return hom;
}

bool HomomorphicallyEquivalent(const Instance& a, const Instance& b,
                               EvalOptions options) {
  return FindHomomorphism(a, b, options).has_value() &&
         FindHomomorphism(b, a, options).has_value();
}

}  // namespace spider
