#ifndef SPIDER_CHASE_HOMOMORPHISM_H_
#define SPIDER_CHASE_HOMOMORPHISM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "query/evaluator.h"
#include "storage/instance.h"

namespace spider {

/// A homomorphism between instances: maps labeled nulls to values (constants
/// are fixed pointwise), keyed by null id.
using InstanceHom = std::unordered_map<int64_t, Value>;

/// Finds a homomorphism h : `from` → `to` (h(c) = c for constants, and every
/// fact R(t) of `from` has R(h(t)) in `to`). Both instances must be over
/// schemas with identical relation names and arities (relations are matched
/// by name). Returns std::nullopt when no homomorphism exists.
///
/// Used to check universality of chase results: J is universal iff it maps
/// homomorphically into every solution.
std::optional<InstanceHom> FindHomomorphism(const Instance& from,
                                            const Instance& to,
                                            EvalOptions options = {});

/// True when homomorphisms exist in both directions.
bool HomomorphicallyEquivalent(const Instance& a, const Instance& b,
                               EvalOptions options = {});

}  // namespace spider

#endif  // SPIDER_CHASE_HOMOMORPHISM_H_
