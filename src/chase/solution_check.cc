#include "chase/solution_check.h"

#include "query/binding.h"

namespace spider {

bool IsSolution(const SchemaMapping& mapping, const Instance& source,
                const Instance& target, std::string* why,
                EvalOptions options) {
  for (size_t i = 0; i < mapping.NumTgds(); ++i) {
    const Tgd& tgd = mapping.tgd(static_cast<TgdId>(i));
    const Instance& lhs_instance = tgd.source_to_target() ? source : target;
    Binding b(tgd.num_vars());
    MatchIterator it(lhs_instance, tgd.lhs(), &b, options);
    while (it.Next()) {
      if (!HasMatch(target, tgd.rhs(), b, options)) {
        if (why != nullptr) {
          *why = "tgd '" + tgd.name() + "' violated with assignment " +
                 b.ToString(tgd.var_names());
        }
        return false;
      }
    }
  }
  for (size_t e = 0; e < mapping.NumEgds(); ++e) {
    const Egd& egd = mapping.egd(static_cast<EgdId>(e));
    Binding b(egd.num_vars());
    MatchIterator it(target, egd.lhs(), &b, options);
    while (it.Next()) {
      if (b.Get(egd.left()) != b.Get(egd.right())) {
        if (why != nullptr) {
          *why = "egd '" + egd.name() + "' violated with assignment " +
                 b.ToString(egd.var_names());
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace spider
