#ifndef SPIDER_CHASE_SOLUTION_CHECK_H_
#define SPIDER_CHASE_SOLUTION_CHECK_H_

#include <string>

#include "mapping/schema_mapping.h"
#include "query/evaluator.h"
#include "storage/instance.h"

namespace spider {

/// Checks whether J is a solution for I under the mapping, i.e. whether
/// (I, J) satisfies Σst ∪ Σt: every tgd trigger extends to a match of its
/// RHS in J, and no egd equates two distinct values.
///
/// When the check fails and `why` is non-null, it receives the name of the
/// first violated dependency and the violating assignment.
bool IsSolution(const SchemaMapping& mapping, const Instance& source,
                const Instance& target, std::string* why = nullptr,
                EvalOptions options = {});

}  // namespace spider

#endif  // SPIDER_CHASE_SOLUTION_CHECK_H_
