#include "chase/weak_acyclicity.h"

#include <algorithm>
#include <vector>

namespace spider {

PositionDependencyGraph PositionDependencyGraph::Build(
    const SchemaMapping& mapping) {
  const Schema& target = mapping.target();
  PositionDependencyGraph graph;
  graph.offsets_.reserve(target.size());
  int next = 0;
  for (size_t r = 0; r < target.size(); ++r) {
    graph.offsets_.push_back(next);
    const RelationDef& rel = target.relation(static_cast<RelationId>(r));
    for (size_t c = 0; c < rel.arity(); ++c) {
      graph.positions_.push_back(
          TargetPosition{static_cast<RelationId>(r), static_cast<int>(c)});
      ++next;
    }
  }
  graph.out_.resize(graph.positions_.size());

  for (TgdId id : mapping.target_tgds()) {
    const Tgd& tgd = mapping.tgd(id);
    // Positions of each universal variable in the LHS.
    std::vector<std::vector<int>> lhs_positions(tgd.num_vars());
    for (const Atom& atom : tgd.lhs()) {
      for (size_t col = 0; col < atom.terms.size(); ++col) {
        const Term& t = atom.terms[col];
        if (t.is_var()) {
          lhs_positions[t.var()].push_back(
              graph.PositionId(atom.relation, static_cast<int>(col)));
        }
      }
    }
    for (const Atom& atom : tgd.rhs()) {
      for (size_t col = 0; col < atom.terms.size(); ++col) {
        const Term& t = atom.terms[col];
        if (!t.is_var()) continue;
        int to = graph.PositionId(atom.relation, static_cast<int>(col));
        if (tgd.IsUniversal(t.var())) {
          for (int from : lhs_positions[t.var()]) {
            graph.out_[from].push_back(static_cast<int>(graph.edges_.size()));
            graph.edges_.push_back(PositionEdge{from, to, false, id});
          }
        } else {
          // Existential variable: special edge from every LHS position of
          // every universal variable of this tgd.
          for (size_t v = 0; v < tgd.num_vars(); ++v) {
            if (!tgd.IsUniversal(static_cast<VarId>(v))) continue;
            for (int from : lhs_positions[v]) {
              graph.out_[from].push_back(
                  static_cast<int>(graph.edges_.size()));
              graph.edges_.push_back(PositionEdge{from, to, true, id});
            }
          }
        }
      }
    }
  }
  return graph;
}

std::string PositionDependencyGraph::PositionName(const Schema& target,
                                                  int id) const {
  const TargetPosition& pos = positions_[id];
  const RelationDef& rel = target.relation(pos.relation);
  return rel.name() + "." + rel.attribute(pos.column);
}

namespace {

/// BFS from `from` to `to`; on success fills `path` with the edge indexes of
/// one shortest from→to walk.
bool FindPath(const PositionDependencyGraph& graph, int from, int to,
              std::vector<int>* path) {
  std::vector<int> parent_edge(graph.NumPositions(), -1);
  std::vector<bool> seen(graph.NumPositions(), false);
  std::vector<int> queue = {from};
  seen[from] = true;
  // `from == to` means the empty walk; callers close the cycle themselves.
  if (from == to) {
    path->clear();
    return true;
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    int node = queue[head];
    for (int e : graph.out_edges()[node]) {
      int next = graph.edges()[e].to;
      if (seen[next]) continue;
      seen[next] = true;
      parent_edge[next] = e;
      if (next == to) {
        // Reconstruct backwards.
        path->clear();
        for (int cur = to; cur != from;) {
          int pe = parent_edge[cur];
          path->push_back(pe);
          cur = graph.edges()[pe].from;
        }
        std::reverse(path->begin(), path->end());
        return true;
      }
      queue.push_back(next);
    }
  }
  return false;
}

}  // namespace

AcyclicityWitness CheckWeakAcyclicity(const PositionDependencyGraph& graph) {
  AcyclicityWitness witness;
  for (size_t e = 0; e < graph.edges().size(); ++e) {
    const PositionEdge& edge = graph.edges()[e];
    if (!edge.special) continue;
    std::vector<int> path;
    if (FindPath(graph, edge.to, edge.from, &path)) {
      witness.weakly_acyclic = false;
      witness.cycle.push_back(static_cast<int>(e));
      witness.cycle.insert(witness.cycle.end(), path.begin(), path.end());
      return witness;
    }
  }
  return witness;
}

std::string AcyclicityWitness::Describe(
    const SchemaMapping& mapping, const PositionDependencyGraph& graph) const {
  if (cycle.empty()) return "weakly acyclic";
  std::string out = graph.PositionName(mapping.target(), graph.edges()[cycle[0]].from);
  for (int e : cycle) {
    const PositionEdge& edge = graph.edges()[e];
    const std::string& tgd = mapping.tgd(edge.tgd).name();
    out += edge.special ? " ~(" + tgd + ")~> " : " -(" + tgd + ")-> ";
    out += graph.PositionName(mapping.target(), edge.to);
  }
  return out;
}

bool IsWeaklyAcyclic(const SchemaMapping& mapping, std::string* why) {
  PositionDependencyGraph graph = PositionDependencyGraph::Build(mapping);
  AcyclicityWitness witness = CheckWeakAcyclicity(graph);
  if (witness.weakly_acyclic) return true;
  if (why != nullptr) {
    *why = "special edge introduced by tgd '" +
           mapping.tgd(graph.edges()[witness.cycle[0]].tgd).name() +
           "' lies on a cycle";
  }
  return false;
}

}  // namespace spider
