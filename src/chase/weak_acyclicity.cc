#include "chase/weak_acyclicity.h"

#include <vector>

namespace spider {

namespace {

/// Dense id for a target position (relation, attribute).
struct PositionTable {
  explicit PositionTable(const Schema& target) {
    offsets.reserve(target.size() + 1);
    offsets.push_back(0);
    for (const RelationDef& rel : target.relations()) {
      offsets.push_back(offsets.back() + static_cast<int>(rel.arity()));
    }
  }
  int Id(RelationId rel, int col) const { return offsets[rel] + col; }
  int size() const { return offsets.back(); }
  std::vector<int> offsets;
};

struct Edge {
  int to;
  bool special;
};

bool Reaches(const std::vector<std::vector<Edge>>& graph, int from, int to) {
  std::vector<bool> seen(graph.size(), false);
  std::vector<int> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    if (node == to) return true;
    for (const Edge& e : graph[node]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  return false;
}

}  // namespace

bool IsWeaklyAcyclic(const SchemaMapping& mapping, std::string* why) {
  const Schema& target = mapping.target();
  PositionTable positions(target);
  std::vector<std::vector<Edge>> graph(positions.size());
  struct SpecialEdge {
    int from;
    int to;
    TgdId tgd;
  };
  std::vector<SpecialEdge> specials;

  for (TgdId id : mapping.target_tgds()) {
    const Tgd& tgd = mapping.tgd(id);
    // Positions of each universal variable in the LHS.
    std::vector<std::vector<int>> lhs_positions(tgd.num_vars());
    for (const Atom& atom : tgd.lhs()) {
      for (size_t col = 0; col < atom.terms.size(); ++col) {
        const Term& t = atom.terms[col];
        if (t.is_var()) {
          lhs_positions[t.var()].push_back(
              positions.Id(atom.relation, static_cast<int>(col)));
        }
      }
    }
    for (const Atom& atom : tgd.rhs()) {
      for (size_t col = 0; col < atom.terms.size(); ++col) {
        const Term& t = atom.terms[col];
        if (!t.is_var()) continue;
        int to = positions.Id(atom.relation, static_cast<int>(col));
        if (tgd.IsUniversal(t.var())) {
          for (int from : lhs_positions[t.var()]) {
            graph[from].push_back(Edge{to, false});
          }
        } else {
          // Existential variable: special edge from every LHS position of
          // every universal variable of this tgd.
          for (size_t v = 0; v < tgd.num_vars(); ++v) {
            if (!tgd.IsUniversal(static_cast<VarId>(v))) continue;
            for (int from : lhs_positions[v]) {
              graph[from].push_back(Edge{to, true});
              specials.push_back(SpecialEdge{from, to, id});
            }
          }
        }
      }
    }
  }

  for (const SpecialEdge& se : specials) {
    if (Reaches(graph, se.to, se.from)) {
      if (why != nullptr) {
        *why = "special edge introduced by tgd '" + mapping.tgd(se.tgd).name() +
               "' lies on a cycle";
      }
      return false;
    }
  }
  return true;
}

}  // namespace spider
