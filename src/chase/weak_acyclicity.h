#ifndef SPIDER_CHASE_WEAK_ACYCLICITY_H_
#define SPIDER_CHASE_WEAK_ACYCLICITY_H_

#include <string>
#include <vector>

#include "mapping/schema_mapping.h"

namespace spider {

/// One target position (relation, attribute) — a node of the position
/// dependency graph.
struct TargetPosition {
  RelationId relation = kInvalidRelation;
  int column = 0;

  friend bool operator==(const TargetPosition&,
                         const TargetPosition&) = default;
};

/// One edge of the position dependency graph, with provenance: which target
/// tgd contributed it and whether it is special (the RHS position holds an
/// existential variable).
struct PositionEdge {
  int from = 0;  ///< Position id (index into PositionDependencyGraph nodes).
  int to = 0;
  bool special = false;
  TgdId tgd = -1;

  friend bool operator==(const PositionEdge&, const PositionEdge&) = default;
};

/// The position dependency graph of a mapping's target tgds [Fagin et al.,
/// TCS'05]: one node per target position, and for every target tgd with a
/// universal variable x at LHS position p, a regular edge p → q for every RHS
/// position q where x occurs plus a special edge p → q' for every RHS
/// position q' holding an existential variable. Built once, queried by the
/// acyclicity check and rendered by the analyzer / dot export.
class PositionDependencyGraph {
 public:
  static PositionDependencyGraph Build(const SchemaMapping& mapping);

  int NumPositions() const { return static_cast<int>(positions_.size()); }
  const TargetPosition& position(int id) const { return positions_[id]; }
  int PositionId(RelationId rel, int col) const {
    return offsets_[rel] + col;
  }

  const std::vector<PositionEdge>& edges() const { return edges_; }
  /// Edge indexes grouped by their `from` node.
  const std::vector<std::vector<int>>& out_edges() const { return out_; }

  /// Renders a position as "Relation.attribute".
  std::string PositionName(const Schema& target, int id) const;

 private:
  std::vector<TargetPosition> positions_;
  std::vector<int> offsets_;  // dense id of (rel, 0), per relation
  std::vector<PositionEdge> edges_;
  std::vector<std::vector<int>> out_;
};

/// Outcome of the weak-acyclicity test, with the actual offending cycle when
/// the test fails: `cycle` lists edge indexes (into graph.edges()) forming a
/// closed walk node-wise (cycle[0].from == cycle.back().to) whose first edge
/// is special. Empty when weakly acyclic.
struct AcyclicityWitness {
  bool weakly_acyclic = true;
  std::vector<int> cycle;

  /// Human-readable walk "T.a -(t1)-> T.b ~(t2)~> T.a" (special edges use
  /// `~>`), for diagnostics.
  std::string Describe(const SchemaMapping& mapping,
                       const PositionDependencyGraph& graph) const;
};

/// Tests the graph for a cycle through a special edge and reconstructs one
/// when present.
AcyclicityWitness CheckWeakAcyclicity(const PositionDependencyGraph& graph);

/// Tests whether the target tgds of `mapping` are weakly acyclic
/// [Fagin et al., TCS'05], which guarantees that the chase terminates on
/// every source instance.
///
/// When the test fails and `why` is non-null, it receives a description of
/// an offending special edge. Thin wrapper over Build + CheckWeakAcyclicity;
/// callers that want the cycle itself use those directly.
bool IsWeaklyAcyclic(const SchemaMapping& mapping, std::string* why = nullptr);

}  // namespace spider

#endif  // SPIDER_CHASE_WEAK_ACYCLICITY_H_
