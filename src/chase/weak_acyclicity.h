#ifndef SPIDER_CHASE_WEAK_ACYCLICITY_H_
#define SPIDER_CHASE_WEAK_ACYCLICITY_H_

#include <string>

#include "mapping/schema_mapping.h"

namespace spider {

/// Tests whether the target tgds of `mapping` are weakly acyclic
/// [Fagin et al., TCS'05], which guarantees that the chase terminates on
/// every source instance.
///
/// The dependency graph has one node per target position (relation,
/// attribute). For every target tgd, every occurrence of a universal
/// variable x at LHS position p contributes: a regular edge p → q for every
/// RHS position q where x occurs, and a special edge p → q' for every RHS
/// position q' holding an existential variable. The set is weakly acyclic
/// iff no cycle goes through a special edge.
///
/// When the test fails and `why` is non-null, it receives a description of
/// an offending special edge.
bool IsWeaklyAcyclic(const SchemaMapping& mapping, std::string* why = nullptr);

}  // namespace spider

#endif  // SPIDER_CHASE_WEAK_ACYCLICITY_H_
