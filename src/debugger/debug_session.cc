#include "debugger/debug_session.h"

#include <fstream>
#include <utility>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spider {

DebugSession::DebugSession(Scenario scenario, DebugSessionOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {
  SPIDER_CHECK(scenario_.mapping != nullptr && scenario_.source != nullptr,
               "DebugSession requires a populated scenario");
  if (!options_.trace_path.empty()) obs::Tracer::Global().Start();
  obs::TraceSpan open_span("session", "open");
  if (scenario_.target == nullptr) {
    scenario_.target = std::make_unique<Instance>(&scenario_.mapping->target());
  }
  IncrementalOptions inc = options_.incremental;
  inc.first_null_id = scenario_.max_null_id + 1;
  chaser_ = std::make_unique<IncrementalChaser>(
      scenario_.mapping.get(), scenario_.source.get(), scenario_.target.get(),
      std::move(inc));
  scenario_.max_null_id = chaser_->next_null_id() - 1;
  debugger_ = std::make_unique<MappingDebugger>(&scenario_, options_.routes);
}

DebugSession::~DebugSession() {
  if (!options_.trace_path.empty()) {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Stop();
    tracer.WriteJson(options_.trace_path);
  }
  if (!options_.metrics_path.empty()) {
    std::ofstream out(options_.metrics_path);
    out << obs::Registry::Global().ToJson();
  }
}

ApplyDeltaResult DebugSession::Apply(const SourceDelta& delta) {
  obs::TraceSpan span("session", "apply");
  ApplyDeltaResult result = chaser_->Apply(delta);
  scenario_.max_null_id = chaser_->next_null_id() - 1;
  cache_.Invalidate(*scenario_.mapping, result);
  return result;
}

FactKey DebugSession::TargetKey(const std::string& fact_text) const {
  FactRef ref = debugger_->TargetFact(fact_text);
  return FactKey{Side::kTarget, ref.relation,
                 scenario_.target->tuple(ref.relation, ref.row)};
}

const Route& DebugSession::RouteFor(const std::string& fact_text) {
  obs::TraceSpan span("session", "route_for");
  FactRef ref = debugger_->TargetFact(fact_text);
  FactKey key{Side::kTarget, ref.relation,
              scenario_.target->tuple(ref.relation, ref.row)};
  if (const Route* cached = cache_.FindRoute(key)) return *cached;
  OneRouteResult result = debugger_->OneRoute({ref});
  SPIDER_CHECK(result.found, "no route exists for " + fact_text);
  std::vector<FactKey> deps =
      RouteDependencies(*scenario_.mapping, result.route);
  return cache_.PutRoute(key, std::move(result.route), std::move(deps));
}

RouteForest& DebugSession::ForestFor(const std::string& fact_text) {
  obs::TraceSpan span("session", "forest_for");
  FactRef ref = debugger_->TargetFact(fact_text);
  FactKey key{Side::kTarget, ref.relation,
              scenario_.target->tuple(ref.relation, ref.row)};
  if (RouteForest* cached = cache_.FindForest(key)) return *cached;
  return cache_.PutForest(key, debugger_->AllRoutes({ref}));
}

}  // namespace spider
