#include "debugger/debug_session.h"

#include <fstream>
#include <utility>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "mapping/writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spider {

namespace {

/// Chains the content of one delta batch onto a session state key: deletes
/// then inserts, each as (op kind, relation, tuple). Uses the process-local
/// Tuple::Hash, which is all the in-memory shared tier needs.
uint64_t ChainStateKey(uint64_t key, const SourceDelta& delta) {
  auto mix = [&key](uint64_t h) { key = HashCombine(key, h); };
  for (const SourceDelta::Op& op : delta.deletes()) {
    mix(1);
    mix(Fnv1a64(op.relation));
    mix(op.tuple.Hash());
  }
  for (const SourceDelta::Op& op : delta.inserts()) {
    mix(2);
    mix(Fnv1a64(op.relation));
    mix(op.tuple.Hash());
  }
  return key;
}

}  // namespace

DebugSession::DebugSession(Scenario scenario, DebugSessionOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {
  SPIDER_CHECK(scenario_.mapping != nullptr && scenario_.source != nullptr,
               "DebugSession requires a populated scenario");
  if (!options_.trace_path.empty()) obs::Tracer::Global().Start();
  obs::TraceSpan open_span("session", "open");
  if (scenario_.target == nullptr) {
    scenario_.target = std::make_unique<Instance>(&scenario_.mapping->target());
  }
  if (options_.plan_cache != nullptr) {
    if (options_.incremental.eval.plan_cache == nullptr) {
      options_.incremental.eval.plan_cache = options_.plan_cache;
    }
    if (options_.routes.eval.plan_cache == nullptr) {
      options_.routes.eval.plan_cache = options_.plan_cache;
    }
  }
  state_key_ = options_.state_key;
  if (state_key_ == 0 && options_.shared_route_cache != nullptr) {
    // Fingerprint the pre-chase content; the chase is a deterministic
    // function of it, so it identifies the post-chase state equally well.
    state_key_ = Fnv1a64(WriteScenario(scenario_));
  }
  IncrementalOptions inc = options_.incremental;
  inc.first_null_id = scenario_.max_null_id + 1;
  inc.cancel = options_.cancel;  // Opening chase only; cleared by the chaser.
  chaser_ = std::make_unique<IncrementalChaser>(
      scenario_.mapping.get(), scenario_.source.get(), scenario_.target.get(),
      std::move(inc));
  scenario_.max_null_id = chaser_->next_null_id() - 1;
  debugger_ = std::make_unique<MappingDebugger>(&scenario_, options_.routes);
}

DebugSession::~DebugSession() {
  if (!options_.trace_path.empty()) {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.Stop();
    tracer.WriteJson(options_.trace_path);
  }
  if (!options_.metrics_path.empty()) {
    std::ofstream out(options_.metrics_path);
    out << obs::Registry::Global().ToJson();
  }
}

void DebugSession::SetCancel(const CancelToken* token) {
  cancel_ = token;
  debugger_->set_cancel(token);
}

ApplyDeltaResult DebugSession::Apply(const SourceDelta& delta) {
  obs::TraceSpan span("session", "apply");
  // Entry-only check: Apply mutates the instances in place and is not
  // abortable mid-flight. A token that flips later is ignored until the
  // batch lands (the reply then races the cancel — exactly one wins).
  ThrowIfCancelled(cancel_);
  ApplyDeltaResult result = chaser_->Apply(delta);
  scenario_.max_null_id = chaser_->next_null_id() - 1;
  cache_.Invalidate(*scenario_.mapping, result);
  state_key_ = ChainStateKey(state_key_, delta);
  return result;
}

FactKey DebugSession::TargetKey(const std::string& fact_text) const {
  FactRef ref = debugger_->TargetFact(fact_text);
  return FactKey{Side::kTarget, ref.relation,
                 scenario_.target->tuple(ref.relation, ref.row)};
}

const Route& DebugSession::RouteFor(const std::string& fact_text) {
  obs::TraceSpan span("session", "route_for");
  FactRef ref = debugger_->TargetFact(fact_text);
  FactKey key{Side::kTarget, ref.relation,
              scenario_.target->tuple(ref.relation, ref.row)};
  if (const Route* cached = cache_.FindRoute(key)) return *cached;
  SharedRouteCache* shared = options_.shared_route_cache;
  if (shared != nullptr) {
    if (auto entry = shared->FindRoute(state_key_, key)) {
      // Install into the local cache so the session behaves identically
      // whether the shared tier was hot or cold (the local entry is what
      // survives later unrelated edits).
      return cache_.PutRoute(key, entry->route, entry->deps);
    }
  }
  OneRouteResult result = debugger_->OneRoute({ref});
  SPIDER_CHECK(result.found, "no route exists for " + fact_text);
  std::vector<FactKey> deps =
      RouteDependencies(*scenario_.mapping, result.route);
  if (shared != nullptr) shared->PutRoute(state_key_, key, result.route, deps);
  return cache_.PutRoute(key, std::move(result.route), std::move(deps));
}

RouteForest& DebugSession::ForestFor(const std::string& fact_text) {
  obs::TraceSpan span("session", "forest_for");
  FactRef ref = debugger_->TargetFact(fact_text);
  FactKey key{Side::kTarget, ref.relation,
              scenario_.target->tuple(ref.relation, ref.row)};
  if (RouteForest* cached = cache_.FindForest(key)) return *cached;
  SharedRouteCache* shared = options_.shared_route_cache;
  if (shared != nullptr) {
    if (auto forest = shared->FindForest(state_key_, key)) {
      return cache_.PutForest(key, std::move(forest));
    }
  }
  auto forest = std::make_shared<RouteForest>(debugger_->AllRoutes({ref}));
  // The cached forest outlives this request; it must not keep polling the
  // request's (soon-dead) cancel token.
  forest->set_cancel(nullptr);
  if (shared != nullptr) shared->PutForest(state_key_, key, forest);
  return cache_.PutForest(key, std::move(forest));
}

}  // namespace spider
