#ifndef SPIDER_DEBUGGER_DEBUG_SESSION_H_
#define SPIDER_DEBUGGER_DEBUG_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "debugger/debugger.h"
#include "incremental/delta_chase.h"
#include "incremental/route_cache.h"
#include "incremental/shared_route_cache.h"
#include "incremental/source_delta.h"
#include "mapping/scenario.h"
#include "query/plan_cache.h"
#include "routes/options.h"

namespace spider {

struct DebugSessionOptions {
  /// Knobs for the incremental maintainer. `first_null_id` is ignored — the
  /// session derives it from the scenario's max_null_id.
  IncrementalOptions incremental;
  RouteOptions routes;

  /// Optional process-wide plan tier (spider::serve hands every session the
  /// same bounded PlanCache). Installed into `incremental.eval.plan_cache`
  /// and `routes.eval.plan_cache` unless those already carry a cache. The
  /// owner must outlive the session and Forget() the session's instances
  /// when it dies.
  PlanCache* plan_cache = nullptr;

  /// Optional cross-session route/forest tier, consulted between the local
  /// RouteCache (hit: dependency-validated entry survives edits) and a
  /// fresh computation. Keyed by state_key, so only sessions with an
  /// identical open-plus-edit history ever share an entry.
  SharedRouteCache* shared_route_cache = nullptr;

  /// Fingerprint of the opening scenario content for the shared tiers.
  /// 0 (the default) derives one from WriteScenario(), which is correct but
  /// costs a serialization; servers pass the hash of the scenario text or
  /// workload spec they were asked to open.
  uint64_t state_key = 0;

  /// Optional cooperative-cancellation token for the OPENING chase only: a
  /// create that observes a flipped token throws CancelledError from the
  /// constructor and the half-built session is discarded. Per-request
  /// cancellation after open goes through SetCancel() instead.
  const CancelToken* cancel = nullptr;

  /// When non-empty, tracing starts as the session opens and a Chrome
  /// trace-event JSON file (Perfetto / about:tracing) is written here when
  /// the session is destroyed. The initial chase, every Apply() phase and
  /// every route/forest probe land on the trace.
  std::string trace_path;

  /// When non-empty, the global metrics registry is dumped here (fixed
  /// key order JSON) when the session is destroyed.
  std::string metrics_path;
};

/// The edit/re-debug loop in one object (§6 of the paper): open a scenario,
/// probe facts for routes, apply a source edit, probe again — without
/// re-running the exchange or recomputing unaffected routes.
///
/// Opening chases the source into the scenario's target instance (replacing
/// whatever it held) via the IncrementalChaser; Apply() maintains the target
/// incrementally and feeds the resulting dirty-fact sets to a RouteCache, so
/// RouteFor()/ForestFor() answer from cache whenever the probed fact's
/// routes could not have changed. The wrapped MappingDebugger stays valid
/// across edits because the instances are mutated strictly in place.
class DebugSession {
 public:
  /// Takes ownership of the scenario (mapping and source must be populated;
  /// a missing target instance is created). Throws SpiderError when the
  /// initial chase fails.
  explicit DebugSession(Scenario scenario, DebugSessionOptions options = {});

  /// Flushes the trace/metrics files requested via the options.
  ~DebugSession();

  /// Not movable: the wrapped debugger points at the owned scenario member.
  /// Factory functions still work — returning a prvalue constructs in place.
  DebugSession(const DebugSession&) = delete;
  DebugSession& operator=(const DebugSession&) = delete;

  const Scenario& scenario() const { return scenario_; }
  MappingDebugger& debugger() { return *debugger_; }
  const MappingDebugger& debugger() const { return *debugger_; }

  /// Installs (or clears, with nullptr) the cancellation token polled by
  /// subsequent RouteFor/ForestFor probes and checked at Apply() entry.
  /// Must be serialized with those calls (per-session request serialization
  /// in spider::serve guarantees that); the token must stay alive until
  /// cleared or the session dies.
  void SetCancel(const CancelToken* token);

  /// Applies one source edit batch, bringing the target back to a universal
  /// solution and evicting exactly the cached routes/forests the edit could
  /// have affected. Checks the SetCancel() token at ENTRY only: once the
  /// in-place maintenance starts it always runs to completion, so a
  /// cancelled apply leaves the session byte-identical to never asking.
  ApplyDeltaResult Apply(const SourceDelta& delta);

  /// Content key of a target fact written as `Rel(v1, ...)` (the route
  /// cache's notion of identity). Throws when the fact does not exist.
  FactKey TargetKey(const std::string& fact_text) const;

  /// One route for the fact, served from the cache when the fact's route
  /// dependencies survived every edit since it was computed. Throws
  /// SpiderError when the fact has no route. The reference is valid until
  /// the next Apply().
  const Route& RouteFor(const std::string& fact_text);

  /// The route forest (all routes) for the fact, cached likewise.
  RouteForest& ForestFor(const std::string& fact_text);

  /// Step-through player for a route, honoring the debugger's breakpoints.
  RoutePlayer Play(Route route) const { return debugger_->Play(std::move(route)); }

  bool egd_entangled() const { return chaser_->egd_entangled(); }
  const IncrementalStats& chase_stats() const { return chaser_->stats(); }
  const RouteCacheStats& cache_stats() const { return cache_.stats(); }

  /// Fingerprint of this session's history: the opening state key chained
  /// with a content hash of every applied delta, in order. Sessions with
  /// equal state keys hold byte-identical scenarios (the engines are
  /// deterministic), which is what makes the shared route tier sound.
  uint64_t state_key() const { return state_key_; }

 private:
  Scenario scenario_;
  DebugSessionOptions options_;
  uint64_t state_key_ = 0;
  const CancelToken* cancel_ = nullptr;  ///< Per-request; see SetCancel().
  std::unique_ptr<IncrementalChaser> chaser_;
  std::unique_ptr<MappingDebugger> debugger_;
  RouteCache cache_;
};

}  // namespace spider

#endif  // SPIDER_DEBUGGER_DEBUG_SESSION_H_
