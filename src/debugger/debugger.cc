#include "debugger/debugger.h"

#include "base/status.h"
#include "mapping/parser.h"
#include "routes/fact_util.h"

namespace spider {

MappingDebugger::MappingDebugger(const Scenario* scenario,
                                 RouteOptions options)
    : scenario_([&] {
        SPIDER_CHECK(
            scenario != nullptr && scenario->mapping != nullptr &&
                scenario->source != nullptr && scenario->target != nullptr,
            "the debugger requires a scenario with mapping and instances");
        return scenario;
      }()),
      options_(options),
      reachability_(ComputeReachability(*scenario->mapping)) {}

RenderContext MappingDebugger::render_context() const {
  RenderContext ctx;
  ctx.mapping = scenario_->mapping.get();
  ctx.source = scenario_->source.get();
  ctx.target = scenario_->target.get();
  ctx.null_names = &scenario_->null_names;
  ctx.cancel = options_.cancel;
  return ctx;
}

namespace {
std::unordered_map<std::string, int64_t> ReverseNullNames(
    const std::unordered_map<int64_t, std::string>& null_names) {
  std::unordered_map<std::string, int64_t> reversed;
  for (const auto& [id, name] : null_names) reversed.emplace(name, id);
  return reversed;
}
}  // namespace

FactRef MappingDebugger::TargetFact(const std::string& fact_text) const {
  std::string relation;
  Tuple tuple = ParseFactText(fact_text, &relation,
                              ReverseNullNames(scenario_->null_names));
  return RequireTargetFact(*scenario_->target, relation, tuple);
}

FactRef MappingDebugger::SourceFact(const std::string& fact_text) const {
  std::string relation;
  Tuple tuple = ParseFactText(fact_text, &relation,
                              ReverseNullNames(scenario_->null_names));
  return RequireSourceFact(*scenario_->source, relation, tuple);
}

OneRouteResult MappingDebugger::OneRoute(
    const std::vector<FactRef>& js) const {
  // Static short-circuit: a target fact in a relation no chase sequence
  // can write has no route over ANY source instance, so when the whole
  // selection is unreachable the search outcome is known without running.
  // Mixed selections still search — the reachable facts deserve their
  // partial route, and the search marks the dead ones unproven itself.
  if (!js.empty()) {
    bool all_unreachable = true;
    for (const FactRef& fact : js) {
      if (fact.side != Side::kTarget ||
          reachability_.Reachable(fact.relation)) {
        all_unreachable = false;
        break;
      }
    }
    if (all_unreachable) {
      OneRouteResult result;
      result.found = false;
      result.unproven = js;
      return result;
    }
  }
  return ComputeOneRoute(*scenario_->mapping, *scenario_->source,
                         *scenario_->target, js, options_);
}

RouteForest MappingDebugger::AllRoutes(const std::vector<FactRef>& js) const {
  return ComputeAllRoutes(*scenario_->mapping, *scenario_->source,
                          *scenario_->target, js, options_);
}

std::unique_ptr<RouteEnumerator> MappingDebugger::EnumerateRoutes(
    const std::vector<FactRef>& js) const {
  return std::make_unique<RouteEnumerator>(*scenario_->mapping,
                                           *scenario_->source,
                                           *scenario_->target, js, options_);
}

ConsequenceForest MappingDebugger::SourceConsequences(
    const std::vector<FactRef>& selected) const {
  SourceRouteOptions options;
  options.route = options_;
  return ComputeSourceConsequences(*scenario_->mapping, *scenario_->source,
                                   *scenario_->target, selected, options);
}

void MappingDebugger::SetBreakpoint(const std::string& tgd_name) {
  TgdId id = scenario_->mapping->FindTgd(tgd_name);
  SPIDER_CHECK(id >= 0, "unknown tgd '" + tgd_name + "'");
  breakpoints_.insert(id);
}

void MappingDebugger::ClearBreakpoint(const std::string& tgd_name) {
  TgdId id = scenario_->mapping->FindTgd(tgd_name);
  SPIDER_CHECK(id >= 0, "unknown tgd '" + tgd_name + "'");
  breakpoints_.erase(id);
}

RoutePlayer MappingDebugger::Play(Route route) const {
  return RoutePlayer(std::move(route), render_context(), breakpoints_);
}

std::string MappingDebugger::Render(const Route& route) const {
  return RenderRoute(route, render_context());
}

std::string MappingDebugger::Render(const RouteForest& forest) const {
  return RenderForest(forest, render_context());
}

std::string MappingDebugger::Render(const RouteForest& forest,
                                    size_t max_bytes) const {
  RenderContext ctx = render_context();
  ctx.max_render_bytes = max_bytes;
  return RenderForest(forest, ctx);
}

std::string MappingDebugger::Render(const ConsequenceForest& forest) const {
  return RenderConsequences(forest, render_context());
}

std::string MappingDebugger::RenderFactRef(const FactRef& fact) const {
  return RenderFact(fact, render_context());
}

}  // namespace spider
