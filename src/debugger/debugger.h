#ifndef SPIDER_DEBUGGER_DEBUGGER_H_
#define SPIDER_DEBUGGER_DEBUGGER_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/reachability.h"
#include "debugger/render.h"
#include "debugger/route_player.h"
#include "mapping/scenario.h"
#include "routes/alternatives.h"
#include "routes/one_route.h"
#include "routes/route_forest.h"
#include "routes/source_routes.h"

namespace spider {

/// The user-facing façade of the schema-mapping debugger. It wraps a
/// Scenario (mapping + instances) and exposes the paper's debugging
/// features: probing target (or source) facts for one route, all routes
/// (the route forest) or alternative routes on demand, plus the "standard"
/// debugger amenities of §3.4 — breakpoints on tgds, single-stepping routes,
/// and a watch window.
///
/// The debugger never mutates the scenario; the target instance must
/// already be a solution (run ChaseScenario first, or supply your own — any
/// solution works).
class MappingDebugger {
 public:
  /// The scenario must outlive the debugger.
  explicit MappingDebugger(const Scenario* scenario,
                           RouteOptions options = {});

  const SchemaMapping& mapping() const { return *scenario_->mapping; }
  RenderContext render_context() const;

  /// Resolves a fact written as `Rel(v1, ...)` in the target instance.
  /// Labeled nulls are written `#name` (scenario-declared) or `#N<id>`
  /// (chase-invented). Throws SpiderError when the fact does not exist.
  FactRef TargetFact(const std::string& fact_text) const;
  /// Same, in the source instance.
  FactRef SourceFact(const std::string& fact_text) const;

  /// Computes one route fast for the selected target facts (§3.2). When
  /// EVERY selected target fact lives in a statically unreachable relation
  /// (see ComputeReachability), the search is short-circuited: no route can
  /// exist over any source instance, so the result is `found = false` with
  /// all of `js` unproven, without touching the instances.
  OneRouteResult OneRoute(const std::vector<FactRef>& js) const;

  /// The static reachability classification of the mapping's target schema,
  /// computed once at construction.
  const ReachabilityReport& reachability() const { return reachability_; }

  /// Computes the route forest representing all routes (§3.1).
  RouteForest AllRoutes(const std::vector<FactRef>& js) const;

  /// Starts an on-demand enumeration of alternative routes (§3.4).
  std::unique_ptr<RouteEnumerator> EnumerateRoutes(
      const std::vector<FactRef>& js) const;

  /// Forward consequences of selected source facts (§3.4).
  ConsequenceForest SourceConsequences(
      const std::vector<FactRef>& selected) const;

  /// Installs (or clears, with nullptr) the cooperative-cancellation token
  /// polled by every route computation this debugger starts. Callers must
  /// serialize this with the probe calls — spider::serve's per-session
  /// queues do — and keep the token alive while any probe runs.
  void set_cancel(const CancelToken* token) { options_.cancel = token; }

  /// Breakpoints on tgds (by name). Throws on unknown names.
  void SetBreakpoint(const std::string& tgd_name);
  void ClearBreakpoint(const std::string& tgd_name);
  const std::unordered_set<TgdId>& breakpoints() const { return breakpoints_; }

  /// Creates a step-through session over a route, honoring the currently
  /// set breakpoints.
  RoutePlayer Play(Route route) const;

  /// Rendering conveniences (labeled nulls print with their display names).
  std::string Render(const Route& route) const;
  std::string Render(const RouteForest& forest) const;
  /// Forest render with an output budget: throws RenderLimitError once the
  /// output crosses `max_bytes` (0 = unbounded), bounding peak memory on
  /// pathological forests. spider::serve uses this for its reply cap.
  std::string Render(const RouteForest& forest, size_t max_bytes) const;
  std::string Render(const ConsequenceForest& forest) const;
  std::string RenderFactRef(const FactRef& fact) const;

 private:
  const Scenario* scenario_;
  RouteOptions options_;
  ReachabilityReport reachability_;
  std::unordered_set<TgdId> breakpoints_;
};

}  // namespace spider

#endif  // SPIDER_DEBUGGER_DEBUGGER_H_
