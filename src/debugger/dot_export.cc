#include "debugger/dot_export.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "routes/fact_util.h"

namespace spider {

namespace {

/// Escapes `text` for use inside a double-quoted DOT label. Besides quotes
/// and backslashes, newlines become the DOT line-break escape \n and other
/// control characters are hex-escaped — constants are user data and may
/// contain anything; a raw newline or NUL inside label="..." produces a
/// file Graphviz rejects (or silently truncates).
std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\x";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FactNodeId(const FactRef& fact) {
  std::ostringstream os;
  os << (fact.side == Side::kSource ? "src_" : "tgt_") << fact.relation << '_'
     << fact.row;
  return os.str();
}

void EmitFactNode(const FactRef& fact, const RenderContext& ctx,
                  bool selected,
                  std::unordered_set<std::string>* emitted,
                  std::ostream& os) {
  std::string id = FactNodeId(fact);
  if (!emitted->insert(id).second) return;
  os << "  " << id << " [shape=box, label=\""
     << Escape(RenderFact(fact, ctx)) << '"';
  if (selected) {
    os << ", style=\"filled,bold\", fillcolor=\"#ffe9a8\"";
  } else if (fact.side == Side::kSource) {
    os << ", style=filled, fillcolor=\"#dcebff\"";
  }
  os << "];\n";
}

}  // namespace

std::string RouteForestToDot(const RouteForest& forest,
                             const RenderContext& ctx) {
  std::ostringstream os;
  os << "digraph route_forest {\n"
     << "  rankdir=BT;\n"
     << "  node [fontname=\"Helvetica\", fontsize=10];\n"
     << "  edge [arrowsize=0.6];\n";
  std::unordered_set<std::string> emitted;
  std::unordered_set<FactRef, FactRefHash> selected(
      forest.roots().begin(), forest.roots().end());

  // Walk every expanded node reachable from the roots.
  std::vector<FactRef> worklist = forest.roots();
  std::unordered_set<FactRef, FactRefHash> visited;
  int branch_counter = 0;
  while (!worklist.empty()) {
    FactRef fact = worklist.back();
    worklist.pop_back();
    if (!visited.insert(fact).second) continue;
    EmitFactNode(fact, ctx, selected.count(fact) > 0, &emitted, os);
    const RouteForest::Node* node = forest.Find(fact);
    if (node == nullptr || !node->expanded) continue;
    for (const RouteForest::Branch& branch : node->branches) {
      const Tgd& tgd = ctx.mapping->tgd(branch.tgd);
      std::string branch_id = "b" + std::to_string(branch_counter++);
      os << "  " << branch_id << " [shape=plaintext, label=\""
         << Escape(tgd.name()) << "\", fontcolor=\"#b03030\", tooltip=\""
         << Escape(RenderBinding(branch.h, tgd.var_names(), ctx)) << "\"];\n";
      os << "  " << branch_id << " -> " << FactNodeId(fact) << ";\n";
      for (const FactRef& lhs : branch.lhs_facts) {
        EmitFactNode(lhs, ctx, false, &emitted, os);
        os << "  " << FactNodeId(lhs) << " -> " << branch_id << ";\n";
        if (lhs.side == Side::kTarget) worklist.push_back(lhs);
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string RouteToDot(const Route& route, const RenderContext& ctx) {
  std::ostringstream os;
  os << "digraph route {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"Helvetica\", fontsize=10, shape=box];\n";
  std::unordered_set<std::string> emitted;
  for (size_t i = 0; i < route.size(); ++i) {
    const SatStep& step = route.steps()[i];
    const Tgd& tgd = ctx.mapping->tgd(step.tgd);
    std::string step_id = "s" + std::to_string(i);
    os << "  " << step_id << " [shape=ellipse, label=\"" << (i + 1) << ": "
       << Escape(tgd.name()) << "\"];\n";
    for (const FactRef& lhs :
         LhsFacts(*ctx.mapping, step.tgd, step.h, *ctx.source, *ctx.target)) {
      EmitFactNode(lhs, ctx, false, &emitted, os);
      os << "  " << FactNodeId(lhs) << " -> " << step_id << ";\n";
    }
    for (const FactRef& rhs :
         RhsFacts(*ctx.mapping, step.tgd, step.h, *ctx.target)) {
      EmitFactNode(rhs, ctx, false, &emitted, os);
      os << "  " << step_id << " -> " << FactNodeId(rhs) << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string PositionGraphToDot(const SchemaMapping& mapping,
                               const PositionDependencyGraph& graph,
                               const AcyclicityWitness* witness) {
  std::unordered_set<int> cycle_edges;
  std::unordered_set<int> cycle_nodes;
  if (witness != nullptr) {
    for (int e : witness->cycle) {
      cycle_edges.insert(e);
      cycle_nodes.insert(graph.edges()[e].from);
      cycle_nodes.insert(graph.edges()[e].to);
    }
  }
  std::ostringstream os;
  os << "digraph positions {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"Helvetica\", fontsize=10, shape=box];\n";
  for (int p = 0; p < graph.NumPositions(); ++p) {
    os << "  p" << p << " [label=\""
       << Escape(graph.PositionName(mapping.target(), p)) << '"';
    if (cycle_nodes.count(p) != 0) os << ", color=red, fontcolor=red";
    os << "];\n";
  }
  for (size_t e = 0; e < graph.edges().size(); ++e) {
    const PositionEdge& edge = graph.edges()[e];
    os << "  p" << edge.from << " -> p" << edge.to << " [label=\""
       << Escape(mapping.tgd(edge.tgd).name()) << '"';
    if (edge.special) os << ", style=dashed";
    if (cycle_edges.count(static_cast<int>(e)) != 0) {
      os << ", color=red, fontcolor=red, penwidth=2";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace spider
