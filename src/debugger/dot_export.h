#ifndef SPIDER_DEBUGGER_DOT_EXPORT_H_
#define SPIDER_DEBUGGER_DOT_EXPORT_H_

#include <string>

#include "debugger/render.h"
#include "routes/route.h"
#include "routes/route_forest.h"

namespace spider {

/// Renders a route forest as a Graphviz digraph, in the visual style of the
/// paper's Fig. 5: fact nodes (boxes, selected facts emphasized, source
/// facts shaded), one point node per (σ, h) branch labeled with the tgd
/// name, and edges fact -> branch -> LHS facts. Shared subtrees appear once
/// (the node map makes sharing explicit, unlike the textual rendering's
/// "[see above]").
///
///   dot -Tsvg forest.dot -o forest.svg
std::string RouteForestToDot(const RouteForest& forest,
                             const RenderContext& ctx);

/// Renders one route as a left-to-right chain of satisfaction steps.
std::string RouteToDot(const Route& route, const RenderContext& ctx);

}  // namespace spider

#endif  // SPIDER_DEBUGGER_DOT_EXPORT_H_
