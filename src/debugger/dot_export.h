#ifndef SPIDER_DEBUGGER_DOT_EXPORT_H_
#define SPIDER_DEBUGGER_DOT_EXPORT_H_

#include <string>

#include "chase/weak_acyclicity.h"
#include "debugger/render.h"
#include "routes/route.h"
#include "routes/route_forest.h"

namespace spider {

/// Renders a route forest as a Graphviz digraph, in the visual style of the
/// paper's Fig. 5: fact nodes (boxes, selected facts emphasized, source
/// facts shaded), one point node per (σ, h) branch labeled with the tgd
/// name, and edges fact -> branch -> LHS facts. Shared subtrees appear once
/// (the node map makes sharing explicit, unlike the textual rendering's
/// "[see above]").
///
///   dot -Tsvg forest.dot -o forest.svg
std::string RouteForestToDot(const RouteForest& forest,
                             const RenderContext& ctx);

/// Renders one route as a left-to-right chain of satisfaction steps.
std::string RouteToDot(const Route& route, const RenderContext& ctx);

/// Renders the position dependency graph of `mapping`'s target tgds: one node
/// per target position ("Rel.attr"), solid edges for regular dependencies and
/// dashed ones for special (existential) dependencies, each labeled with the
/// tgd that contributes it. When `witness` describes a failed weak-acyclicity
/// test, the offending cycle is drawn in red — the visual form of the
/// analyzer's termination diagnostic.
std::string PositionGraphToDot(const SchemaMapping& mapping,
                               const PositionDependencyGraph& graph,
                               const AcyclicityWitness* witness = nullptr);

}  // namespace spider

#endif  // SPIDER_DEBUGGER_DOT_EXPORT_H_
