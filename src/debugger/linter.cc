#include "debugger/linter.h"

#include <sstream>
#include <unordered_set>
#include <vector>

namespace spider {

namespace {

/// Union-find over variable ids, for LHS connectivity.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

void LintTgd(const SchemaMapping& mapping, TgdId id,
             std::vector<LintFinding>* findings) {
  const Tgd& tgd = mapping.tgd(id);
  const Schema& lhs_schema =
      tgd.source_to_target() ? mapping.source() : mapping.target();

  // kDisconnectedLhs: atoms joined through shared variables must form one
  // connected component (single-atom LHS is trivially connected).
  if (tgd.lhs().size() > 1) {
    UnionFind uf(tgd.num_vars() + tgd.lhs().size());
    // Extra nodes, one per atom, unioned with each variable in the atom.
    for (size_t a = 0; a < tgd.lhs().size(); ++a) {
      int atom_node = static_cast<int>(tgd.num_vars() + a);
      for (const Term& t : tgd.lhs()[a].terms) {
        if (t.is_var()) uf.Union(atom_node, t.var());
      }
    }
    int root = uf.Find(static_cast<int>(tgd.num_vars()));
    bool connected = true;
    for (size_t a = 1; a < tgd.lhs().size(); ++a) {
      if (uf.Find(static_cast<int>(tgd.num_vars() + a)) != root) {
        connected = false;
        break;
      }
    }
    if (!connected) {
      findings->push_back(LintFinding{
          LintFinding::Kind::kDisconnectedLhs, id,
          "tgd '" + tgd.name() +
              "': LHS atoms share no variables (cartesian product — is a "
              "join condition missing?)"});
    }
  }

  // kDroppedLhsVariable / kRepeatedRhsVariable.
  std::vector<bool> in_rhs(tgd.num_vars(), false);
  for (const Atom& atom : tgd.rhs()) {
    std::unordered_set<VarId> seen_in_atom;
    for (const Term& t : atom.terms) {
      if (!t.is_var()) continue;
      in_rhs[t.var()] = true;
      if (tgd.IsUniversal(t.var()) &&
          !seen_in_atom.insert(t.var()).second) {
        findings->push_back(LintFinding{
            LintFinding::Kind::kRepeatedRhsVariable, id,
            "tgd '" + tgd.name() + "': variable '" +
                tgd.var_names()[t.var()] + "' occurs twice in " +
                mapping.target().relation(atom.relation).name() +
                " (copying one source value into two target attributes?)"});
      }
    }
  }
  for (VarId v : tgd.UniversalVars()) {
    if (!in_rhs[v]) {
      findings->push_back(LintFinding{
          LintFinding::Kind::kDroppedLhsVariable, id,
          "tgd '" + tgd.name() + "': LHS variable '" + tgd.var_names()[v] +
              "' never reaches the RHS (source data dropped?)"});
    }
  }
  (void)lhs_schema;
}

}  // namespace

std::vector<LintFinding> LintMapping(const SchemaMapping& mapping) {
  std::vector<LintFinding> findings;
  for (size_t i = 0; i < mapping.NumTgds(); ++i) {
    LintTgd(mapping, static_cast<TgdId>(i), &findings);
  }

  // Schema-level: relation usage.
  std::vector<bool> source_used(mapping.source().size(), false);
  std::vector<bool> target_written(mapping.target().size(), false);
  // Per target position: filled by a universal variable or constant at
  // least once?
  std::vector<std::vector<bool>> position_grounded(mapping.target().size());
  for (size_t r = 0; r < mapping.target().size(); ++r) {
    position_grounded[r].assign(
        mapping.target().relation(static_cast<RelationId>(r)).arity(), false);
  }
  for (size_t i = 0; i < mapping.NumTgds(); ++i) {
    const Tgd& tgd = mapping.tgd(static_cast<TgdId>(i));
    if (tgd.source_to_target()) {
      for (const Atom& atom : tgd.lhs()) source_used[atom.relation] = true;
    }
    for (const Atom& atom : tgd.rhs()) {
      target_written[atom.relation] = true;
      for (size_t c = 0; c < atom.terms.size(); ++c) {
        const Term& t = atom.terms[c];
        if (t.is_const() || tgd.IsUniversal(t.var())) {
          position_grounded[atom.relation][c] = true;
        }
      }
    }
  }
  for (size_t e = 0; e < mapping.NumEgds(); ++e) {
    // Egds read but do not write; they do not ground positions.
    (void)e;
  }
  for (size_t r = 0; r < mapping.source().size(); ++r) {
    if (!source_used[r]) {
      findings.push_back(LintFinding{
          LintFinding::Kind::kUnusedSourceRelation, -1,
          "source relation '" +
              mapping.source().relation(static_cast<RelationId>(r)).name() +
              "' is not read by any s-t tgd (data never migrated)"});
    }
  }
  for (size_t r = 0; r < mapping.target().size(); ++r) {
    const RelationDef& rel =
        mapping.target().relation(static_cast<RelationId>(r));
    if (!target_written[r]) {
      findings.push_back(LintFinding{
          LintFinding::Kind::kUnpopulatedTargetRelation, -1,
          "target relation '" + rel.name() +
              "' is not written by any tgd (always empty)"});
      continue;
    }
    for (size_t c = 0; c < rel.arity(); ++c) {
      if (!position_grounded[r][c]) {
        findings.push_back(LintFinding{
            LintFinding::Kind::kNullFactory, -1,
            "target attribute " + rel.name() + "." + rel.attribute(c) +
                " is only ever filled with invented nulls (no tgd supplies "
                "a value)"});
      }
    }
  }
  return findings;
}

std::string RenderLintFindings(const std::vector<LintFinding>& findings) {
  if (findings.empty()) return "no findings\n";
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    const char* tag = "";
    switch (f.kind) {
      case LintFinding::Kind::kDisconnectedLhs:
        tag = "disconnected-lhs";
        break;
      case LintFinding::Kind::kDroppedLhsVariable:
        tag = "dropped-variable";
        break;
      case LintFinding::Kind::kRepeatedRhsVariable:
        tag = "repeated-variable";
        break;
      case LintFinding::Kind::kNullFactory:
        tag = "null-factory";
        break;
      case LintFinding::Kind::kUnusedSourceRelation:
        tag = "unused-source-relation";
        break;
      case LintFinding::Kind::kUnpopulatedTargetRelation:
        tag = "unpopulated-target-relation";
        break;
    }
    os << "[" << tag << "] " << f.message << '\n';
  }
  return os.str();
}

}  // namespace spider
