#include "debugger/linter.h"

#include <sstream>

#include "analysis/analyzer.h"

namespace spider {

// The linter is a thin adapter over spider::AnalyzeMapping: it runs the
// structural passes (shape + coverage) and translates their diagnostics to
// the original LintFinding vocabulary, so the seed API — and everything
// built on it — keeps working with the analyzer underneath. Schema-level
// findings keep tgd = -1 exactly as before, even though the analyzer
// anchors its coverage diagnostics to a specific dependency.
std::vector<LintFinding> LintMapping(const SchemaMapping& mapping) {
  AnalysisOptions options;
  options.termination = false;
  options.subsumption = false;
  options.egd_interaction = false;
  AnalysisReport report = AnalyzeMapping(mapping, options);

  std::vector<LintFinding> findings;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.pass == "shape") {
      if (d.code == "disconnected-lhs") {
        findings.push_back(
            {LintFinding::Kind::kDisconnectedLhs, d.tgd, d.message});
      } else if (d.code == "dropped-variable") {
        findings.push_back(
            {LintFinding::Kind::kDroppedLhsVariable, d.tgd, d.message});
      } else if (d.code == "repeated-variable") {
        findings.push_back(
            {LintFinding::Kind::kRepeatedRhsVariable, d.tgd, d.message});
      } else if (d.code == "unused-source-relation") {
        findings.push_back(
            {LintFinding::Kind::kUnusedSourceRelation, -1, d.message});
      } else if (d.code == "unpopulated-target-relation") {
        findings.push_back(
            {LintFinding::Kind::kUnpopulatedTargetRelation, -1, d.message});
      }
    } else if (d.pass == "coverage" && d.code == "null-only-position") {
      findings.push_back({LintFinding::Kind::kNullFactory, -1, d.message});
    }
    // The analyzer-only codes (dead-source-position, join-only-position)
    // have no LintFinding kind; callers who want them use AnalyzeMapping.
  }
  return findings;
}

std::string RenderLintFindings(const std::vector<LintFinding>& findings) {
  if (findings.empty()) return "no findings\n";
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    const char* tag = "";
    switch (f.kind) {
      case LintFinding::Kind::kDisconnectedLhs:
        tag = "disconnected-lhs";
        break;
      case LintFinding::Kind::kDroppedLhsVariable:
        tag = "dropped-variable";
        break;
      case LintFinding::Kind::kRepeatedRhsVariable:
        tag = "repeated-variable";
        break;
      case LintFinding::Kind::kNullFactory:
        tag = "null-factory";
        break;
      case LintFinding::Kind::kUnusedSourceRelation:
        tag = "unused-source-relation";
        break;
      case LintFinding::Kind::kUnpopulatedTargetRelation:
        tag = "unpopulated-target-relation";
        break;
    }
    os << "[" << tag << "] " << f.message << '\n';
  }
  return os.str();
}

}  // namespace spider
