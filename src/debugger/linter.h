#ifndef SPIDER_DEBUGGER_LINTER_H_
#define SPIDER_DEBUGGER_LINTER_H_

#include <string>
#include <vector>

#include "mapping/schema_mapping.h"

namespace spider {

/// Static analysis of a schema mapping for the bug classes the paper's
/// debugging scenarios (§2.1) exercise. Routes explain a symptom observed
/// in the data; the linter flags the suspicious constructs up front:
///
///  * kDisconnectedLhs — a tgd's LHS atoms do not share variables (a
///    cartesian product), the shape of Scenario 2's m3 (missing join on
///    ssn);
///  * kDroppedLhsVariable — a universal variable bound in the LHS that
///    never reaches the RHS, the shape of Scenario 1's dropped `location`;
///  * kRepeatedRhsVariable — a variable used twice in one RHS atom, the
///    shape of Scenario 1's maidenName copied into both name and
///    maidenName;
///  * kNullFactory — a target position that no tgd ever fills with a
///    universal variable or constant: every fact will carry an invented
///    null there (Scenario 1's Clients.address before the fix, Scenario
///    3's Accounts.accNo through m5);
///  * kUnusedSourceRelation — a source relation no s-t tgd reads;
///  * kUnpopulatedTargetRelation — a target relation no tgd writes.
///
/// Findings are hints, not errors: each corresponds to a construct that is
/// occasionally intended (projections drop attributes legitimately), which
/// is why this is a linter and not part of validation.
struct LintFinding {
  enum class Kind {
    kDisconnectedLhs,
    kDroppedLhsVariable,
    kRepeatedRhsVariable,
    kNullFactory,
    kUnusedSourceRelation,
    kUnpopulatedTargetRelation,
  };
  Kind kind;
  /// The offending tgd, or -1 for schema-level findings.
  TgdId tgd = -1;
  std::string message;
};

std::vector<LintFinding> LintMapping(const SchemaMapping& mapping);

std::string RenderLintFindings(const std::vector<LintFinding>& findings);

}  // namespace spider

#endif  // SPIDER_DEBUGGER_LINTER_H_
