#include "debugger/mapping_diff.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/status.h"
#include "chase/chase.h"

namespace spider {

namespace {

/// Replaces every labeled null with the anonymous null #N0.
Tuple NullBlind(const Tuple& tuple) {
  std::vector<Value> values(tuple.values());
  for (Value& v : values) {
    if (v.is_null()) v = Value::Null(0);
  }
  return Tuple(std::move(values));
}

/// relation name -> null-blind tuple -> multiplicity.
using Counts = std::map<std::string, std::map<Tuple, int>>;

Counts CountFacts(const Instance& instance) {
  Counts counts;
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    const std::string& name = instance.schema().relation(rel).name();
    for (const Tuple& t : instance.tuples(rel)) {
      ++counts[name][NullBlind(t)];
    }
  }
  return counts;
}

void CollectDeltas(const Counts& from, const Counts& to,
                   std::vector<MappingDiffReport::FactDelta>* out) {
  for (const auto& [relation, tuples] : from) {
    auto to_rel = to.find(relation);
    for (const auto& [tuple, count] : tuples) {
      int other = 0;
      if (to_rel != to.end()) {
        auto it = to_rel->second.find(tuple);
        if (it != to_rel->second.end()) other = it->second;
      }
      if (count > other) {
        out->push_back(
            MappingDiffReport::FactDelta{relation, tuple, count - other});
      }
    }
  }
}

std::vector<std::string> RenderedDependencies(const SchemaMapping& mapping) {
  std::vector<std::string> rendered;
  for (size_t i = 0; i < mapping.NumTgds(); ++i) {
    rendered.push_back(mapping.tgd(static_cast<TgdId>(i))
                           .ToString(mapping.source(), mapping.target()));
  }
  for (size_t e = 0; e < mapping.NumEgds(); ++e) {
    rendered.push_back(
        mapping.egd(static_cast<EgdId>(e)).ToString(mapping.target()));
  }
  return rendered;
}

}  // namespace

MappingDiffReport DiffMappings(const SchemaMapping& before,
                               const Instance& source_before,
                               const SchemaMapping& after,
                               const Instance& source_after,
                               const EvalOptions& eval) {
  ChaseOptions options;
  options.eval = eval;
  ChaseResult before_result = Chase(before, source_before, options);
  SPIDER_CHECK(before_result.outcome == ChaseOutcome::kSuccess,
               "chase under the 'before' mapping failed: " +
                   before_result.failure_message);
  ChaseResult after_result = Chase(after, source_after, options);
  SPIDER_CHECK(after_result.outcome == ChaseOutcome::kSuccess,
               "chase under the 'after' mapping failed: " +
                   after_result.failure_message);

  MappingDiffReport report;
  report.before_total = before_result.target->TotalTuples();
  report.after_total = after_result.target->TotalTuples();
  Counts before_counts = CountFacts(*before_result.target);
  Counts after_counts = CountFacts(*after_result.target);
  CollectDeltas(before_counts, after_counts, &report.removed);
  CollectDeltas(after_counts, before_counts, &report.added);

  std::vector<std::string> before_deps = RenderedDependencies(before);
  std::vector<std::string> after_deps = RenderedDependencies(after);
  for (const std::string& dep : before_deps) {
    if (std::find(after_deps.begin(), after_deps.end(), dep) ==
        after_deps.end()) {
      report.removed_dependencies.push_back(dep);
    }
  }
  for (const std::string& dep : after_deps) {
    if (std::find(before_deps.begin(), before_deps.end(), dep) ==
        before_deps.end()) {
      report.added_dependencies.push_back(dep);
    }
  }
  return report;
}

std::string MappingDiffReport::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "mapping edit: " << removed_dependencies.size() << " dependencies "
     << "removed/changed, " << added_dependencies.size() << " added/changed\n";
  for (const std::string& dep : removed_dependencies) {
    os << "  - " << dep << '\n';
  }
  for (const std::string& dep : added_dependencies) {
    os << "  + " << dep << '\n';
  }
  os << "solution: " << before_total << " -> " << after_total
     << " facts (null-blind diff: " << removed.size() << " removed, "
     << added.size() << " added)\n";
  size_t shown = 0;
  for (const FactDelta& d : removed) {
    if (shown++ >= max_rows) {
      os << "  ... (more)\n";
      break;
    }
    os << "  - " << d.relation << d.tuple.ToString();
    if (d.multiplicity > 1) os << " (x" << d.multiplicity << ')';
    os << '\n';
  }
  shown = 0;
  for (const FactDelta& d : added) {
    if (shown++ >= max_rows) {
      os << "  ... (more)\n";
      break;
    }
    os << "  + " << d.relation << d.tuple.ToString();
    if (d.multiplicity > 1) os << " (x" << d.multiplicity << ')';
    os << '\n';
  }
  return os.str();
}

}  // namespace spider
