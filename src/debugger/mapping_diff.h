#ifndef SPIDER_DEBUGGER_MAPPING_DIFF_H_
#define SPIDER_DEBUGGER_MAPPING_DIFF_H_

#include <string>
#include <vector>

#include "mapping/schema_mapping.h"
#include "query/evaluator.h"
#include "storage/instance.h"

namespace spider {

/// What-if analysis for mapping edits — the future-work item of §2.1
/// ("Ideally, we would also like to be able to simultaneously demonstrate
/// how the modification of m1 to m'1 affects tuples in J"): chase the same
/// source instance under the mapping before and after the edit and report
/// how the solution changes.
///
/// Labeled nulls invented by the two chases carry unrelated ids, so facts
/// are compared NULL-BLIND: every labeled null is treated as an anonymous
/// placeholder and facts are compared as multisets per relation. This makes
/// `Clients(234, "A. Long", #N7, #N8, "California")` equal to the same fact
/// with differently-numbered nulls, while a fact whose null became the
/// constant "Seattle" shows up as removed + added.
struct MappingDiffReport {
  struct FactDelta {
    std::string relation;
    Tuple tuple;       ///< Null-blind representative (nulls have id 0).
    int multiplicity;  ///< How many copies appeared/disappeared.
  };

  std::vector<FactDelta> removed;  ///< In chase(before) but not chase(after).
  std::vector<FactDelta> added;    ///< In chase(after) but not chase(before).
  size_t before_total = 0;
  size_t after_total = 0;

  /// Dependencies present in only one mapping, or renamed bodies (compared
  /// by rendered text).
  std::vector<std::string> removed_dependencies;
  std::vector<std::string> added_dependencies;

  bool Unchanged() const { return removed.empty() && added.empty(); }

  std::string ToString(size_t max_rows = 25) const;
};

/// Chases `source_before` under `before` and `source_after` under `after`
/// and diffs the solutions. The two target schemas must have the same
/// relation names and arities (relations are matched by name; relations
/// present in only one schema contribute wholesale adds/removes). The two
/// source instances are usually the same data, materialized over each
/// mapping's own source schema.
MappingDiffReport DiffMappings(const SchemaMapping& before,
                               const Instance& source_before,
                               const SchemaMapping& after,
                               const Instance& source_after,
                               const EvalOptions& eval = {});

}  // namespace spider

#endif  // SPIDER_DEBUGGER_MAPPING_DIFF_H_
