#include "debugger/render.h"

#include <sstream>
#include <unordered_set>

#include "routes/fact_util.h"

namespace spider {

std::string RenderValue(const Value& value, const RenderContext& ctx) {
  if (value.is_null() && ctx.null_names != nullptr) {
    auto it = ctx.null_names->find(value.AsNull().id);
    if (it != ctx.null_names->end()) return "#" + it->second;
  }
  return value.ToString();
}

std::string RenderTuple(const Tuple& tuple, const RenderContext& ctx) {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < tuple.arity(); ++i) {
    if (i > 0) os << ", ";
    os << RenderValue(tuple.at(i), ctx);
  }
  os << ')';
  return os.str();
}

std::string RenderFact(const FactRef& fact, const RenderContext& ctx) {
  const Instance& instance =
      fact.side == Side::kSource ? *ctx.source : *ctx.target;
  return instance.schema().relation(fact.relation).name() +
         RenderTuple(instance.tuple(fact.relation, fact.row), ctx);
}

std::string RenderBinding(const Binding& binding,
                          const std::vector<std::string>& var_names,
                          const RenderContext& ctx) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (size_t v = 0; v < binding.size(); ++v) {
    if (!binding.IsBound(static_cast<VarId>(v))) continue;
    if (!first) os << ", ";
    first = false;
    os << (v < var_names.size() ? var_names[v] : "?v" + std::to_string(v))
       << " -> " << RenderValue(binding.Get(static_cast<VarId>(v)), ctx);
  }
  os << '}';
  return os.str();
}

std::string RenderRoute(const Route& route, const RenderContext& ctx) {
  std::ostringstream os;
  for (size_t i = 0; i < route.size(); ++i) {
    const SatStep& step = route.steps()[i];
    const Tgd& tgd = ctx.mapping->tgd(step.tgd);
    os << "step " << (i + 1) << ": ";
    std::vector<FactRef> lhs =
        LhsFacts(*ctx.mapping, step.tgd, step.h, *ctx.source, *ctx.target);
    for (size_t k = 0; k < lhs.size(); ++k) {
      if (k > 0) os << " & ";
      os << RenderFact(lhs[k], ctx);
    }
    os << "\n  --" << tgd.name() << ", "
       << RenderBinding(step.h, tgd.var_names(), ctx) << "-->\n  ";
    std::vector<FactRef> rhs =
        RhsFacts(*ctx.mapping, step.tgd, step.h, *ctx.target);
    for (size_t k = 0; k < rhs.size(); ++k) {
      if (k > 0) os << " & ";
      os << RenderFact(rhs[k], ctx);
    }
    os << '\n';
  }
  return os.str();
}

namespace {

void RenderForestNode(const RouteForest& forest, const FactRef& fact,
                      int indent, const RenderContext& ctx,
                      std::unordered_set<FactRef, FactRefHash>* printed,
                      std::ostream& os) {
  ThrowIfCancelled(ctx.cancel);
  if (ctx.max_render_bytes != 0 &&
      static_cast<size_t>(os.tellp()) > ctx.max_render_bytes) {
    throw RenderLimitError(ctx.max_render_bytes);
  }
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const RouteForest::Node* node = forest.Find(fact);
  os << pad << RenderFact(fact, ctx);
  if (node == nullptr || !node->expanded) {
    os << "  [unexpanded]\n";
    return;
  }
  if (printed->count(fact) > 0) {
    os << "  [see above]\n";
    return;
  }
  printed->insert(fact);
  if (node->branches.empty()) {
    os << "  [no witnesses]\n";
    return;
  }
  os << '\n';
  for (const RouteForest::Branch& branch : node->branches) {
    const Tgd& tgd = ctx.mapping->tgd(branch.tgd);
    os << pad << "  <-- " << tgd.name() << ", "
       << RenderBinding(branch.h, tgd.var_names(), ctx) << '\n';
    if (tgd.source_to_target()) {
      for (const FactRef& f : branch.lhs_facts) {
        os << pad << "    " << RenderFact(f, ctx) << "  [source]\n";
      }
    } else {
      for (const FactRef& f : branch.lhs_facts) {
        RenderForestNode(forest, f, indent + 2, ctx, printed, os);
      }
    }
  }
}

}  // namespace

std::string RenderForest(const RouteForest& forest, const RenderContext& ctx) {
  std::ostringstream os;
  std::unordered_set<FactRef, FactRefHash> printed;
  for (const FactRef& root : forest.roots()) {
    RenderForestNode(forest, root, 0, ctx, &printed, os);
  }
  return os.str();
}

std::string RenderStratified(const StratifiedInterpretation& strat,
                             const RenderContext& ctx) {
  std::ostringstream os;
  for (size_t k = 0; k < strat.blocks.size(); ++k) {
    os << "rank " << (k + 1) << ":\n";
    for (const SatStep& step : strat.blocks[k]) {
      const Tgd& tgd = ctx.mapping->tgd(step.tgd);
      os << "  " << tgd.name() << ", "
         << RenderBinding(step.h, tgd.var_names(), ctx) << '\n';
    }
  }
  return os.str();
}

std::string RenderConsequences(const ConsequenceForest& forest,
                               const RenderContext& ctx) {
  std::ostringstream os;
  os << "selected source facts:\n";
  for (const FactRef& f : forest.selected) {
    os << "  " << RenderFact(f, ctx) << '\n';
  }
  os << "derivations:\n";
  for (size_t i = 0; i < forest.steps.size(); ++i) {
    const SatStep& step = forest.steps[i];
    const Tgd& tgd = ctx.mapping->tgd(step.tgd);
    os << "  [" << tgd.name() << "] "
       << RenderBinding(step.h, tgd.var_names(), ctx) << " produced";
    if (forest.produced[i].empty()) {
      os << " nothing new";
    } else {
      for (const FactRef& f : forest.produced[i]) {
        os << ' ' << RenderFact(f, ctx);
      }
    }
    os << '\n';
  }
  if (forest.truncated) os << "  ... (truncated)\n";
  return os.str();
}

std::string RenderInstance(const Instance& instance,
                           const RenderContext& ctx) {
  std::ostringstream os;
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    const std::string& name = instance.schema().relation(rel).name();
    for (const Tuple& t : instance.tuples(rel)) {
      os << name << RenderTuple(t, ctx) << '\n';
    }
  }
  return os.str();
}

}  // namespace spider
