#ifndef SPIDER_DEBUGGER_RENDER_H_
#define SPIDER_DEBUGGER_RENDER_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "base/cancel.h"
#include "base/status.h"
#include "mapping/schema_mapping.h"
#include "routes/route.h"
#include "routes/route_forest.h"
#include "routes/source_routes.h"
#include "routes/stratified.h"
#include "storage/instance.h"

namespace spider {

/// Everything needed to render routes the way the paper displays them:
/// labeled nulls print with their user-given names (`#A1`) when available,
/// `#N<id>` otherwise.
struct RenderContext {
  const SchemaMapping* mapping = nullptr;
  const Instance* source = nullptr;
  const Instance* target = nullptr;
  const std::unordered_map<int64_t, std::string>* null_names = nullptr;

  /// Output-size budget in bytes; 0 disables the bound. The recursive
  /// renderers (forests, consequence trees) check it as they descend and
  /// throw RenderLimitError when crossed, so a pathological forest aborts
  /// after ~max_render_bytes of buffering instead of materializing an
  /// arbitrarily large string.
  size_t max_render_bytes = 0;

  /// Cooperative-cancellation token polled per rendered node, so a render
  /// of a large forest aborts as promptly as the expansion that built it.
  const CancelToken* cancel = nullptr;
};

/// Thrown when a renderer crosses RenderContext::max_render_bytes. Carries
/// the budget so callers can produce a structured truncation error.
class RenderLimitError : public SpiderError {
 public:
  explicit RenderLimitError(size_t max_bytes)
      : SpiderError("render output exceeds " + std::to_string(max_bytes) +
                    " bytes"),
        max_bytes_(max_bytes) {}
  size_t max_bytes() const { return max_bytes_; }

 private:
  size_t max_bytes_;
};

std::string RenderValue(const Value& value, const RenderContext& ctx);
std::string RenderTuple(const Tuple& tuple, const RenderContext& ctx);
std::string RenderFact(const FactRef& fact, const RenderContext& ctx);
std::string RenderBinding(const Binding& binding,
                          const std::vector<std::string>& var_names,
                          const RenderContext& ctx);

/// One step per line: `LHS --tgd, {assignment}--> RHS`.
std::string RenderRoute(const Route& route, const RenderContext& ctx);

/// Indented forest with `[see above]` cross-references (Fig. 5 style).
std::string RenderForest(const RouteForest& forest, const RenderContext& ctx);

/// `rank 1: m1, m2 | rank 2: ...` with full step detail below.
std::string RenderStratified(const StratifiedInterpretation& strat,
                             const RenderContext& ctx);

/// Derivation listing of a consequence forest.
std::string RenderConsequences(const ConsequenceForest& forest,
                               const RenderContext& ctx);

/// Full instance, one fact per line.
std::string RenderInstance(const Instance& instance, const RenderContext& ctx);

}  // namespace spider

#endif  // SPIDER_DEBUGGER_RENDER_H_
