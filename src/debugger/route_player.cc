#include "debugger/route_player.h"

#include <sstream>

#include "routes/fact_util.h"

namespace spider {

RoutePlayer::RoutePlayer(Route route, const RenderContext& ctx,
                         std::unordered_set<TgdId> breakpoints)
    : route_(std::move(route)), ctx_(ctx), breakpoints_(std::move(breakpoints)) {}

bool RoutePlayer::Step() {
  if (done()) return false;
  const SatStep& step = route_.steps()[position_];
  for (const FactRef& f :
       RhsFacts(*ctx_.mapping, step.tgd, step.h, *ctx_.target)) {
    if (produced_set_.insert(f).second) produced_.push_back(f);
  }
  ++position_;
  return true;
}

bool RoutePlayer::RunToBreakpoint() {
  while (!done()) {
    const SatStep& next = route_.steps()[position_];
    if (breakpoints_.count(next.tgd) > 0) return true;
    Step();
  }
  return false;
}

void RoutePlayer::Reset() {
  position_ = 0;
  produced_.clear();
  produced_set_.clear();
}

std::string RoutePlayer::Watch() const {
  std::ostringstream os;
  os << "position: " << position_ << '/' << route_.size() << '\n';
  if (position_ > 0) {
    const SatStep& step = route_.steps()[position_ - 1];
    const Tgd& tgd = ctx_.mapping->tgd(step.tgd);
    os << "last step: " << tgd.name() << ' '
       << RenderBinding(step.h, tgd.var_names(), ctx_) << '\n';
  }
  if (!done()) {
    const SatStep& next = route_.steps()[position_];
    os << "next step: " << ctx_.mapping->tgd(next.tgd).name();
    if (breakpoints_.count(next.tgd) > 0) os << "  [breakpoint]";
    os << '\n';
  }
  os << "target facts produced so far:\n";
  for (const FactRef& f : produced_) {
    os << "  " << RenderFact(f, ctx_) << '\n';
  }
  return os.str();
}

}  // namespace spider
