#ifndef SPIDER_DEBUGGER_ROUTE_PLAYER_H_
#define SPIDER_DEBUGGER_ROUTE_PLAYER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "debugger/render.h"
#include "routes/route.h"

namespace spider {

/// Single-steps a route the way a conventional debugger single-steps a
/// program (§3.4): each Step() applies the next satisfaction step, growing
/// the partial target instance J_i; Watch() renders the current step's
/// variable assignment and the facts produced so far; breakpoints on tgds
/// stop RunToBreakpoint() just before a marked tgd fires.
class RoutePlayer {
 public:
  RoutePlayer(Route route, const RenderContext& ctx,
              std::unordered_set<TgdId> breakpoints = {});

  size_t position() const { return position_; }
  bool done() const { return position_ >= route_.size(); }
  const Route& route() const { return route_; }

  /// Applies the next satisfaction step. Returns false when the route has
  /// finished.
  bool Step();

  /// Runs until the NEXT step's tgd carries a breakpoint, or the end.
  /// Returns true when stopped at a breakpoint.
  bool RunToBreakpoint();

  void Reset();

  /// Facts of J_i (produced so far), in production order.
  const std::vector<FactRef>& produced() const { return produced_; }

  /// Renders the player state: last applied step, its assignment, and the
  /// partial target instance built so far.
  std::string Watch() const;

 private:
  Route route_;
  RenderContext ctx_;
  std::unordered_set<TgdId> breakpoints_;
  size_t position_ = 0;
  std::vector<FactRef> produced_;
  std::unordered_set<FactRef, FactRefHash> produced_set_;
};

}  // namespace spider

#endif  // SPIDER_DEBUGGER_ROUTE_PLAYER_H_
