#ifndef SPIDER_EXEC_EXEC_OPTIONS_H_
#define SPIDER_EXEC_EXEC_OPTIONS_H_

#include <cstddef>

namespace spider {

/// Knobs for the spider::exec work-stealing runtime. Embedded in
/// ChaseOptions and RouteOptions so every parallel call site is controlled
/// by the same switch.
struct ExecOptions {
  /// Number of worker threads parallel regions fan out to.
  ///   1  — (default) every parallel region runs inline on the calling
  ///        thread; this IS the sequential path, not a separate code path.
  ///   0  — resolve to the hardware concurrency.
  ///   n  — use a shared process-wide pool of n workers.
  /// Results are byte-identical for every value: parallel regions buffer
  /// per-task results and merge them in a canonical order.
  int num_threads = 1;

  /// Minimum number of items a ParallelFor leaf processes before the range
  /// stops splitting; guards small ranges against scheduling overhead.
  size_t grain = 1;
};

/// Maps the ExecOptions convention (0 = hardware concurrency) to a concrete
/// thread count >= 1.
int ResolveNumThreads(int num_threads);

}  // namespace spider

#endif  // SPIDER_EXEC_EXEC_OPTIONS_H_
