#ifndef SPIDER_EXEC_PARALLEL_FOR_H_
#define SPIDER_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "base/cancel.h"
#include "exec/exec_options.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"

namespace spider {

/// Applies `body(i)` to every index in [begin, end), fanning out over
/// `pool` by recursive range splitting: a task forks its upper half while
/// it keeps narrowing the lower half, until ranges reach `grain` items.
/// Stolen halves are the largest pending ranges (FIFO steals), so load
/// balances without a shared counter.
///
/// With a null pool (or a range of at most `grain` items) the whole range
/// runs inline in index order — the sequential path. In all cases every
/// index is applied exactly once; the caller must make body(i) independent
/// of body(j) (write to per-index slots, merge after).
///
/// `cancel` (optional) makes task bodies cooperative: once the token flips,
/// leaves that have not started yet are skipped (each leaf re-checks before
/// its index loop), so a cancelled fan-out drains in O(running leaves)
/// instead of finishing the whole range. The caller must then treat the
/// per-index results as abandoned — ThrowIfCancelled after the join is the
/// usual pattern.
template <typename F>
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const F& body, const CancelToken* cancel = nullptr) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || end - begin <= grain) {
    for (size_t i = begin; i < end; ++i) {
      if (Cancelled(cancel)) return;
      body(i);
    }
    return;
  }
  // Declared before the group so it outlives the join in ~TaskGroup.
  std::function<void(size_t, size_t)> run;
  TaskGroup group(pool);
  run = [&](size_t lo, size_t hi) {
    while (hi - lo > grain) {
      size_t mid = lo + (hi - lo) / 2;
      group.Run([&run, mid, hi] { run(mid, hi); });
      hi = mid;
    }
    if (Cancelled(cancel)) return;
    for (size_t i = lo; i < hi; ++i) body(i);
  };
  run(begin, end);
  group.Wait();
}

/// ParallelFor with the grain taken from `options`; resolves the pool too.
template <typename F>
void ParallelFor(const ExecOptions& options, size_t begin, size_t end,
                 const F& body) {
  ParallelFor(ThreadPool::For(options), begin, end, options.grain, body);
}

}  // namespace spider

#endif  // SPIDER_EXEC_PARALLEL_FOR_H_
