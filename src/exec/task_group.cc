#include "exec/task_group.h"

#include <string>

#include "base/status.h"
#include "obs/metrics.h"

namespace spider {

void TaskGroup::Wait() {
  if (pool_ != nullptr) {
    while (pending_.load(std::memory_order_seq_cst) > 0) {
      // Help: run whatever pool task is available. This keeps every thread
      // productive during joins and makes nested groups deadlock-free (a
      // worker waiting on an inner group executes other tasks, including
      // the ones the inner group is waiting for).
      if (pool_->RunOneTask()) continue;
      // Nothing to help with: the remaining group tasks are in flight on
      // other threads. Sleep until one finishes. The timeout is a backstop
      // against a task acquired between our predicate check and the wait.
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return pending_.load(std::memory_order_seq_cst) == 0;
      });
    }
  }
  std::exception_ptr error;
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    error = std::exchange(first_error_, nullptr);
    dropped = std::exchange(dropped_errors_, 0);
  }
  if (error == nullptr) return;
  if (dropped == 0) std::rethrow_exception(error);
  if (obs::MetricsEnabled()) {
    obs::Registry::Global()
        .GetCounter("exec.task_exceptions_dropped")
        ->Add(dropped);
  }
  std::string suffix = " (+" + std::to_string(dropped) +
                       " more task failure" + (dropped == 1 ? "" : "s") +
                       " suppressed)";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    throw SpiderError(e.what() + suffix);
  } catch (...) {
    throw SpiderError("task failed with a non-std exception" + suffix);
  }
}

}  // namespace spider
