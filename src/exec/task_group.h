#ifndef SPIDER_EXEC_TASK_GROUP_H_
#define SPIDER_EXEC_TASK_GROUP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>

#include "exec/thread_pool.h"

namespace spider {

/// Structured fork/join: tasks forked with Run() are guaranteed joined by
/// Wait() (or the destructor), so forked closures may safely capture the
/// enclosing scope by reference.
///
/// With a null pool every Run() executes inline on the calling thread, in
/// submission order — the sequential special case shares this code path.
/// Exceptions thrown by tasks are captured; the first one (in join-time
/// observation order) is rethrown from Wait(). When several tasks fail in
/// the same join, the rethrown message says how many further failures were
/// suppressed (and the count lands on the "exec.task_exceptions_dropped"
/// counter), so multi-failure fan-outs are not mistaken for single faults.
///
/// A thread calling Wait() from inside a pool worker *helps*: it executes
/// pending pool tasks while the group drains, so nested fork/join cannot
/// starve the pool.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Joins outstanding tasks but swallows their exceptions (destructors
  /// must not throw); call Wait() explicitly to observe them.
  ~TaskGroup() {
    try {
      Wait();
    } catch (...) {
    }
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks `fn`. With a null pool, runs it inline now.
  template <typename F>
  void Run(F&& fn) {
    if (pool_ == nullptr) {
      try {
        fn();
      } catch (...) {
        RecordError(std::current_exception());
      }
      return;
    }
    pending_.fetch_add(1, std::memory_order_seq_cst);
    pool_->Submit(new GroupTask(this, std::forward<F>(fn)));
  }

  /// Blocks until every forked task has finished, helping the pool run
  /// tasks meanwhile. Rethrows the first captured exception.
  void Wait();

 private:
  class GroupTask : public Task {
   public:
    template <typename F>
    GroupTask(TaskGroup* group, F&& fn)
        : group_(group), fn_(std::forward<F>(fn)) {}

    void Execute() override {
      try {
        fn_();
      } catch (...) {
        group_->RecordError(std::current_exception());
      }
      group_->OnTaskDone();
    }

   private:
    TaskGroup* group_;
    std::function<void()> fn_;
  };

  void RecordError(std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_ == nullptr) {
      first_error_ = std::move(error);
    } else {
      ++dropped_errors_;
    }
  }

  void OnTaskDone() {
    // The notify must hold the mutex: Wait() decides to sleep under it, and
    // an unlocked notify could slip between its predicate check and sleep.
    if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }

  ThreadPool* pool_;
  std::atomic<int64_t> pending_{0};
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::exception_ptr first_error_;  // Guarded by mu_.
  size_t dropped_errors_ = 0;       // Guarded by mu_.
};

}  // namespace spider

#endif  // SPIDER_EXEC_TASK_GROUP_H_
