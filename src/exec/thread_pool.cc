#include "exec/thread_pool.h"

#include <map>
#include <string>

#include "base/status.h"
#include "obs/trace.h"

namespace spider {

namespace {

/// Identifies the pool (and slot) the current thread works for, so Submit
/// can hit the owner fast path and Acquire knows whose deque is "own".
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

}  // namespace

int ResolveNumThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = ResolveNumThreads(num_threads);
  SPIDER_CHECK(n >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Deques exist before any thread starts so workers can steal from every
  // sibling immediately.
  for (int i = 0; i < n; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  for (auto& worker : workers_) worker->thread.join();
  // Structured callers join before teardown, so normally nothing is left;
  // drain defensively anyway.
  for (auto& worker : workers_) {
    while (Task* task = worker->deque.Pop()) delete task;
  }
  for (Task* task : injector_) delete task;
}

ThreadPool* ThreadPool::For(const ExecOptions& options) {
  int n = ResolveNumThreads(options.num_threads);
  if (n <= 1) return nullptr;
  // Pools are shared per thread count and intentionally leaked: workers
  // park when idle, and teardown at static-destruction time would race
  // whatever user code still runs.
  static std::mutex* mu = new std::mutex();
  static std::map<int, ThreadPool*>* pools = new std::map<int, ThreadPool*>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = pools->find(n);
  if (it == pools->end()) {
    it = pools->emplace(n, new ThreadPool(n)).first;
  }
  return it->second;
}

void ThreadPool::Submit(Task* task) {
  ready_tasks_.fetch_add(1, std::memory_order_seq_cst);
  if (tls_pool == this && tls_worker_index >= 0) {
    workers_[static_cast<size_t>(tls_worker_index)]->deque.Push(task);
  } else {
    std::lock_guard<std::mutex> lock(injector_mu_);
    injector_.push_back(task);
  }
  // Lock-step with the park predicate: a worker that observed no work
  // re-checks under park_mu_ before sleeping, so this wake cannot be lost.
  std::lock_guard<std::mutex> lock(park_mu_);
  park_cv_.notify_one();
}

Task* ThreadPool::PopInjector() {
  std::lock_guard<std::mutex> lock(injector_mu_);
  if (injector_.empty()) return nullptr;
  Task* task = injector_.front();
  injector_.pop_front();
  return task;
}

Task* ThreadPool::Acquire(int self_index) {
  if (self_index >= 0) {
    if (Task* task = workers_[static_cast<size_t>(self_index)]->deque.Pop()) {
      return task;
    }
  }
  // Steal round-robin, starting after self so workers fan out over
  // different victims.
  size_t n = workers_.size();
  size_t start = self_index >= 0 ? static_cast<size_t>(self_index) + 1 : 0;
  for (size_t k = 0; k < n; ++k) {
    size_t victim = (start + k) % n;
    if (self_index >= 0 && victim == static_cast<size_t>(self_index)) continue;
    if (Task* task = workers_[victim]->deque.Steal()) return task;
  }
  return PopInjector();
}

bool ThreadPool::RunOneTask() {
  int self = (tls_pool == this) ? tls_worker_index : -1;
  Task* task = Acquire(self);
  if (task == nullptr) return false;
  ready_tasks_.fetch_sub(1, std::memory_order_seq_cst);
  task->Execute();
  delete task;
  return true;
}

int ThreadPool::WorkerIndexHere() const {
  return tls_pool == this ? tls_worker_index : -1;
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker_index = index;
  // Label this worker's track in trace output ("exec-worker-2/8"), so spans
  // land on per-worker lanes in Perfetto.
  obs::Tracer::Global().SetCurrentThreadName(
      "exec-worker-" + std::to_string(index) + "/" +
      std::to_string(workers_.size()));
  // A few spin rounds before parking: fork/join bursts resubmit quickly.
  constexpr int kSpinRounds = 64;
  int idle_rounds = 0;
  while (true) {
    if (RunOneTask()) {
      idle_rounds = 0;
      continue;
    }
    if (stop_.load(std::memory_order_seq_cst)) return;
    if (++idle_rounds < kSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mu_);
    park_cv_.wait(lock, [this] {
      return ready_tasks_.load(std::memory_order_seq_cst) > 0 ||
             stop_.load(std::memory_order_seq_cst);
    });
    idle_rounds = 0;
  }
}

}  // namespace spider
