#ifndef SPIDER_EXEC_THREAD_POOL_H_
#define SPIDER_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "exec/exec_options.h"
#include "exec/work_stealing_queue.h"

namespace spider {

/// Fixed-size work-stealing thread pool: one Chase–Lev deque per worker
/// (mutex-free fast path), plus a mutex-protected injector queue for
/// submissions from non-worker threads.
///
/// Scheduling: a worker runs tasks popped from its own deque (LIFO), then
/// steals from sibling deques (FIFO, round-robin from a per-worker start),
/// then drains the injector; after enough failed acquisition attempts it
/// parks on a condition variable until new work is submitted.
///
/// The pool schedules; it does not order. Determinism of the algorithms
/// built on top comes from TaskGroup/ParallelFor call sites buffering
/// per-task results and merging them in canonical order on the joining
/// thread.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (resolved via ResolveNumThreads).
  explicit ThreadPool(int num_threads);

  /// Stops and joins all workers; drains (deletes) any unexecuted tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Shared process-wide pool for `options`; pools are created on first use
  /// per thread count and live for the process lifetime (workers park when
  /// idle). Returns nullptr when the resolved count is 1: callers must then
  /// run inline, which is exactly the sequential path.
  static ThreadPool* For(const ExecOptions& options);

  /// Schedules `task` (takes ownership). Called from a worker of this pool
  /// it lands on that worker's own deque; otherwise on the injector queue.
  void Submit(Task* task);

  /// Fire-and-forget convenience for detached work that is not part of a
  /// TaskGroup join (spider::serve request handlers): wraps the closure in
  /// a heap Task and submits it. The closure must not throw — there is no
  /// join to observe an exception, so escaping ones terminate.
  template <typename F>
  void SubmitClosure(F&& fn) {
    class ClosureTask : public Task {
     public:
      explicit ClosureTask(F&& f) : fn_(std::forward<F>(f)) {}
      void Execute() override { fn_(); }

     private:
      std::decay_t<F> fn_;
    };
    Submit(new ClosureTask(std::forward<F>(fn)));
  }

  /// Cooperative helping: acquires one pending task (own deque if the
  /// caller is a worker, else steal/injector) and executes it. Returns
  /// false when no task could be acquired. Used by TaskGroup::Wait so a
  /// joining worker keeps the pool busy instead of blocking.
  bool RunOneTask();

  /// Index of the calling thread within this pool, or -1.
  int WorkerIndexHere() const;

 private:
  struct Worker {
    WorkStealingDeque deque;
    std::thread thread;
  };

  void WorkerLoop(int index);
  /// Tries to acquire a task: own deque (workers), siblings, injector.
  Task* Acquire(int self_index);
  Task* PopInjector();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  /// Tasks submitted but not yet acquired; the park/wake predicate.
  std::atomic<int64_t> ready_tasks_{0};

  std::mutex injector_mu_;
  std::deque<Task*> injector_;

  std::mutex park_mu_;
  std::condition_variable park_cv_;
};

}  // namespace spider

#endif  // SPIDER_EXEC_THREAD_POOL_H_
