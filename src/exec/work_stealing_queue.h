#ifndef SPIDER_EXEC_WORK_STEALING_QUEUE_H_
#define SPIDER_EXEC_WORK_STEALING_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace spider {

/// A unit of work owned by the runtime. Heap-allocated by the submitter;
/// deleted by whichever thread executes (or drains) it.
class Task {
 public:
  virtual ~Task() = default;
  virtual void Execute() = 0;
};

/// Chase–Lev work-stealing deque [Chase & Lev, SPAA'05] over Task*.
///
/// The owning worker pushes and pops at the bottom (LIFO — hot caches,
/// depth-first descent of fork trees); thieves steal from the top (FIFO —
/// they take the oldest, largest-granularity work). Push/Pop/Steal are
/// mutex-free; the only synchronization is on the atomic top/bottom cursors
/// and the atomic slots.
///
/// Memory ordering is the conservative variant: seq_cst on the top/bottom
/// cursors (the proven baseline of the original algorithm, and precisely
/// modelled by ThreadSanitizer, unlike fence-based relaxations) and
/// release/acquire on slot publication. On a contended pop-vs-steal of the
/// last element the CAS on `top_` decides the winner.
///
/// The ring grows geometrically when full. Retired rings are kept alive
/// until destruction instead of being freed, so a thief holding a stale
/// ring pointer can still read it: a stale ring is immutable (the owner
/// only writes to the current ring), and the entry for any logical index
/// the thief can win via its CAS on `top_` was copied verbatim.
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(int64_t initial_capacity = 256) {
    rings_.push_back(std::make_unique<Ring>(initial_capacity));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Appends at the bottom.
  void Push(Task* task) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= ring->capacity) ring = Grow(ring, t, b);
    ring->slot(b).store(task, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only. Removes from the bottom (LIFO). Returns nullptr when
  /// empty or when a thief won the race for the last element.
  Task* Pop() {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // Deque was empty; undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task = ring->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race thieves via the same CAS they use.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // A thief got it.
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread. Removes from the top (FIFO). Returns nullptr when empty
  /// or when the race for the element was lost.
  Task* Steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Ring* ring = ring_.load(std::memory_order_acquire);
    Task* task = ring->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return task;
  }

  /// Racy size estimate, for idle/backoff heuristics only.
  bool LooksEmpty() const {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  struct Ring {
    explicit Ring(int64_t cap)
        : capacity(cap), slots(new std::atomic<Task*>[cap]) {
      for (int64_t i = 0; i < cap; ++i) {
        slots[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    std::atomic<Task*>& slot(int64_t i) { return slots[i & (capacity - 1)]; }
    const int64_t capacity;  // Always a power of two.
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  /// Owner only: doubles the ring, copying the live range [t, b).
  Ring* Grow(Ring* old_ring, int64_t t, int64_t b) {
    rings_.push_back(std::make_unique<Ring>(old_ring->capacity * 2));
    Ring* bigger = rings_.back().get();
    for (int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old_ring->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Ring*> ring_;
  /// All rings ever allocated (owner-written under Push only); freeing is
  /// deferred to destruction so stale thief reads stay valid.
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace spider

#endif  // SPIDER_EXEC_WORK_STEALING_QUEUE_H_
