#include "incremental/delta_chase.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "base/status.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "provenance/annotated_chase.h"

namespace spider {

namespace {

/// Unifies one atom against a concrete tuple. Universal variables (per
/// `tgd`, or all of them when `tgd` is null — every LHS/egd variable is
/// universal) are bound into *b; existential ones only get a consistency
/// check through *existential. Returns false when a constant or an earlier
/// binding disagrees.
bool UnifyAtomWithTuple(const Atom& atom, const Tuple& tuple, Binding* b,
                        const Tgd* tgd,
                        std::unordered_map<VarId, Value>* existential) {
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    const Value& v = tuple.at(i);
    if (term.is_const()) {
      if (term.value() != v) return false;
      continue;
    }
    VarId var = term.var();
    if (tgd != nullptr && !tgd->IsUniversal(var)) {
      auto [it, inserted] = existential->emplace(var, v);
      if (!inserted && it->second != v) return false;
      continue;
    }
    if (b->IsBound(var)) {
      if (b->Get(var) != v) return false;
    } else {
      b->Set(var, v);
    }
  }
  return true;
}

/// Adds the scope's wall-clock duration to *sink on destruction.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start_;
    *sink_ += elapsed.count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void IncrementalPhaseTimes::PublishTo(obs::Registry* registry,
                                      const std::string& prefix) const {
  auto record = [&](const char* name, double ms) {
    if (ms > 0) registry->GetHistogram(prefix + name)->Record(ms);
  };
  record("delete_apply_ms", delete_apply_ms);
  record("dred_ms", dred_ms);
  record("commit_ms", commit_ms);
  record("refire_ms", refire_ms);
  record("insert_apply_ms", insert_apply_ms);
  record("trigger_ms", trigger_ms);
  record("fire_ms", fire_ms);
  record("propagate_ms", propagate_ms);
}

void IncrementalStats::PublishDeltaTo(obs::Registry* registry,
                                      const IncrementalStats& since) const {
  auto add = [&](const char* name, size_t now, size_t before) {
    if (now > before) {
      registry->GetCounter(std::string("incremental.") + name)
          ->Add(now - before);
    }
  };
  add("batches", batches, since.batches);
  add("source_inserted", source_inserted, since.source_inserted);
  add("source_deleted", source_deleted, since.source_deleted);
  add("st_steps", st_steps, since.st_steps);
  add("target_steps", target_steps, since.target_steps);
  add("egd_steps", egd_steps, since.egd_steps);
  add("triggers_enumerated", triggers_enumerated, since.triggers_enumerated);
  add("overdeleted", overdeleted, since.overdeleted);
  add("rederived", rederived, since.rederived);
  add("refired", refired, since.refired);
  add("full_rechases", full_rechases, since.full_rechases);
  EvalStats eval_delta;
  eval_delta.tuples_scanned = eval.tuples_scanned - since.eval.tuples_scanned;
  eval_delta.index_probes = eval.index_probes - since.eval.index_probes;
  eval_delta.levels_entered = eval.levels_entered - since.eval.levels_entered;
  eval_delta.plans_built = eval.plans_built - since.eval.plans_built;
  eval_delta.plan_cache_hits =
      eval.plan_cache_hits - since.eval.plan_cache_hits;
  eval_delta.PublishTo(registry, "incremental.eval.");
  IncrementalPhaseTimes phase_delta;
  phase_delta.delete_apply_ms =
      phases.delete_apply_ms - since.phases.delete_apply_ms;
  phase_delta.dred_ms = phases.dred_ms - since.phases.dred_ms;
  phase_delta.commit_ms = phases.commit_ms - since.phases.commit_ms;
  phase_delta.refire_ms = phases.refire_ms - since.phases.refire_ms;
  phase_delta.insert_apply_ms =
      phases.insert_apply_ms - since.phases.insert_apply_ms;
  phase_delta.trigger_ms = phases.trigger_ms - since.phases.trigger_ms;
  phase_delta.fire_ms = phases.fire_ms - since.phases.fire_ms;
  phase_delta.propagate_ms = phases.propagate_ms - since.phases.propagate_ms;
  phase_delta.PublishTo(registry, "incremental.phase.");
}

IncrementalChaser::IncrementalChaser(const SchemaMapping* mapping,
                                     Instance* source, Instance* target,
                                     IncrementalOptions options)
    : mapping_(mapping),
      source_(source),
      target_(target),
      options_(std::move(options)),
      eval_(options_.eval),
      null_counter_(options_.first_null_id) {
  SPIDER_CHECK(mapping_ != nullptr && source_ != nullptr && target_ != nullptr,
               "IncrementalChaser requires a mapping and both instances");
  if (eval_.plan_cache == nullptr) eval_.plan_cache = &owned_cache_;
  FullRechase(nullptr);  // The initial build IS a "re"-chase from nothing.
  // The token only covers the opening chase: Apply() mutates in place and
  // must not abort halfway, so later FullRechase calls run token-free.
  options_.cancel = nullptr;
}

void IncrementalChaser::FullRechase(ApplyDeltaResult* result) {
  obs::TraceSpan span("incremental", "full_rechase");
  AnnotatedChaseOptions aco;
  aco.max_steps = options_.max_steps;
  aco.first_null_id = null_counter_;
  aco.eval = eval_;
  aco.cancel = options_.cancel;
  AnnotatedChaseResult chased = AnnotatedChase(*mapping_, *source_, aco);
  SPIDER_CHECK(chased.outcome == AnnotatedChaseOutcome::kSuccess,
               "incremental full re-chase failed: " + chased.failure_message);
  target_->ReplaceContents(std::move(*chased.target));
  null_counter_ = chased.next_null_id;
  ImportLog(chased.log);
  if (result != nullptr) {
    result->full_rechase = true;
    ++stats_.full_rechases;
  }
}

void IncrementalChaser::ImportLog(const AnnotatedChaseLog& log) {
  facts_.clear();
  derivs_.clear();
  fact_of_.clear();
  std::vector<FactId> node_of(log.NumFacts(), -1);
  for (size_t i = 0; i < log.NumFacts(); ++i) {
    auto id = static_cast<AnnotatedChaseLog::ProvFactId>(i);
    if (log.MergedAway(id)) continue;
    node_of[i] = NewFact(FactKey{Side::kTarget, log.relation(id),
                                 log.tuple(id)});
  }
  for (const AnnotatedChaseLog::TgdStep& step : log.tgd_steps()) {
    Derivation d;
    d.tgd = step.tgd;
    for (const FactRef& ref : step.source_lhs) {
      d.lhs.push_back(
          EnsureSourceFact(ref.relation, source_->tuple(ref.relation,
                                                        ref.row)));
    }
    for (AnnotatedChaseLog::ProvFactId id : step.target_lhs) {
      d.lhs.push_back(node_of[log.Resolve(id)]);
    }
    for (AnnotatedChaseLog::ProvFactId id : step.rhs) {
      d.rhs.push_back(node_of[log.Resolve(id)]);
    }
    AddDerivation(std::move(d));
  }
  egd_fired_ = !log.egd_steps().empty();
}

IncrementalChaser::FactId IncrementalChaser::NewFact(FactKey key) {
  auto id = static_cast<FactId>(facts_.size());
  auto [it, inserted] = fact_of_.emplace(key, id);
  SPIDER_CHECK(inserted, "incremental maintainer saw a duplicate fact");
  facts_.push_back(FactNode{std::move(key), true, {}, {}});
  return id;
}

IncrementalChaser::FactId IncrementalChaser::EnsureSourceFact(
    RelationId rel, const Tuple& tuple) {
  FactKey key{Side::kSource, rel, tuple};
  auto it = fact_of_.find(key);
  if (it != fact_of_.end()) return it->second;
  return NewFact(std::move(key));
}

IncrementalChaser::FactId IncrementalChaser::RequireTargetFact(
    RelationId rel, const Tuple& tuple) const {
  auto it = fact_of_.find(FactKey{Side::kTarget, rel, tuple});
  SPIDER_CHECK(it != fact_of_.end(),
               "incremental maintainer lost track of a target fact");
  return it->second;
}

void IncrementalChaser::AddDerivation(Derivation d) {
  auto id = static_cast<int32_t>(derivs_.size());
  for (FactId l : d.lhs) facts_[l].consumers.push_back(id);
  for (FactId r : d.rhs) facts_[r].producers.push_back(id);
  derivs_.push_back(std::move(d));
}

void IncrementalChaser::KillFact(FactId f) {
  FactNode& node = facts_[f];
  node.alive = false;
  fact_of_.erase(node.key);
  for (int32_t d : node.consumers) derivs_[d].dead = true;
}

void IncrementalChaser::MergeFacts(FactId survivor, FactId victim) {
  FactNode& from = facts_[victim];
  FactNode& into = facts_[survivor];
  for (int32_t d : from.producers) {
    for (FactId& r : derivs_[d].rhs) {
      if (r == victim) r = survivor;
    }
    into.producers.push_back(d);
  }
  for (int32_t d : from.consumers) {
    for (FactId& l : derivs_[d].lhs) {
      if (l == victim) l = survivor;
    }
    into.consumers.push_back(d);
  }
  from.alive = false;
  from.producers.clear();
  from.consumers.clear();
}

void IncrementalChaser::BumpSteps() {
  SPIDER_CHECK(++steps_ <= options_.max_steps,
               "incremental chase exceeded max_steps = " +
                   std::to_string(options_.max_steps));
}

ApplyDeltaResult IncrementalChaser::Apply(const SourceDelta& delta) {
  obs::TraceSpan span("incremental", "apply");
  span.AddArg("inserts", static_cast<int64_t>(delta.inserts().size()));
  span.AddArg("deletes", static_cast<int64_t>(delta.deletes().size()));
  const IncrementalStats before = stats_;
  ApplyDeltaResult result = ApplyImpl(delta);
  if (obs::MetricsEnabled()) {
    stats_.PublishDeltaTo(&obs::Registry::Global(), before);
  }
  return result;
}

ApplyDeltaResult IncrementalChaser::ApplyImpl(const SourceDelta& delta) {
  ApplyDeltaResult result;
  steps_ = 0;

  // Normalize against current content: drop deletions of absent tuples,
  // insertions of present ones (unless the same batch deletes them first),
  // and duplicates. What remains are the operations that change the source.
  const Schema& src_schema = mapping_->source();
  std::vector<std::pair<RelationId, Tuple>> deletes;
  std::unordered_set<FactKey, FactKeyHash> delete_keys;
  for (const SourceDelta::Op& op : delta.deletes()) {
    RelationId rel = src_schema.Require(op.relation);
    if (!source_->FindRow(rel, op.tuple).has_value()) continue;
    if (!delete_keys.insert(FactKey{Side::kSource, rel, op.tuple}).second) {
      continue;
    }
    deletes.emplace_back(rel, op.tuple);
  }
  std::vector<std::pair<RelationId, Tuple>> inserts;
  std::unordered_set<FactKey, FactKeyHash> insert_keys;
  for (const SourceDelta::Op& op : delta.inserts()) {
    RelationId rel = src_schema.Require(op.relation);
    FactKey key{Side::kSource, rel, op.tuple};
    bool present = source_->FindRow(rel, op.tuple).has_value();
    if (present && delete_keys.find(key) == delete_keys.end()) continue;
    if (!insert_keys.insert(std::move(key)).second) continue;
    inserts.emplace_back(rel, op.tuple);
  }
  if (deletes.empty() && inserts.empty()) return result;
  ++stats_.batches;

  // Entangled or forced: apply the source ops and re-chase from scratch.
  if (options_.force_full_rechase || (!deletes.empty() && egd_fired_)) {
    for (auto& [rel, tuple] : deletes) {
      source_->Erase(rel, tuple);
      result.removed.push_back(FactKey{Side::kSource, rel, std::move(tuple)});
      ++result.source_deleted;
      ++stats_.source_deleted;
    }
    for (auto& [rel, tuple] : inserts) {
      source_->Insert(rel, Tuple(tuple));
      result.added.push_back(FactKey{Side::kSource, rel, std::move(tuple)});
      ++result.source_inserted;
      ++stats_.source_inserted;
    }
    FullRechase(&result);
    return result;
  }

  if (!deletes.empty()) DeleteBatch(deletes, &result);
  if (!inserts.empty()) InsertBatch(inserts, &result);
  return result;
}

void IncrementalChaser::InsertBatch(
    const std::vector<std::pair<RelationId, Tuple>>& inserts,
    ApplyDeltaResult* result) {
  std::unordered_map<RelationId, std::vector<Tuple>> dirty;
  {
    PhaseTimer timer(&stats_.phases.insert_apply_ms);
    obs::TraceSpan span("incremental", "insert_apply");
    for (const auto& [rel, tuple] : inserts) {
      source_->Insert(rel, Tuple(tuple));
      EnsureSourceFact(rel, tuple);
      result->added.push_back(FactKey{Side::kSource, rel, tuple});
      ++result->source_inserted;
      ++stats_.source_inserted;
      dirty[rel].push_back(tuple);
    }
  }

  // Semi-naive s-t round: every genuinely new trigger maps at least one LHS
  // atom onto a new source fact, so binding each atom position to each new
  // fact in turn enumerates them all (duplicates collapse in
  // FireCandidates).
  std::vector<Candidate> cands;
  {
    PhaseTimer timer(&stats_.phases.trigger_ms);
    obs::TraceSpan span("incremental", "trigger");
    std::vector<ScopedQuery> queries;
    queries.reserve(mapping_->st_tgds().size());
    for (TgdId id : mapping_->st_tgds()) {
      const Tgd& tgd = mapping_->tgd(id);
      queries.push_back(ScopedQuery{id, &tgd.lhs(), tgd.num_vars()});
    }
    EnumerateScoped(*source_, queries, dirty, PlanKeyFamily::kDeltaTrigger,
                    &cands);
  }
  std::vector<FactId> frontier;
  {
    PhaseTimer timer(&stats_.phases.fire_ms);
    obs::TraceSpan span("incremental", "fire");
    frontier = FireCandidates(cands, result);
  }
  PropagateFixpoint(std::move(frontier), result);
}

void IncrementalChaser::DeleteBatch(
    const std::vector<std::pair<RelationId, Tuple>>& deletes,
    ApplyDeltaResult* result) {
  // Resolve every doomed row first (row indexes are stable until the first
  // erase), then retract with ONE EraseRows per relation: each EraseRows
  // call re-deduplicates the whole relation, so per-tuple Erase would make
  // large deletion batches quadratic.
  std::vector<FactId> dead_sources;
  {
    PhaseTimer timer(&stats_.phases.delete_apply_ms);
    obs::TraceSpan span("incremental", "delete_apply");
    std::unordered_map<RelationId, std::vector<int32_t>> doomed_source_rows;
    for (const auto& [rel, tuple] : deletes) {
      std::optional<int32_t> row = source_->FindRow(rel, tuple);
      SPIDER_CHECK(row.has_value(), "normalized deletion lost its tuple");
      doomed_source_rows[rel].push_back(*row);
      result->removed.push_back(FactKey{Side::kSource, rel, tuple});
      ++result->source_deleted;
      ++stats_.source_deleted;
      auto it = fact_of_.find(FactKey{Side::kSource, rel, tuple});
      if (it != fact_of_.end()) dead_sources.push_back(it->second);
    }
    for (auto& [rel, rows] : doomed_source_rows) {
      source_->EraseRows(rel, std::move(rows));
    }
  }

  std::vector<FactId> affected_sorted;
  std::unordered_set<FactId> condemned;
  {
    PhaseTimer timer(&stats_.phases.dred_ms);
    obs::TraceSpan span("incremental", "dred");

    // DRed phase A — over-delete: condemn every fact reachable from a
    // deleted fact through recorded derivations, ignoring alternative
    // support.
    std::unordered_set<FactId> dead_set(dead_sources.begin(),
                                        dead_sources.end());
    std::unordered_set<FactId> affected;
    std::vector<FactId> worklist = dead_sources;
    while (!worklist.empty()) {
      FactId f = worklist.back();
      worklist.pop_back();
      for (int32_t d : facts_[f].consumers) {
        if (derivs_[d].dead) continue;
        for (FactId r : derivs_[d].rhs) {
          if (dead_set.count(r) != 0 || affected.count(r) != 0) continue;
          affected.insert(r);
          worklist.push_back(r);
        }
      }
    }
    stats_.overdeleted += affected.size();

    // DRed phase B — re-derive: the least fixpoint of "revive a condemned
    // fact when some recorded step producing it has every LHS fact alive".
    // Recorded steps (not arbitrary re-derivability) keep the result inside
    // a homomorphic image of the from-scratch chase: a step's pre-existing
    // RHS facts never contain that step's fresh existential nulls.
    affected_sorted.assign(affected.begin(), affected.end());
    std::sort(affected_sorted.begin(), affected_sorted.end());
    condemned = dead_set;
    condemned.insert(affected.begin(), affected.end());
    bool changed = true;
    while (changed) {
      changed = false;
      for (FactId f : affected_sorted) {
        if (condemned.count(f) == 0) continue;
        for (int32_t d : facts_[f].producers) {
          const Derivation& dv = derivs_[d];
          if (dv.dead) continue;
          bool supported = true;
          for (FactId l : dv.lhs) {
            if (condemned.count(l) != 0) {
              supported = false;
              break;
            }
          }
          if (!supported) continue;
          condemned.erase(f);
          ++stats_.rederived;
          changed = true;
          break;
        }
      }
    }
  }

  // Commit: kill the deleted sources and the unrevived targets, then erase
  // the target rows in one EraseRows per relation.
  std::vector<FactKey> deleted_keys;
  {
    PhaseTimer timer(&stats_.phases.commit_ms);
    obs::TraceSpan span("incremental", "commit");
    for (FactId f : dead_sources) KillFact(f);
    std::unordered_map<RelationId, std::vector<int32_t>> doomed_rows;
    for (FactId f : affected_sorted) {
      if (condemned.count(f) == 0) continue;
      const FactKey& key = facts_[f].key;
      std::optional<int32_t> row = target_->FindRow(key.relation, key.tuple);
      SPIDER_CHECK(row.has_value(),
                   "incremental maintainer lost track of a target fact");
      doomed_rows[key.relation].push_back(*row);
      deleted_keys.push_back(key);
      result->removed.push_back(key);
      ++result->target_removed;
      KillFact(f);
    }
    for (auto& [rel, rows] : doomed_rows) {
      target_->EraseRows(rel, std::move(rows));
    }
  }

  // Backward re-fire: a trigger that the standard-chase RHS check once
  // skipped may be violated now that its only witnesses are gone. Every
  // such witness mapped some RHS atom onto a deleted fact, so unifying
  // each RHS atom with each deleted fact and enumerating the LHS over the
  // live instances finds all of them.
  std::vector<FactId> frontier;
  {
    PhaseTimer timer(&stats_.phases.refire_ms);
    obs::TraceSpan span("incremental", "refire");
    std::sort(deleted_keys.begin(), deleted_keys.end());
    std::vector<Candidate> cands;
    EnumerateRefireCandidates(deleted_keys, &cands);
    size_t fired_before = stats_.st_steps + stats_.target_steps;
    frontier = FireCandidates(cands, result);
    stats_.refired += stats_.st_steps + stats_.target_steps - fired_before;
  }
  PropagateFixpoint(std::move(frontier), result);
}

size_t IncrementalChaser::EnumerateScoped(
    const Instance& inst, const std::vector<ScopedQuery>& queries,
    const std::unordered_map<RelationId, std::vector<Tuple>>& dirty,
    PlanKeyFamily family, std::vector<Candidate>* out) {
  struct Item {
    size_t query;
    size_t atom;
    const Tuple* tuple;
  };
  std::vector<Item> items;
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::vector<Atom>& atoms = *queries[q].lhs;
    for (size_t a = 0; a < atoms.size(); ++a) {
      auto it = dirty.find(atoms[a].relation);
      if (it == dirty.end()) continue;
      for (const Tuple& tuple : it->second) items.push_back({q, a, &tuple});
    }
  }
  if (items.empty()) return 0;

  std::vector<std::vector<Binding>> buffers(items.size());
  std::vector<EvalStats> item_stats(items.size());
  ThreadPool* pool = ThreadPool::For(options_.exec);
  if (pool != nullptr && eval_.use_indexes) inst.WarmIndexes();
  ParallelFor(pool, 0, items.size(), options_.exec.grain, [&](size_t i) {
    const Item& item = items[i];
    const ScopedQuery& query = queries[item.query];
    const std::vector<Atom>& atoms = *query.lhs;
    Binding b(query.num_vars);
    if (!UnifyAtomWithTuple(atoms[item.atom], *item.tuple, &b, nullptr,
                            nullptr)) {
      return;
    }
    std::vector<Atom> rest;
    rest.reserve(atoms.size() - 1);
    for (size_t j = 0; j < atoms.size(); ++j) {
      if (j != item.atom) rest.push_back(atoms[j]);
    }
    if (rest.empty()) {
      buffers[i].push_back(std::move(b));
      return;
    }
    MatchIterator mi(inst, std::move(rest), &b, eval_,
                     MakePlanKey(family, static_cast<uint64_t>(query.dep),
                                 item.atom));
    while (mi.Next()) buffers[i].push_back(b);
    item_stats[i] += mi.stats();
  });

  size_t produced = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    stats_.eval += item_stats[i];
    for (Binding& b : buffers[i]) {
      out->push_back(Candidate{queries[items[i].query].dep, std::move(b)});
      ++produced;
    }
  }
  stats_.triggers_enumerated += produced;
  return produced;
}

void IncrementalChaser::EnumerateRefireCandidates(
    const std::vector<FactKey>& deleted, std::vector<Candidate>* out) {
  struct Item {
    size_t fact;
    TgdId tgd;
    size_t atom;
  };
  std::vector<Item> items;
  for (size_t f = 0; f < deleted.size(); ++f) {
    for (TgdId id = 0; id < static_cast<TgdId>(mapping_->NumTgds()); ++id) {
      const Tgd& tgd = mapping_->tgd(id);
      for (size_t q = 0; q < tgd.rhs().size(); ++q) {
        if (tgd.rhs()[q].relation == deleted[f].relation) {
          items.push_back({f, id, q});
        }
      }
    }
  }
  if (items.empty()) return;

  std::vector<std::vector<Binding>> buffers(items.size());
  std::vector<EvalStats> item_stats(items.size());
  ThreadPool* pool = ThreadPool::For(options_.exec);
  if (pool != nullptr && eval_.use_indexes) {
    source_->WarmIndexes();
    target_->WarmIndexes();
  }
  ParallelFor(pool, 0, items.size(), options_.exec.grain, [&](size_t i) {
    const Item& item = items[i];
    const Tgd& tgd = mapping_->tgd(item.tgd);
    Binding b(tgd.num_vars());
    std::unordered_map<VarId, Value> existential;
    if (!UnifyAtomWithTuple(tgd.rhs()[item.atom], deleted[item.fact].tuple,
                            &b, &tgd, &existential)) {
      return;
    }
    const Instance& inst = tgd.source_to_target() ? *source_ : *target_;
    MatchIterator mi(inst, tgd.lhs(), &b, eval_,
                     MakePlanKey(PlanKeyFamily::kDeltaRefire,
                                 static_cast<uint64_t>(item.tgd), item.atom));
    while (mi.Next()) buffers[i].push_back(b);
    item_stats[i] += mi.stats();
  });

  size_t produced = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    stats_.eval += item_stats[i];
    for (Binding& b : buffers[i]) {
      out->push_back(Candidate{items[i].tgd, std::move(b)});
      ++produced;
    }
  }
  stats_.triggers_enumerated += produced;
}

std::vector<IncrementalChaser::FactId> IncrementalChaser::FireCandidates(
    const std::vector<Candidate>& cands, ApplyDeltaResult* result) {
  std::unordered_map<int32_t, std::unordered_set<Binding, BindingHash>> seen;
  std::vector<FactId> created;
  for (const Candidate& c : cands) {
    if (!seen[c.dep].insert(c.b).second) continue;
    BumpSteps();
    const Tgd& tgd = mapping_->tgd(c.dep);
    if (HasMatch(*target_, tgd.rhs(), c.b, eval_, &stats_.eval,
                 MakePlanKey(PlanKeyFamily::kChaseRhsCheck,
                             static_cast<uint64_t>(c.dep)))) {
      continue;
    }
    std::vector<FactId> made = FireTgdStep(c.dep, c.b, result);
    created.insert(created.end(), made.begin(), made.end());
  }
  return created;
}

std::vector<IncrementalChaser::FactId> IncrementalChaser::FireTgdStep(
    TgdId id, const Binding& universal, ApplyDeltaResult* result) {
  const Tgd& tgd = mapping_->tgd(id);
  Binding h = universal;
  for (VarId y : tgd.ExistentialVars()) {
    h.Set(y, Value::Null(null_counter_++));
  }
  Derivation d;
  d.tgd = id;
  if (tgd.source_to_target()) {
    for (const Atom& atom : tgd.lhs()) {
      d.lhs.push_back(EnsureSourceFact(atom.relation, h.Instantiate(atom)));
    }
  } else {
    for (const Atom& atom : tgd.lhs()) {
      d.lhs.push_back(RequireTargetFact(atom.relation, h.Instantiate(atom)));
    }
  }
  std::vector<FactId> created;
  for (const Atom& atom : tgd.rhs()) {
    Tuple tuple = h.Instantiate(atom);
    target_->Insert(atom.relation, Tuple(tuple));
    FactKey key{Side::kTarget, atom.relation, std::move(tuple)};
    auto it = fact_of_.find(key);
    FactId f;
    if (it != fact_of_.end()) {
      f = it->second;
    } else {
      result->added.push_back(key);
      ++result->target_added;
      f = NewFact(std::move(key));
      created.push_back(f);
    }
    d.rhs.push_back(f);
  }
  AddDerivation(std::move(d));
  ++(tgd.source_to_target() ? stats_.st_steps : stats_.target_steps);
  return created;
}

void IncrementalChaser::PropagateFixpoint(std::vector<FactId> frontier,
                                          ApplyDeltaResult* result) {
  PhaseTimer timer(&stats_.phases.propagate_ms);
  obs::TraceSpan span("incremental", "propagate");
  // The incoming frontier (st insertions, re-fired facts) has not been
  // egd-checked yet.
  EgdFixpoint(&frontier, result);
  std::vector<ScopedQuery> queries;
  queries.reserve(mapping_->target_tgds().size());
  for (TgdId id : mapping_->target_tgds()) {
    const Tgd& tgd = mapping_->tgd(id);
    queries.push_back(ScopedQuery{id, &tgd.lhs(), tgd.num_vars()});
  }
  while (true) {
    std::unordered_map<RelationId, std::vector<Tuple>> dirty;
    std::unordered_set<FactId> grouped;
    for (FactId f : frontier) {
      if (!facts_[f].alive || facts_[f].key.side != Side::kTarget) continue;
      if (!grouped.insert(f).second) continue;
      dirty[facts_[f].key.relation].push_back(facts_[f].key.tuple);
    }
    if (dirty.empty()) return;
    std::vector<Candidate> cands;
    EnumerateScoped(*target_, queries, dirty, PlanKeyFamily::kDeltaTrigger,
                    &cands);
    std::vector<FactId> created = FireCandidates(cands, result);
    if (created.empty()) return;
    EgdFixpoint(&created, result);
    frontier = std::move(created);
  }
}

void IncrementalChaser::EgdFixpoint(std::vector<FactId>* frontier,
                                    ApplyDeltaResult* result) {
  if (mapping_->NumEgds() == 0) return;
  std::vector<ScopedQuery> queries;
  queries.reserve(mapping_->NumEgds());
  for (size_t e = 0; e < mapping_->NumEgds(); ++e) {
    const Egd& egd = mapping_->egd(static_cast<EgdId>(e));
    queries.push_back(ScopedQuery{static_cast<int32_t>(e), &egd.lhs(),
                                  egd.num_vars()});
  }
  // A substitution invalidates every outstanding candidate binding, so the
  // scan restarts from a fresh enumeration after each one (the scope only
  // grows: rewritten facts join the frontier). Terminates because every
  // unification removes a labeled null from the target.
  bool clean = false;
  while (!clean) {
    clean = true;
    std::unordered_map<RelationId, std::vector<Tuple>> dirty;
    std::unordered_set<FactId> grouped;
    for (FactId f : *frontier) {
      if (!facts_[f].alive || facts_[f].key.side != Side::kTarget) continue;
      if (!grouped.insert(f).second) continue;
      dirty[facts_[f].key.relation].push_back(facts_[f].key.tuple);
    }
    if (dirty.empty()) return;
    std::vector<Candidate> cands;
    EnumerateScoped(*target_, queries, dirty, PlanKeyFamily::kDeltaEgd,
                    &cands);
    for (const Candidate& c : cands) {
      BumpSteps();
      const Egd& egd = mapping_->egd(c.dep);
      const Value& left = c.b.Get(egd.left());
      const Value& right = c.b.Get(egd.right());
      EgdUnification u = ChooseEgdUnification(left, right);
      if (u.kind == EgdUnification::Kind::kNoop) continue;
      SPIDER_CHECK(u.kind != EgdUnification::Kind::kFailure,
                   "egd '" + egd.name() + "' equates distinct constants " +
                       left.ToString() + " and " + right.ToString() +
                       " after a source edit: the scenario has no solution");
      ApplyEgdSubstitution(u.victim, u.replacement, frontier, result);
      ++stats_.egd_steps;
      egd_fired_ = true;
      clean = false;
      break;
    }
  }
}

void IncrementalChaser::ApplyEgdSubstitution(NullId victim,
                                             const Value& replacement,
                                             std::vector<FactId>* frontier,
                                             ApplyDeltaResult* result) {
  target_->ApplySubstitution(victim, replacement);
  const Value victim_value = Value::Null(victim.id);
  // Rewrite the fact table to match, rebuilding the key map; two facts that
  // collapse onto the same tuple merge (the older id survives, mirroring
  // the annotated chase).
  fact_of_.clear();
  for (FactId f = 0; f < static_cast<FactId>(facts_.size()); ++f) {
    FactNode& node = facts_[f];
    if (!node.alive) continue;
    if (node.key.side == Side::kSource) {
      fact_of_.emplace(node.key, f);
      continue;
    }
    FactKey old_key = node.key;
    bool touched = false;
    for (size_t c = 0; c < node.key.tuple.arity(); ++c) {
      if (node.key.tuple.at(c) == victim_value) {
        node.key.tuple.at(c) = replacement;
        touched = true;
      }
    }
    if (touched) {
      result->removed.push_back(std::move(old_key));
      result->added.push_back(node.key);
      ++result->target_rewritten;
      frontier->push_back(f);
    }
    auto [it, inserted] = fact_of_.emplace(node.key, f);
    if (!inserted) {
      MergeFacts(it->second, f);
      frontier->push_back(it->second);
    }
  }
}

}  // namespace spider
