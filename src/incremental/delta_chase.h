#ifndef SPIDER_INCREMENTAL_DELTA_CHASE_H_
#define SPIDER_INCREMENTAL_DELTA_CHASE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chase/chase.h"
#include "exec/exec_options.h"
#include "incremental/fact_key.h"
#include "incremental/source_delta.h"
#include "mapping/schema_mapping.h"
#include "obs/metrics.h"
#include "query/evaluator.h"
#include "query/plan_cache.h"
#include "storage/instance.h"

namespace spider {

struct IncrementalOptions {
  /// Per-batch chase-step safety net (same role as ChaseOptions::max_steps).
  size_t max_steps = 10'000'000;

  /// First id for labeled nulls invented by the initial chase; later batches
  /// continue from wherever the previous one stopped. Scenario-aware callers
  /// pass Scenario::max_null_id + 1.
  int64_t first_null_id = 1;

  EvalOptions eval;

  /// Parallel fan-out knobs for trigger enumeration (delta-scoped s-t and
  /// target triggers, backward re-fire matching). As everywhere in spider,
  /// enumeration buffers per task and fires sequentially in canonical order,
  /// so the maintained instance, null ids and stats are byte-identical at
  /// every thread count.
  ExecOptions exec;

  /// Escape hatch: treat every batch as entangled and re-chase from scratch
  /// (still through this class, so callers keep the same interface and
  /// dirty-fact reporting). Used to cross-check the incremental paths.
  bool force_full_rechase = false;

  /// Optional cooperative-cancellation token, observed ONLY during the
  /// opening chase in the constructor (where aborting just discards the
  /// half-built chaser). Apply() batches mutate the instances in place and
  /// must run to completion once started, so the chaser drops the token
  /// after construction — callers wanting cancellable edits must check
  /// before calling Apply(), never during.
  const CancelToken* cancel = nullptr;
};

/// Wall-clock milliseconds per Apply() phase, accumulated across batches.
/// The split makes regressions attributable: storage churn (erase), graph
/// work (dred), query work (enumeration/refire) and firing show up
/// separately (bench_incremental reports them alongside the totals).
struct IncrementalPhaseTimes {
  double delete_apply_ms = 0;  ///< Source row resolution + batched erases.
  double dred_ms = 0;          ///< Over-delete cascade + re-derive fixpoint.
  double commit_ms = 0;        ///< Target row resolution + batched erases.
  double refire_ms = 0;        ///< Backward re-fire enumeration + firing.
  double insert_apply_ms = 0;  ///< Source inserts + dirty-set bookkeeping.
  double trigger_ms = 0;       ///< Semi-naive s-t trigger enumeration.
  double fire_ms = 0;          ///< Candidate RHS checks + tgd firings.
  double propagate_ms = 0;     ///< Target-tgd/egd fixpoint rounds.

  /// Records each non-zero field as one histogram sample under `prefix`
  /// (e.g. "incremental.phase." + "dred_ms"). Called with per-batch deltas,
  /// so the histograms see one sample per phase per Apply().
  void PublishTo(obs::Registry* registry, const std::string& prefix) const;
};

struct IncrementalStats {
  size_t batches = 0;          ///< Apply() calls processed.
  size_t source_inserted = 0;  ///< Source tuples actually added.
  size_t source_deleted = 0;   ///< Source tuples actually removed.
  size_t st_steps = 0;         ///< s-t tgd firings (insert + re-fire paths).
  size_t target_steps = 0;     ///< Target tgd firings.
  size_t egd_steps = 0;        ///< Egd unifications applied incrementally.
  size_t triggers_enumerated = 0;  ///< Delta-scoped candidates inspected.
  size_t overdeleted = 0;      ///< Facts condemned by the DRed over-delete.
  size_t rederived = 0;        ///< Over-deleted facts revived by re-derivation.
  size_t refired = 0;          ///< Triggers re-fired by the backward pass.
  size_t full_rechases = 0;    ///< Batches that fell back to a full re-chase.
  EvalStats eval;              ///< All conjunctive-query work issued.
  IncrementalPhaseTimes phases;  ///< Where Apply() time went.

  /// Publishes the difference between this snapshot and `since` into the
  /// registry: count fields as "incremental.*" counter increments, phase
  /// times as histogram samples. Apply() calls this once per batch with the
  /// pre-batch snapshot, so registry totals always equal the struct totals.
  void PublishDeltaTo(obs::Registry* registry,
                      const IncrementalStats& since) const;
};

/// What one Apply() did, in terms a cache can act on: the content keys of
/// every fact that changed. `added` lists source and target facts that came
/// into existence, `removed` facts that ceased to exist; an egd rewrite
/// contributes its OLD key to `removed` and its new key to `added` (caches
/// index by the old one). When `full_rechase` is set the lists cover only
/// the source ops, NOT the target churn — caches must drop everything.
struct ApplyDeltaResult {
  bool full_rechase = false;
  std::vector<FactKey> added;
  std::vector<FactKey> removed;
  size_t source_inserted = 0;
  size_t source_deleted = 0;
  size_t target_added = 0;
  size_t target_removed = 0;
  size_t target_rewritten = 0;
};

/// Maintains a chased target instance under batches of source edits — the
/// engine of the edit/re-debug loop (§6 of the paper: the user repairs
/// source data, then re-asks for routes; re-running the whole exchange per
/// repair is what this avoids).
///
/// Construction runs the initial (annotated) chase of *source into *target
/// and imports the provenance log as a derivation graph. Each Apply(delta)
/// then:
///   * insertions — semi-naive trigger enumeration scoped to the delta:
///     one LHS atom is bound to a new fact, the remaining atoms are matched
///     with the regular spider::query machinery (plan-cached under the
///     kDelta* key families), fanning out over spider::exec; new facts
///     propagate through target tgds and egds the same way;
///   * deletions — DRed over the derivation graph: an over-delete cascade
///     condemns everything reachable from the deleted facts, a least-
///     fixpoint pass revives facts still derivable from surviving recorded
///     steps, and a backward re-fire pass re-runs triggers whose standard-
///     chase RHS check had been satisfied only through deleted facts.
///
/// Egd entanglement: once any egd unification has fired (initially or
/// incrementally), recorded derivations no longer correspond literally to
/// chase steps, so the next deletion batch conservatively falls back to a
/// full re-chase (insertion-only batches stay incremental — adding facts
/// never invalidates a recorded step). The re-chase swaps the new solution
/// into the SAME Instance object via ReplaceContents, so debugger pointers
/// stay valid and plan caches see a strictly larger version.
///
/// Invariant (enforced by the differential fuzz suite): after every batch
/// the maintained target is homomorphically equivalent to the from-scratch
/// chase of the edited source.
class IncrementalChaser {
 public:
  /// `mapping`, `source` and `target` must outlive the chaser; the instances
  /// are mutated in place (the chaser is their only legal writer between
  /// batches). Throws SpiderError when the initial chase fails.
  IncrementalChaser(const SchemaMapping* mapping, Instance* source,
                    Instance* target, IncrementalOptions options = {});

  IncrementalChaser(const IncrementalChaser&) = delete;
  IncrementalChaser& operator=(const IncrementalChaser&) = delete;

  /// Applies one batch (deletions first, then insertions) to the source and
  /// brings the target back to a universal solution. Operations that do not
  /// change the source (deleting an absent tuple, inserting a present one)
  /// are skipped. Throws SpiderError when the edited scenario has no
  /// solution (an egd equates distinct constants) or max_steps is exceeded;
  /// the instances are then in an unspecified-but-consistent state and the
  /// caller should treat the session as poisoned.
  ApplyDeltaResult Apply(const SourceDelta& delta);

  /// Next labeled-null id the maintainer would invent (callers keeping a
  /// Scenario in sync store this minus one into max_null_id).
  int64_t next_null_id() const { return null_counter_; }

  /// True when an egd has ever fired: the next deletion batch will re-chase.
  bool egd_entangled() const { return egd_fired_; }

  const IncrementalStats& stats() const { return stats_; }

 private:
  using FactId = int32_t;

  /// One fact of the maintained pair (I, J) with its adjacency in the
  /// derivation graph: `producers` are recorded steps with this fact in
  /// their RHS, `consumers` steps with it in their LHS.
  struct FactNode {
    FactKey key;
    bool alive = true;
    std::vector<int32_t> producers;
    std::vector<int32_t> consumers;
  };

  /// A recorded chase step: tgd plus the facts its LHS matched and its RHS
  /// asserted (new or pre-existing). Dead once any LHS fact is gone.
  struct Derivation {
    TgdId tgd = -1;
    bool dead = false;
    std::vector<FactId> lhs;
    std::vector<FactId> rhs;
  };

  /// A delta-scoped trigger candidate: dependency id plus the universal
  /// binding (egds: the full LHS binding).
  struct Candidate {
    int32_t dep = -1;
    Binding b;
  };

  /// Apply() minus the observability envelope (span + stats publication).
  ApplyDeltaResult ApplyImpl(const SourceDelta& delta);

  void FullRechase(ApplyDeltaResult* result);
  void ImportLog(const class AnnotatedChaseLog& log);

  FactId NewFact(FactKey key);
  FactId EnsureSourceFact(RelationId rel, const Tuple& tuple);
  FactId RequireTargetFact(RelationId rel, const Tuple& tuple) const;
  void AddDerivation(Derivation d);
  void KillFact(FactId f);
  void MergeFacts(FactId survivor, FactId victim);

  void InsertBatch(const std::vector<std::pair<RelationId, Tuple>>& inserts,
                   ApplyDeltaResult* result);
  void DeleteBatch(const std::vector<std::pair<RelationId, Tuple>>& deletes,
                   ApplyDeltaResult* result);

  /// One dependency LHS offered to the scoped enumerator (tgd or egd —
  /// `dep` is interpreted by the caller, the families keep plan keys apart).
  struct ScopedQuery {
    int32_t dep = -1;
    const std::vector<Atom>* lhs = nullptr;
    size_t num_vars = 0;
  };

  /// Delta-scoped trigger enumeration: for every query, every LHS atom
  /// position over a dirty relation and every dirty tuple of it, seed the
  /// binding by unifying that atom with the tuple and enumerate the
  /// remaining LHS atoms over `inst`. Items fan out over the exec pool into
  /// per-item buffers and are merged in item order, so the candidate
  /// sequence is thread-count independent. Appends to `out` and returns the
  /// number of candidates.
  size_t EnumerateScoped(
      const Instance& inst, const std::vector<ScopedQuery>& queries,
      const std::unordered_map<RelationId, std::vector<Tuple>>& dirty,
      PlanKeyFamily family, std::vector<Candidate>* out);

  /// Backward re-fire enumeration: unify each tgd RHS atom against each
  /// deleted fact, then enumerate the full LHS over the live instances.
  void EnumerateRefireCandidates(const std::vector<FactKey>& deleted,
                                 std::vector<Candidate>* out);

  /// Dedups candidates (per dependency) and fires those whose RHS is not
  /// already satisfied; returns the created facts.
  std::vector<FactId> FireCandidates(const std::vector<Candidate>& cands,
                                     ApplyDeltaResult* result);
  std::vector<FactId> FireTgdStep(TgdId id, const Binding& universal,
                                  ApplyDeltaResult* result);

  /// Runs delta-scoped target-tgd rounds and egd checks until `frontier`
  /// stops growing.
  void PropagateFixpoint(std::vector<FactId> frontier,
                         ApplyDeltaResult* result);

  /// Scoped egd fixpoint over the dirty facts; substituted/rewritten facts
  /// are appended to `frontier` for the next tgd round.
  void EgdFixpoint(std::vector<FactId>* frontier, ApplyDeltaResult* result);
  void ApplyEgdSubstitution(NullId victim, const Value& replacement,
                            std::vector<FactId>* frontier,
                            ApplyDeltaResult* result);

  void BumpSteps();

  const SchemaMapping* mapping_;
  Instance* source_;
  Instance* target_;
  IncrementalOptions options_;
  EvalOptions eval_;          ///< options_.eval with the cache filled in.
  PlanCache owned_cache_;

  std::vector<FactNode> facts_;
  std::vector<Derivation> derivs_;
  std::unordered_map<FactKey, FactId, FactKeyHash> fact_of_;  ///< Alive only.

  int64_t null_counter_;
  bool egd_fired_ = false;
  size_t steps_ = 0;  ///< Within the current batch.
  IncrementalStats stats_;
};

}  // namespace spider

#endif  // SPIDER_INCREMENTAL_DELTA_CHASE_H_
