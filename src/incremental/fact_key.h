#ifndef SPIDER_INCREMENTAL_FACT_KEY_H_
#define SPIDER_INCREMENTAL_FACT_KEY_H_

#include <cstdint>

#include "base/hash.h"
#include "base/tuple.h"

namespace spider {

/// Content identity of a fact: which instance it lives in, its relation and
/// its tuple. Unlike a FactRef (whose row index is invalidated by deletions
/// and egd rewrites), a FactKey survives every mutation that does not touch
/// the fact itself — the incremental subsystem keys dirty sets, the
/// derivation graph and the route cache on it.
struct FactKey {
  Side side = Side::kTarget;
  int32_t relation = -1;
  Tuple tuple;

  friend bool operator==(const FactKey&, const FactKey&) = default;
  friend auto operator<=>(const FactKey&, const FactKey&) = default;
};

struct FactKeyHash {
  size_t operator()(const FactKey& key) const {
    size_t seed = static_cast<size_t>(key.side);
    seed = HashCombine(seed, std::hash<int32_t>{}(key.relation));
    return HashCombine(seed, key.tuple.Hash());
  }
};

}  // namespace spider

#endif  // SPIDER_INCREMENTAL_FACT_KEY_H_
