#include "incremental/route_cache.h"

#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spider {

namespace {

/// One cache event: a registry counter bump plus a trace instant, so both
/// the metrics dump and the Perfetto track show the hit/miss/evict pattern
/// of the edit/re-debug loop.
void CacheEvent(const char* counter, const char* instant,
                int64_t count = 1) {
  if (obs::MetricsEnabled()) {
    obs::Registry::Global().GetCounter(counter)->Add(
        static_cast<uint64_t>(count));
  }
  obs::Tracer::Global().RecordInstant(
      "cache", instant, {{"count", count}});
}

}  // namespace

std::vector<FactKey> RouteDependencies(const SchemaMapping& mapping,
                                       const Route& route) {
  std::vector<FactKey> deps;
  std::unordered_set<FactKey, FactKeyHash> seen;
  auto add = [&](Side side, const Atom& atom, const Binding& h) {
    FactKey key{side, atom.relation, h.Instantiate(atom)};
    if (seen.insert(key).second) deps.push_back(std::move(key));
  };
  for (const SatStep& step : route.steps()) {
    const Tgd& tgd = mapping.tgd(step.tgd);
    Side lhs_side = tgd.source_to_target() ? Side::kSource : Side::kTarget;
    for (const Atom& atom : tgd.lhs()) add(lhs_side, atom, step.h);
    for (const Atom& atom : tgd.rhs()) add(Side::kTarget, atom, step.h);
  }
  return deps;
}

const Route* RouteCache::FindRoute(const FactKey& fact) {
  auto it = routes_.find(fact);
  if (it == routes_.end()) {
    ++stats_.route_misses;
    CacheEvent("cache.route_misses", "route_miss");
    return nullptr;
  }
  ++stats_.route_hits;
  CacheEvent("cache.route_hits", "route_hit");
  return &it->second.route;
}

const Route& RouteCache::PutRoute(const FactKey& fact, Route route,
                                  std::vector<FactKey> deps) {
  auto [it, inserted] = routes_.insert_or_assign(
      fact, RouteEntry{std::move(route), std::move(deps)});
  return it->second.route;
}

RouteForest* RouteCache::FindForest(const FactKey& fact) {
  auto it = forests_.find(fact);
  if (it == forests_.end()) {
    ++stats_.forest_misses;
    CacheEvent("cache.forest_misses", "forest_miss");
    return nullptr;
  }
  ++stats_.forest_hits;
  CacheEvent("cache.forest_hits", "forest_hit");
  return it->second.forest.get();
}

RouteForest& RouteCache::PutForest(const FactKey& fact, RouteForest forest) {
  return PutForest(fact, std::make_shared<RouteForest>(std::move(forest)));
}

RouteForest& RouteCache::PutForest(const FactKey& fact,
                                   std::shared_ptr<RouteForest> forest) {
  forests_.erase(fact);
  auto [it, inserted] = forests_.emplace(fact, ForestEntry(std::move(forest)));
  for (const RouteForest::Node& node : it->second.forest->nodes()) {
    it->second.node_relations.insert(node.fact.relation);
  }
  return *it->second.forest;
}

void RouteCache::Invalidate(const SchemaMapping& mapping,
                            const ApplyDeltaResult& delta) {
  if (delta.full_rechase) {
    Clear();
    return;
  }

  if (!delta.removed.empty()) {
    std::unordered_set<FactKey, FactKeyHash> removed(delta.removed.begin(),
                                                     delta.removed.end());
    int64_t evicted = 0;
    for (auto it = routes_.begin(); it != routes_.end();) {
      bool stale = false;
      for (const FactKey& dep : it->second.deps) {
        if (removed.find(dep) != removed.end()) {
          stale = true;
          break;
        }
      }
      if (stale) {
        it = routes_.erase(it);
        ++stats_.route_evictions;
        ++evicted;
      } else {
        ++it;
      }
    }
    if (evicted > 0) {
      CacheEvent("cache.route_evictions", "route_evict", evicted);
    }
    // Removals (including egd rewrites) renumber rows, and forests hold
    // row-indexed FactRefs — every forest goes.
    stats_.forest_evictions += forests_.size();
    if (!forests_.empty()) {
      CacheEvent("cache.forest_evictions", "forest_evict",
                 static_cast<int64_t>(forests_.size()));
    }
    forests_.clear();
  }

  if (delta.added.empty() || forests_.empty()) return;

  // Additions: rows are append-stable and routes only require presence, so
  // cached routes all survive. Forests may be missing newly enabled
  // branches; compute which target relations could now host one.
  std::unordered_set<RelationId> threatened;
  for (size_t t = 0; t < mapping.NumTgds(); ++t) {
    const Tgd& tgd = mapping.tgd(static_cast<TgdId>(t));
    Side lhs_side = tgd.source_to_target() ? Side::kSource : Side::kTarget;
    bool hit = false;
    for (const FactKey& key : delta.added) {
      if (key.side == lhs_side) {
        for (const Atom& atom : tgd.lhs()) {
          if (atom.relation == key.relation) {
            hit = true;
            break;
          }
        }
      }
      if (!hit && key.side == Side::kTarget) {
        for (const Atom& atom : tgd.rhs()) {
          if (atom.relation == key.relation) {
            hit = true;
            break;
          }
        }
      }
      if (hit) break;
    }
    if (!hit) continue;
    for (const Atom& atom : tgd.rhs()) threatened.insert(atom.relation);
  }
  if (threatened.empty()) return;
  int64_t evicted = 0;
  for (auto it = forests_.begin(); it != forests_.end();) {
    bool stale = false;
    for (RelationId rel : it->second.node_relations) {
      if (threatened.find(rel) != threatened.end()) {
        stale = true;
        break;
      }
    }
    if (stale) {
      it = forests_.erase(it);
      ++stats_.forest_evictions;
      ++evicted;
    } else {
      ++it;
    }
  }
  if (evicted > 0) {
    CacheEvent("cache.forest_evictions", "forest_evict", evicted);
  }
}

void RouteCache::Clear() {
  stats_.route_evictions += routes_.size();
  stats_.forest_evictions += forests_.size();
  if (!routes_.empty()) {
    CacheEvent("cache.route_evictions", "route_evict",
               static_cast<int64_t>(routes_.size()));
  }
  if (!forests_.empty()) {
    CacheEvent("cache.forest_evictions", "forest_evict",
               static_cast<int64_t>(forests_.size()));
  }
  routes_.clear();
  forests_.clear();
  ++stats_.clears;
  CacheEvent("cache.clears", "clear");
}

}  // namespace spider
