#ifndef SPIDER_INCREMENTAL_ROUTE_CACHE_H_
#define SPIDER_INCREMENTAL_ROUTE_CACHE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "incremental/delta_chase.h"
#include "incremental/fact_key.h"
#include "mapping/schema_mapping.h"
#include "routes/route.h"
#include "routes/route_forest.h"
#include "storage/instance.h"

namespace spider {

struct RouteCacheStats {
  size_t route_hits = 0;
  size_t route_misses = 0;
  size_t forest_hits = 0;
  size_t forest_misses = 0;
  size_t route_evictions = 0;
  size_t forest_evictions = 0;
  size_t clears = 0;  ///< Wholesale drops (full re-chase batches).
};

/// The content keys of every fact a route touches: per step, the
/// instantiated LHS facts (source side for an s-t tgd, target otherwise)
/// and the instantiated RHS facts. A cached route stays valid exactly while
/// all of these exist — routes only require facts to be PRESENT, so source
/// or target additions never invalidate one; removals and egd rewrites of
/// any dependency do.
std::vector<FactKey> RouteDependencies(const SchemaMapping& mapping,
                                       const Route& route);

/// Caches computed routes and route forests across edits of the debugged
/// scenario, keyed by the probed fact's content. Invalidate() consumes the
/// fact-level delta the IncrementalChaser reports:
///   * routes are dropped when any dependency fact was removed (or rewritten
///     — the old key appears in `removed`); additions never evict a route.
///   * forests are dropped on ANY removal (their FactRefs carry row indexes,
///     which deletions and substitutions destabilize), and on additions that
///     could grow a node's branch list: an added fact matching the LHS side
///     and relation of some tgd — or an added target fact in a tgd's RHS
///     relations — threatens that tgd's RHS relations, and a forest owning a
///     node in a threatened relation is evicted.
/// A full re-chase clears everything.
class RouteCache {
 public:
  /// Returns the cached route for the probed fact, or nullptr (each call
  /// counts a hit or a miss).
  const Route* FindRoute(const FactKey& fact);
  /// Stores (replacing any previous entry) and returns the cached copy.
  const Route& PutRoute(const FactKey& fact, Route route,
                        std::vector<FactKey> deps);

  /// Returns the cached forest for the probed fact, or nullptr. The pointer
  /// stays valid until the entry is evicted (entries hold shared ownership,
  /// so a forest installed from the cross-session SharedRouteCache tier
  /// outlives that tier's eviction).
  RouteForest* FindForest(const FactKey& fact);
  /// Stores (replacing any previous entry) and returns the cached copy.
  RouteForest& PutForest(const FactKey& fact, RouteForest forest);
  /// Same, sharing ownership of an already-built (fully expanded) forest —
  /// the install path for SharedRouteCache hits.
  RouteForest& PutForest(const FactKey& fact,
                         std::shared_ptr<RouteForest> forest);

  void Invalidate(const SchemaMapping& mapping, const ApplyDeltaResult& delta);
  void Clear();

  size_t NumRoutes() const { return routes_.size(); }
  size_t NumForests() const { return forests_.size(); }
  const RouteCacheStats& stats() const { return stats_; }

 private:
  struct RouteEntry {
    Route route;
    std::vector<FactKey> deps;
  };
  struct ForestEntry {
    std::shared_ptr<RouteForest> forest;
    std::unordered_set<RelationId> node_relations;
    explicit ForestEntry(std::shared_ptr<RouteForest> f)
        : forest(std::move(f)) {}
  };

  std::unordered_map<FactKey, RouteEntry, FactKeyHash> routes_;
  std::unordered_map<FactKey, ForestEntry, FactKeyHash> forests_;
  RouteCacheStats stats_;
};

}  // namespace spider

#endif  // SPIDER_INCREMENTAL_ROUTE_CACHE_H_
