#include "incremental/shared_route_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace spider {

namespace {

void CountEvent(const char* name, uint64_t count = 1) {
  if (obs::MetricsEnabled()) {
    obs::Registry::Global().GetCounter(name)->Add(count);
  }
}

}  // namespace

size_t ApproxRouteBytes(const Route& route,
                        const std::vector<FactKey>& deps) {
  size_t bytes = 64;
  for (const SatStep& step : route.steps()) {
    bytes += sizeof(SatStep) + step.h.size() * 24;
  }
  for (const FactKey& dep : deps) {
    bytes += sizeof(FactKey) + dep.tuple.arity() * 24;
  }
  return bytes;
}

size_t ApproxForestBytes(const RouteForest& forest) {
  size_t bytes = 128;
  for (const RouteForest::Node& node : forest.nodes()) {
    bytes += sizeof(RouteForest::Node) + 32;
    for (const RouteForest::Branch& branch : node.branches) {
      bytes += sizeof(RouteForest::Branch) + branch.h.size() * 24 +
               (branch.lhs_facts.size() + branch.rhs_facts.size()) *
                   sizeof(FactRef);
    }
  }
  return bytes;
}

std::shared_ptr<const SharedRouteCache::RouteEntry> SharedRouteCache::FindRoute(
    uint64_t state, const FactKey& fact) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key{state, 0, fact});
  if (it == entries_.end()) {
    ++stats_.route_misses;
    CountEvent("shared_cache.route_misses");
    return nullptr;
  }
  ++stats_.route_hits;
  CountEvent("shared_cache.route_hits");
  if (it->second.lru != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  return it->second.route;
}

std::shared_ptr<const SharedRouteCache::RouteEntry> SharedRouteCache::PutRoute(
    uint64_t state, const FactKey& fact, Route route,
    std::vector<FactKey> deps) {
  auto entry = std::make_shared<RouteEntry>(
      RouteEntry{std::move(route), std::move(deps)});
  std::lock_guard<std::mutex> lock(mu_);
  Entry slot;
  slot.route = entry;
  slot.bytes = ApproxRouteBytes(entry->route, entry->deps);
  InsertLocked(Key{state, 0, fact}, std::move(slot));
  return entry;
}

std::shared_ptr<RouteForest> SharedRouteCache::FindForest(uint64_t state,
                                                          const FactKey& fact) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key{state, 1, fact});
  if (it == entries_.end()) {
    ++stats_.forest_misses;
    CountEvent("shared_cache.forest_misses");
    return nullptr;
  }
  ++stats_.forest_hits;
  CountEvent("shared_cache.forest_hits");
  if (it->second.lru != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  return it->second.forest;
}

std::shared_ptr<RouteForest> SharedRouteCache::PutForest(
    uint64_t state, const FactKey& fact, std::shared_ptr<RouteForest> forest) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry slot;
  slot.forest = forest;
  slot.bytes = ApproxForestBytes(*forest);
  InsertLocked(Key{state, 1, fact}, std::move(slot));
  return forest;
}

void SharedRouteCache::InsertLocked(Key key, Entry entry) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    entries_.erase(it);
  }
  lru_.push_front(key);
  entry.lru = lru_.begin();
  bytes_ += entry.bytes;
  entries_.emplace(std::move(key), std::move(entry));
  EvictLocked();
  PublishLevelLocked();
}

void SharedRouteCache::EvictLocked() {
  uint64_t evicted = 0;
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    auto victim = entries_.find(lru_.back());
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    lru_.pop_back();
    ++evicted;
  }
  if (evicted > 0) {
    stats_.evictions += evicted;
    CountEvent("shared_cache.evictions", evicted);
  }
}

void SharedRouteCache::PublishLevelLocked() const {
  if (!obs::MetricsEnabled()) return;
  obs::Registry& registry = obs::Registry::Global();
  registry.GetGauge("shared_cache.bytes")->Set(static_cast<int64_t>(bytes_));
  registry.GetGauge("shared_cache.entries")
      ->Set(static_cast<int64_t>(entries_.size()));
}

SharedRouteCacheStats SharedRouteCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SharedRouteCacheStats stats = stats_;
  stats.bytes = bytes_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace spider
