#ifndef SPIDER_INCREMENTAL_SHARED_ROUTE_CACHE_H_
#define SPIDER_INCREMENTAL_SHARED_ROUTE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "incremental/fact_key.h"
#include "routes/route.h"
#include "routes/route_forest.h"

namespace spider {

struct SharedRouteCacheStats {
  uint64_t route_hits = 0;
  uint64_t route_misses = 0;
  uint64_t forest_hits = 0;
  uint64_t forest_misses = 0;
  uint64_t evictions = 0;
  size_t bytes = 0;
  size_t entries = 0;
};

/// The cross-session tier of the route cache (spider::serve): routes and
/// route forests keyed by (state key, probed fact), shared by every
/// DebugSession in the process so a hot mapping debugged by many sessions
/// is only ever computed once per edit state.
///
/// The state key is a fingerprint of the session's *entire history* — the
/// opening scenario content chained with every applied delta (see
/// DebugSession::state_key()). Two sessions holding the same state key have
/// byte-identical instances (spider's engines are deterministic), so their
/// routes, forests (including row-indexed FactRefs) and rendered output are
/// interchangeable; an Apply() moves the session to a fresh key, so stale
/// entries are never *served* — they merely age out of the LRU. That makes
/// the shared tier invalidation-free by construction, while each session's
/// local RouteCache keeps the fine-grained dependency invalidation that
/// lets entries survive unrelated edits.
///
/// Entries are immutable once inserted and handed out as shared_ptr, so a
/// session may keep rendering a forest the tier has since evicted. Bounded:
/// byte-accounted (approximate per-entry sizes) LRU within `max_bytes`.
///
/// Thread-safe; all operations take one mutex. Hits/misses/evictions and
/// the byte level are mirrored to obs under "shared_cache.*".
class SharedRouteCache {
 public:
  struct RouteEntry {
    Route route;
    std::vector<FactKey> deps;
  };

  explicit SharedRouteCache(size_t max_bytes = 64u << 20)
      : max_bytes_(max_bytes) {}
  SharedRouteCache(const SharedRouteCache&) = delete;
  SharedRouteCache& operator=(const SharedRouteCache&) = delete;

  /// Returns the cached route (with its dependency keys, so the caller can
  /// seed its local cache) or nullptr. Counts a hit or a miss.
  std::shared_ptr<const RouteEntry> FindRoute(uint64_t state,
                                              const FactKey& fact);
  /// Stores a copy-in entry and returns it.
  std::shared_ptr<const RouteEntry> PutRoute(uint64_t state,
                                             const FactKey& fact, Route route,
                                             std::vector<FactKey> deps);

  /// Returns the cached (fully expanded, immutable by convention) forest or
  /// nullptr. Callers must only read it through FactRef-based accessors and
  /// their own instances — the forest's internal scenario pointers belong
  /// to whichever session built it.
  std::shared_ptr<RouteForest> FindForest(uint64_t state, const FactKey& fact);
  std::shared_ptr<RouteForest> PutForest(uint64_t state, const FactKey& fact,
                                         std::shared_ptr<RouteForest> forest);

  SharedRouteCacheStats stats() const;
  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Key {
    uint64_t state = 0;
    uint8_t kind = 0;  ///< 0 = route, 1 = forest.
    FactKey fact;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t seed = HashCombine(std::hash<uint64_t>{}(k.state), k.kind);
      return HashCombine(seed, FactKeyHash{}(k.fact));
    }
  };
  struct Entry {
    std::shared_ptr<const RouteEntry> route;
    std::shared_ptr<RouteForest> forest;
    size_t bytes = 0;
    std::list<Key>::iterator lru;
  };

  /// Caller holds mu_. Inserts (replacing any previous entry) and evicts
  /// down to the budget, keeping at least the entry just inserted.
  void InsertLocked(Key key, Entry entry);
  void EvictLocked();
  void PublishLevelLocked() const;

  mutable std::mutex mu_;
  size_t max_bytes_;
  size_t bytes_ = 0;
  SharedRouteCacheStats stats_;
  std::list<Key> lru_;  ///< Front = most recently used.
  std::unordered_map<Key, Entry, KeyHash> entries_;
};

/// Approximate heap footprint of cached values, used for byte accounting.
size_t ApproxRouteBytes(const Route& route, const std::vector<FactKey>& deps);
size_t ApproxForestBytes(const RouteForest& forest);

}  // namespace spider

#endif  // SPIDER_INCREMENTAL_SHARED_ROUTE_CACHE_H_
