#include "incremental/source_delta.h"

#include <utility>

namespace spider {

size_t LoadDeltaCsv(std::istream& in, const std::string& relation,
                    const Schema& source_schema, DeltaKind kind,
                    SourceDelta* delta, const CsvOptions& options) {
  RelationId rel = source_schema.Require(relation);
  std::vector<Tuple> rows = ParseCsvRows(
      in, source_schema.relation(rel).arity(),
      "relation '" + relation + "'", options);
  for (Tuple& row : rows) {
    if (kind == DeltaKind::kInsert) {
      delta->Insert(relation, std::move(row));
    } else {
      delta->Delete(relation, std::move(row));
    }
  }
  return rows.size();
}

}  // namespace spider
