#ifndef SPIDER_INCREMENTAL_SOURCE_DELTA_H_
#define SPIDER_INCREMENTAL_SOURCE_DELTA_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "base/tuple.h"
#include "catalog/schema.h"
#include "storage/csv.h"

namespace spider {

/// One batch edit of the source instance in the edit/re-debug loop (§6 of
/// the paper: the user fixes data or mappings and re-asks for routes): a set
/// of tuple deletions plus a set of tuple insertions. The incremental
/// maintainer applies the deletions first, then the insertions, so a batch
/// that deletes and re-inserts the same tuple is a no-op on the instance
/// (though it still dirties the fact).
///
/// Operations are kept in the order they were added; duplicates are
/// tolerated (the maintainer deduplicates against instance content).
class SourceDelta {
 public:
  struct Op {
    std::string relation;
    Tuple tuple;
  };

  void Insert(std::string relation, Tuple tuple) {
    inserts_.push_back(Op{std::move(relation), std::move(tuple)});
  }
  void Delete(std::string relation, Tuple tuple) {
    deletes_.push_back(Op{std::move(relation), std::move(tuple)});
  }

  const std::vector<Op>& inserts() const { return inserts_; }
  const std::vector<Op>& deletes() const { return deletes_; }

  bool empty() const { return inserts_.empty() && deletes_.empty(); }
  size_t size() const { return inserts_.size() + deletes_.size(); }

 private:
  std::vector<Op> inserts_;
  std::vector<Op> deletes_;
};

enum class DeltaKind { kInsert, kDelete };

/// Reads CSV records (same dialect as LoadCsv, including quoted fields that
/// span lines) and appends them to `delta` as insertions or deletions of
/// `relation`, which must exist in `source_schema` (arity checked per row).
/// Returns the number of operations added. Throws SpiderError with a line
/// number on malformed input.
size_t LoadDeltaCsv(std::istream& in, const std::string& relation,
                    const Schema& source_schema, DeltaKind kind,
                    SourceDelta* delta, const CsvOptions& options = {});

}  // namespace spider

#endif  // SPIDER_INCREMENTAL_SOURCE_DELTA_H_
