#include "mapping/dependency.h"

#include <sstream>

#include "base/status.h"

namespace spider {

namespace {

void AppendAtoms(std::ostringstream& os, const std::vector<Atom>& atoms,
                 const Schema& schema,
                 const std::vector<std::string>& var_names) {
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) os << " & ";
    os << AtomToString(atoms[i], schema, var_names);
  }
}

}  // namespace

Tgd::Tgd(std::string name, std::vector<std::string> var_names,
         std::vector<Atom> lhs, std::vector<Atom> rhs, bool source_to_target)
    : name_(std::move(name)),
      var_names_(std::move(var_names)),
      lhs_(std::move(lhs)),
      rhs_(std::move(rhs)),
      source_to_target_(source_to_target) {
  SPIDER_CHECK(!lhs_.empty(), "tgd '" + name_ + "' has an empty LHS");
  SPIDER_CHECK(!rhs_.empty(), "tgd '" + name_ + "' has an empty RHS");
  universal_.assign(var_names_.size(), false);
  auto check_var = [&](const Term& t) {
    if (t.is_var()) {
      SPIDER_CHECK(t.var() >= 0 &&
                       static_cast<size_t>(t.var()) < var_names_.size(),
                   "tgd '" + name_ + "' uses a variable id outside its table");
    }
  };
  for (const Atom& atom : lhs_) {
    for (const Term& t : atom.terms) {
      check_var(t);
      if (t.is_var()) universal_[t.var()] = true;
    }
  }
  for (const Atom& atom : rhs_) {
    for (const Term& t : atom.terms) check_var(t);
  }
}

std::vector<VarId> Tgd::UniversalVars() const {
  std::vector<VarId> vars;
  for (size_t v = 0; v < universal_.size(); ++v) {
    if (universal_[v]) vars.push_back(static_cast<VarId>(v));
  }
  return vars;
}

std::vector<VarId> Tgd::ExistentialVars() const {
  std::vector<VarId> vars;
  for (size_t v = 0; v < universal_.size(); ++v) {
    if (!universal_[v]) vars.push_back(static_cast<VarId>(v));
  }
  return vars;
}

std::string Tgd::ToString(const Schema& source, const Schema& target) const {
  std::ostringstream os;
  os << name_ << ": ";
  AppendAtoms(os, lhs_, source_to_target_ ? source : target, var_names_);
  os << " -> ";
  std::vector<VarId> existential = ExistentialVars();
  if (!existential.empty()) {
    os << "exists ";
    for (size_t i = 0; i < existential.size(); ++i) {
      if (i > 0) os << ", ";
      os << var_names_[existential[i]];
    }
    os << " . ";
  }
  AppendAtoms(os, rhs_, target, var_names_);
  return os.str();
}

Egd::Egd(std::string name, std::vector<std::string> var_names,
         std::vector<Atom> lhs, VarId left, VarId right)
    : name_(std::move(name)),
      var_names_(std::move(var_names)),
      lhs_(std::move(lhs)),
      left_(left),
      right_(right) {
  SPIDER_CHECK(!lhs_.empty(), "egd '" + name_ + "' has an empty LHS");
  std::vector<bool> occurs(var_names_.size(), false);
  for (const Atom& atom : lhs_) {
    for (const Term& t : atom.terms) {
      if (t.is_var()) {
        SPIDER_CHECK(t.var() >= 0 &&
                         static_cast<size_t>(t.var()) < var_names_.size(),
                     "egd '" + name_ + "' uses a variable id outside its table");
        occurs[t.var()] = true;
      }
    }
  }
  SPIDER_CHECK(left_ >= 0 && static_cast<size_t>(left_) < occurs.size() &&
                   occurs[left_],
               "egd '" + name_ + "': equated variable missing from the LHS");
  SPIDER_CHECK(right_ >= 0 && static_cast<size_t>(right_) < occurs.size() &&
                   occurs[right_],
               "egd '" + name_ + "': equated variable missing from the LHS");
  SPIDER_CHECK(left_ != right_,
               "egd '" + name_ + "' equates a variable with itself");
}

std::string Egd::ToString(const Schema& target) const {
  std::ostringstream os;
  os << name_ << ": ";
  AppendAtoms(os, lhs_, target, var_names_);
  os << " -> " << var_names_[left_] << " = " << var_names_[right_];
  return os.str();
}

}  // namespace spider
