#ifndef SPIDER_MAPPING_DEPENDENCY_H_
#define SPIDER_MAPPING_DEPENDENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "mapping/source_span.h"
#include "query/term.h"

namespace spider {

/// Index of a tgd within its SchemaMapping.
using TgdId = int32_t;
/// Index of an egd within its SchemaMapping.
using EgdId = int32_t;

/// A tuple-generating dependency  ∀x φ(x) → ∃y ψ(x, y).
///
/// For a source-to-target tgd, φ is over the source schema and ψ over the
/// target schema; for a target tgd both sides are over the target schema.
/// Variables are identified by VarId into `var_names()`; a variable is
/// universal iff it occurs in the LHS (the remaining ones are the
/// existential y). Constants may appear on either side.
class Tgd {
 public:
  /// `source_to_target` selects which schema the LHS atoms' relation ids
  /// refer to. Validation against the schemas happens in
  /// SchemaMapping::AddTgd.
  Tgd(std::string name, std::vector<std::string> var_names,
      std::vector<Atom> lhs, std::vector<Atom> rhs, bool source_to_target);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& var_names() const { return var_names_; }
  size_t num_vars() const { return var_names_.size(); }
  const std::vector<Atom>& lhs() const { return lhs_; }
  const std::vector<Atom>& rhs() const { return rhs_; }
  bool source_to_target() const { return source_to_target_; }

  bool IsUniversal(VarId v) const { return universal_[v]; }
  /// Universal variables (those occurring in the LHS), in VarId order.
  std::vector<VarId> UniversalVars() const;
  /// Existential variables (RHS-only), in VarId order.
  std::vector<VarId> ExistentialVars() const;

  /// Renders the tgd, e.g. `m1: Cards(cn, ...) -> Accounts(cn, ...) & ...`.
  std::string ToString(const Schema& source, const Schema& target) const;

  /// Source-text region of the whole dependency (name through ';'). Invalid
  /// (line 0) for tgds built programmatically rather than parsed.
  const SourceSpan& span() const { return span_; }
  void set_span(SourceSpan span) { span_ = span; }

  /// Per-atom spans, parallel to lhs()/rhs(). Empty when unknown.
  const std::vector<SourceSpan>& lhs_spans() const { return lhs_spans_; }
  const std::vector<SourceSpan>& rhs_spans() const { return rhs_spans_; }
  void set_atom_spans(std::vector<SourceSpan> lhs_spans,
                      std::vector<SourceSpan> rhs_spans) {
    lhs_spans_ = std::move(lhs_spans);
    rhs_spans_ = std::move(rhs_spans);
  }

  /// Span of the given LHS/RHS atom, or the dependency span when per-atom
  /// spans were not recorded.
  SourceSpan LhsAtomSpan(size_t i) const {
    return i < lhs_spans_.size() ? lhs_spans_[i] : span_;
  }
  SourceSpan RhsAtomSpan(size_t i) const {
    return i < rhs_spans_.size() ? rhs_spans_[i] : span_;
  }

 private:
  std::string name_;
  std::vector<std::string> var_names_;
  std::vector<Atom> lhs_;
  std::vector<Atom> rhs_;
  bool source_to_target_;
  std::vector<bool> universal_;
  SourceSpan span_;
  std::vector<SourceSpan> lhs_spans_;
  std::vector<SourceSpan> rhs_spans_;
};

/// An equality-generating dependency  ∀x φ(x) → x1 = x2, with φ over the
/// target schema. Egds never take part in routes (there is no egd
/// satisfaction step, §3 of the paper); the chase uses them to unify labeled
/// nulls or detect failure.
class Egd {
 public:
  Egd(std::string name, std::vector<std::string> var_names,
      std::vector<Atom> lhs, VarId left, VarId right);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& var_names() const { return var_names_; }
  size_t num_vars() const { return var_names_.size(); }
  const std::vector<Atom>& lhs() const { return lhs_; }
  VarId left() const { return left_; }
  VarId right() const { return right_; }

  std::string ToString(const Schema& target) const;

  /// Source-text region of the whole egd; invalid (line 0) when built
  /// programmatically.
  const SourceSpan& span() const { return span_; }
  void set_span(SourceSpan span) { span_ = span; }

  /// Per-atom spans, parallel to lhs(). Empty when unknown.
  const std::vector<SourceSpan>& lhs_spans() const { return lhs_spans_; }
  void set_atom_spans(std::vector<SourceSpan> lhs_spans) {
    lhs_spans_ = std::move(lhs_spans);
  }
  SourceSpan LhsAtomSpan(size_t i) const {
    return i < lhs_spans_.size() ? lhs_spans_[i] : span_;
  }

 private:
  std::string name_;
  std::vector<std::string> var_names_;
  std::vector<Atom> lhs_;
  VarId left_;
  VarId right_;
  SourceSpan span_;
  std::vector<SourceSpan> lhs_spans_;
};

}  // namespace spider

#endif  // SPIDER_MAPPING_DEPENDENCY_H_
