#include "mapping/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace spider {

namespace {

enum class TokKind { kIdent, kInt, kDouble, kString, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // ident text, punct text, or string contents
  int64_t int_value = 0;
  double double_value = 0;
  int line = 0;
  int col = 0;  // 1-based column of the token's first character
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw SpiderError("parse error at line " + std::to_string(current_.line) +
                      ": " + message);
  }

  /// Line/column one past the last character of the most recently consumed
  /// token (the previous current_), for closing spans.
  int prev_end_line() const { return prev_end_line_; }
  int prev_end_col() const { return prev_end_col_; }

 private:
  void Advance() {
    prev_end_line_ = line_;
    prev_end_col_ = Col();
    SkipSpaceAndComments();
    current_ = Token{};
    current_.line = line_;
    current_.col = Col();
    if (pos_ >= text_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::kIdent;
      current_.text = text_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_;
      ++pos_;
      bool is_double = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        if (text_[pos_] == '.') is_double = true;
        ++pos_;
      }
      std::string num = text_.substr(start, pos_ - start);
      if (is_double) {
        current_.kind = TokKind::kDouble;
        current_.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        current_.kind = TokKind::kInt;
        current_.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      return;
    }
    if (c == '"') {
      ++pos_;
      std::string contents;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\n') {
          ++line_;
          line_start_ = pos_ + 1;
        }
        contents.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) Fail("unterminated string literal");
      ++pos_;  // closing quote
      current_.kind = TokKind::kString;
      current_.text = std::move(contents);
      return;
    }
    // '->' is the only two-character punctuation.
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      current_.kind = TokKind::kPunct;
      current_.text = "->";
      return;
    }
    ++pos_;
    current_.kind = TokKind::kPunct;
    current_.text = std::string(1, c);
  }

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  int Col() const { return static_cast<int>(pos_ - line_start_) + 1; }

  const std::string& text_;
  size_t pos_ = 0;
  size_t line_start_ = 0;
  int line_ = 1;
  int prev_end_line_ = 1;
  int prev_end_col_ = 1;
  Token current_;
};

/// Raw (unresolved) syntax for one parsed atom.
struct RawTerm {
  enum class Kind { kIdent, kValue, kNullName } kind;
  std::string ident;  // variable name or null name
  Value value;
  int line = 0;  // 1-based position of the term's first token ('#' for nulls)
  int col = 0;
};

/// Errors about a specific token carry its full line:col position;
/// Lexer::Fail keeps the line-only format that CLI consumers already pin.
[[noreturn]] void FailAt(int line, int col, const std::string& message) {
  throw SpiderError("parse error at line " + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + message);
}

struct RawAtom {
  std::string relation;
  std::vector<RawTerm> terms;
  int line = 0;
  SourceSpan span;  // relation identifier through the closing ')'
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  Scenario ParseScenarioText() {
    Scenario scenario;
    Schema source("source");
    Schema target("target");
    bool schemas_done = false;
    std::vector<std::string> source_facts_pending;
    // Deferred blocks are not needed: we require schemas first, which the
    // grammar naturally enforces for dependencies and instances.
    while (lex_.peek().kind != TokKind::kEnd) {
      const Token& t = lex_.peek();
      if (t.kind == TokKind::kIdent &&
          (t.text == "source" || t.text == "target")) {
        bool is_source = t.text == "source";
        lex_.Take();
        Token what = ExpectIdent();
        if (what.text == "schema") {
          SPIDER_CHECK(!schemas_done,
                       "schema blocks must precede dependencies and instances");
          ParseSchemaBlock(is_source ? &source : &target);
          continue;
        }
        if (what.text == "instance") {
          EnsureMapping(&scenario, &source, &target, &schemas_done);
          ParseInstanceBlock(
              &scenario,
              is_source ? scenario.source.get() : scenario.target.get());
          continue;
        }
        lex_.Fail("expected 'schema' or 'instance' after '" +
                  std::string(is_source ? "source" : "target") + "'");
      }
      // Otherwise: a dependency.
      EnsureMapping(&scenario, &source, &target, &schemas_done);
      ParseDependency(scenario.mapping.get());
    }
    // A scenario with schemas but no dependencies/instances is still valid.
    if (!schemas_done) {
      EnsureMapping(&scenario, &source, &target, &schemas_done);
    }
    return scenario;
  }

  void ParseDependenciesInto(SchemaMapping* mapping) {
    while (lex_.peek().kind != TokKind::kEnd) ParseDependency(mapping);
  }

  Tuple ParseOneFact(std::string* relation,
                     const std::unordered_map<std::string, int64_t>& null_ids) {
    RawAtom atom = ParseRawAtom();
    AcceptPunct(";");
    *relation = atom.relation;
    std::vector<Value> values;
    values.reserve(atom.terms.size());
    for (const RawTerm& term : atom.terms) {
      switch (term.kind) {
        case RawTerm::Kind::kValue:
          values.push_back(term.value);
          break;
        case RawTerm::Kind::kNullName: {
          auto it = null_ids.find(term.ident);
          if (it != null_ids.end()) {
            values.push_back(Value::Null(it->second));
            break;
          }
          // Default display name N<id> of chase-invented nulls.
          if (term.ident.size() > 1 && term.ident[0] == 'N') {
            bool digits = true;
            for (size_t i = 1; i < term.ident.size(); ++i) {
              if (!std::isdigit(static_cast<unsigned char>(term.ident[i]))) {
                digits = false;
                break;
              }
            }
            if (digits) {
              values.push_back(Value::Null(
                  std::strtoll(term.ident.c_str() + 1, nullptr, 10)));
              break;
            }
          }
          FailAt(term.line, term.col,
                 "unknown labeled null '#" + term.ident + "'");
        }
        case RawTerm::Kind::kIdent:
          FailAt(term.line, term.col,
                 "bare identifier '" + term.ident +
                     "' in a fact; use numbers, quoted strings or #nulls");
      }
    }
    return Tuple(std::move(values));
  }

  void ParseFactsInto(Instance* instance, int64_t* next_null_id) {
    std::unordered_map<std::string, int64_t> local_null_ids;
    while (lex_.peek().kind != TokKind::kEnd) {
      RawAtom atom = ParseRawAtom();
      ExpectPunct(";");
      InsertFact(instance, atom, &local_null_ids, next_null_id, nullptr);
    }
  }

 private:
  void EnsureMapping(Scenario* scenario, Schema* source, Schema* target,
                     bool* schemas_done) {
    if (*schemas_done) return;
    *schemas_done = true;
    scenario->mapping =
        std::make_unique<SchemaMapping>(std::move(*source), std::move(*target));
    scenario->source =
        std::make_unique<Instance>(&scenario->mapping->source());
    scenario->target =
        std::make_unique<Instance>(&scenario->mapping->target());
  }

  void ParseSchemaBlock(Schema* schema) {
    ExpectPunct("{");
    while (!AcceptPunct("}")) {
      Token rel = ExpectIdent();
      ExpectPunct("(");
      std::vector<std::string> attrs;
      if (!AcceptPunct(")")) {
        while (true) {
          attrs.push_back(ExpectIdent().text);
          if (AcceptPunct(")")) break;
          ExpectPunct(",");
        }
      }
      ExpectPunct(";");
      schema->AddRelation(rel.text, std::move(attrs));
    }
  }

  void ParseInstanceBlock(Scenario* scenario, Instance* instance) {
    ExpectPunct("{");
    std::unordered_map<std::string, int64_t> local_null_ids;
    while (!AcceptPunct("}")) {
      RawAtom atom = ParseRawAtom();
      ExpectPunct(";");
      InsertFact(instance, atom, &local_null_ids, &scenario->max_null_id,
                 &scenario->null_names);
    }
  }

  void InsertFact(Instance* instance, const RawAtom& atom,
                  std::unordered_map<std::string, int64_t>* local_null_ids,
                  int64_t* next_null_id,
                  std::unordered_map<int64_t, std::string>* null_names) {
    std::vector<Value> values;
    values.reserve(atom.terms.size());
    for (const RawTerm& term : atom.terms) {
      switch (term.kind) {
        case RawTerm::Kind::kValue:
          values.push_back(term.value);
          break;
        case RawTerm::Kind::kNullName: {
          SPIDER_CHECK(next_null_id != nullptr,
                       "labeled nulls are not allowed in this context");
          auto [it, inserted] =
              local_null_ids->try_emplace(term.ident, *next_null_id + 1);
          if (inserted) {
            ++*next_null_id;
            if (null_names != nullptr) {
              null_names->emplace(it->second, term.ident);
            }
          }
          values.push_back(Value::Null(it->second));
          break;
        }
        case RawTerm::Kind::kIdent:
          FailAt(term.line, term.col,
                 "bare identifier '" + term.ident +
                     "' in a fact; constants must be numbers, quoted "
                     "strings, or #nulls");
      }
    }
    instance->Insert(atom.relation, std::move(values));
  }

  void ParseDependency(SchemaMapping* mapping) {
    // Optional `name:` prefix. An atom also starts with IDENT, but is
    // followed by '(' rather than ':'.
    std::string name;
    SourceSpan dep_span{lex_.peek().line, lex_.peek().col, 0, 0};
    if (lex_.peek().kind == TokKind::kIdent) {
      Token ident = lex_.Take();
      if (AcceptPunct(":")) {
        name = ident.text;
      } else {
        // Not a name: re-parse as the first atom's relation.
        pending_relation_ = ident.text;
        pending_relation_line_ = ident.line;
        pending_relation_col_ = ident.col;
      }
    } else {
      lex_.Fail("expected a dependency");
    }
    if (name.empty()) {
      name = "d" + std::to_string(mapping->NumTgds() + mapping->NumEgds() + 1);
    }

    std::vector<RawAtom> lhs = ParseRawAtomList();
    ExpectPunct("->");

    // `exists` must be checked before the egd lookahead, since both start
    // with a bare identifier.
    std::vector<std::string> declared_existential;
    if (lex_.peek().kind == TokKind::kIdent && lex_.peek().text == "exists") {
      lex_.Take();
      while (true) {
        declared_existential.push_back(ExpectIdent().text);
        if (AcceptPunct(".")) break;
        ExpectPunct(",");
      }
    } else if (lex_.peek().kind == TokKind::kIdent && !PeekIsAtomStart()) {
      // Egd: RHS of the form `x = y`.
      Token left = ExpectIdent();
      ExpectPunct("=");
      Token right = ExpectIdent();
      ExpectPunct(";");
      dep_span.end_line = lex_.prev_end_line();
      dep_span.end_col = lex_.prev_end_col();
      BuildEgd(mapping, name, dep_span, lhs, left.text, right.text);
      return;
    }
    std::vector<RawAtom> rhs = ParseRawAtomList();
    ExpectPunct(";");
    dep_span.end_line = lex_.prev_end_line();
    dep_span.end_col = lex_.prev_end_col();
    BuildTgd(mapping, name, dep_span, lhs, rhs, declared_existential);
  }

  /// True when the upcoming ident is followed by '(' (i.e. starts an atom).
  /// Only valid right after '->' where either an atom or `x = y` follows;
  /// `exists` is handled before atoms are parsed.
  bool PeekIsAtomStart() {
    // We need one token of lookahead past the ident. The lexer has no
    // pushback, so stash the ident in pending_relation_ if it is an atom.
    Token ident = lex_.Take();
    if (lex_.peek().kind == TokKind::kPunct && lex_.peek().text == "(") {
      pending_relation_ = ident.text;
      pending_relation_line_ = ident.line;
      pending_relation_col_ = ident.col;
      return true;
    }
    pending_ident_ = ident.text;
    return false;
  }

  std::vector<RawAtom> ParseRawAtomList() {
    std::vector<RawAtom> atoms;
    atoms.push_back(ParseRawAtom());
    while (AcceptPunct("&")) atoms.push_back(ParseRawAtom());
    return atoms;
  }

  RawAtom ParseRawAtom() {
    RawAtom atom;
    atom.line = lex_.peek().line;
    if (!pending_relation_.empty()) {
      atom.relation = std::move(pending_relation_);
      atom.span.line = pending_relation_line_;
      atom.span.col = pending_relation_col_;
      pending_relation_.clear();
    } else {
      const Token rel = ExpectIdent();
      atom.relation = rel.text;
      atom.span.line = rel.line;
      atom.span.col = rel.col;
    }
    ExpectPunct("(");
    if (AcceptPunct(")")) {
      atom.span.end_line = lex_.prev_end_line();
      atom.span.end_col = lex_.prev_end_col();
      return atom;
    }
    while (true) {
      atom.terms.push_back(ParseRawTerm());
      if (AcceptPunct(")")) break;
      ExpectPunct(",");
    }
    atom.span.end_line = lex_.prev_end_line();
    atom.span.end_col = lex_.prev_end_col();
    return atom;
  }

  RawTerm ParseRawTerm() {
    const Token& t = lex_.peek();
    const int line = t.line;
    const int col = t.col;
    switch (t.kind) {
      case TokKind::kIdent: {
        RawTerm term{RawTerm::Kind::kIdent, lex_.Take().text, Value(), line,
                     col};
        return term;
      }
      case TokKind::kInt: {
        RawTerm term{RawTerm::Kind::kValue, "", Value::Int(t.int_value), line,
                     col};
        lex_.Take();
        return term;
      }
      case TokKind::kDouble: {
        RawTerm term{RawTerm::Kind::kValue, "", Value::Real(t.double_value),
                     line, col};
        lex_.Take();
        return term;
      }
      case TokKind::kString: {
        RawTerm term{RawTerm::Kind::kValue, "", Value::Str(lex_.Take().text),
                     line, col};
        return term;
      }
      case TokKind::kPunct:
        if (t.text == "#") {
          lex_.Take();
          RawTerm term{RawTerm::Kind::kNullName, ExpectIdent().text, Value(),
                       line, col};
          return term;
        }
        break;
      case TokKind::kEnd:
        break;
    }
    lex_.Fail("expected a term (variable, number, string, or #null)");
  }

  /// Resolves raw atoms against `schema`, interning variables into `vars`.
  /// Returns std::nullopt when some relation does not exist in the schema.
  std::optional<std::vector<Atom>> ResolveAtoms(
      const std::vector<RawAtom>& raw, const Schema& schema,
      std::unordered_map<std::string, VarId>* vars,
      std::vector<std::string>* var_names) {
    std::vector<Atom> atoms;
    for (const RawAtom& ra : raw) {
      RelationId rel = schema.Find(ra.relation);
      if (rel == kInvalidRelation) return std::nullopt;
      Atom atom;
      atom.relation = rel;
      for (const RawTerm& rt : ra.terms) {
        switch (rt.kind) {
          case RawTerm::Kind::kIdent: {
            auto [it, inserted] = vars->try_emplace(
                rt.ident, static_cast<VarId>(var_names->size()));
            if (inserted) var_names->push_back(rt.ident);
            atom.terms.push_back(Term::Var(it->second));
            break;
          }
          case RawTerm::Kind::kValue:
            atom.terms.push_back(Term::Const(rt.value));
            break;
          case RawTerm::Kind::kNullName:
            FailAt(rt.line, rt.col,
                   "labeled nulls cannot appear in dependencies");
        }
      }
      atoms.push_back(std::move(atom));
    }
    return atoms;
  }

  static std::vector<SourceSpan> AtomSpans(const std::vector<RawAtom>& raw) {
    std::vector<SourceSpan> spans;
    spans.reserve(raw.size());
    for (const RawAtom& ra : raw) spans.push_back(ra.span);
    return spans;
  }

  void BuildTgd(SchemaMapping* mapping, const std::string& name,
                const SourceSpan& dep_span, const std::vector<RawAtom>& raw_lhs,
                const std::vector<RawAtom>& raw_rhs,
                const std::vector<std::string>& declared_existential) {
    std::unordered_map<std::string, VarId> vars;
    std::vector<std::string> var_names;
    bool source_to_target = true;
    auto lhs = ResolveAtoms(raw_lhs, mapping->source(), &vars, &var_names);
    if (!lhs.has_value()) {
      vars.clear();
      var_names.clear();
      source_to_target = false;
      lhs = ResolveAtoms(raw_lhs, mapping->target(), &vars, &var_names);
      SPIDER_CHECK(lhs.has_value(),
                   "dependency '" + name +
                       "': LHS relations belong to neither the source nor the "
                       "target schema");
    }
    size_t num_universal = var_names.size();
    auto rhs = ResolveAtoms(raw_rhs, mapping->target(), &vars, &var_names);
    SPIDER_CHECK(rhs.has_value(),
                 "dependency '" + name +
                     "': RHS relations must belong to the target schema");
    // Validate the optional `exists` declaration: declared variables must be
    // RHS-only (i.e. interned after the LHS pass).
    for (const std::string& ev : declared_existential) {
      auto it = vars.find(ev);
      SPIDER_CHECK(it != vars.end(), "dependency '" + name +
                                         "': declared existential variable '" +
                                         ev + "' is unused");
      SPIDER_CHECK(static_cast<size_t>(it->second) >= num_universal,
                   "dependency '" + name + "': existential variable '" + ev +
                       "' also occurs in the LHS");
    }
    Tgd tgd(name, std::move(var_names), std::move(*lhs), std::move(*rhs),
            source_to_target);
    tgd.set_span(dep_span);
    tgd.set_atom_spans(AtomSpans(raw_lhs), AtomSpans(raw_rhs));
    mapping->AddTgd(std::move(tgd));
  }

  void BuildEgd(SchemaMapping* mapping, const std::string& name,
                const SourceSpan& dep_span, const std::vector<RawAtom>& raw_lhs,
                const std::string& left, const std::string& right) {
    std::unordered_map<std::string, VarId> vars;
    std::vector<std::string> var_names;
    auto lhs = ResolveAtoms(raw_lhs, mapping->target(), &vars, &var_names);
    SPIDER_CHECK(lhs.has_value(),
                 "egd '" + name +
                     "': LHS relations must belong to the target schema");
    auto lit = vars.find(left);
    auto rit = vars.find(right);
    SPIDER_CHECK(lit != vars.end() && rit != vars.end(),
                 "egd '" + name + "': equated variables must occur in the LHS");
    Egd egd(name, std::move(var_names), std::move(*lhs), lit->second,
            rit->second);
    egd.set_span(dep_span);
    egd.set_atom_spans(AtomSpans(raw_lhs));
    mapping->AddEgd(std::move(egd));
  }

  Token ExpectIdent() {
    if (!pending_ident_.empty()) {
      Token t;
      t.kind = TokKind::kIdent;
      t.text = std::move(pending_ident_);
      pending_ident_.clear();
      return t;
    }
    if (lex_.peek().kind != TokKind::kIdent) lex_.Fail("expected identifier");
    return lex_.Take();
  }

  void ExpectPunct(const std::string& p) {
    if (lex_.peek().kind != TokKind::kPunct || lex_.peek().text != p) {
      lex_.Fail("expected '" + p + "'");
    }
    lex_.Take();
  }

  bool AcceptPunct(const std::string& p) {
    if (lex_.peek().kind == TokKind::kPunct && lex_.peek().text == p) {
      lex_.Take();
      return true;
    }
    return false;
  }

  Lexer lex_;
  // One-token pushback slots used to disambiguate `name:` vs. atom and
  // egd-vs-tgd right-hand sides.
  std::string pending_relation_;
  int pending_relation_line_ = 0;
  int pending_relation_col_ = 0;
  std::string pending_ident_;
};

}  // namespace

Scenario ParseScenario(const std::string& text) {
  return Parser(text).ParseScenarioText();
}

void ParseDependencies(const std::string& text, SchemaMapping* mapping) {
  SPIDER_CHECK(mapping != nullptr, "ParseDependencies requires a mapping");
  Parser(text).ParseDependenciesInto(mapping);
}

Tuple ParseFactText(const std::string& text, std::string* relation,
                    const std::unordered_map<std::string, int64_t>& null_ids) {
  SPIDER_CHECK(relation != nullptr, "ParseFactText requires a relation out");
  return Parser(text).ParseOneFact(relation, null_ids);
}

void ParseFacts(const std::string& text, Instance* instance,
                int64_t* next_null_id) {
  SPIDER_CHECK(instance != nullptr, "ParseFacts requires an instance");
  int64_t local_counter = 0;
  Parser(text).ParseFactsInto(
      instance, next_null_id != nullptr ? next_null_id : &local_counter);
}

}  // namespace spider
