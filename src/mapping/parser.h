#ifndef SPIDER_MAPPING_PARSER_H_
#define SPIDER_MAPPING_PARSER_H_

#include <string>

#include "mapping/scenario.h"

namespace spider {

/// Parses the textual scenario language used throughout the tests, examples
/// and documentation. A scenario lists schemas, dependencies and instances:
///
///   source schema {
///     Cards(cardNo, limit, ssn, name, maidenName, salary, location);
///   }
///   target schema {
///     Accounts(accNo, limit, accHolder);
///     Clients(ssn, name, maidenName, income, address);
///   }
///
///   m1: Cards(cn,l,s,n,m,sal,loc)
///         -> exists A . Accounts(cn,l,s) & Clients(s,m,m,sal,A);
///   m6: Accounts(a,l,s) & Accounts(a2,l2,s) -> l = l2;
///
///   source instance {
///     Cards(6689, "15K", 434, "J. Long", "Smith", "50K", "Seattle");
///   }
///   target instance {
///     Clients(434, "Smith", "Smith", "50K", #A1);
///   }
///
/// Rules:
///  * `//` starts a line comment.
///  * In dependencies every bare identifier in a term position is a
///    variable; constants are numbers or quoted strings. The `exists` clause
///    is optional — any RHS-only variable is existential — but when present
///    it is validated (declared variables must not occur in the LHS).
///  * A dependency whose LHS relations all belong to the source schema is a
///    source-to-target tgd; one whose LHS relations all belong to the target
///    schema is a target dependency. A RHS of the form `x = y` makes it an
///    egd.
///  * In instance blocks terms must be constants or labeled nulls `#name`
///    (each distinct name denotes one fresh labeled null; names are recorded
///    in Scenario::null_names).
///
/// Throws SpiderError with a line-numbered message on malformed input.
Scenario ParseScenario(const std::string& text);

/// Parses additional dependencies (same syntax) into an existing mapping.
void ParseDependencies(const std::string& text, SchemaMapping* mapping);

/// Parses `Rel(v1, ...);` facts into an existing instance over `schema`.
/// `next_null_id` is advanced as `#name` nulls are allocated; may be null if
/// the text contains no nulls.
void ParseFacts(const std::string& text, Instance* instance,
                int64_t* next_null_id = nullptr);

/// Parses a single fact `Rel(v1, ...)` (no trailing semicolon required) into
/// a relation name and tuple, resolving `#name` against `null_ids`
/// (name -> id). A name of the form `N<digits>` that is not in the map
/// resolves to the null with that id (the default display name of
/// chase-invented nulls).
Tuple ParseFactText(const std::string& text, std::string* relation,
                    const std::unordered_map<std::string, int64_t>& null_ids);

}  // namespace spider

#endif  // SPIDER_MAPPING_PARSER_H_
