#ifndef SPIDER_MAPPING_SCENARIO_H_
#define SPIDER_MAPPING_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <string>

#include "mapping/schema_mapping.h"
#include "storage/instance.h"

namespace spider {

/// A complete data-exchange setting: a schema mapping plus a source instance
/// I and (possibly empty) target instance J. Produced by the parser and by
/// the workload generators; consumed by the chase and the route algorithms.
///
/// The mapping is heap-allocated so that the instances' schema pointers stay
/// valid when a Scenario is moved.
struct Scenario {
  std::unique_ptr<SchemaMapping> mapping;
  std::unique_ptr<Instance> source;
  std::unique_ptr<Instance> target;

  /// Display names for labeled nulls written in scenario text (e.g. `#A1`),
  /// keyed by null id. Nulls invented by the chase are not listed here.
  std::unordered_map<int64_t, std::string> null_names;

  /// Largest null id in use; the chase continues numbering from here.
  int64_t max_null_id = 0;
};

/// Two consecutive data-exchange settings S→T→U sharing the intermediate
/// schema: `st.mapping->target()` and `tu.mapping->source()` agree by
/// relation name and arity, and `tu.source` is populated from `st.target`
/// (spider::algebra's ChasePipeline does this). Built by the workload
/// generator's three-schema family and consumed by mapping composition and
/// end-to-end route stitching.
struct PipelineScenario {
  Scenario st;
  Scenario tu;
};

}  // namespace spider

#endif  // SPIDER_MAPPING_SCENARIO_H_
