#include "mapping/schema_mapping.h"

#include <sstream>

#include "base/status.h"

namespace spider {

SchemaMapping::SchemaMapping(Schema source, Schema target)
    : source_(std::move(source)), target_(std::move(target)) {}

void SchemaMapping::ValidateAtoms(const std::vector<Atom>& atoms,
                                  const Schema& schema,
                                  const std::string& dep_name) const {
  for (const Atom& atom : atoms) {
    SPIDER_CHECK(atom.relation >= 0 &&
                     static_cast<size_t>(atom.relation) < schema.size(),
                 "dependency '" + dep_name +
                     "': atom refers to a relation outside schema '" +
                     schema.name() + "'");
    SPIDER_CHECK(
        atom.terms.size() == schema.relation(atom.relation).arity(),
        "dependency '" + dep_name + "': arity mismatch for relation '" +
            schema.relation(atom.relation).name() + "'");
  }
}

TgdId SchemaMapping::AddTgd(Tgd tgd) {
  ValidateAtoms(tgd.lhs(), tgd.source_to_target() ? source_ : target_,
                tgd.name());
  ValidateAtoms(tgd.rhs(), target_, tgd.name());
  TgdId id = static_cast<TgdId>(tgds_.size());
  if (tgd.source_to_target()) {
    st_tgds_.push_back(id);
  } else {
    target_tgds_.push_back(id);
  }
  tgds_.push_back(std::move(tgd));
  return id;
}

EgdId SchemaMapping::AddEgd(Egd egd) {
  ValidateAtoms(egd.lhs(), target_, egd.name());
  EgdId id = static_cast<EgdId>(egds_.size());
  egds_.push_back(std::move(egd));
  return id;
}

TgdId SchemaMapping::FindTgd(const std::string& name) const {
  for (size_t i = 0; i < tgds_.size(); ++i) {
    if (tgds_[i].name() == name) return static_cast<TgdId>(i);
  }
  return -1;
}

std::string SchemaMapping::ToString() const {
  std::ostringstream os;
  for (const Tgd& tgd : tgds_) {
    os << (tgd.source_to_target() ? "[st]     " : "[target] ")
       << tgd.ToString(source_, target_) << '\n';
  }
  for (const Egd& egd : egds_) {
    os << "[egd]    " << egd.ToString(target_) << '\n';
  }
  return os.str();
}

}  // namespace spider
