#ifndef SPIDER_MAPPING_SCHEMA_MAPPING_H_
#define SPIDER_MAPPING_SCHEMA_MAPPING_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "mapping/dependency.h"

namespace spider {

/// A schema mapping M = (S, T, Σst, Σt): source schema, target schema, a set
/// of source-to-target tgds, and target dependencies (target tgds + egds).
///
/// Tgds (both kinds) share one TgdId space, so routes can name any tgd by id;
/// egds have their own id space (they never appear in routes). The mapping
/// validates every dependency against the schemas on insertion and is
/// immutable from the point of view of the route algorithms.
class SchemaMapping {
 public:
  SchemaMapping(Schema source, Schema target);

  SchemaMapping(const SchemaMapping&) = delete;
  SchemaMapping& operator=(const SchemaMapping&) = delete;
  SchemaMapping(SchemaMapping&&) = default;
  SchemaMapping& operator=(SchemaMapping&&) = default;

  const Schema& source() const { return source_; }
  const Schema& target() const { return target_; }

  /// Adds a tgd after validating its atoms against the schemas (relation ids
  /// in range, arities matching). Returns its TgdId.
  TgdId AddTgd(Tgd tgd);

  /// Adds a target egd. Returns its EgdId.
  EgdId AddEgd(Egd egd);

  size_t NumTgds() const { return tgds_.size(); }
  const Tgd& tgd(TgdId id) const { return tgds_[id]; }
  size_t NumEgds() const { return egds_.size(); }
  const Egd& egd(EgdId id) const { return egds_[id]; }

  /// Ids of the source-to-target tgds, in insertion order.
  const std::vector<TgdId>& st_tgds() const { return st_tgds_; }
  /// Ids of the target tgds, in insertion order.
  const std::vector<TgdId>& target_tgds() const { return target_tgds_; }

  /// Finds a tgd by name; returns -1 if absent.
  TgdId FindTgd(const std::string& name) const;

  /// Renders all dependencies, one per line.
  std::string ToString() const;

 private:
  void ValidateAtoms(const std::vector<Atom>& atoms, const Schema& schema,
                     const std::string& dep_name) const;

  Schema source_;
  Schema target_;
  std::vector<Tgd> tgds_;
  std::vector<Egd> egds_;
  std::vector<TgdId> st_tgds_;
  std::vector<TgdId> target_tgds_;
};

}  // namespace spider

#endif  // SPIDER_MAPPING_SCHEMA_MAPPING_H_
