#ifndef SPIDER_MAPPING_SOURCE_SPAN_H_
#define SPIDER_MAPPING_SOURCE_SPAN_H_

#include <string>

namespace spider {

/// A half-open region of scenario text: from (line, col) up to but not
/// including (end_line, end_col). Lines and columns are 1-based; a
/// default-constructed span (line 0) means "position unknown" — dependencies
/// built programmatically (workload generators, tests constructing Tgd
/// directly) carry no span, only parsed ones do.
struct SourceSpan {
  int line = 0;
  int col = 0;
  int end_line = 0;
  int end_col = 0;

  bool valid() const { return line > 0; }

  /// Renders "line:col" (the anchor point), or "?" when unknown.
  std::string ToString() const {
    if (!valid()) return "?";
    return std::to_string(line) + ":" + std::to_string(col);
  }

  friend bool operator==(const SourceSpan&, const SourceSpan&) = default;
};

}  // namespace spider

#endif  // SPIDER_MAPPING_SOURCE_SPAN_H_
