#include "mapping/writer.h"

#include <sstream>

#include "base/status.h"

namespace spider {

namespace {

void WriteValue(const Value& value,
                const std::unordered_map<int64_t, std::string>& null_names,
                std::ostream& os) {
  if (value.is_null()) {
    auto it = null_names.find(value.AsNull().id);
    if (it != null_names.end()) {
      os << '#' << it->second;
    } else {
      os << "#N" << value.AsNull().id;
    }
    return;
  }
  os << value;  // ints/doubles plain, strings quoted
}

void WriteSchemaBlock(const Schema& schema, const char* which,
                      std::ostream& os) {
  os << which << " schema {\n";
  for (const RelationDef& rel : schema.relations()) {
    os << "  " << rel.name() << '(';
    for (size_t i = 0; i < rel.arity(); ++i) {
      if (i > 0) os << ", ";
      os << rel.attribute(i);
    }
    os << ");\n";
  }
  os << "}\n";
}

void WriteInstanceBlock(
    const Instance& instance, const char* which,
    const std::unordered_map<int64_t, std::string>& null_names,
    std::ostream& os) {
  os << which << " instance {\n";
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    const std::string& name = instance.schema().relation(rel).name();
    for (const Tuple& t : instance.tuples(rel)) {
      os << "  " << name << '(';
      for (size_t i = 0; i < t.arity(); ++i) {
        if (i > 0) os << ", ";
        WriteValue(t.at(i), null_names, os);
      }
      os << ");\n";
    }
  }
  os << "}\n";
}

}  // namespace

std::string WriteFacts(
    const Instance& instance,
    const std::unordered_map<int64_t, std::string>& null_names) {
  std::ostringstream os;
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    const std::string& name = instance.schema().relation(rel).name();
    for (const Tuple& t : instance.tuples(rel)) {
      os << name << '(';
      for (size_t i = 0; i < t.arity(); ++i) {
        if (i > 0) os << ", ";
        WriteValue(t.at(i), null_names, os);
      }
      os << ");\n";
    }
  }
  return os.str();
}

std::string WriteScenario(const Scenario& scenario) {
  SPIDER_CHECK(scenario.mapping != nullptr,
               "WriteScenario requires a mapping");
  const SchemaMapping& mapping = *scenario.mapping;
  std::ostringstream os;
  WriteSchemaBlock(mapping.source(), "source", os);
  WriteSchemaBlock(mapping.target(), "target", os);
  os << '\n';
  for (size_t i = 0; i < mapping.NumTgds(); ++i) {
    os << mapping.tgd(static_cast<TgdId>(i))
              .ToString(mapping.source(), mapping.target())
       << ";\n";
  }
  for (size_t e = 0; e < mapping.NumEgds(); ++e) {
    os << mapping.egd(static_cast<EgdId>(e)).ToString(mapping.target())
       << ";\n";
  }
  os << '\n';
  if (scenario.source != nullptr) {
    WriteInstanceBlock(*scenario.source, "source", scenario.null_names, os);
  }
  if (scenario.target != nullptr) {
    WriteInstanceBlock(*scenario.target, "target", scenario.null_names, os);
  }
  return os.str();
}

}  // namespace spider
