#ifndef SPIDER_MAPPING_WRITER_H_
#define SPIDER_MAPPING_WRITER_H_

#include <string>

#include "mapping/scenario.h"

namespace spider {

/// Serializes a scenario back into the scenario language understood by
/// ParseScenario — schemas, dependencies, and both instances. Labeled
/// nulls are written `#name` using Scenario::null_names when available and
/// `#N<id>` otherwise; re-parsing yields a scenario equal up to null
/// renaming (null *sharing* is preserved exactly).
///
/// Limitation: string constants are emitted verbatim between quotes, so
/// strings containing `"` do not round-trip (none of the library's
/// generators produce them).
std::string WriteScenario(const Scenario& scenario);

/// Serializes one instance as `Rel(v, ...);` lines (no block wrapper),
/// using the given null display names.
std::string WriteFacts(
    const Instance& instance,
    const std::unordered_map<int64_t, std::string>& null_names);

}  // namespace spider

#endif  // SPIDER_MAPPING_WRITER_H_
