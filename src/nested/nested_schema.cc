#include "nested/nested_schema.h"

#include <algorithm>

#include "base/status.h"

namespace spider {

NestedSetDef* NestedSetDef::AddChild(std::string name,
                                     std::vector<std::string> attributes) {
  children_.push_back(
      std::make_unique<NestedSetDef>(std::move(name), std::move(attributes)));
  return children_.back().get();
}

int NestedSetDef::Depth() const {
  int depth = 0;
  for (const auto& child : children_) depth = std::max(depth, child->Depth());
  return depth + 1;
}

NestedSetDef* NestedSchema::AddRoot(std::string name,
                                    std::vector<std::string> attrs) {
  roots_.push_back(
      std::make_unique<NestedSetDef>(std::move(name), std::move(attrs)));
  return roots_.back().get();
}

namespace {

void CountElements(const NestedSetDef& set, size_t* total) {
  *total += 1 + set.attributes().size();
  for (const auto& child : set.children()) CountElements(*child, total);
}

void ShredSet(const NestedSetDef& set, bool is_root, const std::string& suffix,
              Schema* schema) {
  std::vector<std::string> columns = {NestedSchema::kKeyColumn};
  if (!is_root) columns.push_back(NestedSchema::kParentColumn);
  columns.insert(columns.end(), set.attributes().begin(),
                 set.attributes().end());
  schema->AddRelation(set.name() + suffix, std::move(columns));
  for (const auto& child : set.children()) {
    ShredSet(*child, /*is_root=*/false, suffix, schema);
  }
}

}  // namespace

size_t NestedSchema::TotalElements() const {
  size_t total = 0;
  for (const auto& root : roots_) CountElements(*root, &total);
  return total;
}

int NestedSchema::Depth() const {
  int depth = 0;
  for (const auto& root : roots_) depth = std::max(depth, root->Depth());
  return depth;
}

Schema NestedSchema::Shred() const {
  Schema schema(name_);
  for (const auto& root : roots_) {
    ShredSet(*root, /*is_root=*/true, /*suffix=*/"", &schema);
  }
  return schema;
}

namespace {

Schema ShredWithSuffix(const NestedSchema& nested, const std::string& suffix) {
  Schema schema(nested.name() + suffix);
  for (const auto& root : nested.roots()) {
    ShredSet(*root, /*is_root=*/true, suffix, &schema);
  }
  return schema;
}

/// Collects every root-to-leaf path of set definitions.
void CollectPaths(const NestedSetDef& set,
                  std::vector<const NestedSetDef*>* current,
                  std::vector<std::vector<const NestedSetDef*>>* paths) {
  current->push_back(&set);
  if (set.children().empty()) {
    paths->push_back(*current);
  } else {
    for (const auto& child : set.children()) {
      CollectPaths(*child, current, paths);
    }
  }
  current->pop_back();
}

}  // namespace

NestedCopyMapping BuildNestedCopyMapping(const NestedSchema& source,
                                         const std::string& target_suffix) {
  SPIDER_CHECK(!target_suffix.empty(),
               "a non-empty target suffix is required to keep relation "
               "names distinct");
  Schema source_schema = ShredWithSuffix(source, "");
  Schema target_schema = ShredWithSuffix(source, target_suffix);
  NestedCopyMapping result;
  result.mapping = std::make_unique<SchemaMapping>(std::move(source_schema),
                                                   std::move(target_schema));
  const Schema& src = result.mapping->source();
  const Schema& tgt = result.mapping->target();

  std::vector<std::vector<const NestedSetDef*>> paths;
  std::vector<const NestedSetDef*> current;
  for (const auto& root : source.roots()) {
    CollectPaths(*root, &current, &paths);
  }

  int counter = 0;
  for (const std::vector<const NestedSetDef*>& path : paths) {
    std::vector<std::string> var_names;
    std::vector<Atom> lhs;
    std::vector<Atom> rhs;
    std::vector<VarId> key_vars(path.size(), -1);
    for (size_t level = 0; level < path.size(); ++level) {
      const NestedSetDef& set = *path[level];
      RelationId src_rel = src.Require(set.name());
      RelationId tgt_rel = tgt.Require(set.name() + target_suffix);
      Atom src_atom;
      src_atom.relation = src_rel;
      Atom tgt_atom;
      tgt_atom.relation = tgt_rel;
      auto fresh = [&](const std::string& name) {
        VarId v = static_cast<VarId>(var_names.size());
        var_names.push_back(name + std::to_string(level));
        return v;
      };
      VarId key = fresh("k");
      key_vars[level] = key;
      src_atom.terms.push_back(Term::Var(key));
      tgt_atom.terms.push_back(Term::Var(key));
      if (level > 0) {
        // The parent column joins with the parent's key variable.
        src_atom.terms.push_back(Term::Var(key_vars[level - 1]));
        tgt_atom.terms.push_back(Term::Var(key_vars[level - 1]));
      }
      for (const std::string& attr : set.attributes()) {
        VarId v = fresh(attr + "_");
        src_atom.terms.push_back(Term::Var(v));
        tgt_atom.terms.push_back(Term::Var(v));
      }
      lhs.push_back(std::move(src_atom));
      rhs.push_back(std::move(tgt_atom));
    }
    result.mapping->AddTgd(Tgd("copy_path" + std::to_string(++counter),
                               std::move(var_names), std::move(lhs),
                               std::move(rhs), /*source_to_target=*/true));
  }
  return result;
}

}  // namespace spider
