#ifndef SPIDER_NESTED_NESTED_SCHEMA_H_
#define SPIDER_NESTED_NESTED_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "mapping/schema_mapping.h"

namespace spider {

/// A nested-relational schema: a tree of record sets, each with atomic
/// attributes and child sets — the model the paper uses for XML schemas
/// ("our implementation uses the nested relational model as our underlying
/// representation", §3.3).
///
/// The library's engines are relational, so nested schemas are SHREDDED:
/// every set becomes a relation with a synthetic key, its parent's key, and
/// its atomic attributes. A nested tgd that copies (part of) a hierarchy
/// then becomes a flat tgd joining the root-to-leaf path, which binds the
/// same path context a nested tgd binds — the property behind Fig. 11.
class NestedSetDef {
 public:
  NestedSetDef(std::string name, std::vector<std::string> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attributes() const { return attributes_; }

  NestedSetDef* AddChild(std::string name,
                         std::vector<std::string> attributes);
  const std::vector<std::unique_ptr<NestedSetDef>>& children() const {
    return children_;
  }

  /// Depth of this node's subtree (a leaf set has depth 1).
  int Depth() const;

 private:
  std::string name_;
  std::vector<std::string> attributes_;
  std::vector<std::unique_ptr<NestedSetDef>> children_;
};

/// A nested schema: a forest of root sets.
class NestedSchema {
 public:
  explicit NestedSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  NestedSetDef* AddRoot(std::string name, std::vector<std::string> attrs);
  const std::vector<std::unique_ptr<NestedSetDef>>& roots() const {
    return roots_;
  }

  /// Total elements (sets + atomic attributes), Table 1 style.
  size_t TotalElements() const;
  /// Maximum nesting depth.
  int Depth() const;

  /// Shreds into a flat schema: one relation per set, named after the set,
  /// with attributes (key, parentkey?, ...atomics). Root sets have no
  /// parentkey column. Set names must be unique across the tree.
  Schema Shred() const;

  /// The relation's column layout after shredding.
  static constexpr const char* kKeyColumn = "nkey";
  static constexpr const char* kParentColumn = "nparent";

 private:
  std::string name_;
  std::vector<std::unique_ptr<NestedSetDef>> roots_;
};

/// Builds a schema mapping copying `source` into an identically shaped
/// `target` (same set names; the target schema's sets are suffixed with
/// `target_suffix`): one s-t tgd per root-to-leaf path... more precisely,
/// one tgd per LEAF set, whose LHS joins the full path from the root and
/// whose RHS recreates it — the shredded image of a nested copying tgd.
/// Inner sets are covered by their descendants' tgds plus one tgd per
/// childless prefix... every set gets the tgd of its deepest path through
/// it, so each set appears in at least one tgd.
struct NestedCopyMapping {
  std::unique_ptr<SchemaMapping> mapping;
};
NestedCopyMapping BuildNestedCopyMapping(const NestedSchema& source,
                                         const std::string& target_suffix);

}  // namespace spider

#endif  // SPIDER_NESTED_NESTED_SCHEMA_H_
