#include "nested/shredded_builder.h"

#include "base/status.h"

namespace spider {

ShreddedInstanceBuilder::ShreddedInstanceBuilder(Instance* instance,
                                                 std::string suffix)
    : instance_(instance), suffix_(std::move(suffix)) {
  SPIDER_CHECK(instance != nullptr, "builder requires an instance");
}

int64_t ShreddedInstanceBuilder::InsertRoot(const std::string& set,
                                            std::vector<Value> atomics) {
  return Insert(set, /*has_parent=*/false, 0, std::move(atomics));
}

int64_t ShreddedInstanceBuilder::InsertChild(const std::string& set,
                                             int64_t parent_key,
                                             std::vector<Value> atomics) {
  return Insert(set, /*has_parent=*/true, parent_key, std::move(atomics));
}

int64_t ShreddedInstanceBuilder::Insert(const std::string& set,
                                        bool has_parent, int64_t parent_key,
                                        std::vector<Value> atomics) {
  RelationId rel = instance_->schema().Require(set + suffix_);
  int64_t key = next_key_++;
  std::vector<Value> values;
  values.reserve(atomics.size() + 2);
  values.push_back(Value::Int(key));
  if (has_parent) values.push_back(Value::Int(parent_key));
  for (Value& v : atomics) values.push_back(std::move(v));
  instance_->Insert(rel, Tuple(std::move(values)));
  return key;
}

}  // namespace spider
