#ifndef SPIDER_NESTED_SHREDDED_BUILDER_H_
#define SPIDER_NESTED_SHREDDED_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nested/nested_schema.h"
#include "storage/instance.h"

namespace spider {

/// Populates a shredded instance with hierarchical records: every insert
/// assigns a fresh synthetic key and wires the parent key column, so the
/// path joins reconstructed by nested tgds hold by construction.
class ShreddedInstanceBuilder {
 public:
  /// `instance` must be over the shredded schema (or a suffixed shred of
  /// the same nested schema — pass the suffix used).
  ShreddedInstanceBuilder(Instance* instance, std::string suffix = "");

  /// Inserts a root record; returns its key.
  int64_t InsertRoot(const std::string& set, std::vector<Value> atomics);

  /// Inserts a child record under `parent_key`; returns its key.
  int64_t InsertChild(const std::string& set, int64_t parent_key,
                      std::vector<Value> atomics);

 private:
  int64_t Insert(const std::string& set, bool has_parent, int64_t parent_key,
                 std::vector<Value> atomics);

  Instance* instance_;
  std::string suffix_;
  int64_t next_key_ = 1;
};

}  // namespace spider

#endif  // SPIDER_NESTED_SHREDDED_BUILDER_H_
