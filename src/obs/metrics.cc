#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace spider::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Formats a double with enough precision to round-trip small timings
/// without trailing-zero noise (matches the benches' JSON style).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendJsonString(std::ostream& os, const std::string& text) {
  os << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Histogram::Record(double ms) {
  // Bucket 0 holds everything up to 2^-6 ms; bucket i holds
  // (2^(i-7), 2^(i-6)] ms; the last bucket is the overflow.
  int bucket = 0;
  if (ms > 0) {
    int exp = static_cast<int>(std::ceil(std::log2(ms)));
    bucket = exp + 6;
    if (bucket < 0) bucket = 0;
    if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || ms < min_ms_) min_ms_ = ms;
  if (count_ == 0 || ms > max_ms_) max_ms_ = ms;
  ++count_;
  sum_ms_ += ms;
  ++buckets_[bucket];
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_ms_;
}

double Histogram::min_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_ms_;
}

double Histogram::max_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_ms_;
}

std::vector<uint64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<uint64_t>(buckets_, buckets_ + kNumBuckets);
}

double Histogram::BucketUpperMs(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i - 6);
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ms_ = 0;
  min_ms_ = 0;
  max_ms_ = 0;
  for (uint64_t& b : buckets_) b = 0;
}

Registry& Registry::Global() {
  // Leaked: engines may publish from worker threads that outlive main's
  // static destructors.
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string Registry::ToJson(const MetricsJsonOptions& options) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n" : ",\n") << "    ";
    AppendJsonString(os, name);
    os << ": " << counter->value();
    first = false;
  }
  os << (first ? "}" : "\n  }");
  os << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "\n" : ",\n") << "    ";
    AppendJsonString(os, name);
    os << ": " << gauge->value();
    first = false;
  }
  os << (first ? "}" : "\n  }");
  if (options.include_histograms) {
    os << ",\n  \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
      os << (first ? "\n" : ",\n") << "    ";
      AppendJsonString(os, name);
      os << ": {\"count\": " << histogram->count()
         << ", \"sum_ms\": " << FormatDouble(histogram->sum_ms())
         << ", \"min_ms\": " << FormatDouble(histogram->min_ms())
         << ", \"max_ms\": " << FormatDouble(histogram->max_ms())
         << ", \"buckets\": [";
      std::vector<uint64_t> buckets = histogram->buckets();
      bool first_bucket = true;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        if (buckets[static_cast<size_t>(i)] == 0) continue;
        if (!first_bucket) os << ", ";
        double upper = Histogram::BucketUpperMs(i);
        os << "{\"le_ms\": ";
        if (std::isinf(upper)) {
          os << "\"inf\"";
        } else {
          os << FormatDouble(upper);
        }
        os << ", \"count\": " << buckets[static_cast<size_t>(i)] << "}";
        first_bucket = false;
      }
      os << "]}";
      first = false;
    }
    os << (first ? "}" : "\n  }");
  }
  os << "\n}\n";
  return os.str();
}

std::string Registry::CountersJson() const {
  return ToJson(MetricsJsonOptions{/*include_histograms=*/false});
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

double ApproxPercentileMs(const Histogram& histogram, double q) {
  uint64_t count = histogram.count();
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  std::vector<uint64_t> buckets = histogram.buckets();
  // Rank of the q-th sample, 1-based (q=0 -> first, q=1 -> last).
  uint64_t rank = static_cast<uint64_t>(q * (count - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    double lower = i == 0 ? 0 : Histogram::BucketUpperMs(i - 1);
    double upper = Histogram::BucketUpperMs(i);
    // The overflow bucket has no finite upper bound; the recorded max is
    // the only honest estimate there.
    if (i == Histogram::kNumBuckets - 1) return histogram.max_ms();
    double fraction =
        static_cast<double>(rank - seen) / static_cast<double>(buckets[i]);
    double value = lower + fraction * (upper - lower);
    if (value < histogram.min_ms()) value = histogram.min_ms();
    if (value > histogram.max_ms()) value = histogram.max_ms();
    return value;
  }
  return histogram.max_ms();
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace spider::obs
