#ifndef SPIDER_OBS_METRICS_H_
#define SPIDER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spider::obs {

/// A monotonically increasing counter. Additions are atomic, so workers may
/// bump the same counter concurrently; spider's engines instead accumulate
/// into their per-task stats structs and publish the (deterministic) merged
/// totals here, which keeps counter values byte-identical at every thread
/// count.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-write-wins integer level (queue depths, cache sizes, thread
/// counts). Deterministic whenever the published value is.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A wall-clock histogram over milliseconds with logarithmic buckets
/// (powers of two from 2^-6 ms ≈ 16 µs up to 2^14 ms ≈ 16 s, plus an
/// overflow bucket). Timing is inherently nondeterministic, so histograms
/// are excluded from the registry's deterministic counters export.
class Histogram {
 public:
  static constexpr int kNumBuckets = 22;

  void Record(double ms);

  uint64_t count() const;
  double sum_ms() const;
  double min_ms() const;
  double max_ms() const;
  /// Copy of the bucket counts, index 0 = (-inf, 2^-6 ms].
  std::vector<uint64_t> buckets() const;
  /// Upper bound of bucket `i` in ms (+inf for the last).
  static double BucketUpperMs(int i);
  void Reset();

 private:
  mutable std::mutex mu_;
  uint64_t count_ = 0;
  double sum_ms_ = 0;
  double min_ms_ = 0;
  double max_ms_ = 0;
  uint64_t buckets_[kNumBuckets] = {};
};

/// Options for Registry JSON export.
struct MetricsJsonOptions {
  /// Include histograms (wall-clock data, nondeterministic). The
  /// counters-only export is byte-identical across thread counts for
  /// counters published from spider's deterministic stats structs.
  bool include_histograms = true;
};

/// A process-wide registry of named metrics. Instruments are created on
/// first use and live for the registry's lifetime, so call sites may cache
/// the returned pointers. Lookup takes a mutex; Add/Set on the returned
/// instruments are lock-free.
///
/// JSON export emits one flat object with keys in fixed (lexicographic)
/// order, the same convention as the analyzer's DiagnosticsToJson, so
/// successive PRs can diff metric dumps textually.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry used by the engines.
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Fixed-key-order JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// Histogram entries carry count/sum/min/max and the non-empty buckets.
  std::string ToJson(const MetricsJsonOptions& options = {}) const;

  /// Counters and gauges only — the deterministic subset.
  std::string CountersJson() const;

  /// Zeroes every instrument (names and pointers stay valid).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Approximate q-quantile (q in [0, 1]) in milliseconds from a histogram's
/// log buckets: finds the bucket holding the q-th sample and interpolates
/// linearly inside it, clamped to the recorded min/max (which makes
/// single-sample and tail readings exact). Returns 0 for an empty
/// histogram. Used by bench_serve for its p50/p95/p99 report.
double ApproxPercentileMs(const Histogram& histogram, double q);

/// Global switch for metric publication by the engines (chase, routes,
/// incremental, caches). Publication happens once per engine entry point —
/// a handful of atomic adds — so it is enabled by default; the switch
/// exists to measure that claim (bench_parallel_scaling --no-metrics).
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

}  // namespace spider::obs

#endif  // SPIDER_OBS_METRICS_H_
