#include "obs/obs_cli.h"

#include <fstream>
#include <iostream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace spider::obs {

namespace {

std::string g_trace_path;    // NOLINT(runtime/string) — CLI process state.
std::string g_metrics_path;  // NOLINT(runtime/string)

}  // namespace

bool HandleObsFlag(const std::string& arg) {
  if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
    g_trace_path = arg == "--trace" ? "trace.json" : arg.substr(8);
    Tracer::Global().SetCurrentThreadName("main");
    Tracer::Global().Start();
    return true;
  }
  if (arg == "--metrics" || arg.rfind("--metrics=", 0) == 0) {
    g_metrics_path = arg == "--metrics" ? "metrics.json" : arg.substr(10);
    SetMetricsEnabled(true);
    return true;
  }
  if (arg == "--no-metrics") {
    SetMetricsEnabled(false);
    return true;
  }
  return false;
}

bool FlushObsOutputs() {
  bool ok = true;
  if (!g_trace_path.empty()) {
    Tracer::Global().Stop();
    if (Tracer::Global().WriteJson(g_trace_path)) {
      std::cerr << "wrote trace to " << g_trace_path << "\n";
    } else {
      std::cerr << "error: cannot write trace to " << g_trace_path << "\n";
      ok = false;
    }
    g_trace_path.clear();
  }
  if (!g_metrics_path.empty()) {
    std::ofstream out(g_metrics_path);
    if (out && (out << Registry::Global().ToJson())) {
      std::cerr << "wrote metrics to " << g_metrics_path << "\n";
    } else {
      std::cerr << "error: cannot write metrics to " << g_metrics_path << "\n";
      ok = false;
    }
    g_metrics_path.clear();
  }
  return ok;
}

const char* ObsFlagsHelp() {
  return "  --trace[=FILE]    record a Chrome trace (Perfetto/about:tracing)\n"
         "  --metrics[=FILE]  dump the metrics registry as JSON\n"
         "  --no-metrics      disable metric publication\n";
}

}  // namespace spider::obs
