#ifndef SPIDER_OBS_OBS_CLI_H_
#define SPIDER_OBS_OBS_CLI_H_

#include <string>

namespace spider::obs {

/// Shared --trace/--metrics flag handling for the CLIs and benches, so
/// every binary exposes the same observability surface:
///
///   --trace[=FILE]     record a Chrome trace (default trace.json) of the
///                      run; view in Perfetto or about:tracing
///   --metrics[=FILE]   dump the metrics registry (default metrics.json)
///   --no-metrics       disable metric publication (overhead measurement)
///
/// Usage: call HandleObsFlag(arg) for each argv entry (returns true when
/// the flag was consumed — tracing starts immediately on --trace), then
/// FlushObsOutputs() once at exit to stop tracing and write the files.
bool HandleObsFlag(const std::string& arg);

/// Stops tracing and writes the requested files. Returns false (after
/// printing to stderr) when a file could not be written. Safe to call when
/// no obs flag was given — does nothing.
bool FlushObsOutputs();

/// One-line usage text describing the flags, for --help output.
const char* ObsFlagsHelp();

}  // namespace spider::obs

#endif  // SPIDER_OBS_OBS_CLI_H_
