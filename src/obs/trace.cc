#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace spider::obs {

namespace {

/// The per-thread buffer of the global tracer. Buffers are owned by the
/// tracer and never freed, so a dangling pointer after thread exit is
/// impossible; a new thread reusing the slot would simply allocate a fresh
/// buffer.
thread_local Tracer::ThreadBuffer* tls_buffer = nullptr;

void AppendJsonString(std::ostream& os, const std::string& text) {
  os << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

int64_t NowTicks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

uint64_t TicksToMicros(int64_t ticks) {
  using Period = std::chrono::steady_clock::period;
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::duration<int64_t, Period>(ticks))
                                   .count());
}

}  // namespace

Tracer& Tracer::Global() {
  // Leaked for the same reason as the exec pools: worker threads may touch
  // it during static destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (tls_buffer != nullptr) return tls_buffer;
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffers_.back()->tid = static_cast<int>(buffers_.size()) - 1;
  tls_buffer = buffers_.back().get();
  return tls_buffer;
}

void Tracer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
    }
  }
  epoch_ticks_.store(NowTicks(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_release); }

uint64_t Tracer::NowMicros() const {
  int64_t epoch = epoch_ticks_.load(std::memory_order_relaxed);
  if (epoch == 0) return 0;
  int64_t now = NowTicks();
  return now <= epoch ? 0 : TicksToMicros(now - epoch);
}

void Tracer::RecordComplete(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void Tracer::RecordInstant(const char* category, std::string name,
                           std::vector<std::pair<const char*, int64_t>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.ph = 'i';
  event.ts_us = NowMicros();
  event.args = std::move(args);
  RecordComplete(std::move(event));
}

void Tracer::SetCurrentThreadName(std::string name) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->thread_name = std::move(name);
}

std::string Tracer::ToJson() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto separator = [&]() -> std::ostream& {
    os << (first ? "\n" : ",\n") << "  ";
    first = false;
    return os;
  };
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (!buffer->thread_name.empty()) {
      separator() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                     "\"tid\": "
                  << buffer->tid << ", \"args\": {\"name\": ";
      AppendJsonString(os, buffer->thread_name);
      os << "}}";
    }
    for (const TraceEvent& event : buffer->events) {
      separator() << "{\"name\": ";
      AppendJsonString(os, event.name);
      os << ", \"cat\": ";
      AppendJsonString(os, event.category);
      os << ", \"ph\": \"" << event.ph << "\", \"ts\": " << event.ts_us
         << ", \"pid\": 1, \"tid\": " << buffer->tid;
      if (event.ph == 'X') os << ", \"dur\": " << event.dur_us;
      if (event.ph == 'i') os << ", \"s\": \"t\"";
      if (!event.args.empty()) {
        os << ", \"args\": {";
        for (size_t i = 0; i < event.args.size(); ++i) {
          if (i > 0) os << ", ";
          AppendJsonString(os, event.args[i].first);
          os << ": " << event.args[i].second;
        }
        os << "}";
      }
      os << "}";
    }
  }
  os << (first ? "]" : "\n]") << "}\n";
  return os.str();
}

bool Tracer::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

size_t Tracer::NumEventsForTest() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

void TraceSpan::Begin(const char* category, const char* name) {
  active_ = true;
  event_.name = name;
  event_.category = category;
  event_.ph = 'X';
  event_.ts_us = Tracer::Global().NowMicros();
}

void TraceSpan::End() {
  Tracer& tracer = Tracer::Global();
  // Spans that outlive the recording window are still recorded: they began
  // under tracing and their duration is what the trace is for.
  uint64_t end_us = tracer.NowMicros();
  event_.dur_us = end_us >= event_.ts_us ? end_us - event_.ts_us : 0;
  tracer.RecordComplete(std::move(event_));
}

}  // namespace spider::obs
