#ifndef SPIDER_OBS_TRACE_H_
#define SPIDER_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace spider::obs {

/// One recorded trace event in Chrome trace-event terms. `ph` is 'X'
/// (complete, with duration), 'i' (instant), or 'M' (metadata — emitted at
/// serialization time, not stored).
struct TraceEvent {
  std::string name;
  const char* category = "";
  char ph = 'X';
  uint64_t ts_us = 0;   ///< Start, microseconds since tracing started.
  uint64_t dur_us = 0;  ///< 'X' only.
  /// Optional numeric args rendered into the event's "args" object.
  std::vector<std::pair<const char*, int64_t>> args;
};

/// A span-based tracer that emits Chrome trace-event JSON (the format
/// Perfetto and about:tracing load). Disabled tracing costs one relaxed
/// atomic load per span; enabled recording appends to a per-thread buffer
/// under that buffer's (uncontended) mutex, so worker threads never share a
/// cache line for events and the whole structure is race-free under TSan.
///
/// Each OS thread gets its own track (tid). Threads may announce a display
/// name — the exec runtime's workers register as "exec-worker-<i>/<n>" —
/// which serializes as Chrome "thread_name" metadata, giving per-worker
/// tracks in the viewer.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer all spans record into.
  static Tracer& Global();

  /// Clears previously recorded events and starts recording.
  void Start();

  /// Stops recording; buffered events stay available for serialization.
  void Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since Start() (0 when never started).
  uint64_t NowMicros() const;

  void RecordComplete(TraceEvent event);
  void RecordInstant(const char* category, std::string name,
                     std::vector<std::pair<const char*, int64_t>> args = {});

  /// Registers a display name for the calling thread's track. Cheap and
  /// idempotent; safe to call before Start().
  void SetCurrentThreadName(std::string name);

  /// Serializes everything recorded since the last Start() as a Chrome
  /// trace-event JSON object ({"traceEvents": [...], ...}). Call after the
  /// traced work has joined; concurrent recording is safe but events
  /// landing mid-serialization may be split across snapshots.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

  size_t NumEventsForTest() const;

  /// Public only so the implementation's thread_local cache can name it.
  struct ThreadBuffer {
    mutable std::mutex mu;
    int tid = 0;
    std::string thread_name;  // Guarded by mu.
    std::vector<TraceEvent> events;  // Guarded by mu.
  };

 private:
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  /// steady_clock ticks at Start(), readable without the registry mutex.
  std::atomic<int64_t> epoch_ticks_{0};

  mutable std::mutex mu_;  // Guards buffers_ (the list, not the contents).
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: records a complete ('X') event covering its scope on the
/// calling thread's track. Captures nothing when tracing is disabled at
/// construction.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) {
    if (Tracer::Global().enabled()) Begin(category, name);
  }

  /// Attaches a numeric argument (visible in the viewer's args pane).
  /// No-op on inactive spans, so call sites need no enabled() checks.
  void AddArg(const char* key, int64_t value) {
    if (active_) event_.args.emplace_back(key, value);
  }

  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* category, const char* name);
  void End();

  bool active_ = false;
  TraceEvent event_;
};

}  // namespace spider::obs

#endif  // SPIDER_OBS_TRACE_H_
