#include "provenance/annotated_chase.h"

#include <utility>

#include "base/status.h"
#include "chase/chase.h"

namespace spider {

std::optional<AnnotatedChaseLog::ProvFactId> AnnotatedChaseLog::Find(
    RelationId relation, const Tuple& tuple) const {
  for (size_t i = 0; i < facts_.size(); ++i) {
    if (!facts_[i].merged_away && facts_[i].relation == relation &&
        facts_[i].tuple == tuple) {
      return static_cast<ProvFactId>(i);
    }
  }
  return std::nullopt;
}

std::unique_ptr<Instance> AnnotatedChaseLog::Materialize(
    const Schema* target_schema) const {
  auto instance = std::make_unique<Instance>(target_schema);
  for (const Fact& fact : facts_) {
    if (!fact.merged_away) instance->Insert(fact.relation, Tuple(fact.tuple));
  }
  return instance;
}

/// Driver for the annotated chase. Keeps the log's fact table in sync with
/// a working target Instance (used for query evaluation), including across
/// egd rewrites where row indexes are not stable but ProvFactIds are.
class AnnotatedChaser {
 public:
  AnnotatedChaser(const SchemaMapping& mapping, const Instance& source,
                  const AnnotatedChaseOptions& options)
      : mapping_(mapping),
        source_(source),
        options_(options),
        target_(std::make_unique<Instance>(&mapping.target())),
        null_counter_(options.first_null_id) {}

  AnnotatedChaseResult Run() {
    AnnotatedChaseResult result;
    bool ok = StPhase() && TargetFixpoint();
    result.outcome = failed_ ? AnnotatedChaseOutcome::kEgdFailure
                     : !ok    ? AnnotatedChaseOutcome::kStepLimit
                              : AnnotatedChaseOutcome::kSuccess;
    result.failure_message = failure_message_;
    result.failure = std::move(failure_);
    result.log = std::move(log_);
    result.target = std::move(target_);
    result.next_null_id = null_counter_;
    return result;
  }

 private:
  using ProvFactId = AnnotatedChaseLog::ProvFactId;

  ProvFactId Assert(RelationId relation, Tuple tuple, size_t producer) {
    InsertResult inserted = target_->Insert(relation, tuple);
    auto key = std::make_pair(relation, tuple);
    auto it = fact_of_.find(key);
    if (it != fact_of_.end()) return it->second;
    (void)inserted;
    ProvFactId id = static_cast<ProvFactId>(log_.facts_.size());
    log_.facts_.push_back(AnnotatedChaseLog::Fact{
        relation, std::move(tuple), producer, false, -1});
    fact_of_.emplace(key, id);
    return id;
  }

  ProvFactId Require(RelationId relation, const Tuple& tuple) const {
    auto it = fact_of_.find(std::make_pair(relation, tuple));
    SPIDER_CHECK(it != fact_of_.end(),
                 "annotated chase lost track of a fact");
    return it->second;
  }

  void FireTgd(TgdId tgd_id, const Binding& universal) {
    const Tgd& tgd = mapping_.tgd(tgd_id);
    Binding h = universal;
    for (VarId y : tgd.ExistentialVars()) {
      h.Set(y, Value::Null(null_counter_++));
    }
    AnnotatedChaseLog::TgdStep step;
    step.tgd = tgd_id;
    step.seq = log_.events_.size();
    step.h = h;
    if (tgd.source_to_target()) {
      for (const Atom& atom : tgd.lhs()) {
        Tuple t = h.Instantiate(atom);
        std::optional<int32_t> row = source_.FindRow(atom.relation, t);
        SPIDER_CHECK(row.has_value(), "LHS fact missing from the source");
        step.source_lhs.push_back(FactRef{Side::kSource, atom.relation, *row});
      }
    } else {
      for (const Atom& atom : tgd.lhs()) {
        step.target_lhs.push_back(
            Require(atom.relation, h.Instantiate(atom)));
      }
    }
    size_t step_index = log_.tgd_steps_.size();
    for (const Atom& atom : tgd.rhs()) {
      step.rhs.push_back(
          Assert(atom.relation, h.Instantiate(atom), step_index));
    }
    log_.tgd_steps_.push_back(std::move(step));
    log_.events_.push_back(AnnotatedChaseLog::Event{
        AnnotatedChaseLog::Event::Kind::kTgd, step_index});
  }

  bool StPhase() {
    for (TgdId id : mapping_.st_tgds()) {
      const Tgd& tgd = mapping_.tgd(id);
      Binding b(tgd.num_vars());
      MatchIterator it(source_, tgd.lhs(), &b, options_.eval);
      while (it.Next()) {
        ThrowIfCancelled(options_.cancel);
        if (++steps_ > options_.max_steps) return LimitReached();
        if (!HasMatch(*target_, tgd.rhs(), b, options_.eval)) {
          FireTgd(id, b);
        }
      }
    }
    return true;
  }

  bool TargetFixpoint() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (TgdId id : mapping_.target_tgds()) {
        const Tgd& tgd = mapping_.tgd(id);
        std::vector<Binding> pending;
        {
          Binding b(tgd.num_vars());
          MatchIterator it(*target_, tgd.lhs(), &b, options_.eval);
          while (it.Next()) {
            ThrowIfCancelled(options_.cancel);
            if (++steps_ > options_.max_steps) return LimitReached();
            if (!HasMatch(*target_, tgd.rhs(), b, options_.eval)) {
              pending.push_back(b);
            }
          }
        }
        for (const Binding& b : pending) {
          ThrowIfCancelled(options_.cancel);
          if (++steps_ > options_.max_steps) return LimitReached();
          if (HasMatch(*target_, tgd.rhs(), b, options_.eval)) continue;
          FireTgd(id, b);
          changed = true;
        }
      }
      while (true) {
        ThrowIfCancelled(options_.cancel);
        if (++steps_ > options_.max_steps) return LimitReached();
        int fired = ApplyOneEgd();
        if (fired < 0) return false;  // hard failure
        if (fired == 0) break;
        changed = true;
      }
    }
    return true;
  }

  /// Returns 1 when a unification was applied, 0 when no egd is violated,
  /// -1 on hard failure.
  int ApplyOneEgd() {
    for (size_t e = 0; e < mapping_.NumEgds(); ++e) {
      const Egd& egd = mapping_.egd(static_cast<EgdId>(e));
      Binding b(egd.num_vars());
      MatchIterator it(*target_, egd.lhs(), &b, options_.eval);
      while (it.Next()) {
        const Value& left = b.Get(egd.left());
        const Value& right = b.Get(egd.right());
        EgdUnification u = ChooseEgdUnification(left, right);
        if (u.kind == EgdUnification::Kind::kNoop) continue;
        if (u.kind == EgdUnification::Kind::kFailure) {
          failed_ = true;
          failure_message_ = "egd '" + egd.name() +
                             "' equates distinct constants " +
                             left.ToString() + " and " + right.ToString();
          failure_ = EgdFailure{static_cast<EgdId>(e), b, left, right, {}};
          for (const Atom& atom : egd.lhs()) {
            failure_->lhs.push_back(
                Require(atom.relation, b.Instantiate(atom)));
          }
          return -1;
        }
        NullId victim = u.victim;
        Value replacement = u.replacement;
        AnnotatedChaseLog::EgdStep step;
        step.egd = static_cast<EgdId>(e);
        step.seq = log_.events_.size();
        step.h = b;
        step.victim = victim;
        step.replacement = replacement;
        for (const Atom& atom : egd.lhs()) {
          step.lhs.push_back(Require(atom.relation, b.Instantiate(atom)));
        }
        // The match iterator must be finished before mutating the instance.
        ApplySubstitution(victim, replacement, &step);
        size_t index = log_.egd_steps_.size();
        log_.egd_steps_.push_back(std::move(step));
        log_.events_.push_back(AnnotatedChaseLog::Event{
            AnnotatedChaseLog::Event::Kind::kEgd, index});
        return 1;
      }
    }
    return 0;
  }

  void ApplySubstitution(NullId victim, const Value& replacement,
                         AnnotatedChaseLog::EgdStep* step) {
    target_->ApplySubstitution(victim, replacement);
    const Value victim_value = Value::Null(victim.id);
    fact_of_.clear();
    for (size_t i = 0; i < log_.facts_.size(); ++i) {
      AnnotatedChaseLog::Fact& fact = log_.facts_[i];
      if (fact.merged_away) continue;
      bool touched = false;
      for (size_t c = 0; c < fact.tuple.arity(); ++c) {
        if (fact.tuple.at(c) == victim_value) {
          fact.tuple.at(c) = replacement;
          touched = true;
        }
      }
      if (touched) step->rewritten.push_back(static_cast<ProvFactId>(i));
      auto key = std::make_pair(fact.relation, fact.tuple);
      auto [it, inserted] = fact_of_.emplace(key, static_cast<ProvFactId>(i));
      if (!inserted) {
        // Two facts collapsed: keep the earlier one.
        fact.merged_away = true;
        fact.merged_into = it->second;
      }
    }
  }

  bool LimitReached() {
    failure_message_ =
        "annotated chase exceeded max_steps = " +
        std::to_string(options_.max_steps);
    return false;
  }

  struct KeyHash {
    size_t operator()(const std::pair<RelationId, Tuple>& key) const {
      return HashCombine(std::hash<int32_t>{}(key.first), key.second.Hash());
    }
  };

  const SchemaMapping& mapping_;
  const Instance& source_;
  AnnotatedChaseOptions options_;
  std::unique_ptr<Instance> target_;
  AnnotatedChaseLog log_;
  std::unordered_map<std::pair<RelationId, Tuple>, ProvFactId, KeyHash>
      fact_of_;
  int64_t null_counter_;
  size_t steps_ = 0;
  bool failed_ = false;
  std::string failure_message_;
  std::optional<EgdFailure> failure_;
};

AnnotatedChaseResult AnnotatedChase(const SchemaMapping& mapping,
                                    const Instance& source,
                                    const AnnotatedChaseOptions& options) {
  return AnnotatedChaser(mapping, source, options).Run();
}

}  // namespace spider
