#ifndef SPIDER_PROVENANCE_ANNOTATED_CHASE_H_
#define SPIDER_PROVENANCE_ANNOTATED_CHASE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/cancel.h"
#include "mapping/schema_mapping.h"
#include "query/evaluator.h"
#include "storage/instance.h"

namespace spider {

/// The EAGER (bookkeeping) approach to provenance that the paper contrasts
/// routes with (§5.1, the MXQL system of Velegrakis et al.): the exchange
/// engine is instrumented to record, while it runs, which dependency and
/// which assignment created every target tuple, and which egd unifications
/// rewrote it afterwards. Provenance questions are then answered by lookup,
/// at the cost of annotating the whole exchange up front and being tied to
/// this engine — exactly the trade-off the route algorithms avoid.
///
/// Implementing it serves two purposes here:
///  * it is the baseline for the eager-vs-lazy benchmark
///    (bench_eager_vs_lazy): one full annotated exchange vs. k on-demand
///    route computations — the crossover is the paper's design argument;
///  * its log records egd steps, which the lazy route algorithms cannot see
///    (routes have no egd satisfaction steps), enabling the egd-aware
///    explanations of §6's future work (see ExplainFact).
///
/// The log identifies target tuples by stable ProvFactIds that survive egd
/// rewrites (unlike row indexes in an Instance).
class AnnotatedChaseLog {
 public:
  using ProvFactId = int32_t;

  struct TgdStep {
    TgdId tgd = -1;
    size_t seq = 0;  ///< Global position in the exchange history.
    Binding h;  ///< Universal variables plus the invented existential nulls.
    /// LHS facts: source FactRefs for an s-t tgd, ProvFactIds otherwise.
    std::vector<FactRef> source_lhs;
    std::vector<ProvFactId> target_lhs;
    /// Facts asserted by this step (new or pre-existing).
    std::vector<ProvFactId> rhs;
  };

  struct EgdStep {
    EgdId egd = -1;
    size_t seq = 0;  ///< Global position in the exchange history.
    Binding h;
    NullId victim;
    Value replacement;
    /// The facts of h(φ) that triggered the unification.
    std::vector<ProvFactId> lhs;
    /// Facts rewritten by the substitution.
    std::vector<ProvFactId> rewritten;
  };

  /// One entry of the exchange history, in execution order.
  struct Event {
    enum class Kind { kTgd, kEgd } kind;
    size_t index;  ///< Into tgd_steps() or egd_steps().
  };

  const std::vector<TgdStep>& tgd_steps() const { return tgd_steps_; }
  const std::vector<EgdStep>& egd_steps() const { return egd_steps_; }
  const std::vector<Event>& events() const { return events_; }

  /// The current (final) tuple of a fact.
  const Tuple& tuple(ProvFactId id) const { return facts_[id].tuple; }
  RelationId relation(ProvFactId id) const { return facts_[id].relation; }
  size_t NumFacts() const { return facts_.size(); }

  /// The tgd step that first asserted the fact.
  size_t ProducerStep(ProvFactId id) const { return facts_[id].producer; }

  /// True when an egd rewrite collapsed this fact into another one; its
  /// tuple then equals the survivor's and it is absent from Materialize().
  bool MergedAway(ProvFactId id) const { return facts_[id].merged_away; }

  /// Follows merged_into links to the surviving representative of the fact
  /// (the id itself when it never merged). The incremental maintainer
  /// resolves step lhs/rhs ids through this when importing the log as a
  /// derivation graph.
  ProvFactId Resolve(ProvFactId id) const {
    while (facts_[id].merged_away) id = facts_[id].merged_into;
    return id;
  }

  /// Resolves a final target tuple to its fact id, if it exists.
  std::optional<ProvFactId> Find(RelationId relation,
                                 const Tuple& tuple) const;

  /// All facts, as an Instance over the target schema (equal to the plain
  /// chase result).
  std::unique_ptr<Instance> Materialize(const Schema* target_schema) const;

 private:
  friend class AnnotatedChaser;

  struct Fact {
    RelationId relation;
    Tuple tuple;
    size_t producer = 0;     ///< Index into tgd_steps_.
    bool merged_away = false;  ///< True when an egd rewrite collapsed it
                               ///< into another fact.
    ProvFactId merged_into = -1;
  };

  std::vector<Fact> facts_;
  std::vector<TgdStep> tgd_steps_;
  std::vector<EgdStep> egd_steps_;
  std::vector<Event> events_;
};

enum class AnnotatedChaseOutcome { kSuccess, kEgdFailure, kStepLimit };

/// Details of a hard egd failure (two distinct constants equated): the egd,
/// the violating assignment, and the facts it matched — everything needed
/// to explain WHY no solution exists (see ExplainFailure in explain.h).
struct EgdFailure {
  EgdId egd = -1;
  Binding h;
  Value left;
  Value right;
  std::vector<AnnotatedChaseLog::ProvFactId> lhs;
};

struct AnnotatedChaseResult {
  AnnotatedChaseOutcome outcome = AnnotatedChaseOutcome::kSuccess;
  AnnotatedChaseLog log;
  std::unique_ptr<Instance> target;
  int64_t next_null_id = 1;
  std::string failure_message;
  /// Set when outcome == kEgdFailure.
  std::optional<EgdFailure> failure;
};

struct AnnotatedChaseOptions {
  size_t max_steps = 10'000'000;
  int64_t first_null_id = 1;
  EvalOptions eval;

  /// Optional cooperative-cancellation token, polled at every chase step.
  /// When it flips, AnnotatedChase() throws CancelledError; the produced
  /// target and log are local to the call, so nothing escapes half-built.
  const CancelToken* cancel = nullptr;
};

/// Runs the standard chase while recording full provenance. The produced
/// target instance is identical to Chase()'s for the same inputs.
AnnotatedChaseResult AnnotatedChase(const SchemaMapping& mapping,
                                    const Instance& source,
                                    const AnnotatedChaseOptions& options = {});

}  // namespace spider

#endif  // SPIDER_PROVENANCE_ANNOTATED_CHASE_H_
