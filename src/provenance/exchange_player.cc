#include "provenance/exchange_player.h"

#include <sstream>

#include "base/status.h"

namespace spider {

ExchangePlayer::ExchangePlayer(const AnnotatedChaseLog* log,
                               const SchemaMapping* mapping)
    : log_(log), mapping_(mapping) {
  SPIDER_CHECK(log != nullptr && mapping != nullptr,
               "ExchangePlayer requires a log and a mapping");
  current_ = std::make_unique<Instance>(&mapping->target());
}

bool ExchangePlayer::Step() {
  if (done()) return false;
  const AnnotatedChaseLog::Event& event = log_->events()[position_];
  if (event.kind == AnnotatedChaseLog::Event::Kind::kTgd) {
    const AnnotatedChaseLog::TgdStep& step = log_->tgd_steps()[event.index];
    const Tgd& tgd = mapping_->tgd(step.tgd);
    for (const Atom& atom : tgd.rhs()) {
      current_->Insert(atom.relation, step.h.Instantiate(atom));
    }
  } else {
    const AnnotatedChaseLog::EgdStep& step = log_->egd_steps()[event.index];
    current_->ApplySubstitution(step.victim, step.replacement);
  }
  ++position_;
  return true;
}

void ExchangePlayer::Reset() {
  position_ = 0;
  current_ = std::make_unique<Instance>(&mapping_->target());
}

bool ExchangePlayer::RunToBreakpoint() {
  while (!done()) {
    const AnnotatedChaseLog::Event& event = log_->events()[position_];
    if (event.kind == AnnotatedChaseLog::Event::Kind::kTgd &&
        breakpoints_.count(log_->tgd_steps()[event.index].tgd) > 0) {
      return true;
    }
    Step();
  }
  return false;
}

std::string ExchangePlayer::Watch() const {
  std::ostringstream os;
  os << "event " << position_ << '/' << size() << ", " << "|J_i| = "
     << current_->TotalTuples() << '\n';
  auto describe = [&](size_t index) {
    const AnnotatedChaseLog::Event& event = log_->events()[index];
    std::ostringstream line;
    if (event.kind == AnnotatedChaseLog::Event::Kind::kTgd) {
      const AnnotatedChaseLog::TgdStep& step = log_->tgd_steps()[event.index];
      const Tgd& tgd = mapping_->tgd(step.tgd);
      line << "tgd " << tgd.name() << ' '
           << step.h.ToString(tgd.var_names());
    } else {
      const AnnotatedChaseLog::EgdStep& step = log_->egd_steps()[event.index];
      line << "egd " << mapping_->egd(step.egd).name() << " unify #N"
           << step.victim.id << " := " << step.replacement.ToString();
    }
    return line.str();
  };
  if (position_ > 0) os << "last: " << describe(position_ - 1) << '\n';
  if (!done()) os << "next: " << describe(position_) << '\n';
  return os.str();
}

}  // namespace spider
