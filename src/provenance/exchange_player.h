#ifndef SPIDER_PROVENANCE_EXCHANGE_PLAYER_H_
#define SPIDER_PROVENANCE_EXCHANGE_PLAYER_H_

#include <memory>
#include <string>
#include <unordered_set>

#include "mapping/schema_mapping.h"
#include "provenance/annotated_chase.h"

namespace spider {

/// Single-steps an entire data exchange, event by event — the "watch
/// window for visualizing how the target instance changes" of §3.4 applied
/// to the exchange itself rather than to one route. Backed by an
/// AnnotatedChaseLog, so stepping is replay: no engine work happens here.
///
/// Each Step() applies the next logged event (a tgd firing or an egd
/// unification) to a materialized partial target instance; breakpoints stop
/// RunToBreakpoint() before a marked tgd fires.
class ExchangePlayer {
 public:
  /// The log (and mapping) must outlive the player.
  ExchangePlayer(const AnnotatedChaseLog* log, const SchemaMapping* mapping);

  size_t position() const { return position_; }
  size_t size() const { return log_->events().size(); }
  bool done() const { return position_ >= size(); }

  /// The partial target instance J_i built so far.
  const Instance& current() const { return *current_; }

  bool Step();
  void Reset();

  /// Breakpoints by tgd id (egd events never match).
  void SetBreakpoint(TgdId tgd) { breakpoints_.insert(tgd); }
  void ClearBreakpoint(TgdId tgd) { breakpoints_.erase(tgd); }

  /// Runs until the next event is a breakpointed tgd firing, or the end.
  /// Returns true when stopped at a breakpoint.
  bool RunToBreakpoint();

  /// Describes the player state: last event, next event, instance size.
  std::string Watch() const;

 private:
  const AnnotatedChaseLog* log_;
  const SchemaMapping* mapping_;
  std::unique_ptr<Instance> current_;
  size_t position_ = 0;
  std::unordered_set<TgdId> breakpoints_;
};

}  // namespace spider

#endif  // SPIDER_PROVENANCE_EXCHANGE_PLAYER_H_
