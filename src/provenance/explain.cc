#include "provenance/explain.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_set>

#include "base/status.h"

namespace spider {

size_t ExtendedRoute::NumEgdEntries() const {
  size_t n = 0;
  for (const Entry& e : entries) {
    if (e.is_egd) ++n;
  }
  return n;
}

Route ExtendedRoute::TgdProjection() const {
  std::vector<SatStep> steps;
  for (const Entry& e : entries) {
    if (!e.is_egd) steps.push_back(e.tgd);
  }
  return Route(std::move(steps));
}

namespace {

/// Applies the accumulated null substitution to a tuple (following chains:
/// a null may have been replaced by another null that was later replaced).
Tuple Canonicalize(const Tuple& tuple,
                   const std::unordered_map<int64_t, Value>& sub) {
  std::vector<Value> values(tuple.values());
  for (Value& v : values) {
    while (v.is_null()) {
      auto it = sub.find(v.AsNull().id);
      if (it == sub.end()) break;
      v = it->second;
    }
  }
  return Tuple(std::move(values));
}

using FactKey = std::pair<RelationId, Tuple>;

}  // namespace

bool ExtendedRoute::Validate(
    const SchemaMapping& mapping, const Instance& source,
    const std::vector<std::pair<RelationId, Tuple>>& final_facts,
    std::string* why) const {
  auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (entries.empty()) return fail("an extended route must be non-empty");
  std::unordered_map<int64_t, Value> sub;
  std::set<FactKey> produced;
  auto canon_insert = [&](RelationId rel, const Tuple& t) {
    produced.insert({rel, Canonicalize(t, sub)});
  };
  auto recanonicalize = [&]() {
    std::set<FactKey> next;
    for (const FactKey& key : produced) {
      next.insert({key.first, Canonicalize(key.second, sub)});
    }
    produced = std::move(next);
  };
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& entry = entries[i];
    if (!entry.is_egd) {
      const Tgd& tgd = mapping.tgd(entry.tgd.tgd);
      if (entry.tgd.h.size() != tgd.num_vars() || !entry.tgd.h.IsTotal()) {
        return fail("entry " + std::to_string(i + 1) +
                    ": homomorphism must cover all variables");
      }
      for (const Atom& atom : tgd.lhs()) {
        Tuple t = Canonicalize(entry.tgd.h.Instantiate(atom), sub);
        if (tgd.source_to_target()) {
          if (!source.FindRow(atom.relation, t).has_value()) {
            return fail("entry " + std::to_string(i + 1) +
                        ": LHS fact missing from the source instance");
          }
        } else if (produced.find({atom.relation, t}) == produced.end()) {
          return fail("entry " + std::to_string(i + 1) +
                      ": LHS fact was not produced by an earlier entry");
        }
      }
      for (const Atom& atom : tgd.rhs()) {
        canon_insert(atom.relation, entry.tgd.h.Instantiate(atom));
      }
    } else {
      const Egd& egd = mapping.egd(entry.egd.egd);
      for (const Atom& atom : egd.lhs()) {
        Tuple t = Canonicalize(entry.egd.h.Instantiate(atom), sub);
        if (produced.find({atom.relation, t}) == produced.end()) {
          return fail("entry " + std::to_string(i + 1) +
                      ": egd LHS fact was not produced by an earlier entry");
        }
      }
      Value replacement = entry.egd.replacement;
      while (replacement.is_null() &&
             sub.count(replacement.AsNull().id) > 0) {
        replacement = sub.at(replacement.AsNull().id);
      }
      sub[entry.egd.victim.id] = replacement;
      recanonicalize();
    }
  }
  for (const auto& [relation, tuple] : final_facts) {
    if (produced.find({relation, Canonicalize(tuple, sub)}) ==
        produced.end()) {
      return fail("a selected fact is not produced by the extended route");
    }
  }
  return true;
}

std::string ExtendedRoute::ToString(const SchemaMapping& mapping) const {
  std::ostringstream os;
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& entry = entries[i];
    os << "entry " << (i + 1) << ": ";
    if (!entry.is_egd) {
      const Tgd& tgd = mapping.tgd(entry.tgd.tgd);
      os << "[tgd " << tgd.name() << "] "
         << entry.tgd.h.ToString(tgd.var_names());
    } else {
      const Egd& egd = mapping.egd(entry.egd.egd);
      os << "[egd " << egd.name() << "] unify #N" << entry.egd.victim.id
         << " := " << entry.egd.replacement.ToString() << ", "
         << entry.egd.h.ToString(egd.var_names());
    }
    os << '\n';
  }
  return os.str();
}

namespace {

ExtendedRoute BuildExtendedRoute(const AnnotatedChaseLog& log,
                                 const std::vector<int32_t>& seeds);

}  // namespace

ExtendedRoute ExplainFact(const AnnotatedChaseLog& log,
                          AnnotatedChaseLog::ProvFactId fact,
                          const SchemaMapping& mapping) {
  (void)mapping;
  return BuildExtendedRoute(log, {fact});
}

FailureExplanation ExplainFailure(const AnnotatedChaseLog& log,
                                  const EgdFailure& failure,
                                  const SchemaMapping& mapping) {
  FailureExplanation explanation;
  std::vector<int32_t> seeds(failure.lhs.begin(), failure.lhs.end());
  explanation.route = BuildExtendedRoute(log, seeds);
  const Egd& egd = mapping.egd(failure.egd);
  std::ostringstream os;
  os << "no solution exists: egd '" << egd.name() << "' equates "
     << failure.left.ToString() << " and " << failure.right.ToString()
     << " under " << failure.h.ToString(egd.var_names())
     << "; the route above derives the violating facts";
  explanation.message = os.str();
  return explanation;
}

namespace {

ExtendedRoute BuildExtendedRoute(const AnnotatedChaseLog& log,
                                 const std::vector<int32_t>& seeds) {
  std::unordered_set<int32_t> needed_facts;
  std::unordered_set<size_t> needed_tgd_steps;
  std::unordered_set<size_t> needed_egd_steps;

  // Closure of facts under their producing tgd steps.
  auto close_facts = [&](std::vector<int32_t> worklist) {
    while (!worklist.empty()) {
      int32_t f = worklist.back();
      worklist.pop_back();
      if (!needed_facts.insert(f).second) continue;
      size_t producer = log.ProducerStep(f);
      if (needed_tgd_steps.insert(producer).second) {
        for (int32_t lhs : log.tgd_steps()[producer].target_lhs) {
          worklist.push_back(lhs);
        }
      }
    }
  };
  close_facts(seeds);

  // Egd steps become relevant when they rewrote a needed fact; their own
  // LHS facts then join the closure, to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t e = 0; e < log.egd_steps().size(); ++e) {
      if (needed_egd_steps.count(e) > 0) continue;
      const AnnotatedChaseLog::EgdStep& step = log.egd_steps()[e];
      bool relevant = false;
      for (int32_t f : step.rewritten) {
        if (needed_facts.count(f) > 0) {
          relevant = true;
          break;
        }
      }
      if (!relevant) continue;
      needed_egd_steps.insert(e);
      close_facts(std::vector<int32_t>(step.lhs.begin(), step.lhs.end()));
      changed = true;
    }
  }

  // Emit the needed steps in original execution order. Each step carries
  // its global sequence number, so emission is proportional to the closure
  // size, not to the full exchange history.
  std::vector<std::pair<size_t, ExtendedRoute::Entry>> ordered;
  ordered.reserve(needed_tgd_steps.size() + needed_egd_steps.size());
  for (size_t index : needed_tgd_steps) {
    const AnnotatedChaseLog::TgdStep& step = log.tgd_steps()[index];
    ExtendedRoute::Entry entry;
    entry.is_egd = false;
    entry.tgd = SatStep{step.tgd, step.h};
    ordered.emplace_back(step.seq, std::move(entry));
  }
  for (size_t index : needed_egd_steps) {
    const AnnotatedChaseLog::EgdStep& step = log.egd_steps()[index];
    ExtendedRoute::Entry entry;
    entry.is_egd = true;
    entry.egd = ExtendedRoute::EgdEntry{step.egd, step.h, step.victim,
                                        step.replacement};
    ordered.emplace_back(step.seq, std::move(entry));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ExtendedRoute route;
  route.entries.reserve(ordered.size());
  for (auto& [seq, entry] : ordered) {
    route.entries.push_back(std::move(entry));
  }
  return route;
}

}  // namespace

std::vector<FactRef> WhyProvenance(const AnnotatedChaseLog& log,
                                   AnnotatedChaseLog::ProvFactId fact) {
  std::unordered_set<int32_t> seen_facts;
  std::unordered_set<size_t> seen_steps;
  std::vector<FactRef> sources;
  std::unordered_set<FactRef, FactRefHash> source_set;
  std::vector<int32_t> worklist = {fact};
  while (!worklist.empty()) {
    int32_t f = worklist.back();
    worklist.pop_back();
    if (!seen_facts.insert(f).second) continue;
    size_t producer = log.ProducerStep(f);
    if (!seen_steps.insert(producer).second) continue;
    const AnnotatedChaseLog::TgdStep& step = log.tgd_steps()[producer];
    for (const FactRef& s : step.source_lhs) {
      if (source_set.insert(s).second) sources.push_back(s);
    }
    for (int32_t lhs : step.target_lhs) worklist.push_back(lhs);
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

}  // namespace spider
