#ifndef SPIDER_PROVENANCE_EXPLAIN_H_
#define SPIDER_PROVENANCE_EXPLAIN_H_

#include <string>
#include <vector>

#include "mapping/schema_mapping.h"
#include "provenance/annotated_chase.h"
#include "routes/route.h"

namespace spider {

/// A route extended with egd satisfaction steps — the §6 future-work item
/// ("our concept of a route currently does not reflect how an egd is used in
/// an exchange"). An extended route replays as follows: tgd entries behave
/// like ordinary satisfaction steps; an egd entry asserts that its LHS facts
/// are present and then applies the unification (victim null := replacement)
/// to every fact produced so far. Probed facts are reached in their FINAL
/// (post-unification) form, which plain routes cannot express whenever an
/// egd rewrote them.
struct ExtendedRoute {
  struct EgdEntry {
    EgdId egd = -1;
    Binding h;
    NullId victim;
    Value replacement;
  };
  struct Entry {
    bool is_egd = false;
    SatStep tgd;    ///< Valid when !is_egd.
    EgdEntry egd;   ///< Valid when is_egd.
  };

  std::vector<Entry> entries;

  size_t size() const { return entries.size(); }
  size_t NumEgdEntries() const;

  /// The plain route obtained by dropping egd entries (valid in the
  /// Definition 3.3 sense only when no egd rewrote the involved facts).
  Route TgdProjection() const;

  /// Replays the extended route: every tgd entry's LHS must be available
  /// (source facts in I, target facts produced earlier — compared modulo
  /// the unifications applied so far), egd entries apply their
  /// substitution, and each of `final_facts` (tuples in their final form,
  /// paired with their relations) must be produced. On failure a reason is
  /// stored in *why.
  bool Validate(const SchemaMapping& mapping, const Instance& source,
                const std::vector<std::pair<RelationId, Tuple>>& final_facts,
                std::string* why = nullptr) const;

  std::string ToString(const SchemaMapping& mapping) const;
};

/// Extracts the extended route explaining `fact` from an annotated-chase
/// log: the backward closure of producing tgd steps, the egd steps that
/// rewrote (or triggered rewrites of) any fact in the closure, and the
/// closures of those egd steps' own LHS facts — in original execution
/// order. This is the EAGER counterpart of ComputeOneRoute, with egd
/// awareness.
ExtendedRoute ExplainFact(const AnnotatedChaseLog& log,
                          AnnotatedChaseLog::ProvFactId fact,
                          const SchemaMapping& mapping);

/// Classical why-provenance (Cui et al. / Buneman et al., §5.1): the source
/// facts in the backward closure of `fact`.
std::vector<FactRef> WhyProvenance(const AnnotatedChaseLog& log,
                                   AnnotatedChaseLog::ProvFactId fact);

/// Explains a HARD egd failure ("no solution exists"): the extended route
/// that derives the two facts whose distinct constants the egd equates.
/// Debugging failed exchanges is the mirror image of debugging anomalous
/// tuples — the route shows which source data and which tgds conspired to
/// violate the egd. The result's entries derive every fact of the failing
/// match; `failure` must come from an AnnotatedChaseResult with outcome
/// kEgdFailure (its log is `log`).
struct FailureExplanation {
  ExtendedRoute route;     ///< Derivation of the violating facts.
  std::string message;     ///< Human-readable summary.
};
FailureExplanation ExplainFailure(const AnnotatedChaseLog& log,
                                  const EgdFailure& failure,
                                  const SchemaMapping& mapping);

}  // namespace spider

#endif  // SPIDER_PROVENANCE_EXPLAIN_H_
