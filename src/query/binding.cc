#include "query/binding.h"

#include <sstream>

#include "base/hash.h"
#include "base/status.h"

namespace spider {

bool Binding::IsTotal() const {
  for (const auto& slot : slots_) {
    if (!slot.has_value()) return false;
  }
  return true;
}

Tuple Binding::Instantiate(const Atom& atom) const {
  std::vector<Value> values;
  values.reserve(atom.terms.size());
  for (const Term& term : atom.terms) {
    if (term.is_const()) {
      values.push_back(term.value());
    } else {
      SPIDER_CHECK(IsBound(term.var()),
                   "cannot instantiate atom: unbound variable");
      values.push_back(Get(term.var()));
    }
  }
  return Tuple(std::move(values));
}

std::vector<Tuple> Binding::InstantiateAll(
    const std::vector<Atom>& atoms) const {
  std::vector<Tuple> tuples;
  tuples.reserve(atoms.size());
  for (const Atom& atom : atoms) tuples.push_back(Instantiate(atom));
  return tuples;
}

size_t Binding::Hash() const {
  size_t seed = 0x5bd1e995;
  for (const auto& slot : slots_) {
    seed = HashCombine(seed, slot.has_value() ? slot->Hash() + 1 : 0);
  }
  return seed;
}

std::string Binding::ToString(
    const std::vector<std::string>& var_names) const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (size_t v = 0; v < slots_.size(); ++v) {
    const std::optional<Value>& slot = slots_[v];
    if (!slot.has_value()) continue;
    if (!first) os << ", ";
    first = false;
    if (v < var_names.size()) {
      os << var_names[v];
    } else {
      os << "?v" << v;
    }
    os << " -> " << *slot;
  }
  os << '}';
  return os.str();
}

}  // namespace spider
