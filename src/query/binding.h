#ifndef SPIDER_QUERY_BINDING_H_
#define SPIDER_QUERY_BINDING_H_

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "base/tuple.h"
#include "base/value.h"
#include "query/term.h"

namespace spider {

/// A (partial) assignment of variables to values. Route homomorphisms are
/// total Bindings over all variables (universal and existential) of a
/// dependency; during evaluation Bindings are extended incrementally.
class Binding {
 public:
  Binding() = default;
  explicit Binding(size_t num_vars) : slots_(num_vars) {}

  size_t size() const { return slots_.size(); }

  bool IsBound(VarId v) const { return slots_[v].has_value(); }
  const Value& Get(VarId v) const { return *slots_[v]; }
  void Set(VarId v, Value value) { slots_[v] = std::move(value); }
  void Unset(VarId v) { slots_[v].reset(); }

  /// True when every variable is bound.
  bool IsTotal() const;

  /// Applies this binding to an atom's terms; every variable must be bound.
  Tuple Instantiate(const Atom& atom) const;

  /// Instantiates a list of atoms.
  std::vector<Tuple> InstantiateAll(const std::vector<Atom>& atoms) const;

  /// Renders as `{x -> 1, y -> "a"}` with `var_names` indexed by VarId;
  /// unbound variables are omitted.
  std::string ToString(const std::vector<std::string>& var_names) const;

  size_t Hash() const;

  friend bool operator==(const Binding&, const Binding&) = default;
  friend auto operator<=>(const Binding&, const Binding&) = default;

 private:
  std::vector<std::optional<Value>> slots_;
};

struct BindingHash {
  size_t operator()(const Binding& b) const { return b.Hash(); }
};

}  // namespace spider

#endif  // SPIDER_QUERY_BINDING_H_
