#include "query/cost_model.h"

#include <algorithm>
#include <chrono>  // invariant-lint: allow(clock-in-engine) — calibration only
#include <vector>

#include "base/hash.h"
#include "catalog/schema.h"
#include "obs/metrics.h"
#include "storage/instance.h"

namespace spider {

const CostModel& CostModel::Default() {
  static const CostModel kDefault;
  return kDefault;
}

uint64_t CostModel::Fingerprint() const {
  uint64_t h = HashCombine(kVersion, scan_cost);
  h = HashCombine(h, probe_cost);
  return HashCombine(h, lookup_cost);
}

CardFp CardScale(CardFp card, uint64_t num, uint64_t den) {
  unsigned __int128 wide = static_cast<unsigned __int128>(card) * num / den;
  constexpr CardFp kMax = CardFromCount(uint64_t{1} << 47);
  return wide > kMax ? kMax : static_cast<CardFp>(wide);
}

uint64_t ExpectedBoundVarRows(uint64_t rows, uint64_t distinct) {
  if (rows == 0) return 0;
  // Inconsistent statistics (0 on a nonempty column) degrade to the
  // no-information estimate instead of silently skipping the factor;
  // distinct > rows clamps so the estimate never drops below one row.
  distinct = std::clamp<uint64_t>(distinct, 1, rows);
  return (rows + distinct - 1) / distinct;  // ceil
}

namespace {

// The calibration clock lives behind one alias so the engine-wide
// clock-free lint stays meaningful for the planner and executor proper.
// invariant-lint: allow(clock-in-engine)
using CalibrationClock = std::chrono::steady_clock;

double ElapsedNs(CalibrationClock::time_point start) {
  return std::chrono::duration<double, std::nano>(CalibrationClock::now() -
                                                  start)
      .count();
}

}  // namespace

CalibrationResult CalibrateCostModel(uint64_t rows, int repeats) {
  if (rows < 64) rows = 64;
  if (repeats < 1) repeats = 1;
  // Synthetic single-relation instance shaped like the engines' hot loops:
  // a grouped column (posting lists of ~8 rows) and a key column.
  Schema schema("calibrate");
  RelationId rel = schema.AddRelation("R", {"grp", "key"});
  Instance instance(&schema);
  const int64_t groups = static_cast<int64_t>(rows / 8);
  for (uint64_t i = 0; i < rows; ++i) {
    instance.Insert(rel, Tuple({Value::Int(static_cast<int64_t>(i) % groups),
                                Value::Int(static_cast<int64_t>(i))}));
  }
  instance.WarmIndexes();
  std::vector<Tuple> lookups;
  lookups.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    lookups.push_back(Tuple({Value::Int(static_cast<int64_t>(i) % groups),
                             Value::Int(static_cast<int64_t>(i))}));
  }

  obs::Registry& registry = obs::Registry::Global();
  CalibrationResult result;
  double best_scan = 0, best_probe = 0, best_lookup = 0;
  // `sink` defeats dead-code elimination of the measured loops.
  volatile uint64_t sink = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    // Scan: fetch each row via a posting list and test one column, the
    // shape of the executor's candidate filter loop.
    uint64_t scanned = 0;
    auto scan_start = CalibrationClock::now();
    for (int64_t g = 0; g < groups; ++g) {
      const std::vector<int32_t>& probe_rows =
          instance.Probe(rel, 0, Value::Int(g));
      for (int32_t row : probe_rows) {
        const Tuple& t = instance.tuple(rel, row);
        if (t.at(0) == Value::Int(g)) ++scanned;
      }
    }
    double scan_ns = ElapsedNs(scan_start) / static_cast<double>(scanned);
    sink += scanned;

    // Probe: posting-list lookups alone.
    auto probe_start = CalibrationClock::now();
    uint64_t probe_total = 0;
    for (int64_t g = 0; g < groups; ++g) {
      probe_total += instance.Probe(rel, 0, Value::Int(g)).size();
    }
    double probe_ns =
        ElapsedNs(probe_start) / static_cast<double>(groups);
    sink += probe_total;

    // Point lookup: exact-tuple dedup hits.
    auto lookup_start = CalibrationClock::now();
    uint64_t found = 0;
    for (const Tuple& t : lookups) {
      if (instance.FindRow(rel, t).has_value()) ++found;
    }
    double lookup_ns = ElapsedNs(lookup_start) / static_cast<double>(rows);
    sink += found;

    registry.GetHistogram("query.calibrate.scan_ns")->Record(scan_ns);
    registry.GetHistogram("query.calibrate.probe_ns")->Record(probe_ns);
    registry.GetHistogram("query.calibrate.lookup_ns")->Record(lookup_ns);
    if (rep == 0 || scan_ns < best_scan) best_scan = scan_ns;
    if (rep == 0 || probe_ns < best_probe) best_probe = probe_ns;
    if (rep == 0 || lookup_ns < best_lookup) best_lookup = lookup_ns;
  }
  (void)sink;

  result.scan_ns = best_scan;
  result.probe_ns = best_probe;
  result.lookup_ns = best_lookup;
  result.model.scan_cost = 1;
  auto ratio = [&](double ns) {
    if (best_scan <= 0) return uint32_t{1};
    double units = ns / best_scan;
    return static_cast<uint32_t>(std::clamp(units, 1.0, 64.0) + 0.5);
  };
  result.model.probe_cost = ratio(best_probe);
  result.model.lookup_cost = ratio(best_lookup);
  return result;
}

}  // namespace spider
