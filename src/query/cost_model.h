#ifndef SPIDER_QUERY_COST_MODEL_H_
#define SPIDER_QUERY_COST_MODEL_H_

#include <cstdint>

namespace spider {

/// Integer cost units for the selectivity planner. One unit is the modeled
/// cost of fetching one candidate row and testing it against the level's
/// bound terms (a "scan"); every other operation is priced as a multiple of
/// that. All plan-time arithmetic is done in these integer units (plus the
/// fixed-point cardinalities below), so cost comparisons are exact — two
/// plans with mathematically equal costs compare equal on every platform,
/// with no float summation-order sensitivity.
///
/// The committed defaults were calibrated with CalibrateCostModel on the
/// reference dev host (see BENCH_planner.json's "cost_model" section for the
/// numbers measured on the machine that produced the committed bench): a
/// hash-index posting-list probe costs about four row scans, and an exact
/// dedup-table point lookup about two. Constants are intentionally coarse —
/// the planner only needs the right order of magnitude to stop trading one
/// 4x-priced probe for a saving of a fraction of a row.
struct CostModel {
  /// Bumped whenever the model's shape or the meaning of its constants
  /// changes. Mixed (with the constants) into every effective plan-cache
  /// key, so cached plans can never outlive the model that priced them.
  static constexpr uint32_t kVersion = 1;

  /// Cost of fetching + testing one candidate row. Keep at 1; it is the
  /// unit everything else is measured in.
  uint32_t scan_cost = 1;
  /// Cost of one posting-list probe (per-column hash index lookup).
  uint32_t probe_cost = 4;
  /// Cost of one exact-tuple point lookup in the dedup table (the path
  /// fully-bound levels take instead of probe + scan).
  uint32_t lookup_cost = 2;

  /// The process-wide default (the committed table above).
  static const CostModel& Default();

  /// Mixes kVersion and every constant into one value for plan-cache keys.
  uint64_t Fingerprint() const;

  friend bool operator==(const CostModel&, const CostModel&) = default;
};

/// Cardinality estimates in 48.16 fixed point: integer row counts shifted
/// left by kCardFracBits, scaled by exact integer ratios. Deterministic and
/// platform-independent, unlike the double-precision chain it replaces.
inline constexpr int kCardFracBits = 16;
using CardFp = uint64_t;

inline constexpr CardFp CardFromCount(uint64_t rows) {
  // Saturate far above any real instance (2^47 rows) instead of wrapping.
  constexpr uint64_t kMaxRows = uint64_t{1} << 47;
  return (rows > kMaxRows ? kMaxRows : rows) << kCardFracBits;
}

/// Rounds a fixed-point cardinality up to whole rows (estimates of nonempty
/// results never round down to "free").
inline uint64_t CardCeilRows(CardFp card) {
  return (card + ((uint64_t{1} << kCardFracBits) - 1)) >> kCardFracBits;
}

/// card * num / den without overflow (128-bit intermediate); den must be
/// nonzero. Saturates at the representation's maximum.
CardFp CardScale(CardFp card, uint64_t num, uint64_t den);

/// Expected posting-list length when a column holding `distinct` values over
/// `rows` rows is probed with a yet-unknown value (the bound-variable case;
/// uniform assumption, rounded up so a nonempty relation never estimates
/// below one candidate row).
///
/// `distinct` == 0 on a nonempty relation is an inconsistent statistic (a
/// nonempty column always holds at least one value). The seed planner
/// silently skipped the selectivity factor in that case — the estimate
/// stayed at the full relation size even when every other statistic said
/// the column was key-like. This handles the degenerate input explicitly:
/// the distinct count is clamped into [1, rows], so 0 degrades to the
/// no-information estimate (`rows`, pinned by cost_model_test) instead of
/// depending on a skipped branch, and distinct > rows (impossible, but
/// defensive) estimates one row rather than zero.
uint64_t ExpectedBoundVarRows(uint64_t rows, uint64_t distinct);

/// Per-atom plan-time estimate, all integer units. Produced by the planner
/// for each candidate atom given the variables bound so far.
struct AtomEstimate {
  /// Expected candidate rows the executor will fetch + test at this level
  /// (the chosen access path's expected output).
  uint64_t scanned_rows = 0;
  /// Probes the executor is expected to issue (0 for a full scan or a
  /// point lookup, 1 for the primary posting-list probe; the runtime probe
  /// budget may add more only when they pay for themselves).
  uint32_t probes = 0;
  /// Point lookups expected (1 for a fully-bound level).
  uint32_t lookups = 0;
  /// Estimated output cardinality (bindings emitted per entry), fixed point.
  CardFp out_card = 0;

  /// Modeled cost of entering this level once: access-path overhead plus
  /// scanned candidates plus one scan unit per emitted binding (every
  /// emitted binding is work for the level below).
  uint64_t CostUnits(const CostModel& model) const {
    return uint64_t{probes} * model.probe_cost +
           uint64_t{lookups} * model.lookup_cost +
           scanned_rows * model.scan_cost +
           CardCeilRows(out_card) * model.scan_cost;
  }
};

/// Records wall-clock micro-measurements of the three access primitives
/// (row scan+test, posting-list probe, dedup point lookup) into the global
/// obs registry's histograms ("query.calibrate.*_ns") and returns a
/// CostModel whose constants are the measured ratios, clamped to [1, 64].
///
/// Calibration reads a clock, so its results are machine-dependent; the
/// engines default to CostModel::Default() (the committed table) to keep
/// plans — and therefore match order, stats, and every golden — identical
/// across hosts. Callers that want hardware-true constants (bench_planner's
/// report, a tuning pass at service startup) opt in explicitly.
struct CalibrationResult {
  CostModel model;
  double scan_ns = 0;    ///< measured per-row scan+test cost
  double probe_ns = 0;   ///< measured per-probe cost
  double lookup_ns = 0;  ///< measured per-point-lookup cost
};
CalibrationResult CalibrateCostModel(uint64_t rows = 4096, int repeats = 5);

}  // namespace spider

#endif  // SPIDER_QUERY_COST_MODEL_H_
