#ifndef SPIDER_QUERY_EVAL_STATS_H_
#define SPIDER_QUERY_EVAL_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace spider {

/// Counters accumulated by the conjunctive-query evaluator. A MatchIterator
/// owns one; findHom folds its iterators' stats into RouteStats::eval and the
/// chase folds them into ChaseStats::eval, so the cost of the selection
/// queries the paper pushes to DB2 is visible at every level of the stack.
///
/// All counters are deterministic for a fixed input: plans and probe choices
/// are computed from exact index statistics (built on demand per column), so
/// they do not depend on index warm-up order or thread count. Cache counters
/// stay deterministic because PlanCache plans under its lock — a key is built
/// exactly once per (instance, version) no matter how many workers race to it.
struct EvalStats {
  uint64_t tuples_scanned = 0;   ///< Candidate rows fetched and tested.
  uint64_t index_probes = 0;     ///< Posting-list lookups issued.
  uint64_t point_lookups = 0;    ///< Exact-tuple dedup lookups (fully-bound).
  uint64_t levels_entered = 0;   ///< Join levels entered during backtracking.
  uint64_t plans_built = 0;      ///< Join orders computed by the planner.
  uint64_t plan_cache_hits = 0;  ///< Plans served from a PlanCache.

  EvalStats& operator+=(const EvalStats& other) {
    tuples_scanned += other.tuples_scanned;
    index_probes += other.index_probes;
    point_lookups += other.point_lookups;
    levels_entered += other.levels_entered;
    plans_built += other.plans_built;
    plan_cache_hits += other.plan_cache_hits;
    return *this;
  }

  /// Adds these counters to the registry under `prefix` (e.g.
  /// "chase.eval."). The struct stays the hot-path accumulator — the
  /// registry is the uniform export surface engines publish merged,
  /// deterministic totals into (see spider::obs).
  void PublishTo(obs::Registry* registry, const std::string& prefix) const {
    registry->GetCounter(prefix + "tuples_scanned")->Add(tuples_scanned);
    registry->GetCounter(prefix + "index_probes")->Add(index_probes);
    registry->GetCounter(prefix + "point_lookups")->Add(point_lookups);
    registry->GetCounter(prefix + "levels_entered")->Add(levels_entered);
    registry->GetCounter(prefix + "plans_built")->Add(plans_built);
    registry->GetCounter(prefix + "plan_cache_hits")->Add(plan_cache_hits);
  }

  friend bool operator==(const EvalStats&, const EvalStats&) = default;
};

}  // namespace spider

#endif  // SPIDER_QUERY_EVAL_STATS_H_
