#include "query/evaluator.h"

#include <algorithm>
#include <utility>

#include "base/hash.h"
#include "base/status.h"
#include "query/plan_cache.h"

namespace spider {

namespace {

/// Batch sizing: the first fill holds a single survivor so early-exit
/// consumers (HasMatch, the chase's containment checks) never test a
/// candidate tuple-at-a-time mode would not have tested; enumeration
/// consumers then amortize per-call overhead as the cap grows.
constexpr uint32_t kBatchGrowth = 4;
constexpr uint32_t kBatchMaxCap = 64;

}  // namespace

MatchIterator::MatchIterator(const Instance& instance, std::vector<Atom> atoms,
                             Binding* binding, EvalOptions options,
                             uint64_t plan_key)
    : instance_(instance), binding_(binding), options_(options) {
  SPIDER_CHECK(binding != nullptr, "MatchIterator requires a binding");
  for (const Atom& atom : atoms) {
    SPIDER_CHECK(atom.relation >= 0 &&
                     static_cast<size_t>(atom.relation) <
                         instance.NumRelations(),
                 "atom refers to a relation outside the instance's schema");
    SPIDER_CHECK(
        atom.terms.size() == instance.schema().relation(atom.relation).arity(),
        "atom arity mismatch for relation '" +
            instance.schema().relation(atom.relation).name() + "'");
    for (const Term& t : atom.terms) {
      if (t.is_var()) {
        SPIDER_CHECK(static_cast<size_t>(t.var()) < binding->size(),
                     "atom variable id " + std::to_string(t.var()) +
                         " out of range for binding of size " +
                         std::to_string(binding->size()));
      }
    }
  }
  if (options_.cost_model == nullptr) {
    options_.cost_model = &CostModel::Default();
  }
  PlanOrder(std::move(atoms), plan_key);
}

void MatchIterator::PlanOrder(std::vector<Atom> atoms, uint64_t plan_key) {
  if (options_.plan_cache != nullptr && plan_key != kNoPlanKey) {
    // Mix everything the plan depends on besides the caller's key into the
    // effective cache key: two iterators sharing a caller key but planned
    // under different options or cost-model constants must never alias.
    // (ExecMode is deliberately absent — both exec modes run the same plan.)
    uint64_t effective = HashCombine(plan_key, options_.cost_model->Fingerprint());
    uint64_t option_bits = (options_.use_indexes ? 1u : 0u) |
                           (options_.reorder_atoms ? 2u : 0u) |
                           (static_cast<uint64_t>(options_.planner) << 2);
    effective = HashCombine(effective, option_bits);
    plan_ = options_.plan_cache->Get(
        effective, instance_, [&] { return ComputePlan(atoms); }, &stats_);
  } else {
    plan_ = std::make_shared<const QueryPlan>(ComputePlan(atoms));
    ++stats_.plans_built;
  }
  levels_.reserve(atoms.size());
  std::vector<bool> var_bound(binding_->size(), false);
  for (size_t v = 0; v < binding_->size(); ++v) {
    var_bound[v] = binding_->IsBound(static_cast<VarId>(v));
  }
  for (size_t depth = 0; depth < plan_->order.size(); ++depth) {
    Level level;
    level.atom = std::move(atoms[plan_->order[depth]]);
    level.plan = &plan_->levels[depth];
    CompileLevel(&level, &var_bound);
    levels_.push_back(std::move(level));
  }
}

QueryPlan MatchIterator::ComputePlan(const std::vector<Atom>& atoms) const {
  QueryPlan plan;
  const size_t n = atoms.size();
  plan.order.reserve(n);
  plan.levels.reserve(n);
  // Track which variables are available when an atom is considered: those
  // bound in the initial binding plus those produced by atoms already
  // ordered. Which *variables* the caller binds is part of the plan-cache
  // key contract; their values are never consulted.
  std::vector<bool> var_bound(binding_->size(), false);
  for (size_t v = 0; v < binding_->size(); ++v) {
    var_bound[v] = binding_->IsBound(static_cast<VarId>(v));
  }
  auto atom_fully_bound = [&](const Atom& atom) {
    for (const Term& t : atom.terms) {
      if (t.is_var() && !var_bound[t.var()]) return false;
    }
    return true;
  };

  // Fully-bound conjunction (the chase's RHS containment shape): keep the
  // caller's ORIGINAL atom order, for every planner mode. Whether each atom
  // has a match is access-path-independent, so with a pinned order both
  // planners short-circuit a failure on the same atom — levels_entered
  // becomes planner-invariant by construction (the BENCH_planner drift
  // fix). The access path still differs per mode (PlanLevel): kSelectivity
  // resolves each atom with one exact point lookup, kBoundCount keeps the
  // seed probe-and-scan.
  const bool all_fully_bound =
      options_.use_indexes &&
      std::all_of(atoms.begin(), atoms.end(), atom_fully_bound);
  if (all_fully_bound) {
    for (size_t i = 0; i < n; ++i) {
      plan.order.push_back(i);
      plan.levels.push_back(PlanLevel(atoms[i], var_bound));
    }
    plan.point_lookup = options_.planner == PlannerMode::kSelectivity;
    return plan;
  }

  auto bound_positions = [&](const Atom& atom) {
    size_t bound = 0;
    for (const Term& t : atom.terms) {
      if (t.is_const() || var_bound[t.var()]) ++bound;
    }
    return bound;
  };
  const bool selectivity = options_.use_indexes &&
                           options_.planner == PlannerMode::kSelectivity;
  std::vector<size_t> order;
  order.reserve(n);
  if (!options_.reorder_atoms) {
    for (size_t i = 0; i < n; ++i) order.push_back(i);
  } else {
    std::vector<bool> used(n, false);
    for (size_t picked = 0; picked < n; ++picked) {
      int best = -1;
      uint64_t best_cost = 0;
      CardFp best_out = 0;
      size_t best_bound = 0;
      size_t best_card = 0;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        size_t bound = bound_positions(atoms[i]);
        size_t card = instance_.NumTuples(atoms[i].relation);
        if (selectivity) {
          // Cheapest modeled cost first. All-integer comparison (cost
          // units, then fixed-point output cardinality, then the
          // bound-count criteria, then original atom position): exact on
          // every platform, no float summation-order sensitivity.
          AtomEstimate est = EstimateAtom(atoms[i], var_bound);
          uint64_t cost = est.CostUnits(*options_.cost_model);
          if (best < 0 || cost < best_cost ||
              (cost == best_cost &&
               (est.out_card < best_out ||
                (est.out_card == best_out &&
                 (bound > best_bound ||
                  (bound == best_bound && card < best_card)))))) {
            best = static_cast<int>(i);
            best_cost = cost;
            best_out = est.out_card;
            best_bound = bound;
            best_card = card;
          }
        } else {
          if (best < 0 || bound > best_bound ||
              (bound == best_bound && card < best_card)) {
            best = static_cast<int>(i);
            best_bound = bound;
            best_card = card;
          }
        }
      }
      used[best] = true;
      for (const Term& t : atoms[best].terms) {
        if (t.is_var()) var_bound[t.var()] = true;
      }
      order.push_back(static_cast<size_t>(best));
    }
    // Reset to the initial signature for the per-level pass below.
    std::fill(var_bound.begin(), var_bound.end(), false);
    for (size_t v = 0; v < binding_->size(); ++v) {
      var_bound[v] = binding_->IsBound(static_cast<VarId>(v));
    }
  }

  for (size_t i : order) {
    plan.levels.push_back(PlanLevel(atoms[i], var_bound));
    for (const Term& t : atoms[i].terms) {
      if (t.is_var()) var_bound[t.var()] = true;
    }
    plan.order.push_back(i);
  }
  return plan;
}

LevelPlan MatchIterator::PlanLevel(const Atom& atom,
                                   const std::vector<bool>& var_bound) const {
  LevelPlan lp;
  if (!options_.use_indexes) return lp;  // nested-loop scan only
  if (options_.planner == PlannerMode::kBoundCount) {
    // Seed behavior: probe the first bound column, unconditionally, and
    // consult NO statistics — the seed engine never built stats-only
    // indexes, and the benchmark baseline must not start paying for them.
    for (size_t col = 0; col < atom.terms.size(); ++col) {
      const Term& t = atom.terms[col];
      if (t.is_const() || var_bound[t.var()]) {
        lp.probes.push_back(ProbeChoice{static_cast<int>(col), 0});
        break;
      }
    }
    return lp;
  }
  // Decide the access-path shape BEFORE consulting any statistic: a
  // fully-bound level takes the exact point lookup, which needs no
  // posting-list sizes — asking for them here would lazily build (and then
  // forever maintain) per-column indexes the lookup path never reads, a
  // hidden planning cost dwarfing the query itself on chase-sized inserts.
  bool all_bound = !atom.terms.empty();
  for (const Term& t : atom.terms) {
    if (t.is_var() && !var_bound[t.var()]) {
      all_bound = false;
      break;
    }
  }
  if (all_bound) {
    lp.fully_bound = true;
    return lp;
  }
  const uint64_t n = instance_.NumTuples(atom.relation);
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const Term& t = atom.terms[col];
    uint64_t expected;
    if (t.is_const()) {
      // Exact: the posting list for this constant is what a probe returns.
      expected = instance_.PostingListSize(atom.relation,
                                           static_cast<int>(col), t.value());
    } else if (var_bound[t.var()]) {
      expected = ExpectedBoundVarRows(
          n, instance_.NumDistinct(atom.relation, static_cast<int>(col)));
    } else {
      continue;
    }
    lp.probes.push_back(
        ProbeChoice{static_cast<int>(col), expected});
  }
  if (lp.probes.empty()) return lp;  // no bound column: full scan
  // Cheapest expected posting list first; column index breaks ties so the
  // order is deterministic.
  std::stable_sort(lp.probes.begin(), lp.probes.end(),
                   [](const ProbeChoice& a, const ProbeChoice& b) {
                     if (a.expected_rows != b.expected_rows) {
                       return a.expected_rows < b.expected_rows;
                     }
                     return a.col < b.col;
                   });
  // Tiny relation: scanning everything outright beats even one probe.
  const CostModel& model = *options_.cost_model;
  if (n * model.scan_cost <=
      model.probe_cost + lp.probes[0].expected_rows * model.scan_cost) {
    lp.scan_instead = true;
    lp.probes.clear();
  }
  return lp;
}

AtomEstimate MatchIterator::EstimateAtom(
    const Atom& atom, const std::vector<bool>& var_bound) const {
  AtomEstimate est;
  const uint64_t n = instance_.NumTuples(atom.relation);
  if (n == 0) return est;  // empty relation: free, and kills the join
  // Fully bound? Exact existence check: at most one row out, no statistics
  // consulted (matching the lookup path, which never builds posting-list
  // indexes). Decided exactly as PlanLevel decides it.
  bool all_bound = !atom.terms.empty();
  for (const Term& t : atom.terms) {
    if (t.is_var() && !var_bound[t.var()]) {
      all_bound = false;
      break;
    }
  }
  if (all_bound) {
    est.lookups = 1;
    est.out_card = CardFromCount(1);
    return est;
  }
  // One pass over the bound columns gathers both the access path (cheapest
  // expected posting list — the probe PlanLevel would order first) and the
  // output cardinality (n scaled by each bound column's selectivity: exact
  // posting-list ratios for constants, the uniform assumption for bound
  // variables; ExpectedBoundVarRows documents the clamping of degenerate
  // distinct counts). Every statistic is a hash lookup, so consulting each
  // column once — not once for the path and again for the cardinality — is
  // what keeps greedy O(k^2) planning cheap on plan-cache-miss-heavy
  // drivers like the chase.
  uint64_t best_expected = 0;
  bool have_probe = false;
  CardFp card = CardFromCount(n);
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const Term& t = atom.terms[col];
    uint64_t expected;
    if (t.is_const()) {
      expected = instance_.PostingListSize(atom.relation,
                                           static_cast<int>(col), t.value());
      card = CardScale(card, expected, n);
    } else if (var_bound[t.var()]) {
      uint64_t distinct =
          instance_.NumDistinct(atom.relation, static_cast<int>(col));
      expected = ExpectedBoundVarRows(n, distinct);
      card = CardScale(card, 1, std::clamp<uint64_t>(distinct, 1, n));
    } else {
      continue;
    }
    if (!have_probe || expected < best_expected) {
      best_expected = expected;
      have_probe = true;
    }
  }
  // Access path, mirroring PlanLevel's scan_instead rule.
  const CostModel& model = *options_.cost_model;
  if (!have_probe ||
      n * model.scan_cost <=
          model.probe_cost + best_expected * model.scan_cost) {
    est.scanned_rows = n;
  } else {
    est.probes = 1;
    est.scanned_rows = best_expected;
  }
  est.out_card = card;
  return est;
}

void MatchIterator::CompileLevel(Level* level, std::vector<bool>* var_bound) {
  const Atom& atom = level->atom;
  level->ops.reserve(atom.terms.size());
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const Term& t = atom.terms[col];
    FilterOp op;
    op.col = static_cast<int>(col);
    if (t.is_const()) {
      op.kind = FilterOp::Kind::kConst;
      op.value = &t.value();
    } else if ((*var_bound)[t.var()]) {
      op.kind = FilterOp::Kind::kBoundVar;
      op.var = t.var();
    } else {
      // First occurrence in this atom produces the variable; repeats become
      // an intra-row equality against the producing column.
      int first_col = -1;
      for (const FilterOp& prev : level->ops) {
        if (prev.kind == FilterOp::Kind::kProduce && prev.var == t.var()) {
          first_col = prev.col;
          break;
        }
      }
      if (first_col >= 0) {
        op.kind = FilterOp::Kind::kDupProduce;
        op.first_col = first_col;
      } else {
        op.kind = FilterOp::Kind::kProduce;
        op.var = t.var();
        level->produce_vars.push_back(t.var());
      }
    }
    level->ops.push_back(op);
  }
  for (VarId v : level->produce_vars) (*var_bound)[v] = true;
}

const Value& MatchIterator::ColumnValue(const Level& level, int col) const {
  const Term& t = level.atom.terms[col];
  return t.is_const() ? t.value() : binding_->Get(t.var());
}

void MatchIterator::EnterLevel(size_t depth) {
  Level& level = levels_[depth];
  ++stats_.levels_entered;
  level.index_rows = nullptr;
  level.src_cursor = 0;
  level.src_end = 0;
  level.lookup_row = -1;
  level.lookup_pending = false;
  level.batch.clear();
  level.batch_cursor = 0;
  level.batch_cap = 0;
  level.emitted = false;
  // Bound-variable values are fixed for as long as this level is active
  // (deeper levels only produce vars unbound here), so cache the pointers
  // once per entry instead of consulting the binding per candidate row.
  for (FilterOp& op : level.ops) {
    if (op.kind == FilterOp::Kind::kBoundVar) {
      op.value = &binding_->Get(op.var);
    }
  }
  const LevelPlan& lp = *level.plan;
  if (lp.fully_bound) {
    // Exact-tuple point lookup: every column has a value in hand.
    static thread_local std::vector<const Value*> cells;
    cells.clear();
    for (const FilterOp& op : level.ops) cells.push_back(op.value);
    ++stats_.point_lookups;
    level.lookup_row =
        instance_.FindRowRef(level.atom.relation, cells).value_or(-1);
    level.lookup_pending = true;
    return;
  }
  if (!options_.use_indexes || lp.scan_instead || lp.probes.empty()) {
    level.src_end = instance_.NumTuples(level.atom.relation);
    return;
  }
  // Probe budget: take the cheapest expected column first, then keep
  // probing only while a shorter posting list is expected to save more
  // candidate scans than the next probe costs. Posting lists are ascending
  // by row id, so the choice changes how many candidates get scanned but
  // not the order matches are produced in.
  const CostModel& model = *options_.cost_model;
  const std::vector<int32_t>* best = nullptr;
  for (size_t k = 0; k < lp.probes.size(); ++k) {
    if (best != nullptr) {
      uint64_t have = best->size();
      uint64_t expect = lp.probes[k].expected_rows;
      if (have <= expect) break;  // no expected saving at all
      if ((have - expect) * model.scan_cost <= model.probe_cost) break;
    }
    const std::vector<int32_t>& rows =
        instance_.Probe(level.atom.relation, lp.probes[k].col,
                        ColumnValue(level, lp.probes[k].col));
    ++stats_.index_probes;
    if (best == nullptr || rows.size() < best->size()) best = &rows;
    if (best->empty()) break;
  }
  level.index_rows = best;
}

bool MatchIterator::RowSurvives(const Level& level, int32_t row) const {
  const Tuple& tuple = instance_.tuple(level.atom.relation, row);
  for (const FilterOp& op : level.ops) {
    switch (op.kind) {
      case FilterOp::Kind::kConst:
      case FilterOp::Kind::kBoundVar:
        if (!(tuple.at(op.col) == *op.value)) return false;
        break;
      case FilterOp::Kind::kProduce:
        break;
      case FilterOp::Kind::kDupProduce:
        if (!(tuple.at(op.col) == tuple.at(op.first_col))) return false;
        break;
    }
  }
  return true;
}

void MatchIterator::EmitRow(Level& level, int32_t row) {
  const Tuple& tuple = instance_.tuple(level.atom.relation, row);
  for (const FilterOp& op : level.ops) {
    if (op.kind == FilterOp::Kind::kProduce) {
      binding_->Set(op.var, tuple.at(op.col));
    }
  }
  level.emitted = true;
}

void MatchIterator::UnbindLevel(Level& level) {
  if (!level.emitted) return;
  for (VarId v : level.produce_vars) binding_->Unset(v);
  level.emitted = false;
}

bool MatchIterator::RefillBatch(Level& level) {
  level.batch_cap = level.batch_cap == 0
                        ? 1
                        : std::min(level.batch_cap * kBatchGrowth,
                                   kBatchMaxCap);
  level.batch.clear();
  level.batch_cursor = 0;
  // Tight, binding-free filter loop: failed candidates never touch the
  // binding, unlike tuple-at-a-time's bind-then-unbind churn.
  if (level.index_rows != nullptr) {
    const std::vector<int32_t>& rows = *level.index_rows;
    while (level.batch.size() < level.batch_cap &&
           level.src_cursor < rows.size()) {
      int32_t row = rows[level.src_cursor++];
      ++stats_.tuples_scanned;
      if (RowSurvives(level, row)) level.batch.push_back(row);
    }
  } else {
    while (level.batch.size() < level.batch_cap &&
           level.src_cursor < level.src_end) {
      int32_t row = static_cast<int32_t>(level.src_cursor++);
      ++stats_.tuples_scanned;
      if (RowSurvives(level, row)) level.batch.push_back(row);
    }
  }
  return !level.batch.empty();
}

bool MatchIterator::AdvanceLevel(Level& level) {
  UnbindLevel(level);
  const LevelPlan& lp = *level.plan;
  if (lp.fully_bound) {
    if (!level.lookup_pending) return false;
    level.lookup_pending = false;
    if (level.lookup_row < 0) return false;
    ++stats_.tuples_scanned;
    EmitRow(level, level.lookup_row);
    return true;
  }
  if (options_.exec == ExecMode::kTupleAtATime) {
    while (true) {
      int32_t row;
      if (level.index_rows != nullptr) {
        if (level.src_cursor >= level.index_rows->size()) return false;
        row = (*level.index_rows)[level.src_cursor++];
      } else {
        if (level.src_cursor >= level.src_end) return false;
        row = static_cast<int32_t>(level.src_cursor++);
      }
      ++stats_.tuples_scanned;
      if (RowSurvives(level, row)) {
        EmitRow(level, row);
        return true;
      }
    }
  }
  // kBatch
  while (level.batch_cursor >= level.batch.size()) {
    bool source_left =
        level.index_rows != nullptr
            ? level.src_cursor < level.index_rows->size()
            : level.src_cursor < level.src_end;
    if (!source_left) return false;
    RefillBatch(level);
  }
  EmitRow(level, level.batch[level.batch_cursor++]);
  return true;
}

bool MatchIterator::Next() {
  if (done_) return false;
  if (levels_.empty()) {
    // An empty conjunction matches exactly once (with the initial binding).
    if (!started_) {
      started_ = true;
      return true;
    }
    done_ = true;
    return false;
  }
  size_t depth;
  if (!started_) {
    started_ = true;
    depth = 0;
    EnterLevel(depth);
  } else {
    depth = levels_.size() - 1;
  }
  while (true) {
    if (AdvanceLevel(levels_[depth])) {
      if (depth + 1 == levels_.size()) return true;
      ++depth;
      EnterLevel(depth);
    } else {
      if (depth == 0) {
        done_ = true;
        return false;
      }
      --depth;
    }
  }
}

std::vector<Binding> EvaluateAll(const Instance& instance,
                                 const std::vector<Atom>& atoms,
                                 const Binding& initial, EvalOptions options,
                                 EvalStats* stats) {
  std::vector<Binding> results;
  Binding binding = initial;
  MatchIterator it(instance, atoms, &binding, options);
  while (it.Next()) results.push_back(binding);
  if (stats != nullptr) *stats += it.stats();
  return results;
}

bool HasMatch(const Instance& instance, const std::vector<Atom>& atoms,
              const Binding& initial, EvalOptions options, EvalStats* stats,
              uint64_t plan_key) {
  Binding binding = initial;
  MatchIterator it(instance, atoms, &binding, options, plan_key);
  bool found = it.Next();
  if (stats != nullptr) *stats += it.stats();
  return found;
}

}  // namespace spider
