#include "query/evaluator.h"

#include <algorithm>
#include <limits>

#include "base/status.h"
#include "query/plan_cache.h"

namespace spider {

MatchIterator::MatchIterator(const Instance& instance, std::vector<Atom> atoms,
                             Binding* binding, EvalOptions options,
                             uint64_t plan_key)
    : instance_(instance), binding_(binding), options_(options) {
  SPIDER_CHECK(binding != nullptr, "MatchIterator requires a binding");
  for (const Atom& atom : atoms) {
    SPIDER_CHECK(atom.relation >= 0 &&
                     static_cast<size_t>(atom.relation) <
                         instance.NumRelations(),
                 "atom refers to a relation outside the instance's schema");
    SPIDER_CHECK(
        atom.terms.size() == instance.schema().relation(atom.relation).arity(),
        "atom arity mismatch for relation '" +
            instance.schema().relation(atom.relation).name() + "'");
    for (const Term& t : atom.terms) {
      if (t.is_var()) {
        SPIDER_CHECK(static_cast<size_t>(t.var()) < binding->size(),
                     "atom variable id " + std::to_string(t.var()) +
                         " out of range for binding of size " +
                         std::to_string(binding->size()));
      }
    }
  }
  PlanOrder(std::move(atoms), plan_key);
}

void MatchIterator::PlanOrder(std::vector<Atom> atoms, uint64_t plan_key) {
  levels_.reserve(atoms.size());
  std::vector<size_t> order;
  if (!options_.reorder_atoms) {
    order.resize(atoms.size());
    for (size_t i = 0; i < atoms.size(); ++i) order[i] = i;
  } else if (options_.plan_cache != nullptr && plan_key != kNoPlanKey) {
    order = options_.plan_cache->Get(
        plan_key, instance_, [&] { return ComputeOrder(atoms); }, &stats_);
  } else {
    order = ComputeOrder(atoms);
    ++stats_.plans_built;
  }
  for (size_t i : order) {
    Level level;
    level.atom = std::move(atoms[i]);
    levels_.push_back(std::move(level));
  }
}

std::vector<size_t> MatchIterator::ComputeOrder(
    const std::vector<Atom>& atoms) const {
  // Track which variables are available when an atom is considered: those
  // bound in the initial binding plus those produced by atoms already
  // ordered. Which *variables* the caller binds is part of the plan-cache
  // key contract; their values are never consulted.
  std::vector<bool> var_bound(binding_->size(), false);
  for (size_t v = 0; v < binding_->size(); ++v) {
    var_bound[v] = binding_->IsBound(static_cast<VarId>(v));
  }
  auto bound_positions = [&](const Atom& atom) {
    size_t bound = 0;
    for (const Term& t : atom.terms) {
      if (t.is_const() || var_bound[t.var()]) ++bound;
    }
    return bound;
  };
  const bool selectivity = options_.use_indexes &&
                           options_.planner == PlannerMode::kSelectivity;
  std::vector<size_t> order;
  order.reserve(atoms.size());
  std::vector<bool> used(atoms.size(), false);
  for (size_t picked = 0; picked < atoms.size(); ++picked) {
    int best = -1;
    double best_est = std::numeric_limits<double>::infinity();
    size_t best_bound = 0;
    size_t best_card = 0;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      size_t bound = bound_positions(atoms[i]);
      size_t card = instance_.NumTuples(atoms[i].relation);
      if (selectivity) {
        // Cheapest estimated output first; ties fall back to the
        // bound-count criteria, then to the original atom position.
        double est = EstimateCardinality(atoms[i], var_bound);
        if (best < 0 || est < best_est ||
            (est == best_est &&
             (bound > best_bound ||
              (bound == best_bound && card < best_card)))) {
          best = static_cast<int>(i);
          best_est = est;
          best_bound = bound;
          best_card = card;
        }
      } else {
        if (best < 0 || bound > best_bound ||
            (bound == best_bound && card < best_card)) {
          best = static_cast<int>(i);
          best_bound = bound;
          best_card = card;
        }
      }
    }
    used[best] = true;
    for (const Term& t : atoms[best].terms) {
      if (t.is_var()) var_bound[t.var()] = true;
    }
    order.push_back(static_cast<size_t>(best));
  }
  return order;
}

double MatchIterator::EstimateCardinality(
    const Atom& atom, const std::vector<bool>& var_bound) const {
  const double n = static_cast<double>(instance_.NumTuples(atom.relation));
  if (n == 0) return 0.0;
  double est = n;
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const Term& t = atom.terms[col];
    if (t.is_const()) {
      // Exact: the posting list for this constant is what a probe would scan.
      est *= static_cast<double>(instance_.PostingListSize(
                 atom.relation, static_cast<int>(col), t.value())) /
             n;
    } else if (var_bound[t.var()]) {
      // The value is unknown at plan time (and must stay unconsulted for
      // cache-key validity); assume uniform: n / distinct rows match.
      size_t distinct =
          instance_.NumDistinct(atom.relation, static_cast<int>(col));
      if (distinct > 0) est *= 1.0 / static_cast<double>(distinct);
    }
  }
  return est;
}

void MatchIterator::EnterLevel(size_t depth) {
  Level& level = levels_[depth];
  level.cursor = 0;
  level.bound_here.clear();
  level.entered = true;
  level.index_rows = nullptr;
  ++stats_.levels_entered;
  if (!options_.use_indexes) return;
  const bool pick_smallest = options_.planner == PlannerMode::kSelectivity;
  // Probe bound positions: the seed behavior takes the first one; the
  // selectivity engine probes them all and scans the shortest posting list.
  // Posting lists are ascending by row id, so the choice changes how many
  // candidate rows get scanned but not the order matches are produced in.
  for (size_t col = 0; col < level.atom.terms.size(); ++col) {
    const Term& t = level.atom.terms[col];
    const Value* v = nullptr;
    if (t.is_const()) {
      v = &t.value();
    } else if (binding_->IsBound(t.var())) {
      v = &binding_->Get(t.var());
    } else {
      continue;
    }
    const std::vector<int32_t>& rows =
        instance_.Probe(level.atom.relation, static_cast<int>(col), *v);
    ++stats_.index_probes;
    if (level.index_rows == nullptr ||
        rows.size() < level.index_rows->size()) {
      level.index_rows = &rows;
    }
    if (!pick_smallest || level.index_rows->empty()) return;
  }
}

bool MatchIterator::TryRow(Level& level, int32_t row) {
  const Tuple& tuple = instance_.tuple(level.atom.relation, row);
  for (size_t col = 0; col < level.atom.terms.size(); ++col) {
    const Term& t = level.atom.terms[col];
    const Value& v = tuple.at(col);
    bool ok;
    if (t.is_const()) {
      ok = (t.value() == v);
    } else if (binding_->IsBound(t.var())) {
      ok = (binding_->Get(t.var()) == v);
    } else {
      binding_->Set(t.var(), v);
      level.bound_here.push_back(t.var());
      ok = true;
    }
    if (!ok) {
      UnbindLevel(level);
      return false;
    }
  }
  return true;
}

void MatchIterator::UnbindLevel(Level& level) {
  for (VarId v : level.bound_here) binding_->Unset(v);
  level.bound_here.clear();
}

bool MatchIterator::Next() {
  if (done_) return false;
  if (levels_.empty()) {
    // An empty conjunction matches exactly once (with the initial binding).
    if (!started_) {
      started_ = true;
      return true;
    }
    done_ = true;
    return false;
  }
  size_t depth;
  if (!started_) {
    started_ = true;
    depth = 0;
    EnterLevel(depth);
  } else {
    depth = levels_.size() - 1;
  }
  while (true) {
    Level& level = levels_[depth];
    UnbindLevel(level);
    bool found = false;
    while (true) {
      int32_t row;
      if (level.index_rows != nullptr) {
        if (level.cursor >= level.index_rows->size()) break;
        row = (*level.index_rows)[level.cursor++];
      } else {
        size_t n = instance_.NumTuples(level.atom.relation);
        if (level.cursor >= n) break;
        row = static_cast<int32_t>(level.cursor++);
      }
      ++stats_.tuples_scanned;
      if (TryRow(level, row)) {
        found = true;
        break;
      }
    }
    if (found) {
      if (depth + 1 == levels_.size()) return true;
      ++depth;
      EnterLevel(depth);
    } else {
      level.entered = false;
      if (depth == 0) {
        done_ = true;
        return false;
      }
      --depth;
    }
  }
}

std::vector<Binding> EvaluateAll(const Instance& instance,
                                 const std::vector<Atom>& atoms,
                                 const Binding& initial, EvalOptions options,
                                 EvalStats* stats) {
  std::vector<Binding> results;
  Binding binding = initial;
  MatchIterator it(instance, atoms, &binding, options);
  while (it.Next()) results.push_back(binding);
  if (stats != nullptr) *stats += it.stats();
  return results;
}

bool HasMatch(const Instance& instance, const std::vector<Atom>& atoms,
              const Binding& initial, EvalOptions options, EvalStats* stats,
              uint64_t plan_key) {
  Binding binding = initial;
  MatchIterator it(instance, atoms, &binding, options, plan_key);
  bool found = it.Next();
  if (stats != nullptr) *stats += it.stats();
  return found;
}

}  // namespace spider
