#include "query/evaluator.h"

#include <algorithm>

#include "base/status.h"

namespace spider {

MatchIterator::MatchIterator(const Instance& instance, std::vector<Atom> atoms,
                             Binding* binding, EvalOptions options)
    : instance_(instance), binding_(binding), options_(options) {
  SPIDER_CHECK(binding != nullptr, "MatchIterator requires a binding");
  for (const Atom& atom : atoms) {
    SPIDER_CHECK(atom.relation >= 0 &&
                     static_cast<size_t>(atom.relation) <
                         instance.NumRelations(),
                 "atom refers to a relation outside the instance's schema");
    SPIDER_CHECK(
        atom.terms.size() == instance.schema().relation(atom.relation).arity(),
        "atom arity mismatch for relation '" +
            instance.schema().relation(atom.relation).name() + "'");
  }
  PlanOrder(std::move(atoms));
}

void MatchIterator::PlanOrder(std::vector<Atom> atoms) {
  levels_.reserve(atoms.size());
  if (!options_.reorder_atoms) {
    for (Atom& atom : atoms) {
      Level level;
      level.atom = std::move(atom);
      levels_.push_back(std::move(level));
    }
    return;
  }
  // Greedy: repeatedly take the atom with the most bound positions (constants
  // plus variables bound so far), tie-broken by smaller relation.
  std::vector<bool> var_bound;
  auto is_bound = [&](const Term& t) {
    if (t.is_const()) return true;
    if (static_cast<size_t>(t.var()) < binding_->size() &&
        binding_->IsBound(t.var())) {
      return true;
    }
    return static_cast<size_t>(t.var()) < var_bound.size() &&
           var_bound[t.var()];
  };
  std::vector<bool> used(atoms.size(), false);
  for (size_t picked = 0; picked < atoms.size(); ++picked) {
    int best = -1;
    size_t best_bound = 0;
    size_t best_card = 0;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      size_t bound = 0;
      for (const Term& t : atoms[i].terms) {
        if (is_bound(t)) ++bound;
      }
      size_t card = instance_.NumTuples(atoms[i].relation);
      if (best < 0 || bound > best_bound ||
          (bound == best_bound && card < best_card)) {
        best = static_cast<int>(i);
        best_bound = bound;
        best_card = card;
      }
    }
    used[best] = true;
    for (const Term& t : atoms[best].terms) {
      if (t.is_var()) {
        if (static_cast<size_t>(t.var()) >= var_bound.size()) {
          var_bound.resize(t.var() + 1, false);
        }
        var_bound[t.var()] = true;
      }
    }
    Level level;
    level.atom = std::move(atoms[best]);
    levels_.push_back(std::move(level));
  }
}

void MatchIterator::EnterLevel(size_t depth) {
  Level& level = levels_[depth];
  level.cursor = 0;
  level.bound_here.clear();
  level.entered = true;
  level.index_rows = nullptr;
  if (!options_.use_indexes) return;
  // Probe on the first bound position, if any.
  for (size_t col = 0; col < level.atom.terms.size(); ++col) {
    const Term& t = level.atom.terms[col];
    if (t.is_const()) {
      level.index_rows =
          &instance_.Probe(level.atom.relation, static_cast<int>(col),
                           t.value());
      return;
    }
    if (binding_->IsBound(t.var())) {
      level.index_rows =
          &instance_.Probe(level.atom.relation, static_cast<int>(col),
                           binding_->Get(t.var()));
      return;
    }
  }
}

bool MatchIterator::TryRow(Level& level, int32_t row) {
  const Tuple& tuple = instance_.tuple(level.atom.relation, row);
  for (size_t col = 0; col < level.atom.terms.size(); ++col) {
    const Term& t = level.atom.terms[col];
    const Value& v = tuple.at(col);
    bool ok;
    if (t.is_const()) {
      ok = (t.value() == v);
    } else if (binding_->IsBound(t.var())) {
      ok = (binding_->Get(t.var()) == v);
    } else {
      binding_->Set(t.var(), v);
      level.bound_here.push_back(t.var());
      ok = true;
    }
    if (!ok) {
      UnbindLevel(level);
      return false;
    }
  }
  return true;
}

void MatchIterator::UnbindLevel(Level& level) {
  for (VarId v : level.bound_here) binding_->Unset(v);
  level.bound_here.clear();
}

bool MatchIterator::Next() {
  if (done_) return false;
  if (levels_.empty()) {
    // An empty conjunction matches exactly once (with the initial binding).
    if (!started_) {
      started_ = true;
      return true;
    }
    done_ = true;
    return false;
  }
  size_t depth;
  if (!started_) {
    started_ = true;
    depth = 0;
    EnterLevel(depth);
  } else {
    depth = levels_.size() - 1;
  }
  while (true) {
    Level& level = levels_[depth];
    UnbindLevel(level);
    bool found = false;
    while (true) {
      int32_t row;
      if (level.index_rows != nullptr) {
        if (level.cursor >= level.index_rows->size()) break;
        row = (*level.index_rows)[level.cursor++];
      } else {
        size_t n = instance_.NumTuples(level.atom.relation);
        if (level.cursor >= n) break;
        row = static_cast<int32_t>(level.cursor++);
      }
      ++tuples_scanned_;
      if (TryRow(level, row)) {
        found = true;
        break;
      }
    }
    if (found) {
      if (depth + 1 == levels_.size()) return true;
      ++depth;
      EnterLevel(depth);
    } else {
      level.entered = false;
      if (depth == 0) {
        done_ = true;
        return false;
      }
      --depth;
    }
  }
}

std::vector<Binding> EvaluateAll(const Instance& instance,
                                 const std::vector<Atom>& atoms,
                                 const Binding& initial, EvalOptions options) {
  std::vector<Binding> results;
  Binding binding = initial;
  MatchIterator it(instance, atoms, &binding, options);
  while (it.Next()) results.push_back(binding);
  return results;
}

bool HasMatch(const Instance& instance, const std::vector<Atom>& atoms,
              const Binding& initial, EvalOptions options) {
  Binding binding = initial;
  MatchIterator it(instance, atoms, &binding, options);
  return it.Next();
}

}  // namespace spider
