#ifndef SPIDER_QUERY_EVALUATOR_H_
#define SPIDER_QUERY_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "query/binding.h"
#include "query/term.h"
#include "storage/instance.h"

namespace spider {

/// Evaluation knobs. The defaults model the paper's relational setting (DB2:
/// index-backed, join-reordering, cursor-based fetching). Turning
/// `reorder_atoms` off models the paper's XML setting, where the free Saxon
/// XSLT engine "does not perform join reordering and simply implements all
/// for-each clauses as nested loops". Both knobs are exercised by the
/// ablation benches.
struct EvalOptions {
  bool use_indexes = true;
  bool reorder_atoms = true;
};

/// Pull-based evaluator for a conjunction of atoms over a single Instance,
/// starting from a partial Binding (bound variables act as selections, the
/// way findHom pushes partially instantiated tgd sides to the database).
///
/// Usage:
///   Binding b(num_vars);            // possibly partially bound
///   MatchIterator it(instance, atoms, &b, opts);
///   while (it.Next()) { ...read b...; }
///
/// After a successful Next() the binding holds a total match of the atoms'
/// variables (variables not mentioned in the atoms keep their prior state);
/// when Next() returns false the binding is restored to its initial state.
/// The instance must not be mutated while iteration is in progress.
class MatchIterator {
 public:
  MatchIterator(const Instance& instance, std::vector<Atom> atoms,
                Binding* binding, EvalOptions options = {});

  MatchIterator(const MatchIterator&) = delete;
  MatchIterator& operator=(const MatchIterator&) = delete;

  /// Advances to the next match. Returns false when exhausted.
  bool Next();

  /// Number of candidate tuples inspected so far (for tests/benchmarks).
  uint64_t tuples_scanned() const { return tuples_scanned_; }

 private:
  struct Level {
    Atom atom;
    // Candidate rows: either an index posting list or a full scan.
    const std::vector<int32_t>* index_rows = nullptr;  // null => scan
    size_t cursor = 0;
    std::vector<VarId> bound_here;
    bool entered = false;
  };

  /// Orders atoms greedily: most-bound atom first (given variables bound so
  /// far), tie-broken by smaller relation cardinality.
  void PlanOrder(std::vector<Atom> atoms);

  void EnterLevel(size_t depth);
  bool TryRow(Level& level, int32_t row);
  void UnbindLevel(Level& level);

  const Instance& instance_;
  Binding* binding_;
  EvalOptions options_;
  std::vector<Level> levels_;
  // Current depth in the backtracking search; -1 before start.
  int64_t depth_ = 0;
  bool started_ = false;
  bool done_ = false;
  uint64_t tuples_scanned_ = 0;
};

/// Convenience: materializes all matches (used for eager "XML mode" and in
/// tests). Each returned Binding is the state after a successful Next().
std::vector<Binding> EvaluateAll(const Instance& instance,
                                 const std::vector<Atom>& atoms,
                                 const Binding& initial,
                                 EvalOptions options = {});

/// True when the atoms have at least one match.
bool HasMatch(const Instance& instance, const std::vector<Atom>& atoms,
              const Binding& initial, EvalOptions options = {});

}  // namespace spider

#endif  // SPIDER_QUERY_EVALUATOR_H_
