#ifndef SPIDER_QUERY_EVALUATOR_H_
#define SPIDER_QUERY_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "query/binding.h"
#include "query/cost_model.h"
#include "query/eval_stats.h"
#include "query/query_plan.h"
#include "query/term.h"
#include "storage/instance.h"

namespace spider {

class PlanCache;

/// Join-planning strategy for MatchIterator when reordering is enabled.
enum class PlannerMode {
  /// The seed planner: greedily take the atom with the most bound positions,
  /// tie-broken by smaller relation, and probe the first bound column.
  kBoundCount,
  /// Cost-based: price each candidate atom with the probe-aware CostModel
  /// (integer units: probes, point lookups, candidate scans, plus the
  /// estimated output cardinality in 48.16 fixed point) and take the
  /// cheapest next. Per level, probe columns are ordered cheapest expected
  /// posting list first and the runtime stops probing as soon as another
  /// probe cannot pay for itself (see LevelPlan::probes).
  kSelectivity,
};

/// How MatchIterator drives each join level.
enum class ExecMode {
  /// Pull a small batch of surviving candidate row ids per level with a
  /// tight, binding-free filter loop, then emit them one by one. Same match
  /// sequence as kTupleAtATime, byte for byte — filtering never touches the
  /// binding, so failed candidates cost no Set/Unset churn.
  kBatch,
  /// The seed row-at-a-time loop: fetch a candidate, test it against the
  /// level's terms via the binding, backtrack on failure. Kept as the
  /// debug/reference mode the differential suite compares kBatch against.
  kTupleAtATime,
};

/// Evaluation knobs. The defaults model the paper's relational setting (DB2:
/// index-backed, join-reordering, cursor-based fetching). Turning
/// `reorder_atoms` off models the paper's XML setting, where the free Saxon
/// XSLT engine "does not perform join reordering and simply implements all
/// for-each clauses as nested loops". Both knobs are exercised by the
/// ablation benches; the planner modes by bench_planner.
struct EvalOptions {
  bool use_indexes = true;
  bool reorder_atoms = true;

  /// Which planner orders the atoms when `reorder_atoms` is set. With
  /// `use_indexes` off there are no posting-list statistics (and consulting
  /// them would lazily build indexes the "no index" engine model forbids),
  /// so kSelectivity degrades to the bound-count heuristic.
  PlannerMode planner = PlannerMode::kSelectivity;

  /// Batched (default) or row-at-a-time execution. Orthogonal to planning:
  /// both modes run the same plan and produce the same match sequence, so
  /// plan-cache entries are shared across exec modes.
  ExecMode exec = ExecMode::kBatch;

  /// Cost table for kSelectivity planning. Null means CostModel::Default()
  /// (the committed table) — the choice every engine makes, keeping plans
  /// identical across hosts. The model's fingerprint is part of the
  /// effective plan-cache key.
  const CostModel* cost_model = nullptr;

  /// Optional cross-iterator plan memo (owned by the driver — chase, route
  /// forest, one-route). Only engaged for MatchIterators constructed with a
  /// non-zero plan key; see PlanCache for the key contract.
  PlanCache* plan_cache = nullptr;
};

/// Pull-based evaluator for a conjunction of atoms over a single Instance,
/// starting from a partial Binding (bound variables act as selections, the
/// way findHom pushes partially instantiated tgd sides to the database).
///
/// Usage:
///   Binding b(num_vars);            // possibly partially bound
///   MatchIterator it(instance, atoms, &b, opts);
///   while (it.Next()) { ...read b...; }
///
/// After a successful Next() the binding holds a total match of the atoms'
/// variables (variables not mentioned in the atoms keep their prior state);
/// when Next() returns false the binding is restored to its initial state.
/// Every variable mentioned by the atoms must fit the binding — ids out of
/// range fail a SPIDER_CHECK at construction. The instance must not be
/// mutated while iteration is in progress.
///
/// Match enumeration order depends on the atom order the planner picks (and
/// is deterministic for fixed options), but not on which bound column a
/// level probes or on the exec mode: posting lists, scans, and batch fills
/// all visit rows in ascending row order, so the per-level match sequence is
/// access-path- and batching-invariant. The binding multiset is identical
/// across all option combinations.
///
/// Fully-bound conjunctions (every term a constant or an initially-bound
/// variable — the shape of the chase's RHS containment checks) skip
/// planning: each atom is checked with one exact-tuple point lookup in the
/// caller's ORIGINAL atom order, for every planner mode. That makes the
/// work counters of such queries planner-invariant by construction — the
/// invariant the differential oracle checks.
class MatchIterator {
 public:
  /// No plan-cache participation (the default for ad-hoc queries).
  static constexpr uint64_t kNoPlanKey = 0;

  /// `plan_key` identifies this (atom list, bound-variable signature) shape
  /// in `options.plan_cache`; pass kNoPlanKey (or leave the cache null) to
  /// plan privately.
  MatchIterator(const Instance& instance, std::vector<Atom> atoms,
                Binding* binding, EvalOptions options = {},
                uint64_t plan_key = kNoPlanKey);

  MatchIterator(const MatchIterator&) = delete;
  MatchIterator& operator=(const MatchIterator&) = delete;

  /// Advances to the next match. Returns false when exhausted.
  bool Next();

  /// Number of candidate tuples inspected so far (for tests/benchmarks).
  uint64_t tuples_scanned() const { return stats_.tuples_scanned; }

  /// All evaluator counters accumulated by this iterator.
  const EvalStats& stats() const { return stats_; }

  /// The plan this iterator runs (for tests; stable for the iterator's
  /// lifetime).
  const QueryPlan& plan() const { return *plan_; }

 private:
  /// One step of the per-level filter program, compiled once per level from
  /// the atom's terms and the plan-time bound-variable signature.
  struct FilterOp {
    enum class Kind : uint8_t {
      kConst,       ///< column must equal a query constant
      kBoundVar,    ///< column must equal an already-bound variable's value
      kProduce,     ///< column produces a new variable binding (no test)
      kDupProduce,  ///< repeated new variable: column must equal first_col
    };
    Kind kind;
    int col = 0;
    VarId var = 0;       ///< kBoundVar/kProduce: the variable
    int first_col = 0;   ///< kDupProduce: producing column
    const Value* value = nullptr;  ///< kConst: borrowed from the atom's term;
                                   ///< kBoundVar: refreshed at EnterLevel
  };

  struct Level {
    Atom atom;
    const LevelPlan* plan = nullptr;  ///< owned by plan_
    std::vector<FilterOp> ops;
    /// Variables this level produces (ops of kind kProduce), for unbinding.
    std::vector<VarId> produce_vars;

    // --- runtime state, reset by EnterLevel ---
    /// Candidate rows: an index posting list, or null for a positional scan.
    const std::vector<int32_t>* index_rows = nullptr;
    size_t src_cursor = 0;  ///< next candidate (posting index or row id)
    size_t src_end = 0;     ///< scan bound (NumTuples) when index_rows null
    /// Point-lookup levels: the matching row (or -1) and whether it is
    /// still unconsumed.
    int32_t lookup_row = -1;
    bool lookup_pending = false;
    /// kBatch: surviving row ids awaiting emission.
    std::vector<int32_t> batch;
    size_t batch_cursor = 0;
    uint32_t batch_cap = 0;
    /// True while the level's produce_vars are set in the binding.
    bool emitted = false;
  };

  /// Plans (via the cache when engaged) and builds the levels.
  void PlanOrder(std::vector<Atom> atoms, uint64_t plan_key);

  /// Computes the full plan: atom order plus per-level access paths.
  /// Value-independent: consults only per-column statistics and constants,
  /// never the values currently bound (see PlanCache for why).
  QueryPlan ComputePlan(const std::vector<Atom>& atoms) const;

  /// Probe-aware estimate of evaluating `atom` next, given which variables
  /// are bound (kSelectivity only; requires use_indexes).
  AtomEstimate EstimateAtom(const Atom& atom,
                            const std::vector<bool>& var_bound) const;

  /// Builds the access-path decisions for one level of the chosen order.
  LevelPlan PlanLevel(const Atom& atom,
                      const std::vector<bool>& var_bound) const;

  /// Compiles the per-level filter program for `level` (terms classified
  /// against the construction-time bound-variable signature).
  void CompileLevel(Level* level, std::vector<bool>* var_bound);

  void EnterLevel(size_t depth);
  /// Resolves the value a probe/lookup of `level`'s column `col` uses (the
  /// term is a constant or a bound variable).
  const Value& ColumnValue(const Level& level, int col) const;
  /// Unbinds the level's produced variables (if emitted) and advances to the
  /// level's next matching row, binding its produced variables. False when
  /// the level is exhausted.
  bool AdvanceLevel(Level& level);
  /// True when `row` satisfies the level's constant/bound/dup tests (no
  /// binding reads or writes beyond the cached op values).
  bool RowSurvives(const Level& level, int32_t row) const;
  /// Binds the level's produced variables from `row`.
  void EmitRow(Level& level, int32_t row);
  void UnbindLevel(Level& level);
  /// kBatch: refills the level's batch with surviving candidates. False when
  /// the source is exhausted and nothing survived.
  bool RefillBatch(Level& level);

  const Instance& instance_;
  Binding* binding_;
  EvalOptions options_;
  std::shared_ptr<const QueryPlan> plan_;
  std::vector<Level> levels_;
  bool started_ = false;
  bool done_ = false;
  EvalStats stats_;
};

/// Convenience: materializes all matches (used for eager "XML mode" and in
/// tests). Each returned Binding is the state after a successful Next().
/// When `stats` is non-null the iterator's counters are added to it.
std::vector<Binding> EvaluateAll(const Instance& instance,
                                 const std::vector<Atom>& atoms,
                                 const Binding& initial,
                                 EvalOptions options = {},
                                 EvalStats* stats = nullptr);

/// True when the atoms have at least one match.
bool HasMatch(const Instance& instance, const std::vector<Atom>& atoms,
              const Binding& initial, EvalOptions options = {},
              EvalStats* stats = nullptr,
              uint64_t plan_key = MatchIterator::kNoPlanKey);

}  // namespace spider

#endif  // SPIDER_QUERY_EVALUATOR_H_
