#ifndef SPIDER_QUERY_EVALUATOR_H_
#define SPIDER_QUERY_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "query/binding.h"
#include "query/eval_stats.h"
#include "query/term.h"
#include "storage/instance.h"

namespace spider {

class PlanCache;

/// Join-planning strategy for MatchIterator when reordering is enabled.
enum class PlannerMode {
  /// The seed planner: greedily take the atom with the most bound positions,
  /// tie-broken by smaller relation, and probe the first bound column.
  kBoundCount,
  /// Cost-based: estimate per-atom output cardinality from actual index
  /// posting-list statistics (exact posting lengths for constants, relation
  /// size over distinct-count for bound variables), take the cheapest atom
  /// next, and probe the bound column with the smallest posting list.
  kSelectivity,
};

/// Evaluation knobs. The defaults model the paper's relational setting (DB2:
/// index-backed, join-reordering, cursor-based fetching). Turning
/// `reorder_atoms` off models the paper's XML setting, where the free Saxon
/// XSLT engine "does not perform join reordering and simply implements all
/// for-each clauses as nested loops". Both knobs are exercised by the
/// ablation benches; the planner modes by bench_planner.
struct EvalOptions {
  bool use_indexes = true;
  bool reorder_atoms = true;

  /// Which planner orders the atoms when `reorder_atoms` is set. With
  /// `use_indexes` off there are no posting-list statistics (and consulting
  /// them would lazily build indexes the "no index" engine model forbids),
  /// so kSelectivity degrades to the bound-count heuristic.
  PlannerMode planner = PlannerMode::kSelectivity;

  /// Optional cross-iterator plan memo (owned by the driver — chase, route
  /// forest, one-route). Only engaged for MatchIterators constructed with a
  /// non-zero plan key; see PlanCache for the key contract.
  PlanCache* plan_cache = nullptr;
};

/// Pull-based evaluator for a conjunction of atoms over a single Instance,
/// starting from a partial Binding (bound variables act as selections, the
/// way findHom pushes partially instantiated tgd sides to the database).
///
/// Usage:
///   Binding b(num_vars);            // possibly partially bound
///   MatchIterator it(instance, atoms, &b, opts);
///   while (it.Next()) { ...read b...; }
///
/// After a successful Next() the binding holds a total match of the atoms'
/// variables (variables not mentioned in the atoms keep their prior state);
/// when Next() returns false the binding is restored to its initial state.
/// Every variable mentioned by the atoms must fit the binding — ids out of
/// range fail a SPIDER_CHECK at construction. The instance must not be
/// mutated while iteration is in progress.
///
/// Match enumeration order depends on the atom order the planner picks (and
/// is deterministic for fixed options), but not on which bound column a
/// level probes: posting lists and scans both visit rows in ascending row
/// order, so the per-level match sequence is probe-invariant. The binding
/// multiset is identical across all option combinations.
class MatchIterator {
 public:
  /// No plan-cache participation (the default for ad-hoc queries).
  static constexpr uint64_t kNoPlanKey = 0;

  /// `plan_key` identifies this (atom list, bound-variable signature) shape
  /// in `options.plan_cache`; pass kNoPlanKey (or leave the cache null) to
  /// plan privately.
  MatchIterator(const Instance& instance, std::vector<Atom> atoms,
                Binding* binding, EvalOptions options = {},
                uint64_t plan_key = kNoPlanKey);

  MatchIterator(const MatchIterator&) = delete;
  MatchIterator& operator=(const MatchIterator&) = delete;

  /// Advances to the next match. Returns false when exhausted.
  bool Next();

  /// Number of candidate tuples inspected so far (for tests/benchmarks).
  uint64_t tuples_scanned() const { return stats_.tuples_scanned; }

  /// All evaluator counters accumulated by this iterator.
  const EvalStats& stats() const { return stats_; }

 private:
  struct Level {
    Atom atom;
    // Candidate rows: either an index posting list or a full scan.
    const std::vector<int32_t>* index_rows = nullptr;  // null => scan
    size_t cursor = 0;
    std::vector<VarId> bound_here;
    bool entered = false;
  };

  /// Orders the atoms (via the cache when engaged) and builds the levels.
  void PlanOrder(std::vector<Atom> atoms, uint64_t plan_key);

  /// Computes the evaluation order as a permutation of atom indexes.
  /// Value-independent: consults only per-column statistics and constants,
  /// never the values currently bound (see PlanCache for why).
  std::vector<size_t> ComputeOrder(const std::vector<Atom>& atoms) const;

  /// Estimated output cardinality of `atom` given the bound-variable set
  /// (kSelectivity only; requires use_indexes).
  double EstimateCardinality(const Atom& atom,
                             const std::vector<bool>& var_bound) const;

  void EnterLevel(size_t depth);
  bool TryRow(Level& level, int32_t row);
  void UnbindLevel(Level& level);

  const Instance& instance_;
  Binding* binding_;
  EvalOptions options_;
  std::vector<Level> levels_;
  bool started_ = false;
  bool done_ = false;
  EvalStats stats_;
};

/// Convenience: materializes all matches (used for eager "XML mode" and in
/// tests). Each returned Binding is the state after a successful Next().
/// When `stats` is non-null the iterator's counters are added to it.
std::vector<Binding> EvaluateAll(const Instance& instance,
                                 const std::vector<Atom>& atoms,
                                 const Binding& initial,
                                 EvalOptions options = {},
                                 EvalStats* stats = nullptr);

/// True when the atoms have at least one match.
bool HasMatch(const Instance& instance, const std::vector<Atom>& atoms,
              const Binding& initial, EvalOptions options = {},
              EvalStats* stats = nullptr,
              uint64_t plan_key = MatchIterator::kNoPlanKey);

}  // namespace spider

#endif  // SPIDER_QUERY_EVALUATOR_H_
