#include "query/plan_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "storage/instance.h"

namespace spider {

size_t PlanCache::EntryBytes(const Entry& entry) {
  // Map node + key + Entry struct + control block + the plan's heap blocks.
  return 128 + (entry.plan != nullptr ? entry.plan->ApproxBytes() : 0);
}

std::shared_ptr<const QueryPlan> PlanCache::Get(
    uint64_t key, const Instance& instance,
    const std::function<QueryPlan()>& plan, EvalStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  MapKey map_key{key, &instance};
  auto it = entries_.find(map_key);
  if (it != entries_.end() && it->second.version == instance.version()) {
    if (stats != nullptr) ++stats->plan_cache_hits;
    if (max_bytes_ > 0 && it->second.lru != lru_.begin()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
    }
    return it->second.plan;
  }
  if (it == entries_.end()) {
    it = entries_.emplace(map_key, Entry{}).first;
    if (max_bytes_ > 0) {
      lru_.push_front(map_key);
      it->second.lru = lru_.begin();
    }
  } else {
    bytes_ -= EntryBytes(it->second);
    if (max_bytes_ > 0 && it->second.lru != lru_.begin()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
    }
  }
  it->second.version = instance.version();
  it->second.plan = std::make_shared<const QueryPlan>(plan());
  bytes_ += EntryBytes(it->second);
  if (stats != nullptr) ++stats->plans_built;
  if (max_bytes_ > 0) EvictLocked();
  return it->second.plan;
}

void PlanCache::EvictLocked() {
  uint64_t evicted = 0;
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    auto victim = entries_.find(lru_.back());
    bytes_ -= EntryBytes(victim->second);
    entries_.erase(victim);
    lru_.pop_back();
    ++evicted;
  }
  if (evicted > 0) {
    evictions_ += evicted;
    if (obs::MetricsEnabled()) {
      obs::Registry& registry = obs::Registry::Global();
      registry.GetCounter("query.plan_cache.evictions")->Add(evicted);
      registry.GetGauge("query.plan_cache.bytes")
          ->Set(static_cast<int64_t>(bytes_));
    }
  }
}

void PlanCache::Forget(const Instance* instance) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.instance == instance) {
      bytes_ -= EntryBytes(it->second);
      if (max_bytes_ > 0) lru_.erase(it->second.lru);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t PlanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace spider
