#include "query/plan_cache.h"

#include "storage/instance.h"

namespace spider {

std::vector<size_t> PlanCache::Get(
    uint64_t key, const Instance& instance,
    const std::function<std::vector<size_t>()>& plan, EvalStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[key];
  if (entry.instance == &instance && entry.version == instance.version()) {
    if (stats != nullptr) ++stats->plan_cache_hits;
    return entry.order;
  }
  entry.instance = &instance;
  entry.version = instance.version();
  entry.order = plan();
  if (stats != nullptr) ++stats->plans_built;
  return entry.order;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace spider
