#ifndef SPIDER_QUERY_PLAN_CACHE_H_
#define SPIDER_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "query/eval_stats.h"

namespace spider {

class Instance;

/// Disjoint key families for plan-cache keys. Each caller that shares a
/// PlanCache picks keys from its own family so two query shapes never
/// collide: findHom's LHS/RHS selections (per tgd and probed-atom index),
/// the chase's trigger enumeration and RHS containment check (per tgd), and
/// the egd chase's LHS enumeration (per egd).
enum class PlanKeyFamily : uint64_t {
  kFindHomLhs = 1,
  kFindHomRhs = 2,
  kChaseTrigger = 3,
  kChaseRhsCheck = 4,
  kChaseEgd = 5,
  /// spider::incremental — semi-naive trigger enumeration scoped to one
  /// delta-bound LHS atom (the key's `atom` slot is the bound atom index;
  /// the remaining atoms form the planned conjunction).
  kDeltaTrigger = 6,
  /// spider::incremental — backward re-fire matching: LHS enumeration after
  /// binding one RHS atom against a deleted fact.
  kDeltaRefire = 7,
  /// spider::incremental — egd LHS enumeration scoped to one dirty-bound
  /// atom.
  kDeltaEgd = 8,
};

/// Packs (family, dependency id, atom index) into a nonzero cache key.
/// `dep` is a TgdId/EgdId (families keep the two id spaces apart), `atom`
/// the probed RHS atom index for findHom keys (it determines the set of
/// initially-bound variables, which the plan depends on).
constexpr uint64_t MakePlanKey(PlanKeyFamily family, uint64_t dep,
                               uint64_t atom = 0) {
  return ((dep + 1) << 24) | ((atom & 0xffff) << 8) |
         static_cast<uint64_t>(family);
}

/// Memoizes join orders across MatchIterator instantiations. findHom plans
/// the same premise once per (dependency, RHS atom) — every later probe of
/// the same shape reuses the order instead of re-planning, which matters
/// because ComputeOneRoute/ComputeAllRoutes issue one findHom call per fact.
///
/// Keys are caller-chosen 64-bit ids that must encode everything the plan
/// depends on besides the instance: the atom list and the bound-variable
/// signature (for findHom: tgd id, side, and RHS atom index — the set of
/// v1-bound variables is a function of those). Entries additionally record
/// the instance pointer and its version, so a plan computed against a target
/// that has since been chased further is transparently re-planned. Plans must
/// be value-independent (the selectivity planner only consults per-column
/// statistics and constants, never the values currently bound), so a cached
/// order is correct — and deterministic — for every probe sharing the key.
///
/// Thread-safe: route-forest waves share one cache across exec workers.
/// Planning happens under the lock, so each (key, instance, version) is
/// planned exactly once regardless of scheduling — keeping plans_built /
/// plan_cache_hits totals byte-identical at every thread count.
class PlanCache {
 public:
  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached atom order for `key` against `instance`, planning
  /// via `plan` (and storing the result) on miss or version mismatch.
  /// Charges plans_built or plan_cache_hits to `stats` when non-null.
  std::vector<size_t> Get(uint64_t key, const Instance& instance,
                          const std::function<std::vector<size_t>()>& plan,
                          EvalStats* stats);

  size_t size() const;

 private:
  struct Entry {
    const Instance* instance = nullptr;
    uint64_t version = 0;
    std::vector<size_t> order;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
};

}  // namespace spider

#endif  // SPIDER_QUERY_PLAN_CACHE_H_
