#ifndef SPIDER_QUERY_PLAN_CACHE_H_
#define SPIDER_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "query/eval_stats.h"
#include "query/query_plan.h"

namespace spider {

class Instance;

/// Disjoint key families for plan-cache keys. Each caller that shares a
/// PlanCache picks keys from its own family so two query shapes never
/// collide: findHom's LHS/RHS selections (per tgd and probed-atom index),
/// the chase's trigger enumeration and RHS containment check (per tgd), and
/// the egd chase's LHS enumeration (per egd).
enum class PlanKeyFamily : uint64_t {
  kFindHomLhs = 1,
  kFindHomRhs = 2,
  kChaseTrigger = 3,
  kChaseRhsCheck = 4,
  kChaseEgd = 5,
  /// spider::incremental — semi-naive trigger enumeration scoped to one
  /// delta-bound LHS atom (the key's `atom` slot is the bound atom index;
  /// the remaining atoms form the planned conjunction).
  kDeltaTrigger = 6,
  /// spider::incremental — backward re-fire matching: LHS enumeration after
  /// binding one RHS atom against a deleted fact.
  kDeltaRefire = 7,
  /// spider::incremental — egd LHS enumeration scoped to one dirty-bound
  /// atom.
  kDeltaEgd = 8,
};

/// Packs (family, dependency id, atom index) into a nonzero cache key.
/// `dep` is a TgdId/EgdId (families keep the two id spaces apart), `atom`
/// the probed RHS atom index for findHom keys (it determines the set of
/// initially-bound variables, which the plan depends on).
constexpr uint64_t MakePlanKey(PlanKeyFamily family, uint64_t dep,
                               uint64_t atom = 0) {
  return ((dep + 1) << 24) | ((atom & 0xffff) << 8) |
         static_cast<uint64_t>(family);
}

/// Memoizes query plans (atom order + per-level access paths) across
/// MatchIterator instantiations. findHom plans the same premise once per
/// (dependency, RHS atom) — every later probe of the same shape reuses the
/// plan instead of re-planning, which matters because
/// ComputeOneRoute/ComputeAllRoutes issue one findHom call per fact.
///
/// Keys are caller-chosen 64-bit ids that must encode everything the plan
/// depends on besides the instance and the evaluation options: the atom list
/// and the bound-variable signature (for findHom: tgd id, side, and RHS atom
/// index — the set of v1-bound variables is a function of those). The
/// evaluator mixes its own option fingerprint — planner mode, index use,
/// reordering, and the cost model's version + constants — into the effective
/// key before calling Get, so two iterators sharing a caller key but planned
/// under different options or cost tables can never alias each other's
/// entries. Entries are additionally
/// keyed by the instance pointer and record its version, so a plan computed
/// against a target that has since been chased further is transparently
/// re-planned — and several sessions debugging *different* scenarios can
/// share one cache without thrashing each other's entries (spider::serve
/// hands every DebugSession the same process-wide cache). Plans must be
/// value-independent (the selectivity planner only consults per-column
/// statistics and constants, never the values currently bound), so a cached
/// order is correct — and deterministic — for every probe sharing the key.
///
/// Bounded mode: constructed with a nonzero byte budget the cache becomes an
/// LRU tier — every Get() refreshes the entry's recency, and inserts evict
/// the coldest entries until the (approximate, per-entry accounted) total
/// fits the budget again. Eviction only costs a re-plan, never correctness;
/// the "query.plan_cache.evictions" counter and ".bytes" gauge record the
/// churn. The default (budget 0) is unbounded, preserving the exactly-once
/// planning guarantee the engines' deterministic stats rely on.
///
/// Owners of bounded shared caches must call Forget(&instance) before an
/// instance dies: entries are keyed by pointer, and a later instance
/// allocated at the same address could otherwise inherit a stale plan.
///
/// Thread-safe: route-forest waves share one cache across exec workers.
/// Planning happens under the lock, so each (key, instance, version) is
/// planned exactly once regardless of scheduling — keeping plans_built /
/// plan_cache_hits totals byte-identical at every thread count (in
/// unbounded mode; eviction makes re-planning timing-dependent).
class PlanCache {
 public:
  PlanCache() = default;
  /// Bounded LRU mode; `max_bytes` = 0 is the unbounded default.
  explicit PlanCache(size_t max_bytes) : max_bytes_(max_bytes) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key` against `instance`, planning via
  /// `plan` (and storing the result) on miss or version mismatch. Charges
  /// plans_built or plan_cache_hits to `stats` when non-null. The returned
  /// pointer stays valid after eviction (shared ownership) — iterators keep
  /// using their plan even if the LRU tier drops the entry mid-flight.
  std::shared_ptr<const QueryPlan> Get(uint64_t key, const Instance& instance,
                                       const std::function<QueryPlan()>& plan,
                                       EvalStats* stats);

  /// Drops every entry keyed by `instance`. Sessions sharing a bounded
  /// cache call this as they destroy their instances.
  void Forget(const Instance* instance);

  size_t size() const;
  /// Approximate bytes held (entry overhead + atom orders); 0 when empty.
  size_t bytes() const;
  size_t max_bytes() const { return max_bytes_; }
  /// Entries evicted by the byte budget (never counts Forget()).
  uint64_t evictions() const;

 private:
  struct MapKey {
    uint64_t key = 0;
    const Instance* instance = nullptr;
    friend bool operator==(const MapKey&, const MapKey&) = default;
  };
  struct MapKeyHash {
    size_t operator()(const MapKey& k) const {
      return HashCombine(std::hash<uint64_t>{}(k.key),
                         std::hash<const void*>{}(k.instance));
    }
  };
  struct Entry {
    uint64_t version = 0;
    std::shared_ptr<const QueryPlan> plan;
    /// Position in lru_ (front = most recently used). Only maintained in
    /// bounded mode.
    std::list<MapKey>::iterator lru;
  };

  static size_t EntryBytes(const Entry& entry);
  /// Evicts coldest entries until bytes_ <= max_bytes_ (keeps at least the
  /// most recent entry). Caller holds mu_.
  void EvictLocked();

  mutable std::mutex mu_;
  size_t max_bytes_ = 0;
  size_t bytes_ = 0;
  uint64_t evictions_ = 0;
  std::list<MapKey> lru_;
  std::unordered_map<MapKey, Entry, MapKeyHash> entries_;
};

}  // namespace spider

#endif  // SPIDER_QUERY_PLAN_CACHE_H_
