#ifndef SPIDER_QUERY_QUERY_PLAN_H_
#define SPIDER_QUERY_QUERY_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spider {

/// One column the executor may probe when entering a level, with the
/// plan-time expected posting-list length (exact for constants, the
/// uniform-assumption estimate for bound variables). Value-independent:
/// computed from per-column statistics and the query's constants only, so
/// it is safe to cache alongside the atom order.
struct ProbeChoice {
  int col = 0;
  uint64_t expected_rows = 0;
};

/// Plan-time decisions for one join level (one atom in execution order).
struct LevelPlan {
  /// Candidate probe columns, cheapest expected posting list first. The
  /// runtime probes the first and continues down the list only while the
  /// modeled saving of a shorter list exceeds the cost of another probe
  /// (and never past the end — the probe budget is |probes| per entry).
  /// Empty means no bound column exists (full scan) or the planner decided
  /// scanning beats probing (see scan_instead).
  std::vector<ProbeChoice> probes;
  /// True when the relation is small enough that scanning it outright is
  /// modeled cheaper than the best probe (probe cost + expected candidates
  /// vs. whole-relation scan).
  bool scan_instead = false;
  /// True when every term of this level's atom is a constant or a variable
  /// already bound when the level is entered: the executor resolves the
  /// level with one exact-tuple point lookup instead of probe + scan.
  bool fully_bound = false;
};

/// A cached execution plan for one conjunction shape: the atom order plus
/// the per-level access-path decisions. Everything in here is
/// value-independent (see PlanCache for the key contract) and priced under
/// one specific CostModel — the model's fingerprint is mixed into the
/// effective cache key, so plans never outlive the constants that chose
/// them.
struct QueryPlan {
  /// Evaluation order as a permutation of the caller's atom indexes.
  std::vector<size_t> order;
  /// Per-level plans, parallel to `order` (levels[i] drives the atom at
  /// order[i]).
  std::vector<LevelPlan> levels;
  /// True when the whole conjunction is fully bound under the caller's
  /// initial binding signature: the executor checks each atom with a point
  /// lookup in the caller's original atom order, which makes the work
  /// counters (levels entered, probes, rows scanned) identical for every
  /// planner mode — the invariant the chase's RHS-containment checks rely
  /// on.
  bool point_lookup = false;

  /// Approximate heap bytes for the plan cache's budget accounting.
  size_t ApproxBytes() const {
    size_t bytes = order.size() * sizeof(size_t) +
                   levels.size() * sizeof(LevelPlan);
    for (const LevelPlan& level : levels) {
      bytes += level.probes.size() * sizeof(ProbeChoice);
    }
    return bytes;
  }
};

}  // namespace spider

#endif  // SPIDER_QUERY_QUERY_PLAN_H_
