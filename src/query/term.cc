#include "query/term.h"

#include <sstream>

namespace spider {

std::string AtomToString(const Atom& atom, const Schema& schema,
                         const std::vector<std::string>& var_names) {
  std::ostringstream os;
  os << schema.relation(atom.relation).name() << '(';
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) os << ", ";
    const Term& t = atom.terms[i];
    if (t.is_const()) {
      os << t.value();
    } else if (static_cast<size_t>(t.var()) < var_names.size()) {
      os << var_names[t.var()];
    } else {
      os << "?v" << t.var();
    }
  }
  os << ')';
  return os.str();
}

}  // namespace spider
