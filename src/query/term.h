#ifndef SPIDER_QUERY_TERM_H_
#define SPIDER_QUERY_TERM_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/value.h"
#include "catalog/schema.h"

namespace spider {

/// Index of a variable within the variable table of its enclosing formula
/// (dependency or query). Variables are scoped locally to that formula.
using VarId = int32_t;

/// One position of an atom: either a variable or a constant.
class Term {
 public:
  static Term Var(VarId v) {
    // A negative id would masquerade as a constant (is_var() keys on the
    // sign) and later index Binding slots out of range; reject it here.
    SPIDER_CHECK(v >= 0, "variable ids must be non-negative");
    return Term(v, Value());
  }
  static Term Const(Value v) { return Term(-1, std::move(v)); }

  bool is_var() const { return var_ >= 0; }
  bool is_const() const { return var_ < 0; }
  VarId var() const { return var_; }
  const Value& value() const { return value_; }

  friend bool operator==(const Term&, const Term&) = default;

 private:
  Term(VarId var, Value value) : var_(var), value_(std::move(value)) {}

  VarId var_;
  Value value_;
};

/// A relational atom R(t1, ..., tk) over some schema. Which schema (source
/// or target) is determined by the enclosing formula.
struct Atom {
  RelationId relation = kInvalidRelation;
  std::vector<Term> terms;

  friend bool operator==(const Atom&, const Atom&) = default;
};

/// Renders an atom using `schema` for the relation name and `var_names`
/// (indexed by VarId) for variables.
std::string AtomToString(const Atom& atom, const Schema& schema,
                         const std::vector<std::string>& var_names);

}  // namespace spider

#endif  // SPIDER_QUERY_TERM_H_
