#include "routes/alternatives.h"

#include <algorithm>
#include <sstream>

namespace spider {

RouteEnumerator::RouteEnumerator(const SchemaMapping& mapping,
                                 const Instance& source,
                                 const Instance& target,
                                 std::vector<FactRef> js,
                                 const RouteOptions& options)
    : forest_(mapping, source, target, js, options), js_(std::move(js)) {}

std::string RouteEnumerator::StepSetKey(const Route& route) {
  std::vector<SatStep> steps = route.steps();
  std::sort(steps.begin(), steps.end(), SatStepLess);
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());
  std::ostringstream os;
  for (const SatStep& step : steps) {
    os << step.tgd << '|';
    for (size_t v = 0; v < step.h.size(); ++v) {
      if (step.h.IsBound(static_cast<VarId>(v))) {
        os << step.h.Get(static_cast<VarId>(v)) << ',';
      } else {
        os << "_,";
      }
    }
    os << ';';
  }
  return os.str();
}

void RouteEnumerator::Refill() {
  // Enumerate with a growing cap against the (memoized) lazy forest until a
  // new distinct route shows up or the enumeration completes.
  while (!exhausted_ && buffer_.size() <= cursor_) {
    NaivePrintOptions opts;
    opts.max_routes = cap_;
    NaivePrintResult result = NaivePrint(&forest_, js_, opts);
    for (Route& route : result.routes) {
      if (seen_.insert(StepSetKey(route)).second) {
        buffer_.push_back(std::move(route));
      }
    }
    if (!result.truncated) {
      exhausted_ = true;
    } else if (cap_ >= (size_t{1} << 22)) {
      // Deduplication may collapse an astronomically large enumeration;
      // stop growing at ~4M raw routes.
      exhausted_ = true;
    } else {
      cap_ *= 4;
    }
  }
}

std::optional<Route> RouteEnumerator::Next() {
  if (cursor_ >= buffer_.size()) Refill();
  if (cursor_ >= buffer_.size()) return std::nullopt;
  return buffer_[cursor_++];
}

}  // namespace spider
