#ifndef SPIDER_ROUTES_ALTERNATIVES_H_
#define SPIDER_ROUTES_ALTERNATIVES_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "routes/naive_print.h"
#include "routes/route.h"
#include "routes/route_forest.h"

namespace spider {

/// Enumerates alternative routes for a set of selected target facts on
/// demand (§3.4: "we have extended our algorithms for computing one route to
/// generate alternative routes at the user's request").
///
/// Implementation: a lazily expanded route forest shared across requests —
/// each Next() call enumerates with a growing cap, expanding (and paying
/// findHom cost for) only the forest region the enumeration reaches, so the
/// user's "debugging time" is exploited between requests. Routes that use
/// the same set of satisfaction steps (i.e. strat-equivalent routes) are
/// reported once.
class RouteEnumerator {
 public:
  RouteEnumerator(const SchemaMapping& mapping, const Instance& source,
                  const Instance& target, std::vector<FactRef> js,
                  const RouteOptions& options = {});

  /// Returns the next distinct route, or std::nullopt when exhausted.
  std::optional<Route> Next();

  /// Routes handed out so far.
  size_t produced() const { return cursor_; }

  const RouteForest& forest() const { return forest_; }

 private:
  void Refill();
  static std::string StepSetKey(const Route& route);

  RouteForest forest_;
  std::vector<FactRef> js_;
  std::vector<Route> buffer_;
  std::unordered_set<std::string> seen_;
  size_t cursor_ = 0;
  size_t cap_ = 4;
  bool exhausted_ = false;
};

}  // namespace spider

#endif  // SPIDER_ROUTES_ALTERNATIVES_H_
