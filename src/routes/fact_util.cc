#include "routes/fact_util.h"

#include <sstream>
#include <unordered_set>

#include "base/status.h"

namespace spider {

std::vector<FactRef> ResolveFacts(const Instance& instance, Side side,
                                  const std::vector<Atom>& atoms,
                                  const Binding& h) {
  std::vector<FactRef> facts;
  std::unordered_set<FactRef, FactRefHash> seen;
  facts.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    Tuple tuple = h.Instantiate(atom);
    std::optional<int32_t> row = instance.FindRow(atom.relation, tuple);
    SPIDER_CHECK(row.has_value(),
                 "instantiated atom " +
                     instance.schema().relation(atom.relation).name() +
                     tuple.ToString() + " is not a fact of the instance");
    FactRef fact{side, atom.relation, *row};
    if (seen.insert(fact).second) facts.push_back(fact);
  }
  return facts;
}

std::vector<FactRef> LhsFacts(const SchemaMapping& mapping, TgdId tgd,
                              const Binding& h, const Instance& source,
                              const Instance& target) {
  const Tgd& dep = mapping.tgd(tgd);
  if (dep.source_to_target()) {
    return ResolveFacts(source, Side::kSource, dep.lhs(), h);
  }
  return ResolveFacts(target, Side::kTarget, dep.lhs(), h);
}

std::vector<FactRef> RhsFacts(const SchemaMapping& mapping, TgdId tgd,
                              const Binding& h, const Instance& target) {
  return ResolveFacts(target, Side::kTarget, mapping.tgd(tgd).rhs(), h);
}

const Tuple& Deref(const FactRef& fact, const Instance& source,
                   const Instance& target) {
  const Instance& instance = fact.side == Side::kSource ? source : target;
  return instance.tuple(fact.relation, fact.row);
}

std::string FactToString(const FactRef& fact, const Instance& source,
                         const Instance& target) {
  const Instance& instance = fact.side == Side::kSource ? source : target;
  std::ostringstream os;
  os << instance.schema().relation(fact.relation).name()
     << instance.tuple(fact.relation, fact.row);
  return os.str();
}

namespace {
FactRef RequireFact(const Instance& instance, Side side,
                    const std::string& relation, const Tuple& tuple) {
  RelationId rel = instance.schema().Require(relation);
  std::optional<int32_t> row = instance.FindRow(rel, tuple);
  SPIDER_CHECK(row.has_value(), "fact " + relation + tuple.ToString() +
                                    " is not in the instance");
  return FactRef{side, rel, *row};
}
}  // namespace

FactRef RequireTargetFact(const Instance& target, const std::string& relation,
                          const Tuple& tuple) {
  return RequireFact(target, Side::kTarget, relation, tuple);
}

FactRef RequireSourceFact(const Instance& source, const std::string& relation,
                          const Tuple& tuple) {
  return RequireFact(source, Side::kSource, relation, tuple);
}

}  // namespace spider
