#ifndef SPIDER_ROUTES_FACT_UTIL_H_
#define SPIDER_ROUTES_FACT_UTIL_H_

#include <string>
#include <vector>

#include "base/tuple.h"
#include "mapping/schema_mapping.h"
#include "query/binding.h"
#include "storage/instance.h"

namespace spider {

/// Resolves the facts h(atoms) inside `instance` (which lives on `side`).
/// Every instantiated atom must exist in the instance; throws SpiderError
/// otherwise (callers only instantiate bindings produced by findHom, which
/// guarantees membership). Duplicate facts are collapsed, preserving first
/// occurrence order.
std::vector<FactRef> ResolveFacts(const Instance& instance, Side side,
                                  const std::vector<Atom>& atoms,
                                  const Binding& h);

/// LHS facts of h(σ): in the source instance for an s-t tgd, in the target
/// instance for a target tgd.
std::vector<FactRef> LhsFacts(const SchemaMapping& mapping, TgdId tgd,
                              const Binding& h, const Instance& source,
                              const Instance& target);

/// RHS facts of h(σ), always in the target instance.
std::vector<FactRef> RhsFacts(const SchemaMapping& mapping, TgdId tgd,
                              const Binding& h, const Instance& target);

/// The tuple a FactRef denotes.
const Tuple& Deref(const FactRef& fact, const Instance& source,
                   const Instance& target);

/// Renders a fact as `Rel(v1, ...)`.
std::string FactToString(const FactRef& fact, const Instance& source,
                         const Instance& target);

/// Finds the FactRef of a target fact written as relation name + values;
/// throws SpiderError when the fact is not in the instance.
FactRef RequireTargetFact(const Instance& target, const std::string& relation,
                          const Tuple& tuple);

/// Finds the FactRef of a source fact; throws when absent.
FactRef RequireSourceFact(const Instance& source, const std::string& relation,
                          const Tuple& tuple);

}  // namespace spider

#endif  // SPIDER_ROUTES_FACT_UTIL_H_
