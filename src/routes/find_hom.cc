#include "routes/find_hom.h"

#include <unordered_set>

#include "base/status.h"
#include "obs/trace.h"
#include "query/plan_cache.h"

namespace spider {

namespace {
const Tuple& ProbeTuple(const Instance& target, const FactRef& fact) {
  SPIDER_CHECK(fact.side == Side::kTarget, "findHom probes target facts");
  return target.tuple(fact.relation, fact.row);
}
}  // namespace

FindHomIterator::FindHomIterator(const SchemaMapping& mapping,
                                 const Instance& source,
                                 const Instance& target, const FactRef& fact,
                                 TgdId tgd, const RouteOptions& options)
    : mapping_(mapping),
      source_(source),
      target_(target),
      tgd_(mapping.tgd(tgd)),
      tgd_id_(tgd),
      probe_(ProbeTuple(target, fact)),
      probe_rel_(fact.relation),
      options_(options),
      binding_(tgd_.num_vars()) {
  ++stats_.findhom_calls;
  if (options_.eager_findhom) {
    obs::TraceSpan materialize_span("findhom", "findhom_materialize");
    materialize_span.AddArg("tgd", tgd);
    Binding h;
    while (NextLazy(&h)) eager_results_.push_back(h);
  }
}

RouteStats FindHomIterator::stats() const {
  RouteStats snapshot = stats_;
  if (lhs_iter_ != nullptr) snapshot.eval += lhs_iter_->stats();
  if (rhs_iter_ != nullptr) snapshot.eval += rhs_iter_->stats();
  return snapshot;
}

bool FindHomIterator::Next(Binding* h) {
  // One span per pull — the lazy-vs-eager fetch cost §3.3 is about, on the
  // worker track the pull actually ran on.
  obs::TraceSpan pull_span("findhom", "findhom_pull");
  pull_span.AddArg("tgd", tgd_id_);
  ThrowIfCancelled(options_.cancel);
  if (options_.eager_findhom) {
    if (eager_cursor_ >= eager_results_.size()) return false;
    *h = eager_results_[eager_cursor_++];
    return true;
  }
  return NextLazy(h);
}

bool FindHomIterator::UnifyAtom() {
  const Atom& atom = tgd_.rhs()[atom_index_];
  if (atom.relation != probe_rel_) return false;
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const Term& t = atom.terms[col];
    const Value& v = probe_.at(col);
    bool ok;
    if (t.is_const()) {
      ok = (t.value() == v);
    } else if (binding_.IsBound(t.var())) {
      ok = (binding_.Get(t.var()) == v);
    } else {
      binding_.Set(t.var(), v);
      v1_bound_.push_back(t.var());
      ok = true;
    }
    if (!ok) {
      UnbindV1();
      return false;
    }
  }
  return true;
}

void FindHomIterator::UnbindV1() {
  for (VarId v : v1_bound_) binding_.Unset(v);
  v1_bound_.clear();
}

bool FindHomIterator::NextLazy(Binding* h) {
  // Duplicate assignments can only arise when the probed relation occurs in
  // more than one RHS atom.
  size_t probe_atoms = 0;
  for (const Atom& atom : tgd_.rhs()) {
    if (atom.relation == probe_rel_) ++probe_atoms;
  }
  const bool dedup = probe_atoms > 1;
  const Instance& lhs_instance =
      tgd_.source_to_target() ? source_ : target_;
  while (true) {
    // Covers both the eager materialization loop in the constructor and
    // long stretches of unproductive v2/v3 candidates within one pull.
    ThrowIfCancelled(options_.cancel);
    if (rhs_iter_ != nullptr) {
      if (rhs_iter_->Next()) {
        if (dedup) {
          bool fresh = true;
          for (const Binding& b : seen_) {
            if (b == binding_) {
              fresh = false;
              break;
            }
          }
          if (!fresh) continue;
          seen_.push_back(binding_);
        }
        ++assignments_enumerated_;
        ++stats_.findhom_successes;
        *h = binding_;
        return true;
      }
      stats_.eval += rhs_iter_->stats();
      rhs_iter_.reset();
    }
    if (lhs_iter_ != nullptr) {
      if (lhs_iter_->Next()) {
        rhs_iter_ = std::make_unique<MatchIterator>(
            target_, tgd_.rhs(), &binding_, options_.eval,
            MakePlanKey(PlanKeyFamily::kFindHomRhs,
                        static_cast<uint64_t>(tgd_id_), atom_index_));
        continue;
      }
      stats_.eval += lhs_iter_->stats();
      lhs_iter_.reset();
      UnbindV1();
      ++atom_index_;
    }
    while (atom_index_ < tgd_.rhs().size() && !UnifyAtom()) ++atom_index_;
    if (atom_index_ >= tgd_.rhs().size()) return false;
    lhs_iter_ = std::make_unique<MatchIterator>(
        lhs_instance, tgd_.lhs(), &binding_, options_.eval,
        MakePlanKey(PlanKeyFamily::kFindHomLhs,
                    static_cast<uint64_t>(tgd_id_), atom_index_));
  }
}

std::optional<Binding> FindHomFirst(const SchemaMapping& mapping,
                                    const Instance& source,
                                    const Instance& target,
                                    const FactRef& fact, TgdId tgd,
                                    const RouteOptions& options) {
  FindHomIterator it(mapping, source, target, fact, tgd, options);
  Binding h;
  if (it.Next(&h)) return h;
  return std::nullopt;
}

}  // namespace spider
