#ifndef SPIDER_ROUTES_FIND_HOM_H_
#define SPIDER_ROUTES_FIND_HOM_H_

#include <memory>
#include <vector>

#include "base/tuple.h"
#include "mapping/schema_mapping.h"
#include "query/binding.h"
#include "query/evaluator.h"
#include "routes/options.h"

namespace spider {

/// The findHom procedure (Fig. 4 of the paper): given a target fact t and a
/// tgd σ : ∀x φ(x) → ∃y ψ(x, y), enumerates assignments h over ALL variables
/// of σ (universal and existential) such that
///   h(φ(x)) ⊆ K,  h(ψ(x, y)) ⊆ J,  and  t ∈ h(ψ(x, y)),
/// where K is the source instance I for an s-t tgd and the solution J for a
/// target tgd.
///
/// Assignments are derived in three stages, mirroring the paper:
///   v1 — match t against a RHS atom of σ with t's relation;
///   v2 — evaluate the (partially instantiated) LHS as a selection query
///        against K;
///   v3 — evaluate the RHS as a selection query against J, binding the
///        existential variables.
/// All (atom, v2, v3) combinations are enumerated; assignments are fetched
/// lazily (one Next() call per assignment) unless RouteOptions::eager_findhom
/// asks for up-front materialization (the paper's XML mode).
class FindHomIterator {
 public:
  FindHomIterator(const SchemaMapping& mapping, const Instance& source,
                  const Instance& target, const FactRef& fact, TgdId tgd,
                  const RouteOptions& options = {});

  FindHomIterator(const FindHomIterator&) = delete;
  FindHomIterator& operator=(const FindHomIterator&) = delete;

  /// Produces the next assignment into *h (a total binding over the tgd's
  /// variables). Returns false when exhausted. Duplicate assignments (the
  /// same h reachable through different RHS atom choices) are suppressed.
  bool Next(Binding* h);

  /// Assignments enumerated internally so far. In lazy mode this equals the
  /// number of successful Next() calls; in eager mode the full enumeration
  /// happens up front (the paper's XML engine behaviour), so this reports
  /// the materialized count regardless of how many were consumed.
  uint64_t assignments_enumerated() const { return assignments_enumerated_; }

  /// Counters accumulated by this iterator: findhom_calls is 1,
  /// findhom_successes counts assignments enumerated internally (in eager
  /// mode the full enumeration is charged at construction), and `eval` folds
  /// in the evaluator counters of the v2/v3 MatchIterators — including the
  /// ones still live, so the snapshot is complete at any point. The iterator
  /// owns its stats — there is no shared pointer to write through, so
  /// iterators on different exec workers never contend; callers merge with
  /// `total += it.stats()` when done.
  RouteStats stats() const;

 private:
  bool NextLazy(Binding* h);
  /// Attempts to unify the RHS atom at `atom_index_` with the probed tuple;
  /// on success binds the atom's variables (recorded in v1_bound_).
  bool UnifyAtom();
  void UnbindV1();

  const SchemaMapping& mapping_;
  const Instance& source_;
  const Instance& target_;
  const Tgd& tgd_;
  TgdId tgd_id_;
  const Tuple& probe_;       // the probed fact's tuple
  RelationId probe_rel_;
  RouteOptions options_;

  Binding binding_;
  size_t atom_index_ = 0;    // next RHS atom to try for v1
  std::vector<VarId> v1_bound_;
  std::unique_ptr<MatchIterator> lhs_iter_;  // v2 over K
  std::unique_ptr<MatchIterator> rhs_iter_;  // v3 over J
  std::vector<Binding> seen_;  // small: duplicate suppression

  uint64_t assignments_enumerated_ = 0;
  RouteStats stats_;

  // Eager mode: everything materialized at construction.
  std::vector<Binding> eager_results_;
  size_t eager_cursor_ = 0;
};

/// Convenience wrapper: the first assignment, if any.
std::optional<Binding> FindHomFirst(const SchemaMapping& mapping,
                                    const Instance& source,
                                    const Instance& target,
                                    const FactRef& fact, TgdId tgd,
                                    const RouteOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ROUTES_FIND_HOM_H_
