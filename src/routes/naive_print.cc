#include "routes/naive_print.h"

#include <unordered_set>

namespace spider {

namespace {

using StepSeq = std::vector<SatStep>;

class Printer {
 public:
  Printer(RouteForest* forest, const NaivePrintOptions& options)
      : forest_(forest), options_(options) {}

  /// L(t1) x ... x L(tk): concatenations of routes for the individual facts.
  std::vector<StepSeq> RoutesForSet(const std::vector<FactRef>& facts) {
    std::vector<StepSeq> result = {StepSeq{}};
    for (const FactRef& fact : facts) {
      std::vector<StepSeq> per_fact = RoutesForOne(fact);
      if (per_fact.empty()) return {};
      std::vector<StepSeq> product;
      for (const StepSeq& prefix : result) {
        for (const StepSeq& suffix : per_fact) {
          if (Exhausted(product.size())) break;
          StepSeq combined = prefix;
          combined.insert(combined.end(), suffix.begin(), suffix.end());
          work_ += combined.size();
          product.push_back(std::move(combined));
        }
        if (Exhausted(product.size())) break;
      }
      result = std::move(product);
      if (result.empty()) return {};
    }
    return result;
  }

  bool truncated() const { return truncated_; }

 private:
  bool Exhausted(size_t routes_so_far) {
    if (routes_so_far >= options_.max_routes || work_ >= options_.max_work) {
      truncated_ = true;
      return true;
    }
    return false;
  }

  std::vector<StepSeq> RoutesForOne(const FactRef& fact) {
    ancestors_.insert(fact);
    const RouteForest::Node& node = forest_->Expand(fact);
    std::vector<StepSeq> result;
    for (const RouteForest::Branch& branch : node.branches) {
      if (Exhausted(result.size())) break;
      const Tgd& tgd = forest_->mapping().tgd(branch.tgd);
      if (tgd.source_to_target()) {
        // L1: a one-step route witnesses the fact directly from the source.
        result.push_back(StepSeq{SatStep{branch.tgd, branch.h}});
        ++work_;
        continue;
      }
      // L2/L3: follow the branch unless one of its LHS facts is an ancestor.
      bool cyclic = false;
      for (const FactRef& f : branch.lhs_facts) {
        if (ancestors_.count(f) > 0) {
          cyclic = true;
          break;
        }
      }
      if (cyclic) continue;
      std::vector<StepSeq> sub = RoutesForSet(branch.lhs_facts);
      for (StepSeq& seq : sub) {
        if (Exhausted(result.size())) break;
        seq.push_back(SatStep{branch.tgd, branch.h});
        ++work_;
        result.push_back(std::move(seq));
      }
    }
    ancestors_.erase(fact);
    return result;
  }

  RouteForest* forest_;
  NaivePrintOptions options_;
  std::unordered_set<FactRef, FactRefHash> ancestors_;
  uint64_t work_ = 0;
  bool truncated_ = false;
};

}  // namespace

NaivePrintResult NaivePrint(RouteForest* forest,
                            const std::vector<FactRef>& js,
                            const NaivePrintOptions& options) {
  Printer printer(forest, options);
  NaivePrintResult result;
  for (StepSeq& seq : printer.RoutesForSet(js)) {
    result.routes.push_back(Route(std::move(seq)));
  }
  result.truncated = printer.truncated();
  return result;
}

}  // namespace spider
