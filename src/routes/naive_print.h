#ifndef SPIDER_ROUTES_NAIVE_PRINT_H_
#define SPIDER_ROUTES_NAIVE_PRINT_H_

#include <cstdint>
#include <vector>

#include "routes/route.h"
#include "routes/route_forest.h"

namespace spider {

struct NaivePrintOptions {
  /// Cap on the number of routes returned (there may be exponentially many).
  size_t max_routes = 1024;
  /// Budget on total step copies performed during enumeration.
  uint64_t max_work = 10'000'000;
};

struct NaivePrintResult {
  std::vector<Route> routes;
  /// True when a cap stopped the enumeration early.
  bool truncated = false;
};

/// NaivePrint (Fig. 6): enumerates routes for `js` from a route forest. The
/// ANCESTORS stack prevents cycles: a target-tgd branch is followed only
/// when none of its LHS facts is an ancestor of the current fact. Routes for
/// a set of facts are the concatenations (cartesian product) of routes for
/// the individual facts, so emitted routes may contain redundant steps —
/// Theorem 3.7 guarantees that every minimal route for `js` has the same
/// stratified interpretation as one of the emitted routes.
///
/// The forest is taken by pointer because enumeration expands nodes lazily;
/// on a forest built by ComputeAllRoutes the expansion is already complete.
NaivePrintResult NaivePrint(RouteForest* forest,
                            const std::vector<FactRef>& js,
                            const NaivePrintOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ROUTES_NAIVE_PRINT_H_
