#include "routes/one_route.h"

#include <unordered_set>

#include "base/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/plan_cache.h"
#include "routes/fact_util.h"
#include "routes/find_hom.h"

namespace spider {

namespace {

/// Folds a FindHomIterator's owned stats into an accumulator at scope
/// exit, covering every early exit from the enumeration loops.
class StatsMerger {
 public:
  StatsMerger(const FindHomIterator* it, RouteStats* total)
      : it_(it), total_(total) {}
  ~StatsMerger() { *total_ += it_->stats(); }

  StatsMerger(const StatsMerger&) = delete;
  StatsMerger& operator=(const StatsMerger&) = delete;

 private:
  const FindHomIterator* it_;
  RouteStats* total_;
};

class OneRouteComputation {
 public:
  OneRouteComputation(const SchemaMapping& mapping, const Instance& source,
                      const Instance& target, const RouteOptions& options)
      : mapping_(mapping),
        source_(source),
        target_(target),
        options_(options) {
    // The DFS probes the same tgds over and over (one findHom per fact per
    // tgd); share one plan memo across all of them unless the caller
    // brought their own.
    if (options_.eval.plan_cache == nullptr) {
      options_.eval.plan_cache = &plan_cache_;
    }
  }

  OneRouteResult Run(const std::vector<FactRef>& js) {
    FindRoute(js);
    OneRouteResult result;
    result.found = true;
    for (const FactRef& f : js) {
      SPIDER_CHECK(f.side == Side::kTarget,
                   "ComputeOneRoute selects target facts");
      if (proven_.count(f) == 0) {
        result.found = false;
        result.unproven.push_back(f);
      }
    }
    result.route = Route(std::move(route_));
    result.stats = stats_;
    return result;
  }

 private:
  struct Triple {
    FactRef fact;
    TgdId tgd;
    Binding h;
    std::vector<FactRef> lhs;
    std::vector<FactRef> rhs;
    bool alive = true;
  };

  bool AllProven(const std::vector<FactRef>& facts) const {
    for (const FactRef& f : facts) {
      if (proven_.count(f) == 0) return false;
    }
    return true;
  }

  void AppendStep(TgdId tgd, const Binding& h) {
    route_.push_back(SatStep{tgd, h});
  }

  /// Seeds for Infer after a successful step: the probed fact, plus — under
  /// the §3.3 optimization — every fact the step produces.
  std::vector<FactRef> SeedsFor(const FactRef& fact,
                                const std::vector<FactRef>& rhs) const {
    std::vector<FactRef> seeds{fact};
    if (options_.propagate_rhs_proven) {
      for (const FactRef& f : rhs) {
        if (f != fact) seeds.push_back(f);
      }
    }
    return seeds;
  }

  /// The Infer procedure (Fig. 8): marks seeds proven and fires every
  /// suspended UNPROVEN triple whose LHS became fully proven, transitively.
  void Infer(std::vector<FactRef> seeds) {
    while (!seeds.empty()) {
      for (const FactRef& f : seeds) proven_.insert(f);
      seeds.clear();
      for (Triple& triple : unproven_) {
        if (!triple.alive || !AllProven(triple.lhs)) continue;
        triple.alive = false;
        ++stats_.infer_fires;
        AppendStep(triple.tgd, triple.h);
        seeds.push_back(triple.fact);
        if (options_.propagate_rhs_proven) {
          for (const FactRef& f : triple.rhs) seeds.push_back(f);
        }
      }
    }
  }

  /// FindRoute (Fig. 7).
  void FindRoute(const std::vector<FactRef>& facts) {
    for (const FactRef& fact : facts) {
      // The findHom pulls below poll the token too; this covers facts whose
      // branches resolve without ever pulling (all cache/Infer hits).
      ThrowIfCancelled(options_.cancel);
      if (active_.count(fact) > 0) continue;
      active_.insert(fact);
      if (proven_.count(fact) > 0) continue;

      // Step 2: s-t tgds — the first assignment of the first matching tgd
      // witnesses the fact directly from the source.
      bool witnessed = false;
      for (TgdId tgd : mapping_.st_tgds()) {
        FindHomIterator it(mapping_, source_, target_, fact, tgd, options_);
        Binding h;
        if (it.Next(&h)) {
          AppendStep(tgd, h);
          Infer(SeedsFor(fact, RhsFacts(mapping_, tgd, h, target_)));
          witnessed = true;
        }
        stats_ += it.stats();
        if (witnessed) break;
      }
      if (witnessed) continue;

      // Step 3: target tgds — enumerate (σ, h) pairs until the fact is
      // proven, suspending on LHS facts that are not proven yet.
      for (TgdId tgd : mapping_.target_tgds()) {
        if (proven_.count(fact) > 0) break;
        FindHomIterator it(mapping_, source_, target_, fact, tgd, options_);
        StatsMerger merge_on_exit(&it, &stats_);
        Binding h;
        while (proven_.count(fact) == 0 && it.Next(&h)) {
          std::vector<FactRef> lhs =
              LhsFacts(mapping_, tgd, h, source_, target_);
          std::vector<FactRef> rhs = RhsFacts(mapping_, tgd, h, target_);
          if (AllProven(lhs)) {
            AppendStep(tgd, h);
            Infer(SeedsFor(fact, rhs));
            break;
          }
          // Step 3(iii)-(v): suspend the triple, search routes for the LHS,
          // then either the triple fired through Infer (fact proven) or we
          // continue with the next (σ, h).
          unproven_.push_back(Triple{fact, tgd, h, lhs, std::move(rhs), true});
          size_t index = unproven_.size() - 1;
          // Recurse on a local copy: the recursion may grow unproven_ and
          // invalidate references into it.
          FindRoute(lhs);
          if (!unproven_[index].alive) break;
        }
      }
    }
  }

  const SchemaMapping& mapping_;
  const Instance& source_;
  const Instance& target_;
  PlanCache plan_cache_;
  RouteOptions options_;
  std::unordered_set<FactRef, FactRefHash> active_;
  std::unordered_set<FactRef, FactRefHash> proven_;
  std::vector<Triple> unproven_;
  std::vector<SatStep> route_;
  RouteStats stats_;
};

}  // namespace

OneRouteResult ComputeOneRoute(const SchemaMapping& mapping,
                               const Instance& source, const Instance& target,
                               const std::vector<FactRef>& js,
                               const RouteOptions& options) {
  obs::TraceSpan span("routes", "one_route");
  span.AddArg("selected", static_cast<int64_t>(js.size()));
  OneRouteResult result = OneRouteComputation(mapping, source, target, options).Run(js);
  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("routes.one_route_runs")->Increment();
    result.stats.PublishTo(&registry);
  }
  return result;
}

}  // namespace spider
