#ifndef SPIDER_ROUTES_ONE_ROUTE_H_
#define SPIDER_ROUTES_ONE_ROUTE_H_

#include <vector>

#include "base/tuple.h"
#include "mapping/schema_mapping.h"
#include "routes/options.h"
#include "routes/route.h"
#include "storage/instance.h"

namespace spider {

struct OneRouteResult {
  /// True when every selected fact has a route; by Theorem 3.10 this holds
  /// exactly when a route for Js exists.
  bool found = false;
  /// The computed route (valid for the proven subset of Js even on partial
  /// failure; empty when nothing was provable).
  Route route;
  /// Selected facts for which no route exists.
  std::vector<FactRef> unproven;
  RouteStats stats;
};

/// ComputeOneRoute (Figs. 7 and 8): produces one route for the selected
/// target facts fast, if one exists, in polynomial time in |I| + |J| + |Js|
/// (Proposition 3.9).
///
/// The search explores one successful branch per fact: s-t tgds are tried
/// before target tgds; ACTIVETUPLES prevents re-exploration; the UNPROVEN
/// set plus the Infer procedure propagate proven-ness to facts whose
/// witnessing branch was suspended on a cycle, which is required for
/// completeness (see the discussion of Example 3.8). Matching the paper, the
/// returned sequence may contain redundant steps (Infer fires every
/// applicable suspended triple); use Route::Minimize for a minimal route.
///
/// RouteOptions::propagate_rhs_proven enables the §3.3 optimization: all
/// facts produced by a successful findHom step are marked proven, not just
/// the probed one.
OneRouteResult ComputeOneRoute(const SchemaMapping& mapping,
                               const Instance& source, const Instance& target,
                               const std::vector<FactRef>& js,
                               const RouteOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ROUTES_ONE_ROUTE_H_
