#ifndef SPIDER_ROUTES_OPTIONS_H_
#define SPIDER_ROUTES_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "base/cancel.h"
#include "exec/exec_options.h"
#include "query/eval_stats.h"
#include "query/evaluator.h"

namespace spider {

/// Options shared by the route algorithms.
struct RouteOptions {
  /// Options for the conjunctive queries issued by findHom.
  EvalOptions eval;

  /// When true, findHom materializes every assignment up front instead of
  /// fetching them one at a time. This models the paper's XML setting, where
  /// "all the assignments are fetched at once, since the result produced by
  /// the Saxon engine is stored in memory" (§3.3). The relational default is
  /// lazy, cursor-style fetching.
  bool eager_findhom = false;

  /// §3.3 optimization for ComputeOneRoute: when a findHom step succeeds,
  /// conclude that *all* target tuples produced by the tgd (not only the
  /// probed one) are proven, avoiding redundant findHom calls.
  bool propagate_rhs_proven = true;

  /// Work-stealing runtime knobs. With num_threads > 1 the independent
  /// per-fact work fans out over the shared pool: route-forest node
  /// expansion (ComputeAllRoutes) and the s-t seeding of source routes.
  /// Results and stats are byte-identical for every thread count;
  /// ComputeOneRoute's depth-first search is inherently order-dependent
  /// and always runs sequentially.
  ExecOptions exec;

  /// Optional cooperative-cancellation token, polled (relaxed atomic load)
  /// on every FindHomIterator pull, every forest node expansion, and every
  /// one-route DFS step. When it flips, the route algorithms throw
  /// CancelledError — they are pure reads over the instances, so the
  /// abandoned partial result never escapes. Must outlive the computation.
  const CancelToken* cancel = nullptr;
};

/// Statistics accumulated by the route algorithms. Parallel regions give
/// each task its own RouteStats (FindHomIterator likewise owns one) and
/// merge them at the join in canonical task order, so counters stay exact
/// at every thread count.
struct RouteStats {
  uint64_t findhom_calls = 0;       ///< findHom invocations (per tgd).
  uint64_t findhom_successes = 0;   ///< Assignments produced.
  uint64_t infer_fires = 0;         ///< UNPROVEN triples fired by Infer.
  uint64_t nodes_expanded = 0;      ///< Route forest nodes expanded.
  uint64_t branches_added = 0;      ///< Route forest branches added.

  /// Evaluator counters for the conjunctive queries findHom issued. These
  /// are deterministic for a fixed scenario and options at every thread
  /// count: plans are value-independent, posting lists enumerate rows in
  /// ascending order regardless of the probe column, and the shared plan
  /// cache builds each plan exactly once under its lock.
  EvalStats eval;

  /// Adds the merged totals to the registry under "routes.*" (done once
  /// per route-algorithm entry point when obs metrics are enabled).
  void PublishTo(obs::Registry* registry) const {
    registry->GetCounter("routes.findhom_calls")->Add(findhom_calls);
    registry->GetCounter("routes.findhom_successes")->Add(findhom_successes);
    registry->GetCounter("routes.infer_fires")->Add(infer_fires);
    registry->GetCounter("routes.nodes_expanded")->Add(nodes_expanded);
    registry->GetCounter("routes.branches_added")->Add(branches_added);
    eval.PublishTo(registry, "routes.eval.");
  }

  RouteStats& operator+=(const RouteStats& other) {
    findhom_calls += other.findhom_calls;
    findhom_successes += other.findhom_successes;
    infer_fires += other.infer_fires;
    nodes_expanded += other.nodes_expanded;
    branches_added += other.branches_added;
    eval += other.eval;
    return *this;
  }

  friend bool operator==(const RouteStats& a, const RouteStats& b) {
    return a.findhom_calls == b.findhom_calls &&
           a.findhom_successes == b.findhom_successes &&
           a.infer_fires == b.infer_fires &&
           a.nodes_expanded == b.nodes_expanded &&
           a.branches_added == b.branches_added && a.eval == b.eval;
  }
};

}  // namespace spider

#endif  // SPIDER_ROUTES_OPTIONS_H_
