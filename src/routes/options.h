#ifndef SPIDER_ROUTES_OPTIONS_H_
#define SPIDER_ROUTES_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "query/evaluator.h"

namespace spider {

/// Options shared by the route algorithms.
struct RouteOptions {
  /// Options for the conjunctive queries issued by findHom.
  EvalOptions eval;

  /// When true, findHom materializes every assignment up front instead of
  /// fetching them one at a time. This models the paper's XML setting, where
  /// "all the assignments are fetched at once, since the result produced by
  /// the Saxon engine is stored in memory" (§3.3). The relational default is
  /// lazy, cursor-style fetching.
  bool eager_findhom = false;

  /// §3.3 optimization for ComputeOneRoute: when a findHom step succeeds,
  /// conclude that *all* target tuples produced by the tgd (not only the
  /// probed one) are proven, avoiding redundant findHom calls.
  bool propagate_rhs_proven = true;
};

/// Statistics accumulated by the route algorithms.
struct RouteStats {
  uint64_t findhom_calls = 0;       ///< findHom invocations (per tgd).
  uint64_t findhom_successes = 0;   ///< Assignments produced.
  uint64_t infer_fires = 0;         ///< UNPROVEN triples fired by Infer.
  uint64_t nodes_expanded = 0;      ///< Route forest nodes expanded.
  uint64_t branches_added = 0;      ///< Route forest branches added.
};

}  // namespace spider

#endif  // SPIDER_ROUTES_OPTIONS_H_
