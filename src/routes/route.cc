#include "routes/route.h"

#include <sstream>
#include <unordered_set>

#include "base/status.h"
#include "routes/fact_util.h"

namespace spider {

bool SatStepLess(const SatStep& a, const SatStep& b) {
  if (a.tgd != b.tgd) return a.tgd < b.tgd;
  return a.h < b.h;
}

std::vector<FactRef> Route::ProducedFacts(const SchemaMapping& mapping,
                                          const Instance& /*source*/,
                                          const Instance& target) const {
  std::vector<FactRef> produced;
  std::unordered_set<FactRef, FactRefHash> seen;
  for (const SatStep& step : steps_) {
    for (const FactRef& f : RhsFacts(mapping, step.tgd, step.h, target)) {
      if (seen.insert(f).second) produced.push_back(f);
    }
  }
  return produced;
}

bool Route::Validate(const SchemaMapping& mapping, const Instance& source,
                     const Instance& target, const std::vector<FactRef>& js,
                     std::string* why) const {
  auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (steps_.empty()) return fail("a route must be a non-empty sequence");
  std::unordered_set<FactRef, FactRefHash> produced;
  for (size_t i = 0; i < steps_.size(); ++i) {
    const SatStep& step = steps_[i];
    SPIDER_CHECK(step.tgd >= 0 &&
                     static_cast<size_t>(step.tgd) < mapping.NumTgds(),
                 "route step refers to an unknown tgd");
    const Tgd& tgd = mapping.tgd(step.tgd);
    if (step.h.size() != tgd.num_vars() || !step.h.IsTotal()) {
      return fail("step " + std::to_string(i + 1) + " (tgd '" + tgd.name() +
                  "'): the homomorphism must cover all variables");
    }
    // LHS availability. ResolveFacts throws when an instantiated atom is not
    // a fact of the ambient instance at all; catch that as invalidity.
    std::vector<FactRef> lhs;
    std::vector<FactRef> rhs;
    try {
      lhs = LhsFacts(mapping, step.tgd, step.h, source, target);
      rhs = RhsFacts(mapping, step.tgd, step.h, target);
    } catch (const SpiderError& e) {
      return fail("step " + std::to_string(i + 1) + " (tgd '" + tgd.name() +
                  "'): " + e.what());
    }
    if (!tgd.source_to_target()) {
      for (const FactRef& f : lhs) {
        if (produced.find(f) == produced.end()) {
          return fail("step " + std::to_string(i + 1) + " (tgd '" +
                      tgd.name() + "'): LHS fact " +
                      FactToString(f, source, target) +
                      " was not produced by an earlier step");
        }
      }
    }
    for (const FactRef& f : rhs) produced.insert(f);
  }
  for (const FactRef& f : js) {
    if (f.side != Side::kTarget) {
      return fail("selected facts must be target facts");
    }
    if (produced.find(f) == produced.end()) {
      return fail("selected fact " + FactToString(f, source, target) +
                  " is not produced by the route");
    }
  }
  return true;
}

bool Route::IsMinimal(const SchemaMapping& mapping, const Instance& source,
                      const Instance& target,
                      const std::vector<FactRef>& js) const {
  for (size_t skip = 0; skip < steps_.size(); ++skip) {
    std::vector<SatStep> reduced;
    reduced.reserve(steps_.size() - 1);
    for (size_t i = 0; i < steps_.size(); ++i) {
      if (i != skip) reduced.push_back(steps_[i]);
    }
    if (Route(std::move(reduced)).Validate(mapping, source, target, js)) {
      return false;
    }
  }
  return true;
}

Route Route::Minimize(const SchemaMapping& mapping, const Instance& source,
                      const Instance& target,
                      const std::vector<FactRef>& js) const {
  std::string why;
  SPIDER_CHECK(Validate(mapping, source, target, js, &why),
               "cannot minimize an invalid route: " + why);
  std::vector<SatStep> current = steps_;
  bool changed = true;
  while (changed) {
    changed = false;
    // Scan from the back: later steps are more likely to be redundant
    // duplicates appended by Infer.
    for (size_t i = current.size(); i-- > 0;) {
      std::vector<SatStep> reduced;
      reduced.reserve(current.size() - 1);
      for (size_t j = 0; j < current.size(); ++j) {
        if (j != i) reduced.push_back(current[j]);
      }
      if (!reduced.empty() &&
          Route(reduced).Validate(mapping, source, target, js)) {
        current = std::move(reduced);
        changed = true;
      }
    }
  }
  return Route(std::move(current));
}

std::string Route::ToString(const SchemaMapping& mapping,
                            const Instance& source,
                            const Instance& target) const {
  std::ostringstream os;
  for (size_t i = 0; i < steps_.size(); ++i) {
    const SatStep& step = steps_[i];
    const Tgd& tgd = mapping.tgd(step.tgd);
    os << "step " << (i + 1) << ": ";
    std::vector<FactRef> lhs =
        LhsFacts(mapping, step.tgd, step.h, source, target);
    for (size_t k = 0; k < lhs.size(); ++k) {
      if (k > 0) os << " & ";
      os << FactToString(lhs[k], source, target);
    }
    os << "\n  --" << tgd.name() << ", " << step.h.ToString(tgd.var_names())
       << "-->\n  ";
    std::vector<FactRef> rhs = RhsFacts(mapping, step.tgd, step.h, target);
    for (size_t k = 0; k < rhs.size(); ++k) {
      if (k > 0) os << " & ";
      os << FactToString(rhs[k], source, target);
    }
    os << '\n';
  }
  return os.str();
}

std::string Route::TgdNames(const SchemaMapping& mapping) const {
  std::ostringstream os;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (i > 0) os << " -> ";
    os << mapping.tgd(steps_[i].tgd).name();
  }
  return os.str();
}

}  // namespace spider
