#ifndef SPIDER_ROUTES_ROUTE_H_
#define SPIDER_ROUTES_ROUTE_H_

#include <string>
#include <vector>

#include "base/tuple.h"
#include "mapping/schema_mapping.h"
#include "query/binding.h"
#include "storage/instance.h"

namespace spider {

/// One satisfaction step (Definition 3.1): a tgd σ together with a
/// homomorphism h defined over ALL variables of σ (universal and
/// existential). Satisfying σ on (I, J_i) with h yields
/// J_{i+1} = J_i ∪ h(ψ); h(ψ) is always contained in the ambient solution J.
struct SatStep {
  TgdId tgd = -1;
  Binding h;

  friend bool operator==(const SatStep&, const SatStep&) = default;
};

/// Canonical ordering for steps (by tgd id, then assignment); used by
/// stratified interpretations and route deduplication.
bool SatStepLess(const SatStep& a, const SatStep& b);

/// A route for a set of target facts Js (Definition 3.3): a finite non-empty
/// sequence of satisfaction steps (I, ∅) → ... → (I, J_n) with J_n ⊆ J and
/// Js ⊆ J_n.
class Route {
 public:
  Route() = default;
  explicit Route(std::vector<SatStep> steps) : steps_(std::move(steps)) {}

  const std::vector<SatStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }
  size_t size() const { return steps_.size(); }

  void Append(SatStep step) { steps_.push_back(std::move(step)); }

  /// The target facts produced by the route (the J_n of Definition 3.3),
  /// in first-production order.
  std::vector<FactRef> ProducedFacts(const SchemaMapping& mapping,
                                     const Instance& source,
                                     const Instance& target) const;

  /// Replays the route and checks Definition 3.1/3.3 validity for `js`:
  /// (a) every step's LHS facts are available (source facts in I; target
  ///     facts produced by earlier steps),
  /// (b) every step's RHS facts are contained in the solution J,
  /// (c) Js ⊆ J_n.
  /// On failure, a description is stored in *why (if non-null).
  bool Validate(const SchemaMapping& mapping, const Instance& source,
                const Instance& target, const std::vector<FactRef>& js,
                std::string* why = nullptr) const;

  /// True when no single step can be dropped while the remaining sequence
  /// is still a route for `js` (the paper's minimality notion).
  bool IsMinimal(const SchemaMapping& mapping, const Instance& source,
                 const Instance& target,
                 const std::vector<FactRef>& js) const;

  /// Greedily removes redundant steps (scanning repeatedly until fixpoint)
  /// and returns a minimal route for `js`. The route must validate.
  Route Minimize(const SchemaMapping& mapping, const Instance& source,
                 const Instance& target,
                 const std::vector<FactRef>& js) const;

  /// Renders the route, one step per line:
  ///   `--σ, {x -> ...}--> Rel(v, ...) & ...`.
  std::string ToString(const SchemaMapping& mapping, const Instance& source,
                       const Instance& target) const;

  /// Compact form listing only tgd names: `s2 --m2--> t6 --m5--> t2` style
  /// is rendered by the debugger; this prints `m2 -> m5`.
  std::string TgdNames(const SchemaMapping& mapping) const;

  friend bool operator==(const Route&, const Route&) = default;

 private:
  std::vector<SatStep> steps_;
};

}  // namespace spider

#endif  // SPIDER_ROUTES_ROUTE_H_
