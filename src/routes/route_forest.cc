#include "routes/route_forest.h"

#include <ostream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "base/status.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routes/fact_util.h"
#include "routes/find_hom.h"

namespace spider {

RouteForest::RouteForest(const SchemaMapping& mapping, const Instance& source,
                         const Instance& target, std::vector<FactRef> roots,
                         const RouteOptions& options)
    : mapping_(&mapping),
      source_(&source),
      target_(&target),
      roots_(std::move(roots)),
      options_(options) {
  if (options_.eval.plan_cache == nullptr) {
    owned_plan_cache_ = std::make_unique<PlanCache>();
    options_.eval.plan_cache = owned_plan_cache_.get();
  }
  for (const FactRef& f : roots_) {
    SPIDER_CHECK(f.side == Side::kTarget,
                 "route forests are rooted at target facts");
  }
}

RouteForest::Node& RouteForest::GetOrCreate(const FactRef& fact) {
  auto it = node_of_.find(fact);
  if (it != node_of_.end()) return nodes_[it->second];
  node_of_.emplace(fact, nodes_.size());
  nodes_.push_back(Node{fact, false, {}});
  return nodes_.back();
}

std::vector<RouteForest::Branch> RouteForest::ComputeBranches(
    const FactRef& fact, RouteStats* stats) const {
  std::vector<Branch> branches;
  // Steps 2 and 3 of ComputeAllRoutes: one branch per (σ, h) pair, s-t tgds
  // first, then target tgds.
  auto add_branches = [&](const std::vector<TgdId>& tgds) {
    for (TgdId tgd : tgds) {
      FindHomIterator it(*mapping_, *source_, *target_, fact, tgd, options_);
      Binding h;
      while (it.Next(&h)) {
        Branch branch;
        branch.tgd = tgd;
        branch.h = h;
        branch.lhs_facts = LhsFacts(*mapping_, tgd, h, *source_, *target_);
        branch.rhs_facts = RhsFacts(*mapping_, tgd, h, *target_);
        branches.push_back(std::move(branch));
      }
      *stats += it.stats();
    }
  };
  add_branches(mapping_->st_tgds());
  add_branches(mapping_->target_tgds());
  return branches;
}

void RouteForest::InstallBranches(Node* node, std::vector<Branch> branches) {
  node->expanded = true;
  ++stats_.nodes_expanded;
  stats_.branches_added += branches.size();
  node->branches = std::move(branches);
}

const RouteForest::Node& RouteForest::Expand(const FactRef& fact) {
  ThrowIfCancelled(options_.cancel);
  Node& node = GetOrCreate(fact);
  if (node.expanded) return node;
  std::vector<Branch> branches = ComputeBranches(fact, &stats_);
  InstallBranches(&node, std::move(branches));
  return node;
}

const RouteForest::Node* RouteForest::Find(const FactRef& fact) const {
  auto it = node_of_.find(fact);
  return it == node_of_.end() ? nullptr : &nodes_[it->second];
}

void RouteForest::ExpandAll() {
  obs::TraceSpan expand_span("routes", "expand_all");
  expand_span.AddArg("roots", static_cast<int64_t>(roots_.size()));
  ThreadPool* pool = ThreadPool::For(options_.exec);
  if (pool != nullptr && options_.eval.use_indexes) {
    // Lazy index builds mutate shared state; warm before the fan-out.
    source_->WarmIndexes();
    target_->WarmIndexes();
  }
  // Wave-parallel BFS from the roots; see the header. `scheduled` prevents
  // a fact reached from two parents (in the same or different waves) from
  // being expanded twice.
  std::unordered_set<FactRef, FactRefHash> scheduled;
  std::vector<FactRef> frontier;
  auto schedule = [&](const FactRef& fact) {
    const Node* node = Find(fact);
    if (node != nullptr && node->expanded) return;
    if (scheduled.insert(fact).second) frontier.push_back(fact);
  };
  for (const FactRef& root : roots_) schedule(root);
  int64_t wave_index = 0;
  while (!frontier.empty()) {
    obs::TraceSpan wave_span("routes", "wave");
    wave_span.AddArg("wave", wave_index++);
    wave_span.AddArg("frontier", static_cast<int64_t>(frontier.size()));
    std::vector<std::vector<Branch>> branches(frontier.size());
    std::vector<RouteStats> worker_stats(frontier.size());
    ParallelFor(pool, 0, frontier.size(), options_.exec.grain, [&](size_t i) {
      obs::TraceSpan node_span("routes", "expand_node");
      try {
        branches[i] = ComputeBranches(frontier[i], &worker_stats[i]);
      } catch (const CancelledError&) {
        // Swallowed here so concurrent leaves don't race to fail the task
        // group (which would wrap the typed error); the join below rethrows
        // exactly one CancelledError off the still-flipped token.
        branches[i].clear();
      }
    }, options_.cancel);
    // Abandon the whole wave before installing anything: a cancelled forest
    // must never hold a half-expanded frontier (the serve layer would cache
    // it as if complete).
    ThrowIfCancelled(options_.cancel);
    std::vector<FactRef> wave = std::move(frontier);
    frontier.clear();
    for (size_t i = 0; i < wave.size(); ++i) {
      stats_ += worker_stats[i];
      InstallBranches(&GetOrCreate(wave[i]), std::move(branches[i]));
    }
    // Discover the next wave only after the whole wave is installed, so
    // sibling references resolve to this wave's nodes, not to duplicates.
    for (const FactRef& fact : wave) {
      for (const Branch& branch : Find(fact)->branches) {
        if (mapping_->tgd(branch.tgd).source_to_target()) continue;
        for (const FactRef& child : branch.lhs_facts) schedule(child);
      }
    }
  }
}

size_t RouteForest::NumBranches() const {
  size_t total = 0;
  for (const Node& node : nodes_) total += node.branches.size();
  return total;
}

size_t RouteForest::NumExpandedNodes() const {
  size_t total = 0;
  for (const Node& node : nodes_) {
    if (node.expanded) ++total;
  }
  return total;
}

void RouteForest::AppendNode(
    std::ostream& os, const FactRef& fact, int indent,
    std::unordered_map<FactRef, bool, FactRefHash>* printed) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const Node* node = Find(fact);
  os << pad << FactToString(fact, *source_, *target_);
  if (node == nullptr || !node->expanded) {
    os << "  [unexpanded]\n";
    return;
  }
  auto it = printed->find(fact);
  if (it != printed->end()) {
    os << "  [see above]\n";
    return;
  }
  printed->emplace(fact, true);
  os << '\n';
  for (const Branch& branch : node->branches) {
    const Tgd& tgd = mapping_->tgd(branch.tgd);
    os << pad << "  <-- " << tgd.name() << ", "
       << branch.h.ToString(tgd.var_names()) << '\n';
    if (tgd.source_to_target()) {
      for (const FactRef& f : branch.lhs_facts) {
        os << pad << "    " << FactToString(f, *source_, *target_)
           << "  [source]\n";
      }
    } else {
      for (const FactRef& f : branch.lhs_facts) {
        AppendNode(os, f, indent + 2, printed);
      }
    }
  }
}

std::string RouteForest::ToString() const {
  std::ostringstream os;
  std::unordered_map<FactRef, bool, FactRefHash> printed;
  for (const FactRef& root : roots_) {
    AppendNode(os, root, 0, &printed);
  }
  return os.str();
}

RouteForest ComputeAllRoutes(const SchemaMapping& mapping,
                             const Instance& source, const Instance& target,
                             std::vector<FactRef> js,
                             const RouteOptions& options) {
  RouteForest forest(mapping, source, target, std::move(js), options);
  forest.ExpandAll();
  if (obs::MetricsEnabled()) {
    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("routes.all_routes_runs")->Increment();
    forest.stats().PublishTo(&registry);
  }
  return forest;
}

}  // namespace spider
