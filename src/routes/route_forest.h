#ifndef SPIDER_ROUTES_ROUTE_FOREST_H_
#define SPIDER_ROUTES_ROUTE_FOREST_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/tuple.h"
#include "mapping/schema_mapping.h"
#include "query/plan_cache.h"
#include "routes/options.h"
#include "routes/route.h"
#include "storage/instance.h"

namespace spider {

/// The route forest of ComputeAllRoutes (Fig. 3): a concise, polynomial-size
/// representation of all routes for a set of selected target facts.
///
/// Each target fact encountered gets exactly one node (the ACTIVETUPLES
/// memoization); under a node there is one branch per (σ, h) pair returned
/// by findHom. A branch of a target tgd has the facts of LHS(h(σ)) as
/// children (each resolved through the node map); a branch of an s-t tgd is
/// a leaf whose LHS facts are source facts. Later occurrences of a fact
/// reference its unique node rather than re-expanding it.
///
/// The forest expands lazily: Expand(fact) materializes the branches of one
/// node; ExpandAll() drives a worklist from the roots to a full expansion
/// (this is exactly ComputeAllRoutes). NaivePrint and the alternative-route
/// enumerator work against the lazy interface, expanding only what they
/// reach.
class RouteForest {
 public:
  struct Branch {
    TgdId tgd = -1;
    Binding h;
    /// LHS(h(σ)): source facts for an s-t tgd, target facts otherwise.
    std::vector<FactRef> lhs_facts;
    /// RHS(h(σ)) resolved in J.
    std::vector<FactRef> rhs_facts;
  };

  struct Node {
    FactRef fact;
    bool expanded = false;
    std::vector<Branch> branches;
  };

  RouteForest(const SchemaMapping& mapping, const Instance& source,
              const Instance& target, std::vector<FactRef> roots,
              const RouteOptions& options = {});

  RouteForest(const RouteForest&) = delete;
  RouteForest& operator=(const RouteForest&) = delete;
  RouteForest(RouteForest&&) = default;

  const std::vector<FactRef>& roots() const { return roots_; }
  const SchemaMapping& mapping() const { return *mapping_; }
  const Instance& source() const { return *source_; }
  const Instance& target() const { return *target_; }

  /// Returns the node for `fact`, expanding it (running findHom against
  /// every tgd) on first use. Children of target-tgd branches are NOT
  /// recursively expanded.
  const Node& Expand(const FactRef& fact);

  /// Returns the node if it exists (expanded or not), else nullptr.
  const Node* Find(const FactRef& fact) const;

  /// Fully expands the forest reachable from the roots (ComputeAllRoutes).
  ///
  /// With RouteOptions::exec.num_threads > 1 the expansion proceeds in
  /// waves: computing a node's branches is a pure findHom enumeration over
  /// the immutable instances, so each wave's frontier fans out over the
  /// exec pool into per-node branch buffers; nodes are then installed (and
  /// the next frontier discovered) on the joining thread in frontier
  /// order. Node ids, branch order, and stats are therefore identical for
  /// every thread count — a single thread runs the exact same waves
  /// inline.
  void ExpandAll();

  size_t NumNodes() const { return nodes_.size(); }

  /// All nodes created so far (expanded or merely referenced), in creation
  /// order. The incremental route cache scans these to learn which target
  /// relations a cached forest touches — the granularity its insertion-time
  /// invalidation works at.
  const std::deque<Node>& nodes() const { return nodes_; }
  size_t NumBranches() const;
  size_t NumExpandedNodes() const;
  const RouteStats& stats() const { return stats_; }

  /// Replaces the cancellation token the forest polls during expansion.
  /// A forest that outlives the request that built it (route caches do)
  /// MUST have its token cleared (nullptr) before being handed over —
  /// otherwise a later Expand() would poll freed memory.
  void set_cancel(const CancelToken* token) { options_.cancel = token; }

  /// Renders the forest as an indented tree (one tree per root); facts that
  /// were already printed are cross-referenced instead of re-expanded,
  /// mirroring Fig. 5's shared subtrees.
  std::string ToString() const;

 private:
  Node& GetOrCreate(const FactRef& fact);
  /// The findHom enumeration behind Expand: one branch per (σ, h) pair,
  /// s-t tgds first. Pure (mutates neither the forest nor the instances),
  /// so it can run on any exec worker; findHom counters go to `stats`.
  std::vector<Branch> ComputeBranches(const FactRef& fact,
                                      RouteStats* stats) const;
  /// Marks `node` expanded with `branches`, charging stats_.
  void InstallBranches(Node* node, std::vector<Branch> branches);
  void AppendNode(std::ostream& os, const FactRef& fact, int indent,
                  std::unordered_map<FactRef, bool, FactRefHash>* printed)
      const;

  const SchemaMapping* mapping_;
  const Instance* source_;
  const Instance* target_;
  std::vector<FactRef> roots_;
  RouteOptions options_;
  /// Plan memo shared by every findHom this forest issues (across nodes,
  /// waves, and exec workers). Owned here unless the caller supplied one
  /// through RouteOptions::eval.plan_cache; the heap slot keeps the pointer
  /// in options_ stable across moves of the forest.
  std::unique_ptr<PlanCache> owned_plan_cache_;
  std::deque<Node> nodes_;
  std::unordered_map<FactRef, size_t, FactRefHash> node_of_;
  RouteStats stats_;
};

/// ComputeAllRoutes (Fig. 3): constructs the fully expanded route forest for
/// the selected target facts `js`. Runs in polynomial time in |I| + |J| +
/// |Js| (Proposition 3.6).
RouteForest ComputeAllRoutes(const SchemaMapping& mapping,
                             const Instance& source, const Instance& target,
                             std::vector<FactRef> js,
                             const RouteOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ROUTES_ROUTE_FOREST_H_
