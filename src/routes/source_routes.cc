#include "routes/source_routes.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "base/status.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/evaluator.h"
#include "routes/fact_util.h"

namespace spider {

namespace {

std::string StepKey(const SatStep& step) {
  std::ostringstream os;
  os << step.tgd << '|';
  for (size_t v = 0; v < step.h.size(); ++v) {
    if (step.h.IsBound(static_cast<VarId>(v))) {
      os << step.h.Get(static_cast<VarId>(v)) << ',';
    }
  }
  return os.str();
}

/// Unifies `atom` with the values of `fact`'s tuple inside `binding`.
/// Returns false (leaving the binding untouched) on clash.
bool UnifyAtomWithFact(const Atom& atom, const Tuple& tuple,
                       Binding* binding) {
  std::vector<VarId> bound;
  for (size_t col = 0; col < atom.terms.size(); ++col) {
    const Term& t = atom.terms[col];
    const Value& v = tuple.at(col);
    bool ok;
    if (t.is_const()) {
      ok = (t.value() == v);
    } else if (binding->IsBound(t.var())) {
      ok = (binding->Get(t.var()) == v);
    } else {
      binding->Set(t.var(), v);
      bound.push_back(t.var());
      ok = true;
    }
    if (!ok) {
      for (VarId u : bound) binding->Unset(u);
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<FactRef> ConsequenceForest::DerivedFacts() const {
  std::vector<FactRef> facts;
  facts.reserve(producer.size());
  for (size_t i = 0; i < produced.size(); ++i) {
    for (const FactRef& f : produced[i]) facts.push_back(f);
  }
  return facts;
}

Route ConsequenceForest::RouteFor(const FactRef& fact,
                                  const SchemaMapping& mapping,
                                  const Instance& source,
                                  const Instance& target) const {
  SPIDER_CHECK(producer.count(fact) > 0,
               "fact was not derived from the selected source tuples");
  std::unordered_set<size_t> needed;
  std::vector<FactRef> stack = {fact};
  while (!stack.empty()) {
    FactRef f = stack.back();
    stack.pop_back();
    auto it = producer.find(f);
    SPIDER_CHECK(it != producer.end(),
                 "internal error: derived fact has no producer");
    if (!needed.insert(it->second).second) continue;
    const SatStep& step = steps[it->second];
    for (const FactRef& lhs :
         LhsFacts(mapping, step.tgd, step.h, source, target)) {
      if (lhs.side == Side::kTarget) stack.push_back(lhs);
    }
  }
  std::vector<size_t> order(needed.begin(), needed.end());
  std::sort(order.begin(), order.end());
  std::vector<SatStep> route_steps;
  route_steps.reserve(order.size());
  for (size_t i : order) route_steps.push_back(steps[i]);
  return Route(std::move(route_steps));
}

ConsequenceForest ComputeSourceConsequences(
    const SchemaMapping& mapping, const Instance& source,
    const Instance& target, const std::vector<FactRef>& selected,
    const SourceRouteOptions& options) {
  obs::TraceSpan span("routes", "source_consequences");
  span.AddArg("selected", static_cast<int64_t>(selected.size()));
  if (obs::MetricsEnabled()) {
    obs::Registry::Global().GetCounter("routes.source_consequence_runs")
        ->Increment();
  }
  ConsequenceForest forest;
  forest.selected = selected;
  std::unordered_set<std::string> seen_steps;
  std::unordered_set<FactRef, FactRefHash> derived;
  std::vector<FactRef> worklist;

  auto record_step = [&](TgdId tgd, const Binding& h) {
    SatStep step{tgd, h};
    if (!seen_steps.insert(StepKey(step)).second) return;
    if (forest.steps.size() >= options.max_steps) {
      forest.truncated = true;
      return;
    }
    std::vector<FactRef> new_facts;
    for (const FactRef& f : RhsFacts(mapping, tgd, h, target)) {
      if (derived.insert(f).second) {
        forest.producer.emplace(f, forest.steps.size());
        new_facts.push_back(f);
        worklist.push_back(f);
      }
    }
    forest.steps.push_back(std::move(step));
    forest.produced.push_back(std::move(new_facts));
  };

  /// Enumerates all satisfaction steps of `tgd` whose LHS uses `fact`
  /// (which lives in `lhs_instance`), with RHS inside J, feeding each RHS
  /// binding to `emit` (which returns false to stop the enumeration). For
  /// target tgds, only steps whose other LHS facts are already derived are
  /// emitted. With a collecting `emit` this is a pure read of the
  /// instances, so it can run on any exec worker.
  auto explore = [&](TgdId tgd, const FactRef& fact,
                     const Instance& lhs_instance,
                     const std::function<bool(const Binding&)>& emit) {
    const Tgd& dep = mapping.tgd(tgd);
    const Tuple& tuple = lhs_instance.tuple(fact.relation, fact.row);
    for (size_t a = 0; a < dep.lhs().size(); ++a) {
      if (dep.lhs()[a].relation != fact.relation) continue;
      Binding binding(dep.num_vars());
      if (!UnifyAtomWithFact(dep.lhs()[a], tuple, &binding)) continue;
      MatchIterator lhs_it(lhs_instance, dep.lhs(), &binding,
                           options.route.eval);
      while (lhs_it.Next()) {
        if (!dep.source_to_target()) {
          // All LHS facts must have been derived already.
          bool ready = true;
          for (const FactRef& f :
               ResolveFacts(target, Side::kTarget, dep.lhs(), binding)) {
            if (derived.count(f) == 0) {
              ready = false;
              break;
            }
          }
          if (!ready) continue;
        }
        Binding rhs_binding = binding;
        MatchIterator rhs_it(target, dep.rhs(), &rhs_binding,
                             options.route.eval);
        while (rhs_it.Next()) {
          if (!emit(rhs_binding)) return;
        }
      }
    }
  };

  for (const FactRef& fact : selected) {
    SPIDER_CHECK(fact.side == Side::kSource,
                 "ComputeSourceConsequences selects source facts");
    SPIDER_CHECK(static_cast<size_t>(fact.relation) < source.NumRelations() &&
                     static_cast<size_t>(fact.row) <
                         source.NumTuples(fact.relation),
                 "selected source fact is out of range");
  }

  // Seeding stage: s-t steps touch only the immutable source and target,
  // and recording a step never influences which s-t steps match — so the
  // (selected fact × s-t tgd) grid fans out over the exec pool into
  // per-pair buffers. The merge then replays record_step in the exact
  // order the sequential loop used (fact-major, tgd-minor, match order),
  // so the forest — dedup, step ids, truncation point — is byte-identical
  // at every thread count.
  const std::vector<TgdId>& st_tgds = mapping.st_tgds();
  size_t num_pairs = selected.size() * st_tgds.size();
  std::vector<std::vector<Binding>> pair_steps(num_pairs);
  ThreadPool* pool = ThreadPool::For(options.route.exec);
  if (pool != nullptr && options.route.eval.use_indexes) {
    source.WarmIndexes();
    target.WarmIndexes();
  }
  ParallelFor(pool, 0, num_pairs, options.route.exec.grain, [&](size_t p) {
    const FactRef& fact = selected[p / st_tgds.size()];
    TgdId tgd = st_tgds[p % st_tgds.size()];
    explore(tgd, fact, source, [&](const Binding& h) {
      pair_steps[p].push_back(h);
      return true;
    });
  });
  for (size_t p = 0; p < num_pairs; ++p) {
    TgdId tgd = st_tgds[p % st_tgds.size()];
    for (const Binding& h : pair_steps[p]) {
      record_step(tgd, h);
      if (forest.truncated) return forest;
    }
  }

  // Target-tgd fixpoint: derivations depend on the evolving `derived` set,
  // so this stage stays sequential (and identical for every thread count).
  while (!worklist.empty()) {
    FactRef fact = worklist.back();
    worklist.pop_back();
    for (TgdId tgd : mapping.target_tgds()) {
      bool stopped = false;
      explore(tgd, fact, target, [&](const Binding& h) {
        record_step(tgd, h);
        stopped = forest.truncated;
        return !stopped;
      });
      if (stopped) return forest;
    }
  }
  return forest;
}

}  // namespace spider
