#ifndef SPIDER_ROUTES_SOURCE_ROUTES_H_
#define SPIDER_ROUTES_SOURCE_ROUTES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/tuple.h"
#include "mapping/schema_mapping.h"
#include "routes/options.h"
#include "routes/route.h"
#include "storage/instance.h"

namespace spider {

/// Routes for selected SOURCE facts (§3.4): which target data do the
/// selected source tuples contribute to, and through which tgds?
///
/// ComputeSourceConsequences explores forward from the selected facts: first
/// every s-t satisfaction step whose LHS uses a selected fact (and whose RHS
/// lies in J), then every target-tgd step whose LHS facts have all been
/// derived, to a fixpoint bounded by `max_steps`. The result records, for
/// each derived target fact, the step that first derived it; RouteFor
/// extracts a route (in the sense of Definition 3.3) that starts at a
/// selected source fact and witnesses any chosen derived fact.
struct ConsequenceForest {
  /// All satisfaction steps discovered, in derivation order (a step's LHS
  /// target facts are always produced by earlier steps).
  std::vector<SatStep> steps;
  /// The facts each step produced that were new at the time.
  std::vector<std::vector<FactRef>> produced;
  /// fact -> index into `steps` of its first producer.
  std::unordered_map<FactRef, size_t, FactRefHash> producer;
  /// The selected source facts the exploration started from.
  std::vector<FactRef> selected;
  bool truncated = false;

  /// All target facts derived from the selection.
  std::vector<FactRef> DerivedFacts() const;

  /// A route producing `fact` (which must be a derived target fact): the
  /// backward closure of producing steps, in derivation order. Throws
  /// SpiderError when the fact was not derived.
  Route RouteFor(const FactRef& fact, const SchemaMapping& mapping,
                 const Instance& source, const Instance& target) const;
};

struct SourceRouteOptions {
  RouteOptions route;
  /// Bound on the number of satisfaction steps explored.
  size_t max_steps = 100'000;
};

ConsequenceForest ComputeSourceConsequences(
    const SchemaMapping& mapping, const Instance& source,
    const Instance& target, const std::vector<FactRef>& selected,
    const SourceRouteOptions& options = {});

}  // namespace spider

#endif  // SPIDER_ROUTES_SOURCE_ROUTES_H_
