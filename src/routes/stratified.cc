#include "routes/stratified.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "base/status.h"
#include "routes/fact_util.h"

namespace spider {

StratifiedInterpretation Stratify(const Route& route,
                                  const SchemaMapping& mapping,
                                  const Instance& source,
                                  const Instance& target) {
  struct StepFacts {
    std::vector<FactRef> lhs;
    std::vector<FactRef> rhs;
  };
  std::vector<StepFacts> facts;
  facts.reserve(route.size());
  for (const SatStep& step : route.steps()) {
    facts.push_back(StepFacts{
        LhsFacts(mapping, step.tgd, step.h, source, target),
        RhsFacts(mapping, step.tgd, step.h, target)});
  }

  // Minimal fact ranks, to a fixpoint. Source facts have rank 0 and are not
  // stored; target facts start unranked (absent).
  std::unordered_map<FactRef, int, FactRefHash> rank;
  auto lhs_rank = [&](const StepFacts& sf) -> int {
    // Returns the max rank of the LHS facts, or -1 when some fact is
    // unranked.
    int max_rank = 0;
    for (const FactRef& f : sf.lhs) {
      if (f.side == Side::kSource) continue;
      auto it = rank.find(f);
      if (it == rank.end()) return -1;
      max_rank = std::max(max_rank, it->second);
    }
    return max_rank;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const StepFacts& sf : facts) {
      int base = lhs_rank(sf);
      if (base < 0) continue;
      int step_rank = base + 1;
      for (const FactRef& f : sf.rhs) {
        auto it = rank.find(f);
        if (it == rank.end() || it->second > step_rank) {
          rank[f] = step_rank;
          changed = true;
        }
      }
    }
  }

  // Assign each step to the block given by its LHS ranks.
  StratifiedInterpretation strat;
  for (size_t i = 0; i < facts.size(); ++i) {
    int base = lhs_rank(facts[i]);
    SPIDER_CHECK(base >= 0,
                 "cannot stratify: a step's LHS fact is never produced "
                 "(is the route valid?)");
    size_t block = static_cast<size_t>(base);  // block index = rank-1
    if (strat.blocks.size() <= block) strat.blocks.resize(block + 1);
    strat.blocks[block].push_back(route.steps()[i]);
  }
  for (std::vector<SatStep>& block : strat.blocks) {
    std::sort(block.begin(), block.end(), SatStepLess);
    block.erase(std::unique(block.begin(), block.end()), block.end());
  }
  return strat;
}

std::string StratifiedInterpretation::ToString(
    const SchemaMapping& mapping) const {
  std::ostringstream os;
  for (size_t k = 0; k < blocks.size(); ++k) {
    if (k > 0) os << " | ";
    os << "rank " << (k + 1) << ": ";
    for (size_t i = 0; i < blocks[k].size(); ++i) {
      if (i > 0) os << ", ";
      os << mapping.tgd(blocks[k][i].tgd).name();
    }
  }
  return os.str();
}

}  // namespace spider
