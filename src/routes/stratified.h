#ifndef SPIDER_ROUTES_STRATIFIED_H_
#define SPIDER_ROUTES_STRATIFIED_H_

#include <string>
#include <vector>

#include "routes/route.h"

namespace spider {

/// The stratified interpretation strat(R) of a route (§3.1): the (σ, h)
/// pairs of the route partitioned into rank blocks. Source facts have rank
/// 0; a fact has rank k when some step produces it from LHS facts of maximum
/// rank k-1 and no step gives it a lower rank; a step belongs to block k
/// when the maximum rank of its LHS facts is k-1.
///
/// Two routes are strat-equivalent iff they have the same blocks as sets —
/// equivalently, they use the same set of satisfaction steps. Theorem 3.7
/// states every minimal route appears, up to strat-equivalence, in the
/// NaivePrint output of the route forest.
struct StratifiedInterpretation {
  /// blocks[k] holds the steps of rank k+1, canonically sorted and deduped.
  std::vector<std::vector<SatStep>> blocks;

  /// The rank of the route: the number of blocks.
  size_t rank() const { return blocks.size(); }

  /// Renders as `rank 1: m1, m2 | rank 2: m3 | ...`.
  std::string ToString(const SchemaMapping& mapping) const;

  friend bool operator==(const StratifiedInterpretation&,
                         const StratifiedInterpretation&) = default;
};

/// Computes strat(R). The route must be valid for its produced facts.
StratifiedInterpretation Stratify(const Route& route,
                                  const SchemaMapping& mapping,
                                  const Instance& source,
                                  const Instance& target);

}  // namespace spider

#endif  // SPIDER_ROUTES_STRATIFIED_H_
