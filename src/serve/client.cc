#include "serve/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/status.h"
#include "serve/wire.h"

namespace spider::serve {

Client::~Client() { Close(); }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    default_deadline_ms_ = other.default_deadline_ms_;
    in_ = std::move(other.in_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  SPIDER_CHECK(fd_ >= 0, "socket() failed");
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw SpiderError("Client: bad host address: " + host);
  }
  if (connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    Close();
    throw SpiderError("Client: connect to " + host + ":" +
                      std::to_string(port) + " failed");
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  in_.clear();
}

void Client::SendRaw(std::string_view bytes) {
  SPIDER_CHECK(fd_ >= 0, "Client: not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw SpiderError("Client: connection lost while sending");
    sent += static_cast<size_t>(n);
  }
}

bool Client::ReadResponse(Response* response) {
  SPIDER_CHECK(fd_ >= 0, "Client: not connected");
  for (;;) {
    std::string payload;
    // Replies are small; a 16 MiB ceiling guards against desync garbage.
    FrameStatus status = NextFrame(&in_, 16u << 20, &payload);
    if (status == FrameStatus::kFrame) {
      std::string error;
      if (!DecodeResponse(payload, response, &error)) {
        throw SpiderError("Client: " + error);
      }
      return true;
    }
    if (status != FrameStatus::kNeedMore) {
      throw SpiderError("Client: malformed response frame");
    }
    char buf[64 * 1024];
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // Server closed the connection.
    in_.append(buf, static_cast<size_t>(n));
  }
}

uint64_t Client::Send(Request request) {
  if (request.request_id == 0) request.request_id = next_request_id_++;
  if (request.deadline_ms == 0) request.deadline_ms = default_deadline_ms_;
  std::string frame;
  AppendFrame(EncodeRequest(request), &frame);
  SendRaw(frame);
  return request.request_id;
}

uint64_t Client::SendCancel(uint64_t target_request_id) {
  Request request;
  request.type = MsgType::kCancel;
  request.target_request_id = target_request_id;
  return Send(std::move(request));
}

Response Client::Call(Request request) {
  uint64_t request_id = Send(std::move(request));
  Response response;
  if (!ReadResponse(&response)) {
    throw SpiderError("Client: connection closed before reply");
  }
  if (response.request_id != request_id) {
    throw SpiderError("Client: reply for wrong request id");
  }
  return response;
}

Response Client::CallType(MsgType type, uint64_t session_id, std::string text,
                          std::vector<DeltaOp> ops) {
  Request request;
  request.type = type;
  request.session_id = session_id;
  request.text = std::move(text);
  request.ops = std::move(ops);
  return Call(std::move(request));
}

Response Client::CreateSession(uint64_t session_id,
                               std::string scenario_text) {
  return CallType(MsgType::kCreateSession, session_id,
                  std::move(scenario_text));
}

Response Client::LoadSession(uint64_t session_id, std::string spec) {
  return CallType(MsgType::kLoadSession, session_id, std::move(spec));
}

Response Client::CloseSession(uint64_t session_id) {
  return CallType(MsgType::kCloseSession, session_id, "");
}

Response Client::ApplyDelta(uint64_t session_id, std::vector<DeltaOp> ops) {
  return CallType(MsgType::kApplyDelta, session_id, "", std::move(ops));
}

Response Client::Route(uint64_t session_id, std::string fact) {
  return CallType(MsgType::kRoute, session_id, std::move(fact));
}

Response Client::AllRoutes(uint64_t session_id, std::string fact) {
  return CallType(MsgType::kAllRoutes, session_id, std::move(fact));
}

Response Client::Lint(uint64_t session_id) {
  return CallType(MsgType::kLint, session_id, "");
}

Response Client::Analyze(uint64_t session_id, std::string spec) {
  return CallType(MsgType::kAnalyze, session_id, std::move(spec));
}

Response Client::Ping() { return CallType(MsgType::kPing, 0, ""); }

Response Client::Stats() { return CallType(MsgType::kStats, 0, ""); }

}  // namespace spider::serve
