#ifndef SPIDER_SERVE_CLIENT_H_
#define SPIDER_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/protocol.h"

namespace spider::serve {

/// A blocking client for the spider::serve wire protocol: one TCP
/// connection, one outstanding request at a time (Call sends a frame and
/// blocks for its reply). Concurrency comes from running one Client per
/// thread — which is exactly how the bench driver and the differential
/// test use it. Not thread-safe.
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept;

  /// Connects to `host:port` (dotted-quad host). Throws SpiderError.
  void Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends the request (request_id assigned when 0) and blocks for the
  /// matching reply. Throws SpiderError on connection loss or a protocol
  /// violation; server-side failures come back as kError responses.
  /// Requests whose deadline_ms is 0 inherit default_deadline_ms.
  Response Call(Request request);

  /// Sends the request without waiting for the reply and returns the
  /// request id it went out under. Replies arrive in completion order via
  /// ReadResponse — this is how the cancellation tests pipeline a slow
  /// probe, a parked probe, and the kCancel that kills it.
  uint64_t Send(Request request);

  /// Deadline stamped onto outgoing requests that do not set their own.
  /// 0 (default) sends no deadline (the server may still apply its own).
  void set_default_deadline_ms(uint32_t ms) { default_deadline_ms_ = ms; }

  /// Best-effort cancel of an earlier request from THIS connection. The
  /// ack text is "cancelled" (parked target killed; its kCancelled reply
  /// precedes the ack on the wire), "cancel_pending" (in flight; reply
  /// arrives when the engine aborts) or "not_found" (already completed).
  /// Only safe with Send()-style pipelining or from the Call of another
  /// request id — there is one socket.
  uint64_t SendCancel(uint64_t target_request_id);

  // Convenience wrappers.
  Response CreateSession(uint64_t session_id, std::string scenario_text);
  Response LoadSession(uint64_t session_id, std::string spec);
  Response CloseSession(uint64_t session_id);
  Response ApplyDelta(uint64_t session_id, std::vector<DeltaOp> ops);
  Response Route(uint64_t session_id, std::string fact);
  Response AllRoutes(uint64_t session_id, std::string fact);
  Response Lint(uint64_t session_id);
  /// Whole-mapping static analysis; `spec` is the kAnalyze token grammar
  /// ("", "fast", "min-cover", "reachability", space-separated).
  Response Analyze(uint64_t session_id, std::string spec);
  Response Ping();
  Response Stats();

  /// Writes raw bytes to the socket, bypassing framing — the fuzz test's
  /// way of feeding the server truncated and garbage streams.
  void SendRaw(std::string_view bytes);
  /// Blocks for one response frame (used after SendRaw). Returns false
  /// when the server closed the connection instead of replying.
  bool ReadResponse(Response* response);

 private:
  Response CallType(MsgType type, uint64_t session_id, std::string text,
                    std::vector<DeltaOp> ops = {});

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint32_t default_deadline_ms_ = 0;
  std::string in_;
};

}  // namespace spider::serve

#endif  // SPIDER_SERVE_CLIENT_H_
