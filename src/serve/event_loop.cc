#include "serve/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include "base/status.h"

namespace spider::serve {

namespace {

uint64_t MonotonicNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  SPIDER_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(O_NONBLOCK) failed");
}

}  // namespace

EventLoop::EventLoop() {
  start_ns_ = MonotonicNs();
  int pipe_fds[2];
  SPIDER_CHECK(pipe(pipe_fds) == 0, "EventLoop: pipe() failed");
  wakeup_read_fd_ = pipe_fds[0];
  wakeup_write_fd_ = pipe_fds[1];
  SetNonBlocking(wakeup_read_fd_);
  SetNonBlocking(wakeup_write_fd_);
#if defined(__linux__)
  epoll_fd_ = epoll_create1(0);
  SPIDER_CHECK(epoll_fd_ >= 0, "EventLoop: epoll_create1 failed");
  struct epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_read_fd_;
  SPIDER_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_read_fd_, &ev) == 0,
               "EventLoop: epoll_ctl(wakeup) failed");
#endif
}

EventLoop::~EventLoop() {
#if defined(__linux__)
  if (epoll_fd_ >= 0) close(epoll_fd_);
#endif
  close(wakeup_read_fd_);
  close(wakeup_write_fd_);
}

uint64_t EventLoop::NowMs() const {
  return (MonotonicNs() - start_ns_) / 1'000'000ull;
}

void EventLoop::WatchFd(int fd, bool want_read, bool want_write,
                        FdCallback callback) {
  SPIDER_CHECK(fds_.find(fd) == fds_.end(), "EventLoop: fd already watched");
  uint32_t mask =
      (want_read ? kEventRead : 0u) | (want_write ? kEventWrite : 0u);
  fds_[fd] = FdEntry{mask, std::move(callback)};
#if defined(__linux__)
  struct epoll_event ev = {};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  SPIDER_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
               "EventLoop: epoll_ctl(add) failed");
#endif
}

void EventLoop::UpdateFd(int fd, bool want_read, bool want_write) {
  auto it = fds_.find(fd);
  SPIDER_CHECK(it != fds_.end(), "EventLoop: update of unwatched fd");
  it->second.mask =
      (want_read ? kEventRead : 0u) | (want_write ? kEventWrite : 0u);
#if defined(__linux__)
  struct epoll_event ev = {};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  SPIDER_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
               "EventLoop: epoll_ctl(mod) failed");
#endif
}

void EventLoop::ForgetFd(int fd) {
  if (fds_.erase(fd) == 0) return;
#if defined(__linux__)
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
}

uint64_t EventLoop::AddTimer(uint64_t delay_ms, std::function<void()> callback) {
  uint64_t id = next_timer_id_++;
  timers_.push(Timer{NowMs() + delay_ms, id});
  timer_callbacks_[id] = std::move(callback);
  return id;
}

void EventLoop::CancelTimer(uint64_t timer_id) {
  // The heap entry stays behind and is skipped when it surfaces.
  timer_callbacks_.erase(timer_id);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wakeup();
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    stop_ = true;
  }
  Wakeup();
}

void EventLoop::Wakeup() {
  char byte = 1;
  // EAGAIN means the pipe already holds a pending wakeup — good enough.
  [[maybe_unused]] ssize_t n = write(wakeup_write_fd_, &byte, 1);
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::FireDueTimers() {
  uint64_t now = NowMs();
  while (!timers_.empty() && timers_.top().deadline_ms <= now) {
    Timer timer = timers_.top();
    timers_.pop();
    auto it = timer_callbacks_.find(timer.id);
    if (it == timer_callbacks_.end()) continue;  // Cancelled.
    std::function<void()> callback = std::move(it->second);
    timer_callbacks_.erase(it);
    callback();
  }
}

void EventLoop::Run() {
  for (;;) {
    DrainPosted();
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (stop_) {
        stop_ = false;
        return;
      }
    }
    FireDueTimers();
    int timeout_ms = -1;
    if (!timers_.empty()) {
      uint64_t now = NowMs();
      uint64_t deadline = timers_.top().deadline_ms;
      timeout_ms = deadline <= now ? 0 : static_cast<int>(deadline - now);
    }
    PollOnce(timeout_ms);
  }
}

void EventLoop::PollOnce(int timeout_ms) {
#if defined(__linux__)
  struct epoll_event events[64];
  int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) {
    SPIDER_CHECK(errno == EINTR, "EventLoop: epoll_wait failed");
    return;
  }
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    if (fd == wakeup_read_fd_) {
      char drain[64];
      while (read(wakeup_read_fd_, drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    uint32_t ready = 0;
    if (events[i].events & EPOLLIN) ready |= kEventRead;
    if (events[i].events & EPOLLOUT) ready |= kEventWrite;
    if (events[i].events & (EPOLLERR | EPOLLHUP)) ready |= kEventError;
    // The callback may close other fds; re-check liveness per event.
    auto it = fds_.find(fd);
    if (it == fds_.end() || it->second.callback == nullptr) continue;
    FdCallback callback = it->second.callback;  // Copy: cb may ForgetFd(fd).
    callback(ready);
  }
#else
  std::vector<struct pollfd> pfds;
  pfds.reserve(fds_.size() + 1);
  pfds.push_back({wakeup_read_fd_, POLLIN, 0});
  for (const auto& [fd, entry] : fds_) {
    short events = 0;
    if (entry.mask & kEventRead) events |= POLLIN;
    if (entry.mask & kEventWrite) events |= POLLOUT;
    pfds.push_back({fd, events, 0});
  }
  int n = poll(pfds.data(), pfds.size(), timeout_ms);
  if (n < 0) {
    SPIDER_CHECK(errno == EINTR, "EventLoop: poll failed");
    return;
  }
  if (pfds[0].revents & POLLIN) {
    char drain[64];
    while (read(wakeup_read_fd_, drain, sizeof(drain)) > 0) {
    }
  }
  for (size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    uint32_t ready = 0;
    if (pfds[i].revents & POLLIN) ready |= kEventRead;
    if (pfds[i].revents & POLLOUT) ready |= kEventWrite;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) ready |= kEventError;
    auto it = fds_.find(pfds[i].fd);
    if (it == fds_.end() || it->second.callback == nullptr) continue;
    FdCallback callback = it->second.callback;
    callback(ready);
  }
#endif
}

}  // namespace spider::serve
