#ifndef SPIDER_SERVE_EVENT_LOOP_H_
#define SPIDER_SERVE_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

namespace spider::serve {

/// Readiness bits delivered to fd callbacks.
inline constexpr uint32_t kEventRead = 1;
inline constexpr uint32_t kEventWrite = 2;
inline constexpr uint32_t kEventError = 4;  ///< HUP/ERR — drop the fd.

/// A single-threaded readiness event loop: level-triggered fd watching
/// (epoll on Linux, poll(2) elsewhere), a monotonic one-shot timer queue,
/// and a thread-safe Post() that hands closures to the loop thread through
/// a self-pipe. Everything except Post() and Stop() must be called on the
/// loop thread (or before Run()).
///
/// This is the IO half of spider::serve: sockets stay non-blocking and all
/// connection state is confined to the loop thread; CPU-heavy work leaves
/// the loop through the exec pool and re-enters via Post().
class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watches a non-blocking fd. `want_read`/`want_write` select the
  /// readiness the callback is interested in; kEventError is always
  /// delivered. The fd must not already be watched.
  void WatchFd(int fd, bool want_read, bool want_write, FdCallback callback);
  /// Adjusts interest for an already-watched fd (typically toggling write
  /// interest as a connection's output buffer fills and drains).
  void UpdateFd(int fd, bool want_read, bool want_write);
  /// Stops watching; the caller still owns (and closes) the fd.
  void ForgetFd(int fd);

  /// Arms a one-shot timer `delay_ms` from now; returns its id.
  uint64_t AddTimer(uint64_t delay_ms, std::function<void()> callback);
  /// Cancels a pending timer (no-op when already fired or unknown).
  void CancelTimer(uint64_t timer_id);

  /// Enqueues a closure to run on the loop thread. Thread-safe; safe after
  /// Stop() (the closure is then simply never run) — which is exactly what
  /// late exec-pool completions need during shutdown.
  void Post(std::function<void()> fn);

  /// Runs until Stop(). Dispatches, in order per iteration: posted
  /// closures, due timers, then ready fds.
  void Run();
  /// Thread-safe; wakes the loop and makes Run() return.
  void Stop();

  /// Milliseconds of CLOCK_MONOTONIC since the loop was constructed.
  uint64_t NowMs() const;

 private:
  struct FdEntry {
    uint32_t mask = 0;  ///< kEventRead | kEventWrite interest.
    FdCallback callback;
  };
  struct Timer {
    uint64_t deadline_ms = 0;
    uint64_t id = 0;
    bool operator>(const Timer& other) const {
      return deadline_ms != other.deadline_ms ? deadline_ms > other.deadline_ms
                                              : id > other.id;
    }
  };

  void DrainPosted();
  void FireDueTimers();
  /// Blocks in epoll/poll for at most `timeout_ms` and dispatches ready
  /// fds. -1 blocks until IO or a wakeup.
  void PollOnce(int timeout_ms);
  void Wakeup();

  int wakeup_read_fd_ = -1;
  int wakeup_write_fd_ = -1;
#if defined(__linux__)
  int epoll_fd_ = -1;
#endif
  uint64_t start_ns_ = 0;
  std::unordered_map<int, FdEntry> fds_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_map<uint64_t, std::function<void()>> timer_callbacks_;
  uint64_t next_timer_id_ = 1;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;  // Guarded by post_mu_.
  bool stop_ = false;                          // Guarded by post_mu_.
};

}  // namespace spider::serve

#endif  // SPIDER_SERVE_EVENT_LOOP_H_
