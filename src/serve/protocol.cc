#include "serve/protocol.h"

#include <utility>

namespace spider::serve {

namespace {

bool KnownRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kCreateSession) &&
         type <= static_cast<uint8_t>(MsgType::kAnalyze);
}

bool HasSessionId(MsgType type) {
  switch (type) {
    case MsgType::kPing:
    case MsgType::kStats:
    case MsgType::kCancel:  // Targets a request on this connection, not a
                            // session.
      return false;
    default:
      return true;
  }
}

bool HasText(MsgType type) {
  switch (type) {
    case MsgType::kCreateSession:
    case MsgType::kLoadSession:
    case MsgType::kRoute:
    case MsgType::kAllRoutes:
    case MsgType::kAnalyze:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(request.type));
  w.PutU64(request.request_id);
  w.PutU32(request.deadline_ms);
  if (HasSessionId(request.type)) w.PutU64(request.session_id);
  if (HasText(request.type)) w.PutString(request.text);
  if (request.type == MsgType::kCancel) w.PutU64(request.target_request_id);
  if (request.type == MsgType::kApplyDelta) {
    w.PutU32(static_cast<uint32_t>(request.ops.size()));
    for (const DeltaOp& op : request.ops) {
      w.PutU8(op.kind);
      w.PutString(op.fact);
    }
  }
  return w.Take();
}

std::string EncodeResponse(const Response& response) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(response.type));
  w.PutU64(response.request_id);
  w.PutU8(static_cast<uint8_t>(response.code));
  w.PutString(response.text);
  return w.Take();
}

bool DecodeRequest(std::string_view payload, Request* request,
                   std::string* error) {
  WireReader r(payload);
  uint8_t type = 0;
  if (!r.ReadU8(&type) || !r.ReadU64(&request->request_id)) {
    *error = "short frame";
    return false;
  }
  if (!KnownRequestType(type)) {
    *error = "unknown request type " + std::to_string(type);
    return false;
  }
  request->type = static_cast<MsgType>(type);
  if (!r.ReadU32(&request->deadline_ms)) {
    *error = "missing deadline field";
    return false;
  }
  if (HasSessionId(request->type) && !r.ReadU64(&request->session_id)) {
    *error = "missing session id";
    return false;
  }
  if (HasText(request->type) && !r.ReadString(&request->text)) {
    *error = "missing text field";
    return false;
  }
  if (request->type == MsgType::kCancel &&
      !r.ReadU64(&request->target_request_id)) {
    *error = "missing cancel target";
    return false;
  }
  if (request->type == MsgType::kApplyDelta) {
    uint32_t n = 0;
    if (!r.ReadU32(&n)) {
      *error = "missing op count";
      return false;
    }
    // Each op is at least 5 bytes (kind + empty string), so a count larger
    // than the remaining payload is garbage — reject before reserving.
    if (n > r.remaining()) {
      *error = "op count exceeds payload";
      return false;
    }
    request->ops.resize(n);
    for (DeltaOp& op : request->ops) {
      if (!r.ReadU8(&op.kind) || !r.ReadString(&op.fact)) {
        *error = "truncated delta op";
        return false;
      }
      if (op.kind > DeltaOp::kDelete) {
        *error = "unknown delta op kind";
        return false;
      }
    }
  }
  if (!r.AtEnd()) {
    *error = "trailing bytes after request";
    return false;
  }
  return true;
}

bool DecodeResponse(std::string_view payload, Response* response,
                    std::string* error) {
  WireReader r(payload);
  uint8_t type = 0;
  uint8_t code = 0;
  if (!r.ReadU8(&type) || !r.ReadU64(&response->request_id) ||
      !r.ReadU8(&code) || !r.ReadString(&response->text) || !r.AtEnd()) {
    *error = "malformed response frame";
    return false;
  }
  if (type != static_cast<uint8_t>(MsgType::kReply) &&
      type != static_cast<uint8_t>(MsgType::kError)) {
    *error = "unknown response type " + std::to_string(type);
    return false;
  }
  response->type = static_cast<MsgType>(type);
  response->code = static_cast<ErrorCode>(code);
  return true;
}

Response OkResponse(uint64_t request_id, std::string text) {
  Response response;
  response.type = MsgType::kReply;
  response.request_id = request_id;
  response.text = std::move(text);
  return response;
}

Response ErrorResponse(uint64_t request_id, ErrorCode code,
                       std::string message) {
  Response response;
  response.type = MsgType::kError;
  response.request_id = request_id;
  response.code = code;
  response.text = std::move(message);
  return response;
}

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kCreateSession: return "create_session";
    case MsgType::kLoadSession: return "load_session";
    case MsgType::kCloseSession: return "close_session";
    case MsgType::kApplyDelta: return "apply_delta";
    case MsgType::kRoute: return "route";
    case MsgType::kAllRoutes: return "all_routes";
    case MsgType::kLint: return "lint";
    case MsgType::kPing: return "ping";
    case MsgType::kStats: return "stats";
    case MsgType::kCancel: return "cancel";
    case MsgType::kAnalyze: return "analyze";
    case MsgType::kReply: return "reply";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kNoSuchSession: return "no_such_session";
    case ErrorCode::kSessionExists: return "session_exists";
    case ErrorCode::kOverBudget: return "over_budget";
    case ErrorCode::kEngineError: return "engine_error";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kReplyTooLarge: return "reply_too_large";
  }
  return "unknown";
}

}  // namespace spider::serve
