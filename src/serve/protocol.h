#ifndef SPIDER_SERVE_PROTOCOL_H_
#define SPIDER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace spider::serve {

/// Message types of the spider::serve wire protocol. Requests are sent by
/// clients; every request is answered by exactly one kReply or kError
/// carrying the same request id (replies to different sessions may arrive
/// out of order — the id is the correlation key).
enum class MsgType : uint8_t {
  // Requests.
  kCreateSession = 1,  ///< text = scenario source (ParseScenario syntax).
  kLoadSession = 2,    ///< text = workload spec, e.g. "random:7".
  kCloseSession = 3,
  kApplyDelta = 4,     ///< ops = source edits applied as one batch.
  kRoute = 5,          ///< text = target fact, e.g. "T(1, 3)".
  kAllRoutes = 6,      ///< text = target fact; reply renders the forest.
  kLint = 7,
  kPing = 8,
  kStats = 9,
  /// Cancels the same-connection request whose id is `target_request_id`:
  /// a parked request is killed in O(1) and answered kCancelled without
  /// ever starting; an executing one gets its token flipped (best effort —
  /// completion may still win the race). The kCancel frame itself gets an
  /// ack reply ("cancelled" / "cancel_pending" / "not_found").
  kCancel = 10,
  /// Whole-mapping static analysis of the session's loaded mapping. text =
  /// space-separated spec tokens: "" or "fast" (structural passes only),
  /// "full" (adds the chase-based passes), "min-cover", "reachability"
  /// (addable to either). Results are cached by mapping content hash.
  kAnalyze = 11,
  // Responses.
  kReply = 64,
  kError = 65,
};

/// Error codes carried by kError responses.
enum class ErrorCode : uint8_t {
  kNone = 0,
  kBadRequest = 1,    ///< Undecodable payload or unknown message type.
  kNoSuchSession = 2,
  kSessionExists = 3,
  kOverBudget = 4,    ///< Admission control rejected the session.
  kEngineError = 5,   ///< SpiderError from the debugger/chase machinery.
  kShuttingDown = 6,
  kDeadlineExceeded = 7,  ///< The request's deadline_ms elapsed.
  kCancelled = 8,         ///< A kCancel killed the request.
  kReplyTooLarge = 9,     ///< Reply exceeded the manager's max_reply_bytes.
};

/// One source-edit operation inside a kApplyDelta batch. The fact is
/// written in the textual fact syntax (`Rel(v1, ...)`).
struct DeltaOp {
  enum : uint8_t { kInsert = 0, kDelete = 1 };
  uint8_t kind = kInsert;
  std::string fact;
};

/// A decoded request. `session_id` is CLIENT-chosen (any u64): the server
/// never allocates ids, which keeps scripted replays byte-identical no
/// matter how sessions interleave. Unused fields are empty.
struct Request {
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;
  /// Per-request deadline in milliseconds from arrival; 0 means "no
  /// deadline" (the server may still impose ServerOptions::
  /// default_deadline_ms). Expiry answers the request kDeadlineExceeded —
  /// immediately while parked, at the next engine cancellation point while
  /// executing.
  uint32_t deadline_ms = 0;
  uint64_t session_id = 0;
  std::string text;
  /// kCancel: the same-connection request id to kill.
  uint64_t target_request_id = 0;
  std::vector<DeltaOp> ops;
};

/// A decoded response. `text` carries the rendered result for kReply and
/// the error message for kError.
struct Response {
  MsgType type = MsgType::kReply;
  uint64_t request_id = 0;
  ErrorCode code = ErrorCode::kNone;
  std::string text;
};

/// Serializes a request/response into a frame payload (no length prefix —
/// AppendFrame adds it).
std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

/// Decodes a frame payload. Returns false (and fills *error) on any
/// malformed content: unknown type, short reads, trailing bytes, or an ops
/// count that exceeds the payload.
bool DecodeRequest(std::string_view payload, Request* request,
                   std::string* error);
bool DecodeResponse(std::string_view payload, Response* response,
                    std::string* error);

/// Convenience constructors.
Response OkResponse(uint64_t request_id, std::string text);
Response ErrorResponse(uint64_t request_id, ErrorCode code,
                       std::string message);

const char* MsgTypeName(MsgType type);
const char* ErrorCodeName(ErrorCode code);

}  // namespace spider::serve

#endif  // SPIDER_SERVE_PROTOCOL_H_
