#include "serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "base/status.h"
#include "serve/wire.h"

namespace spider::serve {

namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  SPIDER_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(O_NONBLOCK) failed");
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), manager_(options_.manager) {}

Server::~Server() { Stop(); }

SocketOps* Server::sockets() const {
  return options_.socket_ops != nullptr ? options_.socket_ops
                                        : RealSocketOps();
}

size_t Server::hard_out_limit() const {
  return options_.conn_out_hard_limit_bytes != 0
             ? options_.conn_out_hard_limit_bytes
             : options_.max_conn_out_bytes * 4;
}

ServerNetStats Server::netstats() const {
  ServerNetStats s;
  s.read_suspends = read_suspends_.load(std::memory_order_relaxed);
  s.conns_dropped = conns_dropped_.load(std::memory_order_relaxed);
  s.cancels_received = cancels_received_.load(std::memory_order_relaxed);
  s.peak_conn_out_bytes = peak_conn_out_bytes_.load(std::memory_order_relaxed);
  return s;
}

void Server::Start() {
  SPIDER_CHECK(!started_, "Server::Start called twice");
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  SPIDER_CHECK(listen_fd_ >= 0, "socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw SpiderError("bad bind address: " + options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd_, 128) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw SpiderError("bind/listen failed on " + options_.bind_address + ":" +
                      std::to_string(options_.port));
  }
  socklen_t len = sizeof(addr);
  SPIDER_CHECK(getsockname(listen_fd_,
                           reinterpret_cast<struct sockaddr*>(&addr),
                           &len) == 0,
               "getsockname failed");
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  // WatchFd before the loop thread exists is the one safe off-thread use.
  loop_.WatchFd(listen_fd_, /*want_read=*/true, /*want_write=*/false,
                [this](uint32_t) { AcceptReady(); });
  ScheduleReap();
  started_ = true;
  shutting_down_.store(false, std::memory_order_relaxed);
  loop_thread_ = std::thread([this] { loop_.Run(); });
}

void Server::Stop() {
  if (!started_) return;
  shutting_down_.store(true, std::memory_order_relaxed);
  {
    // Pool tasks finish by Post()ing a completion; once inflight_ hits
    // zero nothing will touch the loop again, so it is safe to stop.
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  loop_.Stop();
  loop_thread_.join();
  {
    // A completion that ran between the wait and Stop() may have started a
    // parked request; with the loop dead no further ones can start, so one
    // more drain bounds every pool task referencing this server.
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  for (auto& [id, conn] : conns_) close(conn.fd);
  conns_.clear();
  conn_by_fd_.clear();
  busy_sessions_.clear();
  session_queues_.clear();
  pending_.clear();
  cancel_index_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void Server::AcceptReady() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      close(fd);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t conn_id = next_conn_id_++;
    conns_[conn_id] = Connection{fd, {}, {}, 0, false};
    conn_by_fd_[fd] = conn_id;
    loop_.WatchFd(fd, /*want_read=*/true, /*want_write=*/false,
                  [this, conn_id](uint32_t events) {
                    ConnReady(conn_id, events);
                  });
  }
}

void Server::ConnReady(uint64_t conn_id, uint32_t events) {
  if (events & kEventError) {
    CloseConn(conn_id);
    return;
  }
  if (events & kEventRead) ReadConn(conn_id);
  // ReadConn may have closed the connection; re-check before writing.
  if ((events & kEventWrite) && conns_.count(conn_id)) FlushConn(conn_id);
}

void Server::ReadConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  // Backpressured: the peer is slow consuming replies, so it does not get
  // to feed us more work either. FlushConn re-posts a read when it drains.
  if (conn.read_suspended) return;
  char buf[64 * 1024];
  bool eof = false;
  for (;;) {
    ssize_t n = sockets()->Read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer closed (or hard error). Frames already buffered still execute —
    // a request is not lost just because its sender hung up before the
    // reply — but only after the drain below; replies go nowhere.
    eof = true;
    break;
  }
  for (;;) {
    std::string payload;
    FrameStatus status =
        NextFrame(&conn.in, options_.max_payload_bytes, &payload);
    if (status == FrameStatus::kNeedMore) {
      // A trailing partial frame can never complete after EOF.
      if (eof) CloseConn(conn_id);
      return;
    }
    if (status != FrameStatus::kFrame) {
      // The length prefix is garbage or oversized: the stream can no
      // longer be re-synchronized. Tell the peer, then drop it.
      SendResponse(conn_id,
                   ErrorResponse(0, ErrorCode::kBadRequest,
                                 status == FrameStatus::kOversized
                                     ? "frame too large"
                                     : "malformed frame"));
      auto again = conns_.find(conn_id);
      if (again != conns_.end()) {
        FlushConn(conn_id);
        CloseConn(conn_id);
      }
      return;
    }
    HandleFrame(conn_id, payload);
    auto again = conns_.find(conn_id);
    if (again == conns_.end()) return;
    // The reply backlog crossed the soft cap mid-drain: stop parsing;
    // buffered frames wait in conn.in until the backlog clears.
    if (again->second.read_suspended) return;
    if (eof && again->second.in.empty()) {
      CloseConn(conn_id);
      return;
    }
  }
}

void Server::HandleFrame(uint64_t conn_id, const std::string& payload) {
  Request request;
  std::string error;
  if (!DecodeRequest(payload, &request, &error)) {
    // Framing was intact, so the stream stays usable: reply and carry on.
    SendResponse(conn_id, ErrorResponse(request.request_id,
                                        ErrorCode::kBadRequest, error));
    return;
  }
  if (shutting_down_.load(std::memory_order_relaxed)) {
    SendResponse(conn_id,
                 ErrorResponse(request.request_id, ErrorCode::kShuttingDown,
                               "server shutting down"));
    return;
  }
  Dispatch(conn_id, std::move(request));
}

void Server::HandleCancel(uint64_t conn_id, const Request& request) {
  cancels_received_.fetch_add(1, std::memory_order_relaxed);
  auto idx = cancel_index_.find({conn_id, request.target_request_id});
  uint64_t ticket = idx != cancel_index_.end() ? idx->second : 0;
  auto it = pending_.find(ticket);
  if (it == pending_.end()) {
    // Unknown, already completed, or already dead: nothing to kill.
    SendResponse(conn_id, OkResponse(request.request_id, "not_found\n"));
    return;
  }
  it->second.cancel->Cancel(CancelToken::Reason::kCancelled);
  if (it->second.executing) {
    // In flight: the engine observes the flipped token at its next safe
    // boundary; the target's kCancelled reply arrives via Complete.
    SendResponse(conn_id, OkResponse(request.request_id, "cancel_pending\n"));
    return;
  }
  // Parked: the request never starts. Reply for the target first, then
  // ack the cancel — the client sees them in cause-then-effect order.
  uint64_t target_conn = it->second.conn_id;
  uint64_t target_request = it->second.request_id;
  ErasePending(ticket);
  SendResponse(target_conn, ErrorResponse(target_request,
                                          ErrorCode::kCancelled, "cancelled"));
  SendResponse(conn_id, OkResponse(request.request_id, "cancelled\n"));
}

void Server::Dispatch(uint64_t conn_id, Request request) {
  // Ping/stats carry no session and are cheap: answer on the loop thread.
  if (request.type == MsgType::kPing || request.type == MsgType::kStats) {
    SendResponse(conn_id, manager_.Handle(request, loop_.NowMs()));
    return;
  }
  if (request.type == MsgType::kCancel) {
    HandleCancel(conn_id, request);
    return;
  }
  uint64_t ticket = next_ticket_++;
  PendingRequest& pend = pending_[ticket];
  pend.conn_id = conn_id;
  pend.request_id = request.request_id;
  pend.session_id = request.session_id;
  pend.cancel = std::make_shared<CancelToken>();
  uint64_t deadline_ms = request.deadline_ms != 0
                             ? request.deadline_ms
                             : options_.default_deadline_ms;
  if (deadline_ms != 0) {
    // The deadline is a loop timer flipping the token — the engine's hot
    // loops poll a relaxed atomic and never read the clock.
    pend.deadline_timer_id =
        loop_.AddTimer(deadline_ms, [this, ticket] { OnDeadline(ticket); });
  }
  cancel_index_[{conn_id, request.request_id}] = ticket;
  uint64_t session_id = request.session_id;
  if (busy_sessions_.count(session_id)) {
    session_queues_[session_id].emplace_back(ticket, std::move(request));
    return;
  }
  busy_sessions_.insert(session_id);
  Execute(ticket, std::move(request));
}

void Server::Execute(uint64_t ticket, Request request) {
  auto it = pending_.find(ticket);
  if (it == pending_.end()) return;  // Died while parked (defensive).
  it->second.executing = true;
  // The shared_ptr rides into the pool closure so the token outlives the
  // pending entry even if the request is cancelled mid-execution.
  std::shared_ptr<CancelToken> token = it->second.cancel;
  if (options_.pool == nullptr) {
    Response response = manager_.Handle(request, loop_.NowMs(), token.get());
    Complete(ticket, std::move(response));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  uint64_t now_ms = loop_.NowMs();
  options_.pool->SubmitClosure(
      [this, ticket, now_ms, token, request = std::move(request)] {
        Response response = manager_.Handle(request, now_ms, token.get());
        loop_.Post([this, ticket, response = std::move(response)]() mutable {
          Complete(ticket, std::move(response));
        });
        std::lock_guard<std::mutex> lock(inflight_mu_);
        --inflight_;
        inflight_cv_.notify_all();
      });
}

void Server::OnDeadline(uint64_t ticket) {
  auto it = pending_.find(ticket);
  if (it == pending_.end()) return;  // Completed just before firing.
  it->second.deadline_timer_id = 0;  // One-shot; it just fired.
  it->second.cancel->Cancel(CancelToken::Reason::kDeadline);
  // Executing: the engine aborts at its next poll and Complete delivers
  // the kDeadlineExceeded reply (or the result, if completion won the
  // race — either way exactly one reply).
  if (it->second.executing) return;
  // Parked: the request dies without ever starting. Reply here; the
  // queued ticket is skipped at dequeue.
  uint64_t conn_id = it->second.conn_id;
  uint64_t request_id = it->second.request_id;
  ErasePending(ticket);
  SendResponse(conn_id, ErrorResponse(request_id, ErrorCode::kDeadlineExceeded,
                                      "deadline exceeded"));
}

void Server::ErasePending(uint64_t ticket) {
  auto it = pending_.find(ticket);
  if (it == pending_.end()) return;
  if (it->second.deadline_timer_id != 0) {
    loop_.CancelTimer(it->second.deadline_timer_id);
  }
  auto idx = cancel_index_.find({it->second.conn_id, it->second.request_id});
  // Guard against a reused request id having overwritten the mapping.
  if (idx != cancel_index_.end() && idx->second == ticket) {
    cancel_index_.erase(idx);
  }
  pending_.erase(it);
}

void Server::Complete(uint64_t ticket, Response response) {
  auto it = pending_.find(ticket);
  if (it == pending_.end()) return;
  uint64_t conn_id = it->second.conn_id;
  uint64_t session_id = it->second.session_id;
  ErasePending(ticket);
  SendResponse(conn_id, response);
  // Release the session or keep it busy with the next parked request,
  // skipping tickets that died (cancel/deadline) while parked.
  auto queue_it = session_queues_.find(session_id);
  while (queue_it != session_queues_.end() && !queue_it->second.empty()) {
    auto [next_ticket, next_request] = std::move(queue_it->second.front());
    queue_it->second.pop_front();
    if (pending_.count(next_ticket) == 0) continue;  // Already answered.
    Execute(next_ticket, std::move(next_request));
    return;
  }
  busy_sessions_.erase(session_id);
  session_queues_.erase(session_id);
}

void Server::SendResponse(uint64_t conn_id, const Response& response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // Peer vanished mid-request: drop reply.
  Connection& conn = it->second;
  AppendFrame(EncodeResponse(response), &conn.out);
  if (conn.backlog() > hard_out_limit()) {
    // The peer is not consuming and the backlog outgrew the hard cap:
    // drop the connection rather than let one slow reader eat the heap.
    conns_dropped_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(conn_id);
    return;
  }
  if (conn.backlog() > peak_conn_out_bytes_.load(std::memory_order_relaxed)) {
    peak_conn_out_bytes_.store(conn.backlog(), std::memory_order_relaxed);
  }
  FlushConn(conn_id);
}

void Server::FlushConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  while (conn.backlog() > 0) {
    ssize_t n = sockets()->Write(conn.fd, conn.out.data() + conn.out_offset,
                                 conn.backlog());
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      // Compact once the flushed prefix dominates, keeping the total cost
      // of flushing linear in bytes written.
      if (conn.out_offset > (64u << 10) &&
          conn.out_offset > conn.out.size() / 2) {
        conn.out.erase(0, conn.out_offset);
        conn.out_offset = 0;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Peer is slow. Past the soft cap it also stops being read — the
      // cheap, correct form of backpressure for a request/reply stream.
      if (!conn.read_suspended &&
          conn.backlog() >= options_.max_conn_out_bytes) {
        conn.read_suspended = true;
        read_suspends_.fetch_add(1, std::memory_order_relaxed);
      }
      loop_.UpdateFd(conn.fd, /*want_read=*/!conn.read_suspended,
                     /*want_write=*/true);
      return;
    }
    CloseConn(conn_id);
    return;
  }
  conn.out.clear();
  conn.out_offset = 0;
  bool resume = conn.read_suspended;
  conn.read_suspended = false;
  loop_.UpdateFd(conn.fd, /*want_read=*/true, /*want_write=*/false);
  if (resume) {
    // Frames buffered while suspended parsed no further; drain them from
    // a fresh stack frame (FlushConn can be reached from inside ReadConn).
    loop_.Post([this, conn_id] { ReadConn(conn_id); });
  }
}

void Server::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  int fd = it->second.fd;
  loop_.ForgetFd(fd);
  close(fd);
  conn_by_fd_.erase(fd);
  conns_.erase(it);
  // Parked requests from this connection stay queued; their replies are
  // dropped in SendResponse. Sessions they own are released normally, and
  // their pending entries unlink when they complete.
}

void Server::ScheduleReap() {
  if (options_.reap_interval_ms == 0) return;
  loop_.AddTimer(options_.reap_interval_ms, [this] {
    for (uint64_t id : manager_.IdleSessionIds(loop_.NowMs())) {
      // Never reap under an in-flight or parked request.
      if (busy_sessions_.count(id)) continue;
      manager_.CloseSession(id);
    }
    ScheduleReap();
  });
}

}  // namespace spider::serve
