#include "serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "base/status.h"
#include "serve/wire.h"

namespace spider::serve {

namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  SPIDER_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(O_NONBLOCK) failed");
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), manager_(options_.manager) {}

Server::~Server() { Stop(); }

void Server::Start() {
  SPIDER_CHECK(!started_, "Server::Start called twice");
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  SPIDER_CHECK(listen_fd_ >= 0, "socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw SpiderError("bad bind address: " + options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd_, 128) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw SpiderError("bind/listen failed on " + options_.bind_address + ":" +
                      std::to_string(options_.port));
  }
  socklen_t len = sizeof(addr);
  SPIDER_CHECK(getsockname(listen_fd_,
                           reinterpret_cast<struct sockaddr*>(&addr),
                           &len) == 0,
               "getsockname failed");
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  // WatchFd before the loop thread exists is the one safe off-thread use.
  loop_.WatchFd(listen_fd_, /*want_read=*/true, /*want_write=*/false,
                [this](uint32_t) { AcceptReady(); });
  ScheduleReap();
  started_ = true;
  shutting_down_.store(false, std::memory_order_relaxed);
  loop_thread_ = std::thread([this] { loop_.Run(); });
}

void Server::Stop() {
  if (!started_) return;
  shutting_down_.store(true, std::memory_order_relaxed);
  {
    // Pool tasks finish by Post()ing a completion; once inflight_ hits
    // zero nothing will touch the loop again, so it is safe to stop.
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  loop_.Stop();
  loop_thread_.join();
  {
    // A completion that ran between the wait and Stop() may have started a
    // parked request; with the loop dead no further ones can start, so one
    // more drain bounds every pool task referencing this server.
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  for (auto& [id, conn] : conns_) close(conn.fd);
  conns_.clear();
  conn_by_fd_.clear();
  busy_sessions_.clear();
  session_queues_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void Server::AcceptReady() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      close(fd);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t conn_id = next_conn_id_++;
    conns_[conn_id] = Connection{fd, {}, {}};
    conn_by_fd_[fd] = conn_id;
    loop_.WatchFd(fd, /*want_read=*/true, /*want_write=*/false,
                  [this, conn_id](uint32_t events) {
                    ConnReady(conn_id, events);
                  });
  }
}

void Server::ConnReady(uint64_t conn_id, uint32_t events) {
  if (events & kEventError) {
    CloseConn(conn_id);
    return;
  }
  if (events & kEventRead) ReadConn(conn_id);
  // ReadConn may have closed the connection; re-check before writing.
  if ((events & kEventWrite) && conns_.count(conn_id)) FlushConn(conn_id);
}

void Server::ReadConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  char buf[64 * 1024];
  bool eof = false;
  for (;;) {
    ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer closed (or hard error). Frames already buffered still execute —
    // a request is not lost just because its sender hung up before the
    // reply — but only after the drain below; replies go nowhere.
    eof = true;
    break;
  }
  for (;;) {
    std::string payload;
    FrameStatus status =
        NextFrame(&conn.in, options_.max_payload_bytes, &payload);
    if (status == FrameStatus::kNeedMore) {
      // A trailing partial frame can never complete after EOF.
      if (eof) CloseConn(conn_id);
      return;
    }
    if (status != FrameStatus::kFrame) {
      // The length prefix is garbage or oversized: the stream can no
      // longer be re-synchronized. Tell the peer, then drop it.
      SendResponse(conn_id,
                   ErrorResponse(0, ErrorCode::kBadRequest,
                                 status == FrameStatus::kOversized
                                     ? "frame too large"
                                     : "malformed frame"));
      auto again = conns_.find(conn_id);
      if (again != conns_.end()) {
        FlushConn(conn_id);
        CloseConn(conn_id);
      }
      return;
    }
    HandleFrame(conn_id, payload);
    if (!conns_.count(conn_id)) return;
    if (eof && conn.in.empty()) {
      CloseConn(conn_id);
      return;
    }
  }
}

void Server::HandleFrame(uint64_t conn_id, const std::string& payload) {
  Request request;
  std::string error;
  if (!DecodeRequest(payload, &request, &error)) {
    // Framing was intact, so the stream stays usable: reply and carry on.
    SendResponse(conn_id, ErrorResponse(request.request_id,
                                        ErrorCode::kBadRequest, error));
    return;
  }
  if (shutting_down_.load(std::memory_order_relaxed)) {
    SendResponse(conn_id,
                 ErrorResponse(request.request_id, ErrorCode::kShuttingDown,
                               "server shutting down"));
    return;
  }
  Dispatch(conn_id, std::move(request));
}

void Server::Dispatch(uint64_t conn_id, Request request) {
  // Ping/stats carry no session and are cheap: answer on the loop thread.
  if (request.type == MsgType::kPing || request.type == MsgType::kStats) {
    SendResponse(conn_id, manager_.Handle(request, loop_.NowMs()));
    return;
  }
  uint64_t session_id = request.session_id;
  if (busy_sessions_.count(session_id)) {
    session_queues_[session_id].emplace_back(conn_id, std::move(request));
    return;
  }
  busy_sessions_.insert(session_id);
  Execute(conn_id, std::move(request));
}

void Server::Execute(uint64_t conn_id, Request request) {
  uint64_t session_id = request.session_id;
  if (options_.pool == nullptr) {
    Response response = manager_.Handle(request, loop_.NowMs());
    Complete(conn_id, session_id, /*serialized=*/true, std::move(response));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  uint64_t now_ms = loop_.NowMs();
  options_.pool->SubmitClosure(
      [this, conn_id, session_id, now_ms, request = std::move(request)] {
        Response response = manager_.Handle(request, now_ms);
        loop_.Post([this, conn_id, session_id,
                    response = std::move(response)]() mutable {
          Complete(conn_id, session_id, /*serialized=*/true,
                   std::move(response));
        });
        std::lock_guard<std::mutex> lock(inflight_mu_);
        --inflight_;
        inflight_cv_.notify_all();
      });
}

void Server::Complete(uint64_t conn_id, uint64_t session_id, bool serialized,
                      Response response) {
  SendResponse(conn_id, response);
  if (!serialized) return;
  auto queue_it = session_queues_.find(session_id);
  if (queue_it == session_queues_.end() || queue_it->second.empty()) {
    busy_sessions_.erase(session_id);
    session_queues_.erase(session_id);
    return;
  }
  auto [next_conn, next_request] = std::move(queue_it->second.front());
  queue_it->second.pop_front();
  // The session stays busy; run the parked request now.
  Execute(next_conn, std::move(next_request));
}

void Server::SendResponse(uint64_t conn_id, const Response& response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // Peer vanished mid-request: drop reply.
  AppendFrame(EncodeResponse(response), &it->second.out);
  FlushConn(conn_id);
}

void Server::FlushConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  while (!conn.out.empty()) {
    ssize_t n = write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.UpdateFd(conn.fd, /*want_read=*/true, /*want_write=*/true);
      return;
    }
    CloseConn(conn_id);
    return;
  }
  loop_.UpdateFd(conn.fd, /*want_read=*/true, /*want_write=*/false);
}

void Server::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  int fd = it->second.fd;
  loop_.ForgetFd(fd);
  close(fd);
  conn_by_fd_.erase(fd);
  conns_.erase(it);
  // Parked requests from this connection stay queued; their replies are
  // dropped in SendResponse. Sessions they own are released normally.
}

void Server::ScheduleReap() {
  if (options_.reap_interval_ms == 0) return;
  loop_.AddTimer(options_.reap_interval_ms, [this] {
    for (uint64_t id : manager_.IdleSessionIds(loop_.NowMs())) {
      // Never reap under an in-flight or parked request.
      if (busy_sessions_.count(id)) continue;
      manager_.CloseSession(id);
    }
    ScheduleReap();
  });
}

}  // namespace spider::serve
