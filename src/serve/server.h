#ifndef SPIDER_SERVE_SERVER_H_
#define SPIDER_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "base/cancel.h"
#include "exec/thread_pool.h"
#include "serve/event_loop.h"
#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "serve/socket_ops.h"

namespace spider::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;

  /// Frames whose payload exceeds this are answered with an error and the
  /// connection is dropped (the length prefix can no longer be trusted).
  size_t max_payload_bytes = 16u << 20;
  size_t max_connections = 256;

  /// Cadence of the idle-session reaper timer. 0 disables reaping.
  uint64_t reap_interval_ms = 30'000;

  /// Deadline applied to requests that carry deadline_ms == 0 on the wire.
  /// 0 leaves them without a deadline. Expired requests are answered with
  /// kDeadlineExceeded; in-flight engine work observes the flipped token at
  /// its next safe boundary and aborts without mutating the session.
  uint64_t default_deadline_ms = 0;

  /// Soft cap on a connection's unflushed output. While the backlog sits
  /// above it the server stops reading that connection (real backpressure:
  /// a slow consumer pends its own requests instead of growing our heap).
  size_t max_conn_out_bytes = 4u << 20;
  /// Hard cap: a connection whose backlog would exceed this is dropped.
  /// 0 derives 4 * max_conn_out_bytes.
  size_t conn_out_hard_limit_bytes = 0;

  /// Socket syscall seam; nullptr uses the real read(2)/write(2). Tests
  /// inject deterministic faults (short writes, EAGAIN storms, mid-write
  /// disconnects) through this. Must outlive the server.
  SocketOps* socket_ops = nullptr;

  SessionManagerOptions manager;

  /// Pool for CPU-heavy request handling; replies are completed back on
  /// the loop thread via Post(). nullptr runs requests inline on the loop
  /// thread — correct, just serial (the single-core deployment). Must
  /// outlive the server.
  ThreadPool* pool = nullptr;
};

/// Loop-thread-written, any-thread-read counters for the network edge.
struct ServerNetStats {
  uint64_t read_suspends = 0;   ///< Soft-cap crossings that paused reads.
  uint64_t conns_dropped = 0;   ///< Connections dropped at the hard cap.
  uint64_t cancels_received = 0;
  size_t peak_conn_out_bytes = 0;  ///< High-water unflushed output backlog.
};

/// The spider::serve network front end: accepts connections on a
/// single-threaded EventLoop, frames/decodes requests, serializes requests
/// per session (different sessions proceed concurrently on the exec pool),
/// and writes length-prefixed replies through a byte-bounded write buffer —
/// a connection whose backlog crosses the soft cap stops being read until
/// it drains, and one that crosses the hard cap is dropped.
///
/// Every session-bound request gets a CancelToken: deadlines are armed as
/// loop timers that flip the token (engine hot loops poll it — no clock
/// reads down there), and the kCancel opcode kills parked requests in O(1)
/// or flips the token on in-flight ones.
///
/// All connection and queue state is confined to the loop thread; the only
/// cross-thread edges are SubmitClosure() out and Post() back in.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the loop thread. Throws SpiderError when
  /// the address cannot be bound.
  void Start();
  /// Drains in-flight pool work, stops the loop, joins, closes all
  /// connections. Idempotent.
  void Stop();

  /// The bound port (valid after Start(); resolves port 0).
  uint16_t port() const { return port_; }
  SessionManager& manager() { return manager_; }
  ServerNetStats netstats() const;

 private:
  struct Connection {
    int fd = -1;
    std::string in;
    /// Output backlog: bytes [out_offset, out.size()) are still unflushed.
    /// The flushed prefix is compacted away once it outgrows the backlog,
    /// so flushing is O(bytes) overall, not O(bytes^2).
    std::string out;
    size_t out_offset = 0;
    /// Reads paused because the backlog crossed the soft cap.
    bool read_suspended = false;

    size_t backlog() const { return out.size() - out_offset; }
  };

  /// One session-bound request from arrival to reply, keyed by ticket.
  /// Parked entries die in O(1) on cancel/deadline: the entry is erased
  /// (after replying) and the queued ticket is skipped at dequeue.
  struct PendingRequest {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    uint64_t session_id = 0;
    std::shared_ptr<CancelToken> cancel;
    uint64_t deadline_timer_id = 0;  ///< 0 = no armed deadline.
    bool executing = false;
  };

  void AcceptReady();
  void ConnReady(uint64_t conn_id, uint32_t events);
  /// Reads until EAGAIN, then dispatches every complete frame.
  void ReadConn(uint64_t conn_id);
  /// Flushes the out buffer, toggles write interest, and resumes/suspends
  /// reads around the soft cap.
  void FlushConn(uint64_t conn_id);
  void CloseConn(uint64_t conn_id);

  void HandleFrame(uint64_t conn_id, const std::string& payload);
  /// Loop thread: kCancel fast path. Parked targets are answered
  /// kCancelled and unlinked without ever starting; executing targets get
  /// their token flipped (their reply arrives via Complete).
  void HandleCancel(uint64_t conn_id, const Request& request);
  /// Registers the pending entry + deadline timer, then runs the request
  /// (pool or inline) or parks it behind the session's in-flight request.
  void Dispatch(uint64_t conn_id, Request request);
  void Execute(uint64_t ticket, Request request);
  /// Timer: expire `ticket` — parked replies kDeadlineExceeded now,
  /// executing flips the token and lets Complete deliver.
  void OnDeadline(uint64_t ticket);
  /// Loop thread: deliver the reply, unlink the ticket, release the
  /// session, start the next queued request for it (skipping dead ones).
  void Complete(uint64_t ticket, Response response);
  void SendResponse(uint64_t conn_id, const Response& response);
  /// Unlinks a pending entry (cancel index + deadline timer + map).
  void ErasePending(uint64_t ticket);

  void ScheduleReap();
  SocketOps* sockets() const;
  size_t hard_out_limit() const;

  ServerOptions options_;
  SessionManager manager_;
  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> shutting_down_{false};

  // Loop-thread state.
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, Connection> conns_;
  std::unordered_map<int, uint64_t> conn_by_fd_;
  std::unordered_set<uint64_t> busy_sessions_;
  /// Per-session FIFO of parked tickets (+ their requests).
  std::unordered_map<uint64_t, std::deque<std::pair<uint64_t, Request>>>
      session_queues_;
  uint64_t next_ticket_ = 1;
  std::unordered_map<uint64_t, PendingRequest> pending_;
  /// (conn_id, request_id) -> ticket, so kCancel finds its target in O(log n).
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> cancel_index_;

  // Loop-thread written; read from any thread (tests, bench).
  std::atomic<uint64_t> read_suspends_{0};
  std::atomic<uint64_t> conns_dropped_{0};
  std::atomic<uint64_t> cancels_received_{0};
  std::atomic<size_t> peak_conn_out_bytes_{0};

  // Pool work still running or about to Post() its completion.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;
};

}  // namespace spider::serve

#endif  // SPIDER_SERVE_SERVER_H_
