#ifndef SPIDER_SERVE_SERVER_H_
#define SPIDER_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exec/thread_pool.h"
#include "serve/event_loop.h"
#include "serve/protocol.h"
#include "serve/session_manager.h"

namespace spider::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;

  /// Frames whose payload exceeds this are answered with an error and the
  /// connection is dropped (the length prefix can no longer be trusted).
  size_t max_payload_bytes = 16u << 20;
  size_t max_connections = 256;

  /// Cadence of the idle-session reaper timer. 0 disables reaping.
  uint64_t reap_interval_ms = 30'000;

  SessionManagerOptions manager;

  /// Pool for CPU-heavy request handling; replies are completed back on
  /// the loop thread via Post(). nullptr runs requests inline on the loop
  /// thread — correct, just serial (the single-core deployment). Must
  /// outlive the server.
  ThreadPool* pool = nullptr;
};

/// The spider::serve network front end: accepts connections on a
/// single-threaded EventLoop, frames/decodes requests, serializes requests
/// per session (different sessions proceed concurrently on the exec pool),
/// and writes length-prefixed replies with write-buffer backpressure.
///
/// All connection and queue state is confined to the loop thread; the only
/// cross-thread edges are SubmitClosure() out and Post() back in.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the loop thread. Throws SpiderError when
  /// the address cannot be bound.
  void Start();
  /// Drains in-flight pool work, stops the loop, joins, closes all
  /// connections. Idempotent.
  void Stop();

  /// The bound port (valid after Start(); resolves port 0).
  uint16_t port() const { return port_; }
  SessionManager& manager() { return manager_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;
    std::string out;
  };

  void AcceptReady();
  void ConnReady(uint64_t conn_id, uint32_t events);
  /// Reads until EAGAIN, then dispatches every complete frame.
  void ReadConn(uint64_t conn_id);
  /// Flushes the out buffer and toggles write interest.
  void FlushConn(uint64_t conn_id);
  void CloseConn(uint64_t conn_id);

  void HandleFrame(uint64_t conn_id, const std::string& payload);
  /// Runs the request now (pool or inline) or parks it behind the
  /// session's in-flight request.
  void Dispatch(uint64_t conn_id, Request request);
  void Execute(uint64_t conn_id, Request request);
  /// Loop thread: deliver the reply, release the session, start the next
  /// queued request for it.
  void Complete(uint64_t conn_id, uint64_t session_id, bool serialized,
                Response response);
  void SendResponse(uint64_t conn_id, const Response& response);

  void ScheduleReap();

  ServerOptions options_;
  SessionManager manager_;
  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> shutting_down_{false};

  // Loop-thread state.
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, Connection> conns_;
  std::unordered_map<int, uint64_t> conn_by_fd_;
  std::unordered_set<uint64_t> busy_sessions_;
  std::unordered_map<uint64_t, std::deque<std::pair<uint64_t, Request>>>
      session_queues_;

  // Pool work still running or about to Post() its completion.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;
};

}  // namespace spider::serve

#endif  // SPIDER_SERVE_SERVER_H_
