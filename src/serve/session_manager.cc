#include "serve/session_manager.h"

#include <exception>
#include <utility>

#include "algebra/compose.h"
#include "analysis/analyzer.h"
#include "base/hash.h"
#include "chase/core.h"
#include "base/status.h"
#include "debugger/linter.h"
#include "incremental/source_delta.h"
#include "mapping/parser.h"
#include "workload/random_scenario.h"
#include "workload/relational_scenario.h"

namespace spider::serve {

namespace {

/// Parses the integer after `prefix` in `spec`; throws SpiderError on
/// malformed specs so load errors surface as kBadRequest.
int64_t ParseSpecInt(std::string_view token, const char* what) {
  if (token.empty()) throw SpiderError(std::string("missing ") + what);
  int64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      throw SpiderError(std::string("malformed ") + what + ": " +
                        std::string(token));
    }
    value = value * 10 + (c - '0');
    if (value > (1ll << 40)) {
      throw SpiderError(std::string("oversized ") + what);
    }
  }
  return value;
}

std::vector<std::string_view> SplitCommas(std::string_view s) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t comma = s.find(',', start);
    if (comma == std::string_view::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
}

std::string RenderApplyResult(const ApplyDeltaResult& result) {
  std::string out = "applied\n";
  out += "source_inserted " + std::to_string(result.source_inserted) + "\n";
  out += "source_deleted " + std::to_string(result.source_deleted) + "\n";
  out += "target_added " + std::to_string(result.target_added) + "\n";
  out += "target_removed " + std::to_string(result.target_removed) + "\n";
  out += "target_rewritten " + std::to_string(result.target_rewritten) + "\n";
  out += "full_rechase ";
  out += result.full_rechase ? '1' : '0';
  out += '\n';
  return out;
}

}  // namespace

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)),
      shared_cache_(options_.shared_route_cache_bytes),
      plan_cache_(options_.plan_cache_bytes) {}

SessionManager::~SessionManager() = default;

Response SessionManager::CancelledResponse(uint64_t request_id,
                                           const CancelToken* cancel) {
  bool deadline =
      cancel != nullptr && cancel->reason() == CancelToken::Reason::kDeadline;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (deadline) {
      ++stats_.deadline_exceeded;
    } else {
      ++stats_.cancelled;
    }
  }
  return deadline ? ErrorResponse(request_id, ErrorCode::kDeadlineExceeded,
                                  "deadline exceeded")
                  : ErrorResponse(request_id, ErrorCode::kCancelled,
                                  "cancelled");
}

Response SessionManager::CapReply(Response response) {
  if (options_.max_reply_bytes == 0 || response.type != MsgType::kReply ||
      response.text.size() <= options_.max_reply_bytes) {
    return response;
  }
  size_t reply_bytes = response.text.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.replies_truncated;
  }
  return ErrorResponse(response.request_id, ErrorCode::kReplyTooLarge,
                       "reply too large\nreply_bytes " +
                           std::to_string(reply_bytes) + "\nmax_reply_bytes " +
                           std::to_string(options_.max_reply_bytes) + "\n");
}

Response SessionManager::Handle(const Request& request, uint64_t now_ms,
                                const CancelToken* cancel) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  // A request cancelled (or expired) while queued behind its session's
  // in-flight work must never start: the cheapest safe boundary is here.
  if (Cancelled(cancel)) {
    return CancelledResponse(request.request_id, cancel);
  }
  switch (request.type) {
    case MsgType::kPing:
      return OkResponse(request.request_id, "pong\n");
    case MsgType::kStats:
      return CapReply(HandleStats(request));
    case MsgType::kCreateSession:
    case MsgType::kLoadSession:
      return HandleCreate(request, now_ms, cancel);
    case MsgType::kCloseSession:
    case MsgType::kApplyDelta:
    case MsgType::kRoute:
    case MsgType::kAllRoutes:
    case MsgType::kLint:
    case MsgType::kAnalyze:
      return CapReply(HandleSession(request, now_ms, cancel));
    default:
      return ErrorResponse(request.request_id, ErrorCode::kBadRequest,
                           "unhandled message type");
  }
}

Scenario SessionManager::BuildScenario(const Request& request) {
  if (request.type == MsgType::kCreateSession) {
    return ParseScenario(request.text);
  }
  // Workload specs: "random:<seed>" or "relational:<units>,<groups>,<joins>".
  std::string_view spec = request.text;
  size_t colon = spec.find(':');
  std::string_view kind = spec.substr(0, colon);
  std::string_view args =
      colon == std::string_view::npos ? std::string_view() : spec.substr(colon + 1);
  if (kind == "random") {
    RandomScenarioOptions opts;
    opts.seed = static_cast<uint64_t>(ParseSpecInt(args, "seed"));
    // Egds can fail the chase on random data; served sessions need a
    // solution, so the spec grammar leaves them out.
    opts.egds = 0;
    return BuildRandomScenario(opts);
  }
  if (kind == "relational") {
    std::vector<std::string_view> parts = SplitCommas(args);
    if (parts.size() != 3) {
      throw SpiderError("relational spec wants <units>,<groups>,<joins>");
    }
    RelationalScenarioOptions opts;
    opts.sizes.units = static_cast<int>(ParseSpecInt(parts[0], "units"));
    opts.groups = static_cast<int>(ParseSpecInt(parts[1], "groups"));
    opts.joins = static_cast<int>(ParseSpecInt(parts[2], "joins"));
    if (opts.joins > 3) throw SpiderError("relational joins must be 0..3");
    return BuildRelationalScenario(opts);
  }
  throw SpiderError("unknown workload spec: " + request.text);
}

Response SessionManager::HandleCreate(const Request& request, uint64_t now_ms,
                                      const CancelToken* cancel) {
  {
    // Reserve the id under the lock; the expensive parse + chase runs
    // unlocked and the placeholder blocks a duplicate create racing in.
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.count(request.session_id)) {
      return ErrorResponse(request.request_id, ErrorCode::kSessionExists,
                           "session id already in use");
    }
    if (sessions_.size() >= options_.max_sessions ||
        stats_.approx_bytes >= options_.total_budget_bytes) {
      ++stats_.rejected_over_budget;
      return ErrorResponse(request.request_id, ErrorCode::kOverBudget,
                           "session limit reached");
    }
    sessions_[request.session_id] = std::make_shared<ServerSession>();
  }

  Scenario scenario;
  try {
    scenario = BuildScenario(request);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.erase(request.session_id);
    return ErrorResponse(request.request_id, ErrorCode::kBadRequest, e.what());
  }

  DebugSessionOptions opts = options_.session;
  opts.plan_cache = &plan_cache_;
  opts.shared_route_cache = &shared_cache_;
  opts.cancel = cancel;  // Opening chase only; cleared inside the session.
  uint64_t domain = request.type == MsgType::kCreateSession
                        ? Fnv1a64("create")
                        : Fnv1a64("load");
  opts.state_key = Fnv1a64(request.text, domain);

  std::unique_ptr<DebugSession> session;
  try {
    session = std::make_unique<DebugSession>(std::move(scenario),
                                             std::move(opts));
  } catch (const CancelledError&) {
    // Aborted mid-build: the half-built session is discarded wholesale, so
    // the outcome is indistinguishable from never having asked.
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.erase(request.session_id);
    }
    return CancelledResponse(request.request_id, cancel);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.erase(request.session_id);
      if (!Cancelled(cancel)) ++stats_.engine_errors;
    }
    if (Cancelled(cancel)) {
      // Concurrent leaf failures can reach us wrapped in a plain
      // SpiderError; the flipped token is the ground truth.
      return CancelledResponse(request.request_id, cancel);
    }
    return ErrorResponse(request.request_id, ErrorCode::kEngineError, e.what());
  }

  size_t bytes = EstimateBytes(*session);
  std::string reply = "created\ntarget_tuples " +
                      std::to_string(session->scenario().target->TotalTuples()) +
                      "\negd_entangled ";
  reply += session->egd_entangled() ? '1' : '0';
  reply += '\n';

  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > options_.session_budget_bytes ||
      stats_.approx_bytes + bytes > options_.total_budget_bytes) {
    plan_cache_.Forget(session->scenario().source.get());
    plan_cache_.Forget(session->scenario().target.get());
    sessions_.erase(request.session_id);
    ++stats_.rejected_over_budget;
    return ErrorResponse(request.request_id, ErrorCode::kOverBudget,
                         "session exceeds memory budget");
  }
  ServerSession& entry = *sessions_[request.session_id];
  for (const auto& [id, name] : session->scenario().null_names) {
    entry.null_ids[name] = id;
  }
  entry.session = std::move(session);
  entry.last_active_ms = now_ms;
  entry.approx_bytes = bytes;
  stats_.approx_bytes += bytes;
  ++stats_.sessions_created;
  stats_.open_sessions = sessions_.size();
  return OkResponse(request.request_id, std::move(reply));
}

std::shared_ptr<SessionManager::ServerSession> SessionManager::Find(
    uint64_t session_id, uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  // A placeholder (create still in flight) is not a usable session.
  if (it == sessions_.end() || it->second->session == nullptr) return nullptr;
  it->second->last_active_ms = now_ms;  // Under mu_: the reaper reads this.
  return it->second;
}

namespace {

/// Clears the session's cancel token on every exit path: tokens are
/// per-request, and a stale pointer into a dead request's token would be
/// polled by the next probe.
struct CancelScope {
  explicit CancelScope(DebugSession* session, const CancelToken* token)
      : session_(session) {
    session_->SetCancel(token);
  }
  ~CancelScope() { session_->SetCancel(nullptr); }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;
  DebugSession* session_;
};

}  // namespace

Response SessionManager::HandleSession(const Request& request,
                                       uint64_t now_ms,
                                       const CancelToken* cancel) {
  std::shared_ptr<ServerSession> entry = Find(request.session_id, now_ms);
  if (entry == nullptr) {
    return ErrorResponse(request.request_id, ErrorCode::kNoSuchSession,
                         "no such session");
  }

  if (request.type == MsgType::kCloseSession) {
    CloseSession(request.session_id);
    return OkResponse(request.request_id, "closed\n");
  }

  DebugSession& session = *entry->session;
  CancelScope cancel_scope(&session, cancel);
  if (request.type == MsgType::kApplyDelta) {
    SourceDelta delta;
    try {
      for (const DeltaOp& op : request.ops) {
        std::string relation;
        Tuple tuple = ParseFactText(op.fact, &relation, entry->null_ids);
        if (op.kind == DeltaOp::kInsert) {
          delta.Insert(std::move(relation), std::move(tuple));
        } else {
          delta.Delete(std::move(relation), std::move(tuple));
        }
      }
    } catch (const std::exception& e) {
      return ErrorResponse(request.request_id, ErrorCode::kBadRequest,
                           e.what());
    }
    try {
      ApplyDeltaResult result = session.Apply(delta);
      size_t bytes = EstimateBytes(session);
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.approx_bytes += bytes - entry->approx_bytes;
        entry->approx_bytes = bytes;
      }
      return OkResponse(request.request_id, RenderApplyResult(result));
    } catch (const CancelledError&) {
      // Apply honors the token only before mutating anything, so the
      // session is exactly as the previous reply left it.
      return CancelledResponse(request.request_id, cancel);
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.engine_errors;
      }
      return ErrorResponse(request.request_id, ErrorCode::kEngineError,
                           e.what());
    }
  }

  try {
    switch (request.type) {
      case MsgType::kRoute:
        return OkResponse(request.request_id,
                          session.debugger().Render(
                              session.RouteFor(request.text)));
      case MsgType::kAllRoutes:
        return OkResponse(request.request_id,
                          session.debugger().Render(
                              session.ForestFor(request.text),
                              options_.max_reply_bytes));
      case MsgType::kLint:
        return OkResponse(
            request.request_id,
            RenderLintFindings(
                LintMapping(*session.scenario().mapping)));
      case MsgType::kAnalyze:
        return HandleAnalyze(request, session, cancel);
      default:
        return ErrorResponse(request.request_id, ErrorCode::kBadRequest,
                             "unhandled session message type");
    }
  } catch (const CancelledError&) {
    // Route probes are pure reads that abandon their partial result before
    // any cache install; the session is untouched.
    return CancelledResponse(request.request_id, cancel);
  } catch (const RenderLimitError& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.replies_truncated;
    }
    return ErrorResponse(request.request_id, ErrorCode::kReplyTooLarge,
                         "reply too large\nmax_reply_bytes " +
                             std::to_string(e.max_bytes()) + "\n");
  } catch (const std::exception& e) {
    if (Cancelled(cancel)) {
      // TaskGroup can wrap concurrent CancelledErrors in a plain
      // SpiderError; the flipped token is the ground truth.
      return CancelledResponse(request.request_id, cancel);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.engine_errors;
    }
    return ErrorResponse(request.request_id, ErrorCode::kEngineError,
                         e.what());
  }
}

Response SessionManager::HandleAnalyze(const Request& request,
                                       DebugSession& session,
                                       const CancelToken* cancel) {
  AnalysisOptions analysis;
  analysis.cancel = cancel;
  // Spec grammar: the first line is whitespace-separated tokens. "fast"
  // turns the chase-based per-dependency passes off; "full" is the default;
  // "min-cover" and "reachability" add the whole-mapping passes. Two tokens
  // dispatch to spider::algebra instead of the analyzer: "compose" reads a
  // T->U scenario from the remaining lines and replies with the composed
  // S->U mapping; "core" reports the homomorphic core of the session's
  // current solution (read-only: the session target is not modified).
  std::string_view full_spec = request.text;
  size_t newline = full_spec.find('\n');
  std::string_view spec =
      newline == std::string_view::npos ? full_spec
                                        : full_spec.substr(0, newline);
  std::string_view body =
      newline == std::string_view::npos ? std::string_view()
                                        : full_spec.substr(newline + 1);
  bool compose = false;
  bool core = false;
  size_t pos = 0;
  while (pos < spec.size()) {
    while (pos < spec.size() && spec[pos] == ' ') ++pos;
    size_t end = spec.find(' ', pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view token = spec.substr(pos, end - pos);
    pos = end;
    if (token.empty() || token == "full") {
      continue;
    } else if (token == "fast") {
      analysis.subsumption = false;
      analysis.egd_interaction = false;
    } else if (token == "min-cover") {
      analysis.min_cover = true;
    } else if (token == "reachability") {
      analysis.reachability = true;
    } else if (token == "compose") {
      compose = true;
    } else if (token == "core") {
      core = true;
    } else {
      return ErrorResponse(request.request_id, ErrorCode::kBadRequest,
                           "unknown analyze spec token: " +
                               std::string(token));
    }
  }
  if (compose && core) {
    return ErrorResponse(request.request_id, ErrorCode::kBadRequest,
                         "analyze spec: 'compose' and 'core' are exclusive");
  }

  const SchemaMapping& mapping = *session.scenario().mapping;
  if (compose) {
    Scenario next;
    try {
      next = ParseScenario(std::string(body));
    } catch (const SpiderError& e) {
      return ErrorResponse(request.request_id, ErrorCode::kBadRequest,
                           std::string("compose scenario: ") + e.what());
    }
    // Deterministic in the two mappings alone; request.text already covers
    // the second scenario's text.
    uint64_t key = Fnv1a64(mapping.ToString(),
                           Fnv1a64(request.text, Fnv1a64("analyze-compose")));
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = analysis_cache_.find(key);
      if (it != analysis_cache_.end()) {
        ++stats_.analyze_cache_hits;
        return OkResponse(request.request_id, it->second);
      }
      ++stats_.analyze_cache_misses;
    }
    ComposeOptions compose_options;
    compose_options.cancel = cancel;
    ComposeResult composed =
        ComposeMappings(mapping, *next.mapping, compose_options);
    std::string text = composed.Summary();
    InstallAnalysisCacheEntry(key, text);
    return OkResponse(request.request_id, std::move(text));
  }
  if (core) {
    // Depends on the solution instance, not just the mapping: key by the
    // session's state so deltas invalidate the entry naturally.
    uint64_t key = Fnv1a64(std::to_string(session.state_key()),
                           Fnv1a64(request.text, Fnv1a64("analyze-core")));
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = analysis_cache_.find(key);
      if (it != analysis_cache_.end()) {
        ++stats_.analyze_cache_hits;
        return OkResponse(request.request_id, it->second);
      }
      ++stats_.analyze_cache_misses;
    }
    const Scenario& scenario = session.scenario();
    CoreRetractionOptions core_options;
    core_options.cancel = cancel;
    for (size_t r = 0; r < scenario.source->NumRelations(); ++r) {
      for (const Tuple& t :
           scenario.source->tuples(static_cast<RelationId>(r))) {
        for (const Value& v : t.values()) {
          if (v.is_null()) core_options.rigid_nulls.insert(v.AsNull().id);
        }
      }
    }
    CoreRetractionResult retracted =
        ComputeCoreRetraction(*scenario.target, core_options);
    size_t nulls_collapsed = 0;
    for (const auto& [null_id, image] : retracted.retraction) {
      if (!(image == Value::Null(null_id))) ++nulls_collapsed;
    }
    std::string text =
        "core: " + std::to_string(retracted.facts_removed) + " folded, " +
        std::to_string(nulls_collapsed) + " nulls collapsed" +
        (retracted.complete ? "" : ", budget exhausted") + "\n" +
        retracted.core->ToString();
    InstallAnalysisCacheEntry(key, text);
    return OkResponse(request.request_id, std::move(text));
  }
  // Analysis is deterministic and depends only on the mapping and the spec,
  // so the rendered reply is cacheable by content hash — equal mappings in
  // different sessions share entries.
  uint64_t key =
      Fnv1a64(mapping.ToString(), Fnv1a64(request.text, Fnv1a64("analyze")));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = analysis_cache_.find(key);
    if (it != analysis_cache_.end()) {
      ++stats_.analyze_cache_hits;
      return OkResponse(request.request_id, it->second);
    }
    ++stats_.analyze_cache_misses;
  }

  AnalysisReport report = AnalyzeMapping(mapping, analysis);
  std::string text = RenderDiagnostics(report.diagnostics);
  if (report.reachability != nullptr) {
    text += "reachability:\n" + report.reachability->Summary(mapping.target());
  }
  if (report.min_cover != nullptr) {
    text += report.min_cover->Summary(mapping);
  }

  InstallAnalysisCacheEntry(key, text);
  return OkResponse(request.request_id, std::move(text));
}

void SessionManager::InstallAnalysisCacheEntry(uint64_t key,
                                               const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  if (analysis_cache_.emplace(key, text).second) {
    analysis_cache_order_.push_back(key);
    while (analysis_cache_order_.size() > kAnalysisCacheEntries) {
      analysis_cache_.erase(analysis_cache_order_.front());
      analysis_cache_order_.pop_front();
    }
  }
}

Response SessionManager::HandleStats(const Request& request) {
  SessionManagerStats s = stats();
  SharedRouteCacheStats c = shared_cache_.stats();
  std::string out;
  out += "sessions " + std::to_string(s.open_sessions) + "\n";
  out += "requests " + std::to_string(s.requests) + "\n";
  out += "created " + std::to_string(s.sessions_created) + "\n";
  out += "closed " + std::to_string(s.sessions_closed) + "\n";
  out += "rejected " + std::to_string(s.rejected_over_budget) + "\n";
  out += "engine_errors " + std::to_string(s.engine_errors) + "\n";
  out += "cancelled " + std::to_string(s.cancelled) + "\n";
  out += "deadline_exceeded " + std::to_string(s.deadline_exceeded) + "\n";
  out += "replies_truncated " + std::to_string(s.replies_truncated) + "\n";
  out += "approx_bytes " + std::to_string(s.approx_bytes) + "\n";
  out += "shared_route_hits " + std::to_string(c.route_hits) + "\n";
  out += "shared_route_misses " + std::to_string(c.route_misses) + "\n";
  out += "shared_forest_hits " + std::to_string(c.forest_hits) + "\n";
  out += "shared_forest_misses " + std::to_string(c.forest_misses) + "\n";
  out += "shared_bytes " + std::to_string(c.bytes) + "\n";
  out += "shared_evictions " + std::to_string(c.evictions) + "\n";
  out += "plan_cache_bytes " + std::to_string(plan_cache_.bytes()) + "\n";
  out += "plan_cache_evictions " + std::to_string(plan_cache_.evictions()) +
         "\n";
  out += "analyze_cache_hits " + std::to_string(s.analyze_cache_hits) + "\n";
  out += "analyze_cache_misses " + std::to_string(s.analyze_cache_misses) +
         "\n";
  return OkResponse(request.request_id, std::move(out));
}

std::vector<uint64_t> SessionManager::IdleSessionIds(uint64_t now_ms) const {
  std::vector<uint64_t> ids;
  if (options_.idle_timeout_ms == 0) return ids;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, entry] : sessions_) {
    if (entry->session == nullptr) continue;  // Create in flight.
    if (entry->last_active_ms + options_.idle_timeout_ms <= now_ms) {
      ids.push_back(id);
    }
  }
  return ids;
}

bool SessionManager::CloseSession(uint64_t session_id) {
  std::shared_ptr<ServerSession> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || it->second->session == nullptr) return false;
    entry = std::move(it->second);
    sessions_.erase(it);
    stats_.approx_bytes -= entry->approx_bytes;
    ++stats_.sessions_closed;
    stats_.open_sessions = sessions_.size();
  }
  // The plan tier must drop entries keyed by the dying instances before a
  // later session can reuse their addresses.
  plan_cache_.Forget(entry->session->scenario().source.get());
  plan_cache_.Forget(entry->session->scenario().target.get());
  return true;
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SessionManager::EstimateBytes(const DebugSession& session) {
  size_t total = 1u << 16;  // Fixed overhead: mapping, caches, debugger.
  for (const Instance* instance : {session.scenario().source.get(),
                                   session.scenario().target.get()}) {
    if (instance == nullptr) continue;
    const Schema& schema = instance->schema();
    for (size_t r = 0; r < instance->NumRelations(); ++r) {
      auto rel = static_cast<RelationId>(r);
      total += instance->NumTuples(rel) * (schema.relation(rel).arity() * 8 + 24);
    }
  }
  return total;
}

}  // namespace spider::serve
