#ifndef SPIDER_SERVE_SESSION_MANAGER_H_
#define SPIDER_SERVE_SESSION_MANAGER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/cancel.h"
#include "debugger/debug_session.h"
#include "incremental/shared_route_cache.h"
#include "query/plan_cache.h"
#include "serve/protocol.h"

namespace spider::serve {

struct SessionManagerOptions {
  /// Admission control: a create/load is rejected with kOverBudget once
  /// this many sessions are open or the byte estimate would cross the
  /// total budget.
  size_t max_sessions = 128;
  size_t session_budget_bytes = 64u << 20;
  size_t total_budget_bytes = 1u << 30;

  /// Sessions idle longer than this are eligible for reaping (the server
  /// drives the actual reap from its timer queue). 0 disables.
  uint64_t idle_timeout_ms = 5 * 60 * 1000;

  /// Budgets of the shared cache tiers every session is wired into.
  size_t shared_route_cache_bytes = 64u << 20;
  size_t plan_cache_bytes = 8u << 20;

  /// Hard cap on a single reply's text. Replies that would exceed it
  /// (adversarial all-routes forests, mostly) are answered with a
  /// structured kReplyTooLarge error instead — the forest render aborts
  /// once it crosses the budget, so peak memory stays bounded too.
  /// 0 disables the cap.
  size_t max_reply_bytes = 8u << 20;

  /// Base options handed to each DebugSession (exec pool, eval knobs, ...).
  /// plan_cache / shared_route_cache / state_key are overwritten per
  /// session by the manager.
  DebugSessionOptions session;
};

struct SessionManagerStats {
  uint64_t requests = 0;
  uint64_t sessions_created = 0;
  uint64_t sessions_closed = 0;
  uint64_t rejected_over_budget = 0;
  uint64_t engine_errors = 0;
  uint64_t cancelled = 0;           ///< Requests answered kCancelled.
  uint64_t deadline_exceeded = 0;   ///< Requests answered kDeadlineExceeded.
  uint64_t replies_truncated = 0;   ///< Replies answered kReplyTooLarge.
  uint64_t analyze_cache_hits = 0;    ///< kAnalyze served from the cache.
  uint64_t analyze_cache_misses = 0;  ///< kAnalyze that ran the analyzer.
  size_t open_sessions = 0;
  size_t approx_bytes = 0;  ///< Sum of per-session instance estimates.
};

/// Maps session ids to DebugSession instances and executes decoded requests
/// against them: the protocol-to-engine bridge of spider::serve, usable
/// without any server (the differential test drives it in-process).
///
/// Ids are client-chosen. The manager owns the shared cache tiers
/// (SharedRouteCache + bounded PlanCache) and wires every session into
/// them; when a session closes, its instances are Forget()ed from the plan
/// tier so address reuse can never serve a stale plan.
///
/// Thread-safety: the session map and stats are mutex-guarded, so requests
/// for DIFFERENT sessions may be handled concurrently (the engines
/// themselves share only the internally-locked cache tiers). Requests for
/// the SAME session must be serialized by the caller — the server's
/// per-session queues guarantee that.
class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Executes one request and returns its reply. Never throws: engine
  /// errors come back as kError responses. `now_ms` stamps the session's
  /// last-active time (pass EventLoop::NowMs() or 0).
  ///
  /// `cancel` (optional) is the request's cooperative-cancellation token:
  /// it is checked at entry (a request cancelled while queued never starts)
  /// and threaded into the engines, which poll it in their hot loops. When
  /// the token aborts the work, the reply is kDeadlineExceeded or
  /// kCancelled by the token's reason, and the session is left exactly as
  /// if the request had never been asked (pure-read probes abandon their
  /// partial result before any cache install; creates discard the
  /// half-built session; Apply only honors the token before mutating).
  Response Handle(const Request& request, uint64_t now_ms,
                  const CancelToken* cancel);
  Response Handle(const Request& request, uint64_t now_ms) {
    return Handle(request, now_ms, nullptr);
  }

  /// Ids of sessions idle since before `now_ms - idle_timeout_ms`. The
  /// server filters out sessions with in-flight work, then closes the rest
  /// via CloseSession().
  std::vector<uint64_t> IdleSessionIds(uint64_t now_ms) const;

  /// Closes a session (no-op on unknown ids). Returns true when a session
  /// was actually closed.
  bool CloseSession(uint64_t session_id);

  SessionManagerStats stats() const;
  SharedRouteCache& shared_cache() { return shared_cache_; }
  PlanCache& plan_cache() { return plan_cache_; }
  const SessionManagerOptions& options() const { return options_; }

 private:
  struct ServerSession {
    std::unique_ptr<DebugSession> session;
    /// name -> id for the scenario's declared nulls (ParseFactText input;
    /// chase-invented nulls resolve through their default N<id> names).
    std::unordered_map<std::string, int64_t> null_ids;
    uint64_t last_active_ms = 0;
    size_t approx_bytes = 0;
  };

  Response HandleCreate(const Request& request, uint64_t now_ms,
                        const CancelToken* cancel);
  Response HandleSession(const Request& request, uint64_t now_ms,
                         const CancelToken* cancel);
  Response HandleStats(const Request& request);
  /// kAnalyze: whole-mapping static analysis of the session's loaded
  /// mapping, cached across sessions by (mapping content, spec) hash —
  /// analysis is deterministic, so a hit is byte-identical to a recompute.
  /// Inserts a rendered analyze reply under `key`, bounding the cache FIFO.
  void InstallAnalysisCacheEntry(uint64_t key, const std::string& text);
  Response HandleAnalyze(const Request& request, DebugSession& session,
                         const CancelToken* cancel);

  /// Maps a flipped token to its wire error (and bumps the stat counter).
  Response CancelledResponse(uint64_t request_id, const CancelToken* cancel);
  /// Backstop reply-size cap: oversized kReply texts become kReplyTooLarge.
  Response CapReply(Response response);

  /// Builds the opening scenario for kCreateSession (scenario text) or
  /// kLoadSession (workload spec). Throws SpiderError on bad input.
  static Scenario BuildScenario(const Request& request);

  std::shared_ptr<ServerSession> Find(uint64_t session_id, uint64_t now_ms);
  static size_t EstimateBytes(const DebugSession& session);

  SessionManagerOptions options_;
  SharedRouteCache shared_cache_;
  PlanCache plan_cache_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<ServerSession>> sessions_;
  SessionManagerStats stats_;

  /// Rendered kAnalyze replies keyed by (mapping content, spec) hash,
  /// FIFO-bounded; shared across sessions (guarded by mu_).
  static constexpr size_t kAnalysisCacheEntries = 128;
  std::unordered_map<uint64_t, std::string> analysis_cache_;
  std::deque<uint64_t> analysis_cache_order_;
};

}  // namespace spider::serve

#endif  // SPIDER_SERVE_SESSION_MANAGER_H_
