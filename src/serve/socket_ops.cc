#include "serve/socket_ops.h"

#include <unistd.h>

namespace spider::serve {

namespace {

class PassthroughSocketOps : public SocketOps {
 public:
  ssize_t Read(int fd, void* buf, size_t len) override {
    return read(fd, buf, len);
  }
  ssize_t Write(int fd, const void* buf, size_t len) override {
    return write(fd, buf, len);
  }
};

}  // namespace

SocketOps* RealSocketOps() {
  static PassthroughSocketOps ops;
  return &ops;
}

}  // namespace spider::serve
