#ifndef SPIDER_SERVE_SOCKET_OPS_H_
#define SPIDER_SERVE_SOCKET_OPS_H_

#include <sys/types.h>

#include <cstddef>

namespace spider::serve {

/// The server's only byte-moving seam: every read(2)/write(2) the server
/// issues on a connection socket goes through this interface. Production
/// uses RealSocketOps() (thin syscall wrappers); tests substitute a
/// deterministic shim that scripts short writes, EAGAIN storms, mid-write
/// disconnects and delayed reads without touching kernel socket buffers —
/// which also keeps the fault-injection tests sanitizer-friendly.
///
/// Implementations must preserve syscall semantics: return the byte count
/// on success, 0 for EOF (reads), and -1 with errno set otherwise. Calls
/// happen on the server's loop thread only.
class SocketOps {
 public:
  virtual ~SocketOps() = default;
  virtual ssize_t Read(int fd, void* buf, size_t len) = 0;
  virtual ssize_t Write(int fd, const void* buf, size_t len) = 0;
};

/// The passthrough implementation (process-lifetime singleton).
SocketOps* RealSocketOps();

}  // namespace spider::serve

#endif  // SPIDER_SERVE_SOCKET_OPS_H_
