#include "serve/wire.h"

#include <cstring>

namespace spider::serve {

void WireWriter::PutU32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(bytes, 4);
}

void WireWriter::PutU64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(bytes, 8);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

bool WireReader::ReadU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool WireReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool WireReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool WireReader::ReadString(std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  if (remaining() < len) return false;
  s->assign(data_.substr(pos_, len));
  pos_ += len;
  return true;
}

void AppendFrame(std::string_view payload, std::string* out) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  out->append(bytes, 4);
  out->append(payload.data(), payload.size());
}

FrameStatus NextFrame(std::string* buffer, size_t max_payload,
                      std::string* payload) {
  if (buffer->size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>((*buffer)[i])) << (8 * i);
  }
  if (len < kMinPayloadBytes) return FrameStatus::kMalformed;
  if (len > max_payload) return FrameStatus::kOversized;
  if (buffer->size() < kFrameHeaderBytes + len) return FrameStatus::kNeedMore;
  payload->assign(*buffer, kFrameHeaderBytes, len);
  buffer->erase(0, kFrameHeaderBytes + len);
  return FrameStatus::kFrame;
}

}  // namespace spider::serve
