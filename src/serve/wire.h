#ifndef SPIDER_SERVE_WIRE_H_
#define SPIDER_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace spider::serve {

/// Little-endian byte-buffer writer for the spider::serve wire protocol.
/// Strings are written as u32 length + raw bytes.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutString(std::string_view s);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a received payload. Every accessor returns
/// false instead of reading past the end, so truncated or garbage frames
/// decode into a clean protocol error — never out-of-bounds access. A
/// per-string sanity cap rejects length fields pointing past the payload.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadString(std::string* s);

  /// True when the whole payload was consumed — trailing junk is a
  /// protocol error for fixed-layout messages.
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Frame layout: a u32 length prefix (bytes that follow it) and then the
/// payload. The payload of every message starts with [type u8][request_id
/// u64]; the rest is message-specific (see protocol.h).
inline constexpr size_t kFrameHeaderBytes = 4;
inline constexpr size_t kMinPayloadBytes = 9;  ///< type + request id.

/// Appends a length-prefixed frame carrying `payload` to `out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Attempts to split one frame off the front of `buffer`. Returns:
///   * kFrame     — *payload holds the frame payload, which was consumed
///                  from the buffer;
///   * kNeedMore  — the buffer holds only a partial frame, read more bytes;
///   * kOversized — the length prefix exceeds `max_payload` (the connection
///                  must be dropped: the stream cannot be resynchronized);
///   * kMalformed — the length prefix is below the minimum payload size.
enum class FrameStatus { kFrame, kNeedMore, kOversized, kMalformed };
FrameStatus NextFrame(std::string* buffer, size_t max_payload,
                      std::string* payload);

}  // namespace spider::serve

#endif  // SPIDER_SERVE_WIRE_H_
