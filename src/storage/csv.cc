#include "storage/csv.h"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <sstream>
#include <vector>

#include "base/status.h"

namespace spider {

namespace {

/// Splits one CSV record into raw fields, tracking quoting per field.
struct Field {
  std::string text;
  bool quoted = false;
};

std::vector<Field> SplitRecord(const std::string& line, int line_number) {
  std::vector<Field> fields;
  Field current;
  size_t i = 0;
  bool in_quotes = false;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.text.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.text.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      SPIDER_CHECK(current.text.empty(),
                   "csv line " + std::to_string(line_number) +
                       ": quote in the middle of an unquoted field");
      current.quoted = true;
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current = Field{};
      ++i;
      continue;
    }
    current.text.push_back(c);
    ++i;
  }
  SPIDER_CHECK(!in_quotes, "csv line " + std::to_string(line_number) +
                               ": unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

/// Type inference for unquoted fields.
Value InferValue(const Field& field) {
  if (field.quoted) return Value::Str(field.text);
  const std::string& s = field.text;
  if (!s.empty()) {
    char* end = nullptr;
    long long as_int = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str() + s.size()) return Value::Int(as_int);
    double as_double = std::strtod(s.c_str(), &end);
    if (end == s.c_str() + s.size()) return Value::Real(as_double);
  }
  return Value::Str(s);
}

/// True when `record` ends inside an open quoted field. Escaped quotes are
/// two consecutive `"` characters, so plain parity over the whole record is
/// exact.
bool InsideQuotes(const std::string& record) {
  bool in_quotes = false;
  for (char c : record) {
    if (c == '"') in_quotes = !in_quotes;
  }
  return in_quotes;
}

/// Reads one CSV record. A quoted field may contain raw newlines, in which
/// case the record spans several physical lines (`\r\n` is normalized to
/// `\n` inside the field). Returns false at end of input; throws on a quote
/// left open at EOF. `line_number` tracks the record's FIRST physical line
/// for error messages and is advanced past all consumed lines.
bool ReadRecord(std::istream& in, std::string* record, int* line_number,
                int* record_line) {
  record->clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  ++*line_number;
  *record_line = *line_number;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  *record = std::move(line);
  while (InsideQuotes(*record)) {
    std::string more;
    SPIDER_CHECK(std::getline(in, more),
                 "csv line " + std::to_string(*record_line) +
                     ": unterminated quoted field");
    ++*line_number;
    if (!more.empty() && more.back() == '\r') more.pop_back();
    record->push_back('\n');
    record->append(more);
  }
  return true;
}

}  // namespace

std::vector<Tuple> ParseCsvRows(std::istream& in, size_t arity,
                                const std::string& context,
                                const CsvOptions& options) {
  std::vector<Tuple> rows;
  std::string record;
  int line_number = 0;
  int record_line = 0;
  bool skipped_header = !options.skip_header;
  while (ReadRecord(in, &record, &line_number, &record_line)) {
    if (record.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    std::vector<Field> fields = SplitRecord(record, record_line);
    SPIDER_CHECK(fields.size() == arity,
                 "csv line " + std::to_string(record_line) + ": expected " +
                     std::to_string(arity) + " fields for " + context +
                     ", got " + std::to_string(fields.size()));
    std::vector<Value> values;
    values.reserve(fields.size());
    for (const Field& f : fields) values.push_back(InferValue(f));
    rows.emplace_back(std::move(values));
  }
  return rows;
}

size_t LoadCsv(std::istream& in, const std::string& relation,
               Instance* instance, const CsvOptions& options) {
  SPIDER_CHECK(instance != nullptr, "LoadCsv requires an instance");
  RelationId rel = instance->schema().Require(relation);
  size_t arity = instance->schema().relation(rel).arity();
  size_t inserted = 0;
  for (Tuple& row : ParseCsvRows(in, arity, "relation '" + relation + "'",
                                 options)) {
    if (instance->Insert(rel, std::move(row)).inserted) ++inserted;
  }
  return inserted;
}

size_t LoadCsvText(const std::string& text, const std::string& relation,
                   Instance* instance, const CsvOptions& options) {
  std::istringstream in(text);
  return LoadCsv(in, relation, instance, options);
}

std::string DumpCsv(const Instance& instance, const std::string& relation) {
  RelationId rel = instance.schema().Require(relation);
  const RelationDef& def = instance.schema().relation(rel);
  std::ostringstream os;
  for (size_t c = 0; c < def.arity(); ++c) {
    if (c > 0) os << ',';
    os << def.attribute(c);
  }
  os << '\n';
  auto emit = [&os](const Value& v) {
    switch (v.kind()) {
      case Value::Kind::kInt:
        os << v.AsInt();
        return;
      case Value::Kind::kDouble:
        os << v.AsDouble();
        return;
      case Value::Kind::kNull:
        os << "\"#N" << v.AsNull().id << '"';
        return;
      case Value::Kind::kString: {
        os << '"';
        for (char ch : v.AsString()) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
        return;
      }
    }
  };
  for (const Tuple& t : instance.tuples(rel)) {
    for (size_t c = 0; c < t.arity(); ++c) {
      if (c > 0) os << ',';
      emit(t.at(c));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace spider
