#include "storage/csv.h"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <sstream>
#include <vector>

#include "base/status.h"

namespace spider {

namespace {

/// Splits one CSV record into raw fields, tracking quoting per field.
struct Field {
  std::string text;
  bool quoted = false;
};

std::vector<Field> SplitRecord(const std::string& line, int line_number) {
  std::vector<Field> fields;
  Field current;
  size_t i = 0;
  bool in_quotes = false;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.text.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.text.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      SPIDER_CHECK(current.text.empty(),
                   "csv line " + std::to_string(line_number) +
                       ": quote in the middle of an unquoted field");
      current.quoted = true;
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current = Field{};
      ++i;
      continue;
    }
    current.text.push_back(c);
    ++i;
  }
  SPIDER_CHECK(!in_quotes, "csv line " + std::to_string(line_number) +
                               ": unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

/// Type inference for unquoted fields.
Value InferValue(const Field& field) {
  if (field.quoted) return Value::Str(field.text);
  const std::string& s = field.text;
  if (!s.empty()) {
    char* end = nullptr;
    long long as_int = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str() + s.size()) return Value::Int(as_int);
    double as_double = std::strtod(s.c_str(), &end);
    if (end == s.c_str() + s.size()) return Value::Real(as_double);
  }
  return Value::Str(s);
}

}  // namespace

size_t LoadCsv(std::istream& in, const std::string& relation,
               Instance* instance, const CsvOptions& options) {
  SPIDER_CHECK(instance != nullptr, "LoadCsv requires an instance");
  RelationId rel = instance->schema().Require(relation);
  size_t arity = instance->schema().relation(rel).arity();
  std::string line;
  int line_number = 0;
  size_t inserted = 0;
  bool skipped_header = !options.skip_header;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    std::vector<Field> fields = SplitRecord(line, line_number);
    SPIDER_CHECK(fields.size() == arity,
                 "csv line " + std::to_string(line_number) + ": expected " +
                     std::to_string(arity) + " fields for relation '" +
                     relation + "', got " + std::to_string(fields.size()));
    std::vector<Value> values;
    values.reserve(fields.size());
    for (const Field& f : fields) values.push_back(InferValue(f));
    if (instance->Insert(rel, Tuple(std::move(values))).inserted) ++inserted;
  }
  return inserted;
}

size_t LoadCsvText(const std::string& text, const std::string& relation,
                   Instance* instance, const CsvOptions& options) {
  std::istringstream in(text);
  return LoadCsv(in, relation, instance, options);
}

std::string DumpCsv(const Instance& instance, const std::string& relation) {
  RelationId rel = instance.schema().Require(relation);
  const RelationDef& def = instance.schema().relation(rel);
  std::ostringstream os;
  for (size_t c = 0; c < def.arity(); ++c) {
    if (c > 0) os << ',';
    os << def.attribute(c);
  }
  os << '\n';
  auto emit = [&os](const Value& v) {
    switch (v.kind()) {
      case Value::Kind::kInt:
        os << v.AsInt();
        return;
      case Value::Kind::kDouble:
        os << v.AsDouble();
        return;
      case Value::Kind::kNull:
        os << "\"#N" << v.AsNull().id << '"';
        return;
      case Value::Kind::kString: {
        os << '"';
        for (char ch : v.AsString()) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
        return;
      }
    }
  };
  for (const Tuple& t : instance.tuples(rel)) {
    for (size_t c = 0; c < t.arity(); ++c) {
      if (c > 0) os << ',';
      emit(t.at(c));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace spider
