#ifndef SPIDER_STORAGE_CSV_H_
#define SPIDER_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "storage/instance.h"

namespace spider {

/// Loads CSV rows into one relation of an instance — the practical entry
/// point for debugging a mapping against real exported data.
///
/// Format: comma-separated, double quotes for fields containing commas or
/// quotes (`""` escapes a quote), one row per line; `\r\n` accepted. Every
/// row must match the relation's arity. Unquoted fields are type-inferred:
/// integers and decimals become numeric values, everything else a string;
/// quoted fields are always strings. An optional header row is skipped
/// when `skip_header` is set.
///
/// Returns the number of rows inserted (after deduplication). Throws
/// SpiderError with a line number on malformed input.
struct CsvOptions {
  bool skip_header = false;
};

size_t LoadCsv(std::istream& in, const std::string& relation,
               Instance* instance, const CsvOptions& options = {});

/// Convenience overload for in-memory text (used by tests and the shell).
size_t LoadCsvText(const std::string& text, const std::string& relation,
                   Instance* instance, const CsvOptions& options = {});

/// Serializes one relation as CSV (header row with attribute names; labeled
/// nulls rendered as `#N<id>` strings).
std::string DumpCsv(const Instance& instance, const std::string& relation);

}  // namespace spider

#endif  // SPIDER_STORAGE_CSV_H_
