#ifndef SPIDER_STORAGE_CSV_H_
#define SPIDER_STORAGE_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "base/tuple.h"
#include "storage/instance.h"

namespace spider {

/// Loads CSV rows into one relation of an instance — the practical entry
/// point for debugging a mapping against real exported data.
///
/// Format: comma-separated, double quotes for fields containing commas,
/// quotes (`""` escapes a quote) or newlines; one record per line, except
/// that a quoted field may span lines (`\r\n` is accepted and normalized to
/// `\n` inside such a field). Every row must match the relation's arity.
/// Unquoted fields are type-inferred: integers and decimals become numeric
/// values, everything else a string; quoted fields are always strings. An
/// optional header row is skipped when `skip_header` is set.
///
/// Returns the number of rows inserted (after deduplication). Throws
/// SpiderError with a line number on malformed input.
struct CsvOptions {
  bool skip_header = false;
};

size_t LoadCsv(std::istream& in, const std::string& relation,
               Instance* instance, const CsvOptions& options = {});

/// Parses CSV records into tuples of the given arity without inserting
/// anywhere — the shared engine behind LoadCsv and the incremental
/// subsystem's delta edit files (spider::LoadDeltaCsv), which need rows for
/// relations they do not want materialized yet. `context` names the
/// destination in error messages (e.g. "relation 'Cards'").
std::vector<Tuple> ParseCsvRows(std::istream& in, size_t arity,
                                const std::string& context,
                                const CsvOptions& options = {});

/// Convenience overload for in-memory text (used by tests and the shell).
size_t LoadCsvText(const std::string& text, const std::string& relation,
                   Instance* instance, const CsvOptions& options = {});

/// Serializes one relation as CSV (header row with attribute names; labeled
/// nulls rendered as `#N<id>` strings).
std::string DumpCsv(const Instance& instance, const std::string& relation);

}  // namespace spider

#endif  // SPIDER_STORAGE_CSV_H_
