#include "storage/instance.h"

#include <ostream>
#include <sstream>

namespace spider {

namespace {
const std::vector<int32_t> kEmptyRows;
}  // namespace

int32_t Instance::RelationData::FindInBucket(size_t hash,
                                             const Tuple& tuple) const {
  auto it = dedup.find(hash);
  if (it == dedup.end()) return -1;
  for (int32_t row : it->second) {
    if (rows[row] == tuple) return row;
  }
  return -1;
}

Instance::Instance(const Schema* schema) : schema_(schema) {
  SPIDER_CHECK(schema != nullptr, "instance requires a schema");
  relations_.resize(schema->size());
  for (size_t r = 0; r < relations_.size(); ++r) {
    size_t arity = schema->relation(static_cast<RelationId>(r)).arity();
    relations_[r].indexes.resize(arity);
    relations_[r].index_built.assign(arity, false);
  }
}

InsertResult Instance::Insert(RelationId rel, Tuple tuple) {
  SPIDER_CHECK(rel >= 0 && static_cast<size_t>(rel) < relations_.size(),
               "relation id out of range");
  const RelationDef& def = schema_->relation(rel);
  SPIDER_CHECK(tuple.arity() == def.arity(),
               "arity mismatch inserting into '" + def.name() + "': got " +
                   std::to_string(tuple.arity()) + ", want " +
                   std::to_string(def.arity()));
  RelationData& data = relations_[rel];
  size_t hash = tuple.Hash();
  int32_t existing = data.FindInBucket(hash, tuple);
  if (existing >= 0) return {existing, false};
  int32_t row = static_cast<int32_t>(data.rows.size());
  // Maintain any already-built indexes incrementally.
  for (size_t col = 0; col < def.arity(); ++col) {
    if (data.index_built[col]) {
      data.indexes[col][tuple.at(col)].push_back(row);
    }
  }
  data.dedup[hash].push_back(row);
  data.rows.push_back(std::move(tuple));
  ++version_;
  return {row, true};
}

InsertResult Instance::Insert(const std::string& relation,
                              std::vector<Value> values) {
  return Insert(schema_->Require(relation), Tuple(std::move(values)));
}

std::optional<int32_t> Instance::FindRow(RelationId rel,
                                         const Tuple& tuple) const {
  const RelationData& data = relations_[rel];
  int32_t row = data.FindInBucket(tuple.Hash(), tuple);
  if (row < 0) return std::nullopt;
  return row;
}

size_t Instance::TotalTuples() const {
  size_t total = 0;
  for (const RelationData& data : relations_) total += data.rows.size();
  return total;
}

void Instance::EnsureIndex(RelationId rel, int col) const {
  const RelationData& data = relations_[rel];
  if (data.index_built[col]) return;
  auto& index = data.indexes[col];
  index.clear();
  for (int32_t row = 0; row < static_cast<int32_t>(data.rows.size()); ++row) {
    index[data.rows[row].at(col)].push_back(row);
  }
  data.index_built[col] = true;
}

void Instance::WarmIndexes() const {
  for (size_t r = 0; r < relations_.size(); ++r) {
    size_t arity = schema_->relation(static_cast<RelationId>(r)).arity();
    for (size_t col = 0; col < arity; ++col) {
      EnsureIndex(static_cast<RelationId>(r), static_cast<int>(col));
    }
  }
}

const std::vector<int32_t>& Instance::Probe(RelationId rel, int col,
                                            const Value& v) const {
  EnsureIndex(rel, col);
  const auto& index = relations_[rel].indexes[col];
  auto it = index.find(v);
  return it == index.end() ? kEmptyRows : it->second;
}

size_t Instance::NumDistinct(RelationId rel, int col) const {
  EnsureIndex(rel, col);
  return relations_[rel].indexes[col].size();
}

bool Instance::ContainsNulls() const {
  for (const RelationData& data : relations_) {
    for (const Tuple& t : data.rows) {
      if (t.ContainsNulls()) return true;
    }
  }
  return false;
}

size_t Instance::ApplySubstitution(NullId from, const Value& to) {
  const Value from_value = Value::Null(from.id);
  size_t rewritten = 0;
  ++version_;
  for (RelationData& data : relations_) {
    bool touched = false;
    std::vector<Tuple> rows = std::move(data.rows);
    data.rows.clear();
    data.dedup.clear();
    for (size_t col = 0; col < data.index_built.size(); ++col) {
      data.index_built[col] = false;
      data.indexes[col].clear();
    }
    for (Tuple& t : rows) {
      for (size_t i = 0; i < t.arity(); ++i) {
        if (t.at(i) == from_value) {
          t.at(i) = to;
          ++rewritten;
          touched = true;
        }
      }
      size_t hash = t.Hash();
      if (data.FindInBucket(hash, t) < 0) {
        data.dedup[hash].push_back(static_cast<int32_t>(data.rows.size()));
        data.rows.push_back(std::move(t));
      }
    }
    (void)touched;
  }
  return rewritten;
}

std::string Instance::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Instance& instance) {
  for (size_t r = 0; r < instance.NumRelations(); ++r) {
    RelationId rel = static_cast<RelationId>(r);
    const RelationDef& def = instance.schema().relation(rel);
    for (const Tuple& t : instance.tuples(rel)) {
      os << def.name() << t << '\n';
    }
  }
  return os;
}

}  // namespace spider
